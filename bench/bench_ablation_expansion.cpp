// Ablation A1 (paper ss4.2.4): the analytical model of split vs reshuffle
// overhead as a function of the expansion factor E = N/N0.
//
//   split overhead    ~ (N - N0) * (B/2) * t_c      (grows ~linearly in E)
//   reshuffle overhead~ ((E-1)/E) * B * N0 * t_c    (saturates)
//   => model ratio      split/reshuffle = E/2
//
// The expansion factor is swept by varying the *initial* node count at a
// fixed workload (N stays ~15 of the 24-node pool, N0 ∈ {1..16}), which
// keeps every run inside the pool -- shrinking memory instead would just
// exhaust the pool and cap E.  Measured cumulative split time and
// reshuffle time are printed next to the model's E/2 prediction.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv, 0.5);
  std::printf("== bench_ablation_expansion (scale=%.3g) ==\n", scale);

  FigureTable table(
      "Ablation A1: expansion factor vs split/reshuffle overhead",
      "initial nodes",
      {"ExpansionSplit", "SplitTime", "ExpansionHyb", "ReshuffleTime",
       "MeasuredRatio", "ModelRatio"});

  for (const std::uint32_t initial : {1u, 2u, 4u, 8u, 12u}) {
    EhjaConfig split_config = paper_config(scale);
    split_config.algorithm = Algorithm::kSplit;
    split_config.initial_join_nodes = initial;
    const RunResult split_run = run(split_config);

    EhjaConfig hybrid_config = paper_config(scale);
    hybrid_config.algorithm = Algorithm::kHybrid;
    hybrid_config.initial_join_nodes = initial;
    const RunResult hybrid_run = run(hybrid_config);

    const double e_split =
        static_cast<double>(split_run.metrics.final_join_nodes) / initial;
    const double e_hyb =
        static_cast<double>(hybrid_run.metrics.final_join_nodes) / initial;
    const double reshuffle = hybrid_run.metrics.reshuffle_time();
    const double measured_ratio =
        reshuffle > 0 ? split_run.metrics.split_time / reshuffle : 0.0;
    const double model_ratio = e_split / 2.0;

    table.add_row("J=" + std::to_string(initial),
                  {e_split, split_run.metrics.split_time, e_hyb, reshuffle,
                   measured_ratio, model_ratio});
    std::printf("  J=%-3u split E=%.2f t=%.2fs | hybrid E=%.2f "
                "reshuffle=%.2fs | ratio measured=%.2f model=%.2f\n",
                initial, e_split, split_run.metrics.split_time, e_hyb,
                reshuffle, measured_ratio, model_ratio);
  }
  table.print();
  std::printf("\nThe ss4.2.4 claim to check: the measured ratio grows with "
              "the expansion factor (split overhead outpaces reshuffle as "
              "the initial estimate worsens).\n");
  return 0;
}
