// Serving-layer latency/throughput tracker: one warm JoinService, workload
// replayed at several client concurrency levels and tenant mixes.
//
// For each (mix, concurrency) cell the harness pushes a fixed batch of
// small joins through a real ehja_serve front end -- TCP loopback, the
// admission controller arbitrating, the fleet workers forked from this very
// binary -- and records p50/p99 query latency (submit -> result) and
// sustained queries/sec.  Results go to a JSON file (default
// BENCH_serve.json) so the serving perf trajectory is tracked in-repo; CI
// runs `--smoke` and fails the job when queries error or go missing.
//
// Usage: bench_serve [--smoke] [--out=PATH]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/socket_runtime.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace ehja {
namespace {

EhjaConfig bench_query(std::uint64_t seed, std::uint64_t tuples) {
  EhjaConfig config;
  config.data_sources = 1;
  config.initial_join_nodes = 1;
  config.join_pool_nodes = 2;
  config.node_hash_memory_bytes = 256 * kKiB;
  config.build_rel.tuple_count = tuples;
  config.probe_rel.tuple_count = tuples;
  config.chunk_tuples = 1'000;
  config.generation_slice_tuples = 1'000;
  config.seed = seed;
  return config;
}

struct MixSpec {
  std::string name;
  std::vector<serve::TenantSpec> tenants;
};

/// Two tenant mixes: equal peers, and a high-priority tenant with a tight
/// slot budget sharing the fleet with a bulk tenant -- the admission
/// controller's arbitration is part of the measured path in both.
std::vector<MixSpec> tenant_mixes() {
  std::vector<MixSpec> mixes;
  {
    MixSpec m;
    m.name = "balanced";
    for (const char* name : {"alpha", "beta"}) {
      serve::TenantSpec t;
      t.name = name;
      t.priority = 1;
      t.max_slots = 16;
      t.max_memory_bytes = 512 * kMiB;
      m.tenants.push_back(std::move(t));
    }
    mixes.push_back(std::move(m));
  }
  {
    MixSpec m;
    m.name = "priority_skew";
    serve::TenantSpec urgent;
    urgent.name = "urgent";
    urgent.priority = 5;
    urgent.max_slots = 4;  // outranks bulk but cannot monopolize
    urgent.max_memory_bytes = 256 * kMiB;
    m.tenants.push_back(std::move(urgent));
    serve::TenantSpec bulk;
    bulk.name = "bulk";
    bulk.priority = 0;
    bulk.max_slots = 24;
    bulk.max_memory_bytes = 512 * kMiB;
    m.tenants.push_back(std::move(bulk));
    mixes.push_back(std::move(m));
  }
  return mixes;
}

struct Cell {
  int concurrency = 0;
  serve::ReplayStats stats;
};

struct MixResult {
  MixSpec mix;
  std::vector<Cell> cells;
};

}  // namespace
}  // namespace ehja

int main(int argc, char** argv) {
  using namespace ehja;
  // The fleet's worker processes are re-executions of this binary.
  if (const auto worker_exit = maybe_run_socket_worker(argc, argv)) {
    return *worker_exit;
  }

  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_serve: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  set_log_level(LogLevel::kError);

  const std::uint32_t fleet_workers = 4;
  const std::uint64_t tuples = smoke ? 5'000 : 20'000;
  const int queries_per_cell = smoke ? 16 : 96;
  const std::vector<int> levels = smoke ? std::vector<int>{4, 8}
                                        : std::vector<int>{8, 32, 64};

  std::vector<MixResult> results;
  std::uint64_t seed = 1;
  bool healthy = true;

  for (const MixSpec& mix : tenant_mixes()) {
    MixResult mr;
    mr.mix = mix;

    // One warm service per mix: the fleet stays up across every
    // concurrency level, exactly how a long-lived server would see load
    // ramp up.
    serve::ServeOptions opts;
    opts.fleet_workers = fleet_workers;
    opts.max_queue = 128;
    opts.tenants = mix.tenants;
    serve::JoinService service(std::move(opts));
    std::atomic<bool> stop{false};
    service.set_shutdown_flag(&stop);
    std::thread runtime([&service] { service.run(); });

    for (const int concurrency : levels) {
      std::vector<serve::WorkloadQuery> queries;
      for (int i = 0; i < queries_per_cell; ++i) {
        serve::WorkloadQuery q;
        q.tenant = mix.tenants[i % mix.tenants.size()].name;
        q.config = bench_query(seed++, tuples);
        queries.push_back(std::move(q));
      }
      Cell cell;
      cell.concurrency = concurrency;
      cell.stats = serve::replay_workload(service.port(), queries, concurrency,
                                          /*verify=*/false, /*max_retries=*/500);
      if (cell.stats.completed != cell.stats.accepted ||
          cell.stats.errors != 0 ||
          cell.stats.completed !=
              static_cast<std::uint64_t>(queries_per_cell)) {
        healthy = false;
      }
      std::printf(
          "%-14s c=%-3d  %3llu/%d done  p50 %7.1f ms  p99 %7.1f ms  "
          "%6.1f q/s  (%llu queue-full retries)\n",
          mix.name.c_str(), concurrency,
          static_cast<unsigned long long>(cell.stats.completed),
          queries_per_cell, cell.stats.latency_percentile_ms(0.50),
          cell.stats.latency_percentile_ms(0.99), cell.stats.qps(),
          static_cast<unsigned long long>(cell.stats.retries));
      std::fflush(stdout);
      mr.cells.push_back(std::move(cell));
    }

    stop.store(true);
    runtime.join();
    results.push_back(std::move(mr));
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"serve\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"fleet_workers\": " << fleet_workers << ",\n"
      << "  \"queries_per_cell\": " << queries_per_cell << ",\n"
      << "  \"tuples_per_side\": " << tuples << ",\n"
      << "  \"mixes\": {\n";
  for (std::size_t m = 0; m < results.size(); ++m) {
    const MixResult& mr = results[m];
    out << "    \"" << mr.mix.name << "\": {\n";
    out << "      \"tenants\": [";
    for (std::size_t t = 0; t < mr.mix.tenants.size(); ++t) {
      out << (t ? ", " : "") << "\"" << mr.mix.tenants[t].name << "\"";
    }
    out << "],\n      \"levels\": {\n";
    for (std::size_t c = 0; c < mr.cells.size(); ++c) {
      const Cell& cell = mr.cells[c];
      char line[256];
      std::snprintf(line, sizeof(line),
                    "        \"%d\": {\"completed\": %llu, \"p50_ms\": %.2f, "
                    "\"p99_ms\": %.2f, \"qps\": %.2f, \"retries\": %llu, "
                    "\"wall_sec\": %.3f}%s\n",
                    cell.concurrency,
                    static_cast<unsigned long long>(cell.stats.completed),
                    cell.stats.latency_percentile_ms(0.50),
                    cell.stats.latency_percentile_ms(0.99), cell.stats.qps(),
                    static_cast<unsigned long long>(cell.stats.retries),
                    cell.stats.wall_sec,
                    c + 1 < mr.cells.size() ? "," : "");
      out << line;
    }
    out << "      }\n    }" << (m + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!healthy) {
    std::fprintf(stderr, "bench_serve: queries errored or went missing\n");
    return 1;
  }
  return 0;
}
