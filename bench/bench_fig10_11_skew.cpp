// Figures 10 and 11: data skew.  Join attributes drawn uniform, Gaussian
// sigma=1e-3 (mild skew) and Gaussian sigma=1e-4 (extreme skew) with
// |R| = |S| = 10M, J = 4.
//
// Paper shapes: mild skew is absorbed by all EHJAs; extreme skew degrades
// everyone, the split algorithm worst (it re-splits the hot range over and
// over, re-sending the same tuples -- its Fig. 11 communication exceeds the
// size of R), the hybrid algorithm least (the reshuffle rebalances).
#include <cstdio>

#include "bench_common.hpp"
#include "relation/chunk.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig10_11_skew (scale=%.3g) ==\n", scale);

  FigureTable fig10(
      "Figure 10: Total execution time (s) vs skew (J=4, 10M tuples)",
      "distribution", {"Replicated", "Split", "Hybrid", "OutOfCore"});
  FigureTable fig11(
      "Figure 11: Extra build communication (chunks) vs skew",
      "distribution", {"Replicated", "Split", "Hybrid", "SizeOfTableR"});

  struct SkewCase {
    const char* label;
    DistributionSpec dist;
  };
  const SkewCase cases[] = {
      {"uniform", DistributionSpec::Uniform()},
      {"sigma=0.001", DistributionSpec::Gaussian(0.5, 1e-3)},
      {"sigma=0.0001", DistributionSpec::Gaussian(0.5, 1e-4)},
  };

  const EhjaConfig base = paper_config(scale);
  const double r_chunks = static_cast<double>(
      chunks_for(base.build_rel.tuple_count, base.chunk_tuples));

  for (const SkewCase& sk : cases) {
    std::vector<double> total;
    std::vector<double> comm;
    for (const Algorithm algorithm : kFigureAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.build_rel.dist = sk.dist;
      config.probe_rel.dist = sk.dist;
      const RunResult result = run(config);
      total.push_back(result.metrics.total_time());
      if (algorithm != Algorithm::kOutOfCore) {
        comm.push_back(
            static_cast<double>(result.metrics.extra_build_chunks));
      }
      std::printf("  %-14s %-12s total=%8.2fs extra=%6llu chunks "
                  "nodes=%u->%u\n",
                  sk.label, algorithm_name(algorithm),
                  result.metrics.total_time(),
                  static_cast<unsigned long long>(
                      result.metrics.extra_build_chunks),
                  result.metrics.initial_join_nodes,
                  result.metrics.final_join_nodes);
    }
    comm.push_back(r_chunks);
    fig10.add_row(sk.label, total);
    fig11.add_row(sk.label, comm);
  }
  fig10.print();
  fig11.print();
  return 0;
}
