// Figures 8 and 9: building the hash table from the LARGER relation.
// Two scenarios: (R=10M, S=100M) -- the conventional choice, small build
// side -- and (R=100M, S=10M) -- the streaming-data case where the big
// relation arrives first and must build the table.
//
// Paper shape: when the larger relation builds the table, the
// replication-based algorithm wins -- the reshuffle (hybrid) or migration
// (split) of the huge build side costs more than replication's broadcast of
// the now-small probe side.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig8_9_build_larger (scale=%.3g) ==\n", scale);

  FigureTable fig8("Figure 8: Total execution time (s), larger-build cases",
                   "scenario", {"Replicated", "Split", "Hybrid", "OutOfCore"});
  FigureTable fig9("Figure 9: Hash table building time (s), same cases",
                   "scenario", {"Replicated", "Split", "Hybrid", "OutOfCore"});

  struct Case {
    std::uint64_t r_millions;
    std::uint64_t s_millions;
  };
  for (const Case c : {Case{10, 100}, Case{100, 10}}) {
    std::vector<double> total, build;
    for (const Algorithm algorithm : kFigureAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.build_rel.tuple_count = static_cast<std::uint64_t>(
          static_cast<double>(c.r_millions) * 1e6 * scale);
      config.probe_rel.tuple_count = static_cast<std::uint64_t>(
          static_cast<double>(c.s_millions) * 1e6 * scale);
      // Provision the pool relative to the build side (bench_common.hpp):
      // the 100M-build case would otherwise dwarf any fixed budget and turn
      // every algorithm into a disk benchmark.
      config.node_hash_memory_bytes =
          calibrated_budget(config.build_rel, config.join_pool_nodes);
      const RunResult result = run(config);
      total.push_back(result.metrics.total_time());
      build.push_back(result.metrics.build_time() +
                      result.metrics.reshuffle_time());
      std::printf("  R=%-4lluM S=%-4lluM %-12s total=%8.2fs build=%8.2fs\n",
                  static_cast<unsigned long long>(c.r_millions),
                  static_cast<unsigned long long>(c.s_millions),
                  algorithm_name(algorithm), result.metrics.total_time(),
                  result.metrics.build_time() +
                      result.metrics.reshuffle_time());
    }
    const std::string label = "R=" + std::to_string(c.r_millions) + "M,S=" +
                              std::to_string(c.s_millions) + "M";
    fig8.add_row(label, total);
    fig9.add_row(label, build);
  }
  fig8.print();
  fig9.print();
  return 0;
}
