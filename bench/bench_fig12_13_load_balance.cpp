// Figures 12 and 13: load balance of the three EHJAs -- the minimum,
// average and maximum number of build-tuple chunks held per join node --
// under uniform keys (Fig. 12) and extreme Gaussian skew, sigma = 1e-4
// (Fig. 13).
//
// Paper shapes: uniform -- split & hybrid are well balanced; extreme skew
// -- the split algorithm is badly imbalanced (the hot range stays on a few
// nodes), the hybrid algorithm stays comparatively balanced thanks to the
// reshuffle, replication sits between.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig12_13_load_balance (scale=%.3g) ==\n", scale);

  struct SkewCase {
    const char* figure;
    const char* label;
    DistributionSpec dist;
  };
  const SkewCase cases[] = {
      {"Figure 12", "uniform", DistributionSpec::Uniform()},
      {"Figure 13", "sigma=0.0001", DistributionSpec::Gaussian(0.5, 1e-4)},
  };

  for (const SkewCase& sk : cases) {
    FigureTable fig(
        std::string(sk.figure) +
            ": Load per join node in chunks (min/avg/max), " + sk.label,
        "algorithm", {"MinLoad", "AverageLoad", "MaxLoad", "Nodes"});
    for (const Algorithm algorithm : kEhjaAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.build_rel.dist = sk.dist;
      config.probe_rel.dist = sk.dist;
      const RunResult result = run(config);
      const RunningStats load =
          summarize(result.metrics.load_chunks(config.chunk_tuples));
      fig.add_row(algorithm_name(algorithm),
                  {load.min(), load.mean(), load.max(),
                   static_cast<double>(result.metrics.final_join_nodes)});
      std::printf("  %-14s %-12s load(chunks) min=%6.1f avg=%6.1f max=%6.1f "
                  "imbalance=%4.2f\n",
                  sk.label, algorithm_name(algorithm), load.min(),
                  load.mean(), load.max(), load.imbalance());
    }
    fig.print();
  }
  return 0;
}
