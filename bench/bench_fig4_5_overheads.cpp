// Figures 4 and 5: expansion overheads across the initial-node sweep.
//   Fig. 4 -- extra communication volume (in 10k-tuple chunks) that the
//            three EHJAs add during the hash-table building phase, against
//            the reference line "size of table R".
//   Fig. 5 -- cumulative split time (split algorithm) vs reshuffle time
//            (hybrid algorithm).
//
// Paper shapes: both overheads shrink as the initial-node estimate improves
// and vanish at 16 nodes; when the estimate is badly wrong the split
// algorithm's overhead exceeds the hybrid's reshuffle (ss4.2.4 analysis).
#include <cstdio>

#include "bench_common.hpp"
#include "relation/chunk.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig4_5_overheads (scale=%.3g) ==\n", scale);

  const std::uint32_t sweep[] = {1, 2, 4, 8, 16};
  FigureTable fig4(
      "Figure 4: Extra communication in the build phase (chunks)",
      "initial nodes", {"Replicated", "Split", "Hybrid", "SizeOfTableR"});
  FigureTable fig5("Figure 5: Split time vs reshuffle time (s)",
                   "initial nodes", {"SplitTime", "ReshuffleTime"});

  const EhjaConfig base = paper_config(scale);
  const double r_chunks = static_cast<double>(
      chunks_for(base.build_rel.tuple_count, base.chunk_tuples));

  for (const std::uint32_t nodes : sweep) {
    std::vector<double> comm;
    double split_time = 0.0;
    double reshuffle_time = 0.0;
    for (const Algorithm algorithm : kEhjaAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.initial_join_nodes = nodes;
      const RunResult result = run(config);
      comm.push_back(static_cast<double>(result.metrics.extra_build_chunks));
      if (algorithm == Algorithm::kSplit) {
        split_time = result.metrics.split_time;
      }
      if (algorithm == Algorithm::kHybrid) {
        reshuffle_time = result.metrics.reshuffle_time();
      }
      std::printf("  J=%-3u %-12s extra=%6llu chunks  split_t=%6.2fs "
                  "reshuffle_t=%6.2fs\n",
                  nodes, algorithm_name(algorithm),
                  static_cast<unsigned long long>(
                      result.metrics.extra_build_chunks),
                  result.metrics.split_time,
                  result.metrics.reshuffle_time());
    }
    comm.push_back(r_chunks);
    fig4.add_row(std::to_string(nodes), comm);
    fig5.add_row(std::to_string(nodes), {split_time, reshuffle_time});
  }
  fig4.print();
  fig5.print();
  return 0;
}
