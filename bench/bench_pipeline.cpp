// Materialized-pipeline throughput tracker (writes BENCH_pipeline.json).
//
// Runs the TPC-H-shaped chain (lineitem |><| orders |><| customer,
// workload/tpch_like) as a real materialized pipeline on the thread
// runtime -- actor wall-clock, not virtual time -- and records per-stage
// and end-to-end tuples/sec for every algorithm, uniform and skewed.
// Every run is checked against the serial_multi_join oracle first; a
// mismatch aborts with exit 2 (a perf number for a wrong answer is
// worthless).  CI runs `--smoke` for the artifact and a baseline-scale run
// that tools/check_bench.py grades against the committed
// BENCH_pipeline.json (>25% tuples/sec drop fails; absolute throughput
// only gates when host_cores matches).
//
// The `modeled` block records the independence-assumption cardinality
// estimates next to the measured intermediates -- the modeled-vs-
// materialized comparison tabulated in EXPERIMENTS.md.
//
// Usage: bench_pipeline [--smoke] [--out=PATH] [--scale=X]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "workload/tpch_like.hpp"

namespace ehja {
namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct StagePoint {
  std::uint64_t build_rows = 0;
  std::uint64_t probe_rows = 0;
  std::uint64_t output_rows = 0;
  double wall_sec = 0;
  double tuples_per_sec = 0;
};

struct PipelinePoint {
  std::string name;
  std::vector<StagePoint> stages;
  double wall_sec = 0;
  double end_to_end_tps = 0;
  std::uint64_t matches = 0;
  std::uint32_t peak_join_nodes = 0;
  std::uint32_t denied_expansions = 0;
};

PipelinePoint bench_once(const TpchLikeOptions& options,
                         const MultiJoinResult& oracle) {
  const PipelinePlan plan = tpch_like_plan(options);
  const double t0 = now_sec();
  const PipelineResult result = run_pipeline(plan, RuntimeKind::kThread);
  const double wall = now_sec() - t0;

  if (result.final != oracle.final || result.final_rows != oracle.final_rows) {
    std::cerr << "FATAL: " << algorithm_name(options.algorithm)
              << " pipeline diverged from the serial oracle\n";
    std::exit(2);
  }

  PipelinePoint point;
  point.name = algorithm_name(options.algorithm);
  point.wall_sec = wall;
  point.matches = result.final.matches;
  point.peak_join_nodes = result.peak_join_nodes;
  point.denied_expansions = result.denied_expansions;
  std::uint64_t build_rows = plan.first_build.tuple_count;
  std::uint64_t total_tuples = 0;
  for (std::size_t k = 0; k < result.stages.size(); ++k) {
    const StageResult& stage = result.stages[k];
    StagePoint sp;
    sp.build_rows = build_rows;
    sp.probe_rows = plan.stages[k].probe.tuple_count;
    sp.output_rows = stage.output_rows;
    // ThreadRuntime timestamps are wall-clock, so the stage's own metrics
    // give its genuine processing rate.
    sp.wall_sec = stage.executed ? stage.run.metrics.total_time() : 0.0;
    const std::uint64_t in = sp.build_rows + sp.probe_rows;
    sp.tuples_per_sec = sp.wall_sec > 0 ? static_cast<double>(in) / sp.wall_sec
                                        : 0.0;
    total_tuples += in;
    build_rows = stage.output_rows;
    point.stages.push_back(sp);
  }
  point.end_to_end_tps = static_cast<double>(total_tuples) / wall;
  return point;
}

/// Median-of-reps by end-to-end wall time: one whole run is the sampling
/// unit, so the reported per-stage numbers stay internally consistent
/// (they all come from the same run).
PipelinePoint bench_one(const TpchLikeOptions& options,
                        const MultiJoinResult& oracle, int reps) {
  std::vector<PipelinePoint> points;
  for (int r = 0; r < reps; ++r) points.push_back(bench_once(options, oracle));
  std::sort(points.begin(), points.end(),
            [](const PipelinePoint& a, const PipelinePoint& b) {
              return a.wall_sec < b.wall_sec;
            });
  return points[points.size() / 2];
}

void write_point(std::ostream& os, const PipelinePoint& p, bool last) {
  os << "    \"" << p.name << "\": {\n      \"stages\": [\n";
  for (std::size_t k = 0; k < p.stages.size(); ++k) {
    const StagePoint& s = p.stages[k];
    os << "        {\"build_rows\": " << s.build_rows
       << ", \"probe_rows\": " << s.probe_rows
       << ", \"output_rows\": " << s.output_rows
       << ", \"wall_sec\": " << s.wall_sec
       << ", \"tuples_per_sec\": " << std::llround(s.tuples_per_sec) << "}"
       << (k + 1 < p.stages.size() ? ",\n" : "\n");
  }
  os << "      ],\n      \"wall_sec\": " << p.wall_sec
     << ",\n      \"tuples_per_sec\": " << std::llround(p.end_to_end_tps)
     << ",\n      \"matches\": " << p.matches
     << ",\n      \"peak_join_nodes\": " << p.peak_join_nodes
     << ",\n      \"denied_expansions\": " << p.denied_expansions
     << "\n    }" << (last ? "\n" : ",\n");
}

}  // namespace
}  // namespace ehja

int main(int argc, char** argv) {
  using namespace ehja;
  bool smoke = false;
  std::string out_path = "BENCH_pipeline.json";
  double scale_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale_override = std::strtod(argv[i] + 8, nullptr);
  }
  // Baseline scale 1.0 = 20k orders / 80k lineitem / 2k customer; smoke
  // shrinks the chain but keeps its shape.
  const double scale = scale_override > 0 ? scale_override : (smoke ? 0.25 : 1.0);

  TpchLikeOptions base;
  base.scale = scale;
  const PipelinePlan shape = tpch_like_plan(base);
  std::uint64_t input_tuples = shape.first_build.tuple_count;
  for (const PipelineStage& stage : shape.stages) {
    input_tuples += stage.probe.tuple_count;
  }
  const unsigned host_cores =
      std::max(1u, std::thread::hardware_concurrency());

  constexpr Algorithm kAll[] = {Algorithm::kSplit, Algorithm::kReplicate,
                                Algorithm::kHybrid, Algorithm::kOutOfCore,
                                Algorithm::kAdaptive};
  std::vector<PipelinePoint> uniform_points, skewed_points;
  // One oracle evaluation per workload shape: the chain's content depends
  // only on the plan's relations and seeds, never on the algorithm.
  const MultiJoinResult uniform_oracle = serial_multi_join(tpch_like_plan(base));
  TpchLikeOptions skewed_options = base;
  skewed_options.skew = 1.1;
  const MultiJoinResult skewed_oracle =
      serial_multi_join(tpch_like_plan(skewed_options));
  const int reps = smoke ? 3 : 5;
  for (const Algorithm algorithm : kAll) {
    TpchLikeOptions options = base;
    options.algorithm = algorithm;
    uniform_points.push_back(bench_one(options, uniform_oracle, reps));
    options.skew = skewed_options.skew;
    skewed_points.push_back(bench_one(options, skewed_oracle, reps));
  }

  // Modeled intermediates under the independence assumption: every
  // lineitem's FK hits (orders / orderkey-domain) build rows on average,
  // and likewise for custkey.  The domains equal the parent cardinalities,
  // so the model predicts |stage0| = |lineitem| and |stage1| = |stage0| --
  // exact for uniform FKs, increasingly wrong under skew (hot keys square).
  const std::uint64_t modeled_stage0 = shape.stages[0].probe.tuple_count;
  const std::uint64_t modeled_stage1 = modeled_stage0;

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"pipeline\",\n";
  os << "  \"tuples\": " << input_tuples << ",\n  \"scale\": " << scale
     << ",\n  \"reps\": " << reps
     << ",\n  \"smoke\": " << (smoke ? "true" : "false")
     << ",\n  \"host_cores\": " << host_cores << ",\n";
  os << "  \"workload\": {\"orders\": " << shape.first_build.tuple_count
     << ", \"lineitem\": " << shape.stages[0].probe.tuple_count
     << ", \"customer\": " << shape.stages[1].probe.tuple_count << "},\n";
  os << "  \"modeled\": {\"stage0_rows\": " << modeled_stage0
     << ", \"stage1_rows\": " << modeled_stage1
     << ", \"uniform_measured_stage0\": "
     << uniform_points[0].stages[0].output_rows
     << ", \"uniform_measured_stage1\": "
     << uniform_points[0].stages[1].output_rows
     << ", \"skewed_measured_stage0\": "
     << skewed_points[0].stages[0].output_rows
     << ", \"skewed_measured_stage1\": "
     << skewed_points[0].stages[1].output_rows << "},\n";
  os << "  \"uniform\": {\n";
  for (std::size_t i = 0; i < uniform_points.size(); ++i) {
    write_point(os, uniform_points[i], i + 1 == uniform_points.size());
  }
  os << "  },\n  \"skewed\": {\n";
  for (std::size_t i = 0; i < skewed_points.size(); ++i) {
    write_point(os, skewed_points[i], i + 1 == skewed_points.size());
  }
  os << "  }\n}\n";
  os.close();

  for (const auto* points : {&uniform_points, &skewed_points}) {
    std::cout << (points == &uniform_points ? "uniform" : "skewed") << ":\n";
    for (const PipelinePoint& p : *points) {
      std::cout << "  " << p.name << ": " << std::llround(p.end_to_end_tps)
                << " t/s end-to-end (" << p.wall_sec << " s, peak "
                << p.peak_join_nodes << " nodes";
      for (std::size_t k = 0; k < p.stages.size(); ++k) {
        std::cout << "; stage " << k << " "
                  << std::llround(p.stages[k].tuples_per_sec) << " t/s";
      }
      std::cout << ")\n";
    }
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
