// Ablation A2 (extension; the paper's ss6 "which strategy when" question
// answered per overflow): the cost-model-driven adaptive policy against the
// three fixed strategies.
//
// The paper's decision rule is a per-*run* choice -- replicate under heavy
// skew, split otherwise, hybrid as the safe middle.  The adaptive policy
// (core/expansion_policy) makes the same trade per *overflow*: it compares
// the cost model's one-time build-migration estimate for a split with the
// recurring probe-broadcast cost of a replica, using the sources' observed
// build progress and the requester's reported footprint.  The sweep below
// crosses the two inputs that move that comparison -- join-attribute skew
// and the probe/build size ratio -- and reports total virtual time per
// strategy plus the adaptive policy's split/replica mix.
#include <cstdio>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv, 0.1);
  std::printf("== bench_adaptive_strategy (scale=%.3g) ==\n", scale);

  struct Case {
    const char* label;
    DistributionSpec dist;
    double probe_ratio;  // |S| / |R|
  };
  const Case cases[] = {
      {"uniform probe=1x", DistributionSpec::Uniform(), 1.0},
      {"uniform probe=0.1x", DistributionSpec::Uniform(), 0.1},
      {"gauss s=0.08 probe=2x", DistributionSpec::Gaussian(0.25, 0.08), 2.0},
      {"gauss s=0.08 probe=0.1x", DistributionSpec::Gaussian(0.25, 0.08),
       0.1},
      {"zipf s=1.1 probe=1x", DistributionSpec::Zipf(1.1, 1 << 16), 1.0},
  };

  FigureTable table("Ablation A2: fixed strategies vs per-overflow adaptive",
                    "workload",
                    {"Replicated", "Split", "Hybrid", "Adaptive"});

  for (const Case& c : cases) {
    std::vector<double> totals;
    std::uint32_t splits = 0;
    std::uint32_t replicas = 0;
    for (const Algorithm algorithm : kStrategyAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.build_rel.dist = c.dist;
      config.probe_rel.dist = c.dist;
      config.probe_rel.tuple_count = static_cast<std::uint64_t>(
          static_cast<double>(config.build_rel.tuple_count) * c.probe_ratio);
      const RunResult result = run(config);
      totals.push_back(result.metrics.total_time());
      if (algorithm == Algorithm::kAdaptive) {
        splits = result.metrics.adaptive_splits;
        replicas = result.metrics.adaptive_replicas;
      }
    }
    table.add_row(c.label, totals);
    std::printf("  %-26s repl=%.2fs split=%.2fs hybrid=%.2fs "
                "adaptive=%.2fs (%u splits / %u replicas)\n",
                c.label, totals[0], totals[1], totals[2], totals[3], splits,
                replicas);
  }
  table.print();
  std::printf("\nThe claim to check: adaptive tracks the better fixed "
              "strategy on each workload without being told which one that "
              "is.\n");
  return 0;
}
