// Figures 2 and 3: effect of varying the number of initial working join
// nodes (1..16) on total execution time and on hash-table building time.
// Workload: |R| = |S| = 10 M x 100 B tuples, uniform keys.
//
// Paper shapes to reproduce:
//   * all four algorithms converge once 16 initial nodes hold the table;
//   * the three EHJAs beat Out-of-Core at small initial node counts;
//   * split & hybrid beat replication on total time (probe broadcast);
//   * replication has the cheapest *build* phase (no migration);
//   * split & hybrid are least sensitive to the initial node count.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig2_3_initial_nodes (scale=%.3g) ==\n", scale);

  const std::uint32_t sweep[] = {1, 2, 4, 8, 16};
  FigureTable fig2(
      "Figure 2: Total execution time (s) vs initial join nodes "
      "(uniform, |R|=|S|=" + count_label(paper_config(scale).build_rel.tuple_count) + ")",
      "initial nodes", {"Replicated", "Split", "Hybrid", "OutOfCore"});
  FigureTable fig3(
      "Figure 3: Hash table building time (s) vs initial join nodes",
      "initial nodes", {"Replicated", "Split", "Hybrid", "OutOfCore"});

  for (const std::uint32_t nodes : sweep) {
    std::vector<double> total, build;
    for (const Algorithm algorithm : kFigureAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.initial_join_nodes = nodes;
      const RunResult result = run(config);
      total.push_back(result.metrics.total_time());
      // "Building time" in the paper includes everything before probing
      // begins on this algorithm's critical path; reshuffle is reported
      // separately in Fig. 5, so build here is the build phase proper.
      build.push_back(result.metrics.build_time());
      std::printf("  J=%-3u %-12s total=%8.2fs build=%7.2fs nodes=%u->%u\n",
                  nodes, algorithm_name(algorithm),
                  result.metrics.total_time(), result.metrics.build_time(),
                  result.metrics.initial_join_nodes,
                  result.metrics.final_join_nodes);
    }
    fig2.add_row(std::to_string(nodes), total);
    fig3.add_row(std::to_string(nodes), build);
  }
  fig2.print();
  fig3.print();
  return 0;
}
