// Shared harness for the figure-regeneration benches.
//
// Each bench binary reproduces one or two figures from the paper's ss5 by
// sweeping a parameter and printing the same series the figure plots.  All
// binaries accept:
//     --scale=<f>   scale the workload (tuple counts AND per-node memory)
//                   by f; shapes are scale-invariant, wall-clock is not.
//                   Default 1.0 (the paper's full 10M-tuple workload).
//     --quick       shorthand for --scale=0.1
// or the EHJA_BENCH_SCALE environment variable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/driver.hpp"

namespace ehja::bench {

/// Parse --scale / --quick / EHJA_BENCH_SCALE.
double scale_from_args(int argc, char** argv, double fallback = 1.0);

/// The paper's base configuration (ss5): |R| = |S| = 10 M tuples of 100 B,
/// uniform keys, J = 4 initial of a 24-node pool, 4 data sources, 10 k
/// tuples per chunk, 80 MiB hash memory per node -- all scaled by `scale`.
EhjaConfig paper_config(double scale);

/// Run one configuration on the deterministic runtime.
RunResult run(const EhjaConfig& config);

/// Per-node memory budget provisioned relative to a build side, at the same
/// cluster-provisioning ratio as the base workload (24 x 80 MiB for the
/// 10M x 100 B table, i.e. pool capacity = 1.62x the build footprint).  The
/// figure-7/8/9 sweeps grow the build side far beyond the base workload;
/// the paper does not report its nodes spilling there, so those benches
/// keep the provisioning ratio fixed rather than the absolute budget
/// (documented in EXPERIMENTS.md).
std::uint64_t calibrated_budget(const RelationSpec& build,
                                std::uint32_t pool_nodes);

/// The four algorithms in the figures' legend order.
inline constexpr Algorithm kFigureAlgorithms[] = {
    Algorithm::kReplicate, Algorithm::kSplit, Algorithm::kHybrid,
    Algorithm::kOutOfCore};
inline constexpr Algorithm kEhjaAlgorithms[] = {
    Algorithm::kReplicate, Algorithm::kSplit, Algorithm::kHybrid};
/// The strategy-choice comparison: the three fixed EHJAs against the
/// adaptive policy that picks split-vs-replicate per overflow.
inline constexpr Algorithm kStrategyAlgorithms[] = {
    Algorithm::kReplicate, Algorithm::kSplit, Algorithm::kHybrid,
    Algorithm::kAdaptive};

/// Aligned text table: one row per sweep point, one column per series.
class FigureTable {
 public:
  FigureTable(std::string title, std::string row_header,
              std::vector<std::string> columns);

  void add_row(const std::string& label, const std::vector<double>& values);
  void print() const;

 private:
  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

/// Human-readable count, e.g. 10000000 -> "10M".
std::string count_label(std::uint64_t tuples);

}  // namespace ehja::bench
