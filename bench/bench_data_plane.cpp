// Data-plane throughput baseline: scalar vs batched build and probe.
//
// Measures real (wall-clock) tuples/sec through LocalHashTable -- the
// tuple-at-a-time insert()/probe() calls against the columnar
// insert_batch()/probe_batch() path -- on a uniform and a skewed key
// workload, plus the end-to-end simulated join per algorithm (wall-clock of
// the whole actor pipeline, which now moves columnar batches end to end).
// Results go to a JSON file (default BENCH_data_plane.json) so the perf
// trajectory is tracked in-repo; CI runs `--smoke` on a small workload and
// fails the job when the batched path regresses below scalar (exit 1).
//
// The `intra` section sweeps NodeTable over --intra-threads x {shared,
// merge} on the uniform workload (tuples/sec for build and probe at each
// point, plus `host_cores`): the thread-scaling record behind DESIGN.md
// §11.  Every swept point must reproduce the single-thread matches and
// checksum exactly or the bench aborts.  Scaling numbers are only
// meaningful relative to `host_cores` -- tools/check_bench.py skips intra
// comparisons across hosts with different core counts.
//
// Usage: bench_data_plane [--smoke] [--out=PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "core/node_table.hpp"
#include "hash/local_hash_table.hpp"
#include "relation/tuple_batch.hpp"
#include "util/rng.hpp"

namespace ehja {
namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Tuples pre-chunked both ways: rows for the scalar path, columns for the
/// batched path, sliced like the transport would (chunk_tuples per chunk).
struct Workload {
  std::vector<Tuple> rows;
  std::vector<TupleBatch> chunks;
};

Workload make_workload(std::uint64_t tuples, std::uint64_t chunk_tuples,
                       bool skewed, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Workload w;
  w.rows.reserve(tuples);
  for (std::uint64_t i = 0; i < tuples; ++i) {
    std::uint64_t key;
    if (!skewed) {
      key = rng.next_u64();
    } else {
      // Triangular position distribution (mean of two uniforms): the
      // center positions carry long chains, like the paper's Gaussian
      // skew, while low key bits keep join attributes distinct.
      const std::uint64_t a = rng.next_u64() >> (64 - kPositionBits);
      const std::uint64_t b = rng.next_u64() >> (64 - kPositionBits);
      const std::uint64_t pos = (a + b) / 2;
      key = (pos << (64 - kPositionBits)) | (rng.next_u64() & 0xffffffffull);
    }
    w.rows.push_back(Tuple{i, key});
  }
  for (std::uint64_t off = 0; off < tuples; off += chunk_tuples) {
    const std::uint64_t n = std::min(chunk_tuples, tuples - off);
    TupleBatch batch;
    batch.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      batch.push_back(w.rows[off + i]);
    }
    w.chunks.push_back(std::move(batch));
  }
  return w;
}

struct Throughput {
  double scalar_tps = 0;
  double batched_tps = 0;
  double speedup() const { return scalar_tps > 0 ? batched_tps / scalar_tps : 0; }
};

/// Median-of-`reps` wall time of two bodies, interleaved rep by rep.  On
/// shared vCPUs, steal time drifts over seconds: interleaving makes both
/// modes sample the same windows, and the median (unlike best-of) is not
/// dominated by whichever mode caught the one steal-free window.
template <typename Reset, typename BodyA, typename BodyB>
std::pair<double, double> median_seconds_interleaved(int reps, Reset reset,
                                                     BodyA a, BodyB b) {
  std::vector<double> times_a, times_b;
  for (int r = 0; r < reps; ++r) {
    {
      auto state = reset();
      const double t0 = now_sec();
      a(state);
      times_a.push_back(now_sec() - t0);
    }
    {
      auto state = reset();
      const double t0 = now_sec();
      b(state);
      times_b.push_back(now_sec() - t0);
    }
  }
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  return {median(times_a), median(times_b)};
}

Throughput bench_build(const Workload& w, int reps) {
  const Schema schema;
  const PosRange range{0, kPositionCount};
  const double n = static_cast<double>(w.rows.size());
  const auto [scalar, batched] = median_seconds_interleaved(
      reps, [&] { return LocalHashTable(schema, range); },
      [&](LocalHashTable& table) {
        for (const Tuple& t : w.rows) table.insert(t);
      },
      [&](LocalHashTable& table) {
        for (const TupleBatch& chunk : w.chunks) table.insert_batch(chunk);
      });
  Throughput out;
  out.scalar_tps = n / scalar;
  out.batched_tps = n / batched;
  return out;
}

Throughput bench_probe(const Workload& build, const Workload& probe,
                       int reps) {
  const Schema schema;
  const PosRange range{0, kPositionCount};
  LocalHashTable table(schema, range);
  for (const TupleBatch& chunk : build.chunks) table.insert_batch(chunk);
  const double n = static_cast<double>(probe.rows.size());
  // Warm the lazy index outside the timed region (both paths share it).
  (void)table.probe(probe.rows.front());

  std::uint64_t scalar_matches = 0, batched_matches = 0;
  std::uint64_t scalar_checksum = 0, batched_checksum = 0;
  const auto [scalar, batched] = median_seconds_interleaved(
      reps, [] { return 0; },
      [&](int) {
        std::uint64_t matches = 0, checksum = 0;
        for (const Tuple& t : probe.rows) {
          const auto r = table.probe(t);
          matches += r.matches;
          checksum += r.checksum_delta;
        }
        scalar_matches = matches;
        scalar_checksum = checksum;
      },
      [&](int) {
        std::uint64_t matches = 0, checksum = 0;
        for (const TupleBatch& chunk : probe.chunks) {
          const auto r = table.probe_batch(chunk);
          matches += r.matches;
          checksum += r.checksum_delta;
        }
        batched_matches = matches;
        batched_checksum = checksum;
      });
  Throughput out;
  if (scalar_matches != batched_matches ||
      scalar_checksum != batched_checksum) {
    std::cerr << "FATAL: scalar/batched probe results diverged\n";
    std::exit(2);
  }
  out.scalar_tps = n / scalar;
  out.batched_tps = n / batched;
  return out;
}

/// One intra-threads sweep point: NodeTable build/probe throughput at a
/// given lane count and build discipline.
struct IntraPoint {
  double build_tps = 0;
  double probe_tps = 0;
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;
};

IntraPoint bench_intra(const Workload& build, const Workload& probe,
                       std::uint32_t threads, IntraMode mode, int reps) {
  const Schema schema;
  const PosRange range{0, kPositionCount};
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  IntraPoint out;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    NodeTable table(schema, range, threads, mode);
    const double t0 = now_sec();
    for (const TupleBatch& chunk : build.chunks) table.insert_batch(chunk);
    times.push_back(now_sec() - t0);
  }
  out.build_tps = static_cast<double>(build.rows.size()) / median(times);

  NodeTable table(schema, range, threads, mode);
  for (const TupleBatch& chunk : build.chunks) table.insert_batch(chunk);
  // Warm the lazy key index outside the timed region.
  (void)table.probe(probe.rows.front());
  times.clear();
  for (int r = 0; r < reps; ++r) {
    std::uint64_t matches = 0, checksum = 0;
    const double t0 = now_sec();
    for (const TupleBatch& chunk : probe.chunks) {
      const auto agg = table.probe_batch(chunk);
      matches += agg.matches;
      checksum += agg.checksum_delta;
    }
    times.push_back(now_sec() - t0);
    out.matches = matches;
    out.checksum = checksum;
  }
  out.probe_tps = static_cast<double>(probe.rows.size()) / median(times);
  return out;
}

struct EndToEnd {
  std::string name;
  double wall_sec = 0;
  double tuples_per_sec = 0;
  std::uint64_t matches = 0;
};

EndToEnd bench_end_to_end(Algorithm algorithm, double scale) {
  EhjaConfig config;
  config.algorithm = algorithm;
  config.build_rel.tuple_count =
      static_cast<std::uint64_t>(10e6 * scale);
  config.probe_rel.tuple_count = config.build_rel.tuple_count;
  config.node_hash_memory_bytes =
      static_cast<std::uint64_t>(80.0 * 1024 * 1024 * scale);
  const double t0 = now_sec();
  const RunResult run = run_ehja(config, RuntimeKind::kSim);
  EndToEnd e;
  e.wall_sec = now_sec() - t0;
  e.tuples_per_sec =
      static_cast<double>(config.build_rel.tuple_count +
                          config.probe_rel.tuple_count) /
      e.wall_sec;
  e.matches = run.join().matches;
  return e;
}

void write_throughput(std::ostream& os, const char* key, const Throughput& t,
                      bool last) {
  os << "    \"" << key << "\": {\"scalar_tps\": " << std::llround(t.scalar_tps)
     << ", \"batched_tps\": " << std::llround(t.batched_tps)
     << ", \"speedup\": " << t.speedup() << "}" << (last ? "\n" : ",\n");
}

}  // namespace
}  // namespace ehja

int main(int argc, char** argv) {
  using namespace ehja;
  bool smoke = false;
  std::string out_path = "BENCH_data_plane.json";
  std::uint64_t tuples_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--tuples=", 9) == 0)
      tuples_override = std::strtoull(argv[i] + 9, nullptr, 10);
  }
  // 1M build rows over the 1M-slot position space matches a per-node build
  // at the repo's default memory budgets; the smoke size just keeps CI fast.
  const std::uint64_t tuples =
      tuples_override ? tuples_override : (smoke ? 400'000 : 1'000'000);
  const std::uint64_t chunk_tuples = 10'000;
  const int reps = smoke ? 5 : 9;
  const double e2e_scale = smoke ? 0.01 : 0.02;

  const Workload uniform = make_workload(tuples, chunk_tuples, false, 1);
  const Workload uniform_probe = make_workload(tuples, chunk_tuples, false, 2);
  const Workload skewed = make_workload(tuples, chunk_tuples, true, 3);
  const Workload skewed_probe = make_workload(tuples, chunk_tuples, true, 4);

  const Throughput ub = bench_build(uniform, reps);
  const Throughput up = bench_probe(uniform, uniform_probe, reps);
  const Throughput sb = bench_build(skewed, reps);
  const Throughput sp = bench_probe(skewed, skewed_probe, reps);

  // Intra-node thread-scaling sweep (uniform workload).  Every point must
  // reproduce the 1-thread matches/checksum bit for bit.
  const std::vector<std::uint32_t> intra_threads = {1, 2, 4, 8};
  const int intra_reps = smoke ? 3 : 5;
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<IntraPoint> intra_shared, intra_merge;
  for (const std::uint32_t t : intra_threads) {
    intra_shared.push_back(
        bench_intra(uniform, uniform_probe, t, IntraMode::kShared, intra_reps));
    intra_merge.push_back(
        bench_intra(uniform, uniform_probe, t, IntraMode::kMerge, intra_reps));
  }
  for (std::size_t i = 0; i < intra_threads.size(); ++i) {
    for (const auto* pts : {&intra_shared, &intra_merge}) {
      if ((*pts)[i].matches != intra_shared[0].matches ||
          (*pts)[i].checksum != intra_shared[0].checksum) {
        std::cerr << "FATAL: intra-threads=" << intra_threads[i]
                  << " results diverged from single-thread\n";
        return 2;
      }
    }
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"data_plane\",\n";
  os << "  \"tuples\": " << tuples << ",\n  \"chunk_tuples\": " << chunk_tuples
     << ",\n  \"reps\": " << reps << ",\n  \"smoke\": " << (smoke ? "true" : "false")
     << ",\n  \"host_cores\": " << host_cores << ",\n";
  os << "  \"uniform\": {\n";
  write_throughput(os, "build", ub, false);
  write_throughput(os, "probe", up, true);
  os << "  },\n  \"skewed\": {\n";
  write_throughput(os, "build", sb, false);
  write_throughput(os, "probe", sp, true);
  os << "  },\n  \"intra\": {\n    \"threads\": [";
  for (std::size_t i = 0; i < intra_threads.size(); ++i) {
    os << intra_threads[i] << (i + 1 < intra_threads.size() ? ", " : "");
  }
  os << "],\n";
  const auto write_intra = [&](const char* key,
                               const std::vector<IntraPoint>& pts,
                               bool last) {
    os << "    \"" << key << "\": {\"build_tps\": [";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      os << std::llround(pts[i].build_tps) << (i + 1 < pts.size() ? ", " : "");
    }
    os << "], \"probe_tps\": [";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      os << std::llround(pts[i].probe_tps) << (i + 1 < pts.size() ? ", " : "");
    }
    os << "]}" << (last ? "\n" : ",\n");
  };
  write_intra("shared", intra_shared, false);
  write_intra("merge", intra_merge, true);
  os << "  },\n  \"end_to_end\": {\n";
  constexpr Algorithm kAll[] = {Algorithm::kSplit, Algorithm::kReplicate,
                                Algorithm::kHybrid, Algorithm::kOutOfCore,
                                Algorithm::kAdaptive};
  for (std::size_t i = 0; i < std::size(kAll); ++i) {
    const EndToEnd e = bench_end_to_end(kAll[i], e2e_scale);
    os << "    \"" << algorithm_name(kAll[i]) << "\": {\"wall_sec\": "
       << e.wall_sec << ", \"tuples_per_sec\": " << std::llround(e.tuples_per_sec)
       << "}" << (i + 1 < std::size(kAll) ? ",\n" : "\n");
  }
  os << "  }\n}\n";
  os.close();

  std::cout << "uniform build: scalar " << std::llround(ub.scalar_tps)
            << " t/s, batched " << std::llround(ub.batched_tps)
            << " t/s (x" << ub.speedup() << ")\n";
  std::cout << "uniform probe: scalar " << std::llround(up.scalar_tps)
            << " t/s, batched " << std::llround(up.batched_tps)
            << " t/s (x" << up.speedup() << ")\n";
  std::cout << "skewed  build: scalar " << std::llround(sb.scalar_tps)
            << " t/s, batched " << std::llround(sb.batched_tps)
            << " t/s (x" << sb.speedup() << ")\n";
  std::cout << "skewed  probe: scalar " << std::llround(sp.scalar_tps)
            << " t/s, batched " << std::llround(sp.batched_tps)
            << " t/s (x" << sp.speedup() << ")\n";
  std::cout << "intra (" << host_cores << " host cores):\n";
  for (std::size_t i = 0; i < intra_threads.size(); ++i) {
    std::cout << "  t=" << intra_threads[i] << " shared build "
              << std::llround(intra_shared[i].build_tps) << " t/s, probe "
              << std::llround(intra_shared[i].probe_tps) << " t/s | merge build "
              << std::llround(intra_merge[i].build_tps) << " t/s, probe "
              << std::llround(intra_merge[i].probe_tps) << " t/s\n";
  }
  std::cout << "wrote " << out_path << "\n";

  // CI gate: the batched path must not regress below tuple-at-a-time.
  if (ub.speedup() < 1.0 || up.speedup() < 1.0) {
    std::cerr << "FAIL: batched throughput below scalar\n";
    return 1;
  }
  return 0;
}
