// google-benchmark microbenchmarks of the substrate hot paths: hash-table
// insert/probe, linear-hash addressing, workload sampling, DES event
// throughput, the greedy partitioner.
#include <benchmark/benchmark.h>

#include <vector>

#include "hash/hash_family.hpp"
#include "hash/local_hash_table.hpp"
#include "join/serial_join.hpp"
#include "sim/simulator.hpp"
#include "util/partition.hpp"
#include "util/rng.hpp"
#include "workload/distribution.hpp"
#include "workload/generator.hpp"

namespace {

using namespace ehja;

void BM_HashTableInsert(benchmark::State& state) {
  SplitMix64 rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    LocalHashTable table(Schema{100}, PosRange{0, kPositionCount});
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      table.insert(Tuple{static_cast<std::uint64_t>(i), rng.next_u64()});
    }
    benchmark::DoNotOptimize(table.footprint_bytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTableInsert)->Arg(100000);

void BM_HashTableProbe(benchmark::State& state) {
  SplitMix64 rng(2);
  LocalHashTable table(Schema{100}, PosRange{0, kPositionCount});
  for (int i = 0; i < state.range(0); ++i) {
    table.insert(Tuple{static_cast<std::uint64_t>(i), rng.next_u64()});
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) {
      sink += table.probe(Tuple{0, rng.next_u64()}).comparisons;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTableProbe)->Arg(100000);

void BM_LinearHashAddressing(benchmark::State& state) {
  LinearHashMap lh(4);
  for (int i = 0; i < 18; ++i) lh.split_next();
  SplitMix64 rng(3);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += lh.bucket_index_of(rng.next_below(kPositionCount));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LinearHashAddressing);

void BM_SampleUniform(benchmark::State& state) {
  SplitMix64 rng(4);
  const auto spec = DistributionSpec::Uniform();
  std::uint64_t sink = 0;
  for (auto _ : state) sink += sample_key(spec, rng);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SampleUniform);

void BM_SampleGaussian(benchmark::State& state) {
  SplitMix64 rng(5);
  const auto spec = DistributionSpec::Gaussian(0.5, 1e-4);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += sample_key(spec, rng);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SampleGaussian);

void BM_SampleZipf(benchmark::State& state) {
  SplitMix64 rng(6);
  const auto spec = DistributionSpec::Zipf(1.1, 1 << 20);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += sample_key(spec, rng);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SampleZipf);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < state.range(0)) sim.schedule_after(1e-6, chain);
    };
    sim.schedule_at(0.0, chain);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(10000);

void BM_GreedyPartition(benchmark::State& state) {
  SplitMix64 rng(7);
  std::vector<std::uint64_t> weights(4096);
  for (auto& w : weights) w = rng.next_below(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_contiguous_partition(weights, 16));
  }
}
BENCHMARK(BM_GreedyPartition);

void BM_SerialJoin(benchmark::State& state) {
  RelationSpec r_spec{RelTag::kR, 50000, Schema{100},
                      DistributionSpec::SmallDomain(10000)};
  RelationSpec s_spec{RelTag::kS, 50000, Schema{100},
                      DistributionSpec::SmallDomain(10000)};
  const Relation r = materialize(r_spec, 1, 1);
  const Relation s = materialize(s_spec, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial_hash_join(r, s));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SerialJoin);

}  // namespace

BENCHMARK_MAIN();
