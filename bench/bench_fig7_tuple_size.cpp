// Figure 7: total execution time as the tuple size grows (100/200/400 B)
// with |R| = |S| = 10M tuples and 4 initial join nodes.
//
// Paper shape: the hybrid algorithm scales best, because a tuple's extra
// communication happens at most once (in the reshuffle) and the probe phase
// stays single-destination.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig7_tuple_size (scale=%.3g) ==\n", scale);

  FigureTable fig7(
      "Figure 7: Total execution time (s) vs tuple size (J=4, 10M tuples)",
      "tuple size", {"Replicated", "Split", "Hybrid", "OutOfCore"});

  for (const std::uint32_t bytes : {100u, 200u, 400u}) {
    std::vector<double> total;
    for (const Algorithm algorithm : kFigureAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.build_rel.schema = Schema{bytes};
      config.probe_rel.schema = Schema{bytes};
      // Keep the cluster-provisioning ratio fixed as tuples grow (the
      // paper's nodes do not spill in this sweep); see bench_common.hpp.
      config.node_hash_memory_bytes =
          calibrated_budget(config.build_rel, config.join_pool_nodes);
      const RunResult result = run(config);
      total.push_back(result.metrics.total_time());
      std::printf("  %3uB %-12s total=%8.2fs nodes=%u->%u pool_exhausted=%d\n",
                  bytes, algorithm_name(algorithm),
                  result.metrics.total_time(),
                  result.metrics.initial_join_nodes,
                  result.metrics.final_join_nodes,
                  result.metrics.pool_exhausted ? 1 : 0);
    }
    fig7.add_row(std::to_string(bytes) + "Byte", total);
  }
  fig7.print();
  return 0;
}
