// Ablation A2: sensitivity of the headline ranking (Fig. 2 at J=4) to the
// hardware model and design knobs the paper could not vary:
//   * network bandwidth (100 Mb/s vs 1 Gb/s -- the paper's future work on
//     "different network configurations"),
//   * chunk size,
//   * node-pick policy for recruiting join nodes.
#include <cstdio>

#include "bench_common.hpp"

namespace {

void run_case(const char* label, ehja::EhjaConfig base) {
  using namespace ehja;
  using namespace ehja::bench;
  std::printf("  -- %s --\n", label);
  for (const Algorithm algorithm : kFigureAlgorithms) {
    EhjaConfig config = base;
    config.algorithm = algorithm;
    const RunResult result = run(config);
    std::printf("     %-12s total=%8.2fs build=%7.2fs extra=%6llu chunks\n",
                algorithm_name(algorithm), result.metrics.total_time(),
                result.metrics.build_time(),
                static_cast<unsigned long long>(
                    result.metrics.extra_build_chunks));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv, 0.5);
  std::printf("== bench_ablation_sensitivity (scale=%.3g) ==\n", scale);

  run_case("baseline: gigabit-class fabric, 10k chunks, largest-memory pick",
           paper_config(scale));

  {
    EhjaConfig config = paper_config(scale);
    config.link.bandwidth_bytes_per_sec *= 10.0;  // ~1 Gb/s
    run_case("10x network bandwidth (~1 Gb/s)", config);
  }
  {
    EhjaConfig config = paper_config(scale);
    config.chunk_tuples = 1'000;
    config.generation_slice_tuples = 1'000;
    run_case("small chunks (1k tuples)", config);
  }
  {
    EhjaConfig config = paper_config(scale);
    config.chunk_tuples = 50'000;
    config.generation_slice_tuples = 50'000;
    run_case("large chunks (50k tuples)", config);
  }
  {
    EhjaConfig config = paper_config(scale);
    config.pick_policy = NodePickPolicy::kFirstAvailable;
    run_case("first-available node pick policy", config);
  }
  {
    // DESIGN.md ss"Resolved ambiguities" #1: the paper's ss4.2.1 Litwin
    // split-pointer variant vs the ss1 requester-directed default, under
    // uniform and under extreme skew.
    EhjaConfig config = paper_config(scale);
    config.split_variant = SplitVariant::kLinearPointer;
    run_case("split variant: linear pointer (uniform)", config);
    config.build_rel.dist = DistributionSpec::Gaussian(0.5, 1e-4);
    config.probe_rel.dist = config.build_rel.dist;
    run_case("split variant: linear pointer (sigma=1e-4)", config);
    config.split_variant = SplitVariant::kRequesterMidpoint;
    run_case("split variant: requester midpoint (sigma=1e-4)", config);
  }
  {
    EhjaConfig config = paper_config(scale);
    config.reshuffle_bins = 1024;  // coarse: hot bins become indivisible
    run_case("coarse reshuffle histogram (1024 bins)", config);
  }
  {
    // Extension: histogram-balanced initial partitioning under skew --
    // how much expansion does a skew-aware start avoid?
    EhjaConfig config = paper_config(scale);
    config.build_rel.dist = DistributionSpec::Gaussian(0.5, 1e-3);
    config.probe_rel.dist = config.build_rel.dist;
    run_case("skew sigma=1e-3, equal-width initial ranges", config);
    config.balanced_initial_partition = true;
    run_case("skew sigma=1e-3, histogram-balanced initial ranges", config);
  }
  {
    EhjaConfig config = paper_config(scale);
    config.disk.write_bytes_per_sec *= 4.0;
    config.disk.read_bytes_per_sec *= 4.0;
    run_case("4x faster disks (OOC-favourable)", config);
  }
  {
    // Paper ss6 future work: "the effect of different network
    // configurations" -- a hub/shared-bus fabric where all transfers
    // serialize on one collision domain.
    EhjaConfig config = paper_config(scale);
    config.link.topology = Topology::kSharedBus;
    run_case("shared-bus fabric (one collision domain)", config);
  }
  return 0;
}
