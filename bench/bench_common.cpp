#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/units.hpp"

namespace ehja::bench {

double scale_from_args(int argc, char** argv, double fallback) {
  double scale = fallback;
  if (const char* env = std::getenv("EHJA_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      scale = 0.1;
    }
  }
  if (scale <= 0.0) scale = fallback;
  return scale;
}

EhjaConfig paper_config(double scale) {
  EhjaConfig config;
  config.algorithm = Algorithm::kHybrid;
  config.initial_join_nodes = 4;
  config.join_pool_nodes = 24;
  config.data_sources = 4;
  config.build_rel.tuple_count =
      static_cast<std::uint64_t>(10'000'000 * scale);
  config.probe_rel.tuple_count =
      static_cast<std::uint64_t>(10'000'000 * scale);
  config.build_rel.schema = Schema{100};
  config.probe_rel.schema = Schema{100};
  config.build_rel.dist = DistributionSpec::Uniform();
  config.probe_rel.dist = DistributionSpec::Uniform();
  config.chunk_tuples = 10'000;
  config.generation_slice_tuples = 10'000;
  config.node_hash_memory_bytes =
      static_cast<std::uint64_t>(80.0 * kMiB * scale);
  config.seed = 20040607;
  return config;
}

RunResult run(const EhjaConfig& config) { return run_ehja(config); }

std::uint64_t calibrated_budget(const RelationSpec& build,
                                std::uint32_t pool_nodes) {
  // Base calibration: 24 nodes x 80 MiB over a 10M x (100+24) B footprint.
  const double base_ratio =
      (24.0 * 80.0 * kMiB) / (10'000'000.0 * (100.0 + 24.0));
  const double footprint = static_cast<double>(build.tuple_count) *
                           static_cast<double>(tuple_footprint(build.schema));
  return static_cast<std::uint64_t>(footprint * base_ratio / pool_nodes);
}

FigureTable::FigureTable(std::string title, std::string row_header,
                         std::vector<std::string> columns)
    : title_(std::move(title)),
      row_header_(std::move(row_header)),
      columns_(std::move(columns)) {}

void FigureTable::add_row(const std::string& label,
                          const std::vector<double>& values) {
  rows_.emplace_back(label, values);
}

void FigureTable::print() const {
  std::printf("\n%s\n", title_.c_str());
  for (std::size_t i = 0; i < title_.size(); ++i) std::printf("-");
  std::printf("\n%-24s", row_header_.c_str());
  for (const auto& column : columns_) {
    std::printf("%16s", column.c_str());
  }
  std::printf("\n");
  for (const auto& [label, values] : rows_) {
    std::printf("%-24s", label.c_str());
    for (const double v : values) {
      if (v == static_cast<double>(static_cast<long long>(v)) &&
          std::abs(v) < 1e15) {
        std::printf("%16lld", static_cast<long long>(v));
      } else {
        std::printf("%16.2f", v);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string count_label(std::uint64_t tuples) {
  if (tuples % 1'000'000 == 0 && tuples > 0) {
    return std::to_string(tuples / 1'000'000) + "M";
  }
  if (tuples % 1'000 == 0 && tuples > 0) {
    return std::to_string(tuples / 1'000) + "K";
  }
  return std::to_string(tuples);
}

}  // namespace ehja::bench
