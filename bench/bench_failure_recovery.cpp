// Recovery-cost comparison: what does one node failure cost each expansion
// strategy?
//
// The paper's algorithms differ in how much state a dead node takes with it
// (a split range lives on exactly one node; a replicated range has live
// temporal shards elsewhere) and in how much of the run remains to amortize
// the rebuild.  This bench injects one fail-stop kill per scenario --
// early build, late build, mid-probe -- into each strategy and reports the
// slowdown against that strategy's own fault-free (detector-armed) run,
// plus the recovery protocol's internals: detection latency, recovery wall
// time, and replayed tuple volume (EXPERIMENTS.md "Recovery cost").
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace ehja;
using namespace ehja::bench;

struct Scenario {
  const char* label;
  bool probe_phase;       // kill at the probe midpoint instead of the build
  double build_fraction;  // build kills: fraction of the victim's chunks
};

constexpr Scenario kScenarios[] = {
    {"early build (25% received)", false, 0.25},
    {"late build (75% received)", false, 0.75},
    {"mid-probe", true, 0.0},
};

void run_algorithm(Algorithm algorithm, const EhjaConfig& base) {
  EhjaConfig config = base;
  config.algorithm = algorithm;

  // Fault-free reference with the detector armed, so heartbeat overhead is
  // in both columns and the delta is purely the failure's cost.
  EhjaConfig armed = config;
  armed.ft.force_enabled = true;
  const RunResult clean = run(armed);

  std::printf("  %-12s fault-free %8.2fs\n", algorithm_name(algorithm),
              clean.metrics.total_time());

  const std::uint64_t victim_chunks = config.build_rel.tuple_count /
                                      config.chunk_tuples /
                                      config.initial_join_nodes;
  for (const Scenario& scenario : kScenarios) {
    EhjaConfig faulty = config;
    KillSpec kill;
    kill.pool_index = 1;
    if (scenario.probe_phase) {
      kill.at_time = clean.metrics.t_reshuffle_end +
                     0.5 * (clean.metrics.t_probe_end -
                            clean.metrics.t_reshuffle_end);
    } else {
      kill.after_chunks = static_cast<std::uint64_t>(
          static_cast<double>(victim_chunks) * scenario.build_fraction);
      if (kill.after_chunks == 0) kill.after_chunks = 1;
    }
    faulty.faults.kills.push_back(kill);
    const RunResult result = run(faulty);
    const RunMetrics& m = result.metrics;
    std::printf(
        "     %-27s total=%8.2fs (+%5.1f%%) detect=%6.3fs recover=%7.3fs "
        "replayed %llu R + %llu S\n",
        scenario.label, m.total_time(),
        100.0 * (m.total_time() / clean.metrics.total_time() - 1.0),
        m.failures_detected > 0
            ? m.detection_latency_total / m.failures_detected
            : 0.0,
        m.recovery_time_total,
        static_cast<unsigned long long>(m.replayed_build_tuples),
        static_cast<unsigned long long>(m.replayed_probe_tuples));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = scale_from_args(argc, argv, 0.25);
  std::printf("== bench_failure_recovery (scale=%.3g) ==\n", scale);
  std::printf("one fail-stop kill of pool node 1; slowdown vs the same "
              "strategy's detector-armed fault-free run\n\n");

  EhjaConfig base = paper_config(scale);
  // The detection timeout must outlast a recovering owner's rebuild burst,
  // which scales with the workload; scaling it here keeps the detection
  // share of the figure comparable across --scale values.
  base.ft.heartbeat_timeout_sec = std::max(1.0, 5.0 * scale);
  base.ft.heartbeat_interval_sec = base.ft.heartbeat_timeout_sec / 10.0;
  for (const Algorithm algorithm : kStrategyAlgorithms) {
    run_algorithm(algorithm, base);
  }
  return 0;
}
