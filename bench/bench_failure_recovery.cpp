// Recovery-cost comparison: what does one process failure cost each
// expansion strategy, per failed *role*?
//
// The paper's algorithms differ in how much state a dead node takes with it
// (a split range lives on exactly one node; a replicated range has live
// temporal shards elsewhere) and in how much of the run remains to amortize
// the rebuild.  PR-7 widened the fault surface beyond join processes, so
// this bench now kills each of the three roles in turn:
//   join       -- one owner's partition state dies (surgical or wipe);
//   source     -- an input slice vanishes mid-stream and is reassigned to a
//                 fresh source with the same deterministic stream index;
//   scheduler  -- the active coordinator dies and the standby promotes from
//                 its last checkpoint, then wipe-recovers.
// Each scenario reports the slowdown against that strategy's own fault-free
// (detector-and-standby-armed) run, plus the protocol internals: detection
// latency, false-positive detections, recovery wall time, and replayed
// tuple volume (EXPERIMENTS.md "Recovery cost").  Results also go to a JSON
// file (default BENCH_failure_recovery.json) for CI artifact tracking.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ehja;
using namespace ehja::bench;

struct Scenario {
  const char* label;
  KillRole role;
  bool probe_phase;       // kill at the probe midpoint instead of the build
  double build_fraction;  // build kills: fraction of the victim's stream
};

constexpr Scenario kScenarios[] = {
    {"join, early build (25% received)", KillRole::kJoin, false, 0.25},
    {"join, late build (75% received)", KillRole::kJoin, false, 0.75},
    {"join, mid-probe", KillRole::kJoin, true, 0.0},
    {"source, mid-build (50% sent)", KillRole::kSource, false, 0.5},
    {"source, mid-probe", KillRole::kSource, true, 0.0},
    {"scheduler, mid-build", KillRole::kScheduler, false, 0.5},
    {"scheduler, mid-probe", KillRole::kScheduler, true, 0.0},
};

struct ScenarioResult {
  const Scenario* scenario = nullptr;
  RunMetrics metrics;
  double slowdown_pct = 0.0;
};

struct AlgorithmResult {
  Algorithm algorithm;
  double fault_free_sec = 0.0;
  std::vector<ScenarioResult> scenarios;
};

const char* role_name(KillRole role) {
  switch (role) {
    case KillRole::kJoin: return "join";
    case KillRole::kSource: return "source";
    case KillRole::kScheduler: return "scheduler";
  }
  return "?";
}

AlgorithmResult run_algorithm(Algorithm algorithm, const EhjaConfig& base) {
  EhjaConfig config = base;
  config.algorithm = algorithm;

  // Fault-free reference with the detector armed and the standby running,
  // so heartbeat + checkpoint overhead is in both columns and the delta is
  // purely the failure's cost.
  EhjaConfig armed = config;
  armed.ft.force_enabled = true;
  const RunResult clean = run(armed);

  AlgorithmResult out;
  out.algorithm = algorithm;
  out.fault_free_sec = clean.metrics.total_time();
  std::printf("  %-12s fault-free %8.2fs\n", algorithm_name(algorithm),
              out.fault_free_sec);

  const std::uint64_t join_chunks = config.build_rel.tuple_count /
                                    config.chunk_tuples /
                                    config.initial_join_nodes;
  const std::uint64_t source_chunks = config.build_rel.tuple_count /
                                      config.chunk_tuples /
                                      config.data_sources;
  for (const Scenario& scenario : kScenarios) {
    EhjaConfig faulty = config;
    KillSpec kill;
    kill.role = scenario.role;
    kill.pool_index = 1;
    const double mid_probe =
        clean.metrics.t_reshuffle_end +
        0.5 * (clean.metrics.t_probe_end - clean.metrics.t_reshuffle_end);
    switch (scenario.role) {
      case KillRole::kJoin:
        if (scenario.probe_phase) {
          kill.at_time = mid_probe;
        } else {
          kill.after_chunks = static_cast<std::uint64_t>(
              static_cast<double>(join_chunks) * scenario.build_fraction);
        }
        break;
      case KillRole::kSource:
        if (scenario.probe_phase) {
          kill.at_time = mid_probe;
        } else {
          kill.after_chunks = static_cast<std::uint64_t>(
              static_cast<double>(source_chunks) * scenario.build_fraction);
        }
        break;
      case KillRole::kScheduler:
        // The coordinator's progress is message-count, not chunk-count;
        // time triggers pin the kill to the same phase midpoints instead.
        kill.at_time = scenario.probe_phase
                           ? mid_probe
                           : 0.5 * clean.metrics.t_build_end;
        break;
    }
    if (kill.at_time == 0.0 && kill.after_chunks == 0) kill.after_chunks = 1;
    faulty.faults.kills.push_back(kill);
    const RunResult result = run(faulty);
    const RunMetrics& m = result.metrics;

    ScenarioResult sr;
    sr.scenario = &scenario;
    sr.metrics = m;
    sr.slowdown_pct = 100.0 * (m.total_time() / out.fault_free_sec - 1.0);
    out.scenarios.push_back(sr);

    std::printf(
        "     %-33s total=%8.2fs (+%5.1f%%) detect=%6.3fs fp=%llu "
        "recover=%7.3fs replayed %llu R + %llu S\n",
        scenario.label, m.total_time(), sr.slowdown_pct,
        m.failures_detected > 0
            ? m.detection_latency_total / m.failures_detected
            : 0.0,
        static_cast<unsigned long long>(m.false_positive_deaths),
        m.recovery_time_total,
        static_cast<unsigned long long>(m.replayed_build_tuples),
        static_cast<unsigned long long>(m.replayed_probe_tuples));
  }
  return out;
}

void write_json(const std::string& path, double scale,
                const std::vector<AlgorithmResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"failure_recovery\",\n  \"scale\": " << scale
     << ",\n  \"algorithms\": {\n";
  for (std::size_t a = 0; a < results.size(); ++a) {
    const AlgorithmResult& ar = results[a];
    os << "    \"" << algorithm_name(ar.algorithm) << "\": {\n"
       << "      \"fault_free_sec\": " << ar.fault_free_sec << ",\n"
       << "      \"scenarios\": [\n";
    for (std::size_t s = 0; s < ar.scenarios.size(); ++s) {
      const ScenarioResult& sr = ar.scenarios[s];
      const RunMetrics& m = sr.metrics;
      os << "        {\"label\": \"" << sr.scenario->label << "\", "
         << "\"role\": \"" << role_name(sr.scenario->role) << "\", "
         << "\"total_sec\": " << m.total_time() << ", "
         << "\"slowdown_pct\": " << sr.slowdown_pct << ", "
         << "\"detect_sec\": "
         << (m.failures_detected > 0
                 ? m.detection_latency_total / m.failures_detected
                 : 0.0)
         << ", "
         << "\"false_positives\": " << m.false_positive_deaths << ", "
         << "\"recover_sec\": " << m.recovery_time_total << ", "
         << "\"scheduler_failovers\": " << m.scheduler_failovers << ", "
         << "\"source_failures\": " << m.source_failures << ", "
         << "\"replayed_build\": " << m.replayed_build_tuples << ", "
         << "\"replayed_probe\": " << m.replayed_probe_tuples << "}"
         << (s + 1 < ar.scenarios.size() ? ",\n" : "\n");
    }
    os << "      ]\n    }" << (a + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = scale_from_args(argc, argv, 0.25);
  std::string out_path = "BENCH_failure_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  std::printf("== bench_failure_recovery (scale=%.3g) ==\n", scale);
  std::printf("one fail-stop kill per scenario (join / source / scheduler "
              "role); slowdown vs the same strategy's armed fault-free run\n\n");

  EhjaConfig base = paper_config(scale);
  // The detection timeout must outlast a recovering owner's rebuild burst,
  // which scales with the workload; scaling it here keeps the detection
  // share of the figure comparable across --scale values.
  base.ft.heartbeat_timeout_sec = std::max(1.0, 5.0 * scale);
  base.ft.heartbeat_interval_sec = base.ft.heartbeat_timeout_sec / 10.0;
  // Scheduler scenarios need a promotion target; arming it everywhere keeps
  // its checkpoint traffic out of the deltas.
  base.ft.standby_scheduler = true;

  std::vector<AlgorithmResult> results;
  for (const Algorithm algorithm : kStrategyAlgorithms) {
    results.push_back(run_algorithm(algorithm, base));
  }
  write_json(out_path, scale, results);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
