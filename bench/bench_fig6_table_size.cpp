// Figure 6: total execution time as |R| = |S| grows from 10M to 80M tuples
// with 4 initial join nodes.
//
// Paper shape: split & hybrid scale better than replication (whose probe
// broadcast grows with the expansion factor) and than Out-of-Core (whose
// disk passes grow with the spill volume).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ehja;
  using namespace ehja::bench;
  const double scale = scale_from_args(argc, argv);
  std::printf("== bench_fig6_table_size (scale=%.3g) ==\n", scale);

  FigureTable fig6(
      "Figure 6: Total execution time (s) vs table size (J=4, uniform)",
      "table size", {"Replicated", "Split", "Hybrid", "OutOfCore"});

  for (const std::uint64_t millions : {10ull, 20ull, 40ull, 80ull}) {
    std::vector<double> total;
    for (const Algorithm algorithm : kFigureAlgorithms) {
      EhjaConfig config = paper_config(scale);
      config.algorithm = algorithm;
      config.build_rel.tuple_count =
          static_cast<std::uint64_t>(static_cast<double>(millions) * 1e6 * scale);
      config.probe_rel.tuple_count = config.build_rel.tuple_count;
      const RunResult result = run(config);
      total.push_back(result.metrics.total_time());
      std::printf("  |R|=|S|=%-4lluM %-12s total=%8.2fs nodes=%u->%u "
                  "extra=%llu chunks\n",
                  static_cast<unsigned long long>(millions),
                  algorithm_name(algorithm), result.metrics.total_time(),
                  result.metrics.initial_join_nodes,
                  result.metrics.final_join_nodes,
                  static_cast<unsigned long long>(
                      result.metrics.extra_build_chunks));
    }
    fig6.add_row(count_label(static_cast<std::uint64_t>(
                     static_cast<double>(millions) * 1e6)),
                 total);
  }
  fig6.print();
  return 0;
}
