# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_relation[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_join[1]_include.cmake")
include("/root/repo/build/tests/test_reshuffle[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_core_units[1]_include.cmake")
include("/root/repo/build/tests/test_data_source[1]_include.cmake")
include("/root/repo/build/tests/test_join_actor[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
