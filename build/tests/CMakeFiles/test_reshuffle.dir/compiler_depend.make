# Empty compiler generated dependencies file for test_reshuffle.
# This may be replaced when dependencies are built.
