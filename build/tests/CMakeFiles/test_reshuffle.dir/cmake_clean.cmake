file(REMOVE_RECURSE
  "CMakeFiles/test_reshuffle.dir/test_reshuffle.cpp.o"
  "CMakeFiles/test_reshuffle.dir/test_reshuffle.cpp.o.d"
  "test_reshuffle"
  "test_reshuffle.pdb"
  "test_reshuffle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reshuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
