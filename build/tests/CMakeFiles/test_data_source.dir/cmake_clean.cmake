file(REMOVE_RECURSE
  "CMakeFiles/test_data_source.dir/test_data_source.cpp.o"
  "CMakeFiles/test_data_source.dir/test_data_source.cpp.o.d"
  "test_data_source"
  "test_data_source.pdb"
  "test_data_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
