# Empty compiler generated dependencies file for test_data_source.
# This may be replaced when dependencies are built.
