# Empty dependencies file for test_relation.
# This may be replaced when dependencies are built.
