file(REMOVE_RECURSE
  "CMakeFiles/test_join.dir/test_join.cpp.o"
  "CMakeFiles/test_join.dir/test_join.cpp.o.d"
  "test_join"
  "test_join.pdb"
  "test_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
