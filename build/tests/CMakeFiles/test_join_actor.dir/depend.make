# Empty dependencies file for test_join_actor.
# This may be replaced when dependencies are built.
