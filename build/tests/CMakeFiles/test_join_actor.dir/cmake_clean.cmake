file(REMOVE_RECURSE
  "CMakeFiles/test_join_actor.dir/test_join_actor.cpp.o"
  "CMakeFiles/test_join_actor.dir/test_join_actor.cpp.o.d"
  "test_join_actor"
  "test_join_actor.pdb"
  "test_join_actor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join_actor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
