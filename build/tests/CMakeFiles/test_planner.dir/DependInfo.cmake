
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_planner.cpp" "tests/CMakeFiles/test_planner.dir/test_planner.cpp.o" "gcc" "tests/CMakeFiles/test_planner.dir/test_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ehja_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_join.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
