# Empty dependencies file for bench_fig4_5_overheads.
# This may be replaced when dependencies are built.
