file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_5_overheads.dir/bench_fig4_5_overheads.cpp.o"
  "CMakeFiles/bench_fig4_5_overheads.dir/bench_fig4_5_overheads.cpp.o.d"
  "bench_fig4_5_overheads"
  "bench_fig4_5_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
