file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_build_larger.dir/bench_fig8_9_build_larger.cpp.o"
  "CMakeFiles/bench_fig8_9_build_larger.dir/bench_fig8_9_build_larger.cpp.o.d"
  "bench_fig8_9_build_larger"
  "bench_fig8_9_build_larger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_build_larger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
