# Empty dependencies file for bench_fig2_3_initial_nodes.
# This may be replaced when dependencies are built.
