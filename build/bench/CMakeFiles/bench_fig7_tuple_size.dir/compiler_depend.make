# Empty compiler generated dependencies file for bench_fig7_tuple_size.
# This may be replaced when dependencies are built.
