# Empty compiler generated dependencies file for ehja_run.
# This may be replaced when dependencies are built.
