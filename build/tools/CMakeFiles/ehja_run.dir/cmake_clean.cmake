file(REMOVE_RECURSE
  "CMakeFiles/ehja_run.dir/ehja_run.cpp.o"
  "CMakeFiles/ehja_run.dir/ehja_run.cpp.o.d"
  "ehja_run"
  "ehja_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
