file(REMOVE_RECURSE
  "CMakeFiles/ehja_relation.dir/relation/chunk.cpp.o"
  "CMakeFiles/ehja_relation.dir/relation/chunk.cpp.o.d"
  "CMakeFiles/ehja_relation.dir/relation/relation.cpp.o"
  "CMakeFiles/ehja_relation.dir/relation/relation.cpp.o.d"
  "CMakeFiles/ehja_relation.dir/relation/tuple.cpp.o"
  "CMakeFiles/ehja_relation.dir/relation/tuple.cpp.o.d"
  "libehja_relation.a"
  "libehja_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
