# Empty compiler generated dependencies file for ehja_relation.
# This may be replaced when dependencies are built.
