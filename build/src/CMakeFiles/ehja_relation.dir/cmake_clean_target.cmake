file(REMOVE_RECURSE
  "libehja_relation.a"
)
