file(REMOVE_RECURSE
  "CMakeFiles/ehja_util.dir/util/histogram.cpp.o"
  "CMakeFiles/ehja_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/ehja_util.dir/util/log.cpp.o"
  "CMakeFiles/ehja_util.dir/util/log.cpp.o.d"
  "CMakeFiles/ehja_util.dir/util/partition.cpp.o"
  "CMakeFiles/ehja_util.dir/util/partition.cpp.o.d"
  "CMakeFiles/ehja_util.dir/util/rng.cpp.o"
  "CMakeFiles/ehja_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ehja_util.dir/util/stats.cpp.o"
  "CMakeFiles/ehja_util.dir/util/stats.cpp.o.d"
  "libehja_util.a"
  "libehja_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
