file(REMOVE_RECURSE
  "libehja_util.a"
)
