# Empty compiler generated dependencies file for ehja_util.
# This may be replaced when dependencies are built.
