file(REMOVE_RECURSE
  "CMakeFiles/ehja_join.dir/join/grace_join.cpp.o"
  "CMakeFiles/ehja_join.dir/join/grace_join.cpp.o.d"
  "CMakeFiles/ehja_join.dir/join/serial_join.cpp.o"
  "CMakeFiles/ehja_join.dir/join/serial_join.cpp.o.d"
  "CMakeFiles/ehja_join.dir/join/sort_merge_join.cpp.o"
  "CMakeFiles/ehja_join.dir/join/sort_merge_join.cpp.o.d"
  "libehja_join.a"
  "libehja_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
