file(REMOVE_RECURSE
  "libehja_join.a"
)
