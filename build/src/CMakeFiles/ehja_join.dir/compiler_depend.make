# Empty compiler generated dependencies file for ehja_join.
# This may be replaced when dependencies are built.
