file(REMOVE_RECURSE
  "libehja_net.a"
)
