# Empty compiler generated dependencies file for ehja_net.
# This may be replaced when dependencies are built.
