file(REMOVE_RECURSE
  "CMakeFiles/ehja_net.dir/net/network.cpp.o"
  "CMakeFiles/ehja_net.dir/net/network.cpp.o.d"
  "libehja_net.a"
  "libehja_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
