
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/ehja_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/data_source.cpp" "src/CMakeFiles/ehja_core.dir/core/data_source.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/data_source.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/CMakeFiles/ehja_core.dir/core/driver.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/driver.cpp.o.d"
  "/root/repo/src/core/join_process.cpp" "src/CMakeFiles/ehja_core.dir/core/join_process.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/join_process.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/CMakeFiles/ehja_core.dir/core/messages.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/messages.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/ehja_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/ehja_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/ehja_core.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/reshuffle.cpp" "src/CMakeFiles/ehja_core.dir/core/reshuffle.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/reshuffle.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/ehja_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/ehja_core.dir/core/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ehja_join.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
