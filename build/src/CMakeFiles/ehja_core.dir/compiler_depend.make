# Empty compiler generated dependencies file for ehja_core.
# This may be replaced when dependencies are built.
