file(REMOVE_RECURSE
  "libehja_core.a"
)
