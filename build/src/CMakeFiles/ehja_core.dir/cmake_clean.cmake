file(REMOVE_RECURSE
  "CMakeFiles/ehja_core.dir/core/config.cpp.o"
  "CMakeFiles/ehja_core.dir/core/config.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/data_source.cpp.o"
  "CMakeFiles/ehja_core.dir/core/data_source.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/driver.cpp.o"
  "CMakeFiles/ehja_core.dir/core/driver.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/join_process.cpp.o"
  "CMakeFiles/ehja_core.dir/core/join_process.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/messages.cpp.o"
  "CMakeFiles/ehja_core.dir/core/messages.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/metrics.cpp.o"
  "CMakeFiles/ehja_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/ehja_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/planner.cpp.o"
  "CMakeFiles/ehja_core.dir/core/planner.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/reshuffle.cpp.o"
  "CMakeFiles/ehja_core.dir/core/reshuffle.cpp.o.d"
  "CMakeFiles/ehja_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/ehja_core.dir/core/scheduler.cpp.o.d"
  "libehja_core.a"
  "libehja_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
