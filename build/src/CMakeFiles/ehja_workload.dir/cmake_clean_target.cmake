file(REMOVE_RECURSE
  "libehja_workload.a"
)
