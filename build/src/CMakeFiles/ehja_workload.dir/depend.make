# Empty dependencies file for ehja_workload.
# This may be replaced when dependencies are built.
