file(REMOVE_RECURSE
  "CMakeFiles/ehja_workload.dir/workload/distribution.cpp.o"
  "CMakeFiles/ehja_workload.dir/workload/distribution.cpp.o.d"
  "CMakeFiles/ehja_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/ehja_workload.dir/workload/generator.cpp.o.d"
  "libehja_workload.a"
  "libehja_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
