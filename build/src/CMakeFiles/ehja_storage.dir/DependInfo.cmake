
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/sim_disk.cpp" "src/CMakeFiles/ehja_storage.dir/storage/sim_disk.cpp.o" "gcc" "src/CMakeFiles/ehja_storage.dir/storage/sim_disk.cpp.o.d"
  "/root/repo/src/storage/spill_file.cpp" "src/CMakeFiles/ehja_storage.dir/storage/spill_file.cpp.o" "gcc" "src/CMakeFiles/ehja_storage.dir/storage/spill_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ehja_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
