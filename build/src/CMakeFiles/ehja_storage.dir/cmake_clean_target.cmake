file(REMOVE_RECURSE
  "libehja_storage.a"
)
