# Empty compiler generated dependencies file for ehja_storage.
# This may be replaced when dependencies are built.
