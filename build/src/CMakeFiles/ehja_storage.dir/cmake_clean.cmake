file(REMOVE_RECURSE
  "CMakeFiles/ehja_storage.dir/storage/sim_disk.cpp.o"
  "CMakeFiles/ehja_storage.dir/storage/sim_disk.cpp.o.d"
  "CMakeFiles/ehja_storage.dir/storage/spill_file.cpp.o"
  "CMakeFiles/ehja_storage.dir/storage/spill_file.cpp.o.d"
  "libehja_storage.a"
  "libehja_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
