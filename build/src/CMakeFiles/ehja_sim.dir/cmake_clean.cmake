file(REMOVE_RECURSE
  "CMakeFiles/ehja_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/ehja_sim.dir/sim/simulator.cpp.o.d"
  "libehja_sim.a"
  "libehja_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
