file(REMOVE_RECURSE
  "libehja_sim.a"
)
