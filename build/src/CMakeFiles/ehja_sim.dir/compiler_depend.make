# Empty compiler generated dependencies file for ehja_sim.
# This may be replaced when dependencies are built.
