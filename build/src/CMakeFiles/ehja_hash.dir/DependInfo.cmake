
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/hash_family.cpp" "src/CMakeFiles/ehja_hash.dir/hash/hash_family.cpp.o" "gcc" "src/CMakeFiles/ehja_hash.dir/hash/hash_family.cpp.o.d"
  "/root/repo/src/hash/local_hash_table.cpp" "src/CMakeFiles/ehja_hash.dir/hash/local_hash_table.cpp.o" "gcc" "src/CMakeFiles/ehja_hash.dir/hash/local_hash_table.cpp.o.d"
  "/root/repo/src/hash/partition_map.cpp" "src/CMakeFiles/ehja_hash.dir/hash/partition_map.cpp.o" "gcc" "src/CMakeFiles/ehja_hash.dir/hash/partition_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ehja_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
