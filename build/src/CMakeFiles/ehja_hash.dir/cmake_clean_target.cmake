file(REMOVE_RECURSE
  "libehja_hash.a"
)
