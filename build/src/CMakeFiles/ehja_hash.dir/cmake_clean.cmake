file(REMOVE_RECURSE
  "CMakeFiles/ehja_hash.dir/hash/hash_family.cpp.o"
  "CMakeFiles/ehja_hash.dir/hash/hash_family.cpp.o.d"
  "CMakeFiles/ehja_hash.dir/hash/local_hash_table.cpp.o"
  "CMakeFiles/ehja_hash.dir/hash/local_hash_table.cpp.o.d"
  "CMakeFiles/ehja_hash.dir/hash/partition_map.cpp.o"
  "CMakeFiles/ehja_hash.dir/hash/partition_map.cpp.o.d"
  "libehja_hash.a"
  "libehja_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
