# Empty dependencies file for ehja_hash.
# This may be replaced when dependencies are built.
