file(REMOVE_RECURSE
  "libehja_cluster.a"
)
