# Empty dependencies file for ehja_cluster.
# This may be replaced when dependencies are built.
