
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_spec.cpp" "src/CMakeFiles/ehja_cluster.dir/cluster/cluster_spec.cpp.o" "gcc" "src/CMakeFiles/ehja_cluster.dir/cluster/cluster_spec.cpp.o.d"
  "/root/repo/src/cluster/cost_model.cpp" "src/CMakeFiles/ehja_cluster.dir/cluster/cost_model.cpp.o" "gcc" "src/CMakeFiles/ehja_cluster.dir/cluster/cost_model.cpp.o.d"
  "/root/repo/src/cluster/resource_pool.cpp" "src/CMakeFiles/ehja_cluster.dir/cluster/resource_pool.cpp.o" "gcc" "src/CMakeFiles/ehja_cluster.dir/cluster/resource_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ehja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ehja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
