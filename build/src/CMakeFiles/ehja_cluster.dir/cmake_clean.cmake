file(REMOVE_RECURSE
  "CMakeFiles/ehja_cluster.dir/cluster/cluster_spec.cpp.o"
  "CMakeFiles/ehja_cluster.dir/cluster/cluster_spec.cpp.o.d"
  "CMakeFiles/ehja_cluster.dir/cluster/cost_model.cpp.o"
  "CMakeFiles/ehja_cluster.dir/cluster/cost_model.cpp.o.d"
  "CMakeFiles/ehja_cluster.dir/cluster/resource_pool.cpp.o"
  "CMakeFiles/ehja_cluster.dir/cluster/resource_pool.cpp.o.d"
  "libehja_cluster.a"
  "libehja_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
