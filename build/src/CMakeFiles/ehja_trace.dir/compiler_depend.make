# Empty compiler generated dependencies file for ehja_trace.
# This may be replaced when dependencies are built.
