file(REMOVE_RECURSE
  "CMakeFiles/ehja_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/ehja_trace.dir/trace/trace.cpp.o.d"
  "libehja_trace.a"
  "libehja_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
