file(REMOVE_RECURSE
  "libehja_trace.a"
)
