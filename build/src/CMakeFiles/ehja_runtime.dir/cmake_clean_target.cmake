file(REMOVE_RECURSE
  "libehja_runtime.a"
)
