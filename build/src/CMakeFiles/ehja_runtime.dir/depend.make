# Empty dependencies file for ehja_runtime.
# This may be replaced when dependencies are built.
