file(REMOVE_RECURSE
  "CMakeFiles/ehja_runtime.dir/runtime/actor.cpp.o"
  "CMakeFiles/ehja_runtime.dir/runtime/actor.cpp.o.d"
  "CMakeFiles/ehja_runtime.dir/runtime/message.cpp.o"
  "CMakeFiles/ehja_runtime.dir/runtime/message.cpp.o.d"
  "CMakeFiles/ehja_runtime.dir/runtime/sim_runtime.cpp.o"
  "CMakeFiles/ehja_runtime.dir/runtime/sim_runtime.cpp.o.d"
  "CMakeFiles/ehja_runtime.dir/runtime/thread_runtime.cpp.o"
  "CMakeFiles/ehja_runtime.dir/runtime/thread_runtime.cpp.o.d"
  "libehja_runtime.a"
  "libehja_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ehja_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
