file(REMOVE_RECURSE
  "CMakeFiles/skew_explorer.dir/skew_explorer.cpp.o"
  "CMakeFiles/skew_explorer.dir/skew_explorer.cpp.o.d"
  "skew_explorer"
  "skew_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
