# Empty compiler generated dependencies file for skew_explorer.
# This may be replaced when dependencies are built.
