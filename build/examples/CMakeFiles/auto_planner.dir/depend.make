# Empty dependencies file for auto_planner.
# This may be replaced when dependencies are built.
