file(REMOVE_RECURSE
  "CMakeFiles/auto_planner.dir/auto_planner.cpp.o"
  "CMakeFiles/auto_planner.dir/auto_planner.cpp.o.d"
  "auto_planner"
  "auto_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
