// Quickstart: run one expanding hash-based join and inspect the result.
//
//   $ ./quickstart
//
// Configures the paper's base scenario at 1/10 scale -- 1M-tuple relations
// against four initial join nodes whose memory holds only a fraction of the
// hash table -- runs the hybrid algorithm on the deterministic cluster
// simulator, and verifies the distributed result against the serial oracle.
#include <cstdio>

#include "core/driver.hpp"
#include "util/units.hpp"

int main() {
  using namespace ehja;

  EhjaConfig config;
  config.algorithm = Algorithm::kHybrid;     // replicate, then reshuffle
  config.initial_join_nodes = 4;             // deliberately underestimated
  config.join_pool_nodes = 24;               // the cluster's compute nodes
  config.data_sources = 4;                   // streaming generators
  config.build_rel.tuple_count = 1'000'000;  // R: builds the hash table
  config.probe_rel.tuple_count = 1'000'000;  // S: probes it
  config.build_rel.dist = DistributionSpec::SmallDomain(1 << 20);
  config.probe_rel.dist = DistributionSpec::SmallDomain(1 << 20);
  config.node_hash_memory_bytes = 8 * kMiB;  // forces bucket overflow

  std::printf("running: %s\n", config.to_string().c_str());
  const RunResult result = run_ehja(config);

  std::printf("\n-- outcome --\n");
  std::printf("total time          %8.2f virtual seconds\n",
              result.metrics.total_time());
  std::printf("  build phase       %8.2f s\n", result.metrics.build_time());
  std::printf("  reshuffle step    %8.2f s\n",
              result.metrics.reshuffle_time());
  std::printf("  probe phase       %8.2f s\n", result.metrics.probe_time());
  std::printf("join nodes          %u initial -> %u final (%u recruited)\n",
              result.metrics.initial_join_nodes,
              result.metrics.final_join_nodes, result.metrics.expansions);
  std::printf("extra communication %llu chunks between join nodes\n",
              static_cast<unsigned long long>(
                  result.metrics.extra_build_chunks));
  std::printf("output              %llu matching pairs\n",
              static_cast<unsigned long long>(result.join().matches));

  const JoinResult oracle = reference_join(config);
  std::printf("\noracle check: %s (%llu matches expected)\n",
              result.join() == oracle ? "PASS" : "FAIL",
              static_cast<unsigned long long>(oracle.matches));
  return result.join() == oracle ? 0 : 1;
}
