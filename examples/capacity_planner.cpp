// Capacity planner: how many join nodes should a query grab up front?
//
// The paper's motivation (ss1, ss4): in a shared cluster, allocating many
// nodes makes the join fast but starves other queries; allocating few and
// expanding on demand frees resources but costs expansion overhead.  This
// example sweeps the initial allocation for a fixed workload, charges each
// run a simple occupancy cost (node-seconds), and prints the trade-off
// frontier a scheduler would navigate.
#include <cstdio>

#include "core/driver.hpp"
#include "util/units.hpp"

int main() {
  using namespace ehja;

  std::printf("capacity planning for a 1M x 1M tuple hybrid join "
              "(8 MiB hash memory per node)\n\n");
  std::printf("%8s %10s %10s %12s %14s %16s\n", "initial", "final",
              "recruited", "time (s)", "node-seconds", "extra chunks");

  double best_cost = 1e300;
  std::uint32_t best_initial = 0;
  for (const std::uint32_t initial : {1u, 2u, 4u, 8u, 12u, 16u}) {
    EhjaConfig config;
    config.algorithm = Algorithm::kHybrid;
    config.initial_join_nodes = initial;
    config.join_pool_nodes = 24;
    config.data_sources = 4;
    config.build_rel.tuple_count = 1'000'000;
    config.probe_rel.tuple_count = 1'000'000;
    config.node_hash_memory_bytes = 8 * kMiB;
    const RunResult result = run_ehja(config);

    // Occupancy: every node held is charged for the whole run (a
    // conservative model of what the shared cluster loses).
    const double node_seconds =
        result.metrics.total_time() * result.metrics.final_join_nodes;
    std::printf("%8u %10u %10u %12.2f %14.1f %16llu\n", initial,
                result.metrics.final_join_nodes, result.metrics.expansions,
                result.metrics.total_time(), node_seconds,
                static_cast<unsigned long long>(
                    result.metrics.extra_build_chunks));
    if (node_seconds < best_cost) {
      best_cost = node_seconds;
      best_initial = initial;
    }
  }
  std::printf(
      "\nlowest occupancy cost at %u initial node(s): starting small and "
      "expanding is cheaper for the cluster than provisioning for the "
      "worst case -- the EHJA thesis.\n",
      best_initial);
  return 0;
}
