// Skew explorer: which expansion strategy should a query planner pick?
//
// Sweeps the join-attribute distribution from uniform through increasingly
// extreme Gaussian range-skew (plus a Zipf value-skew case), runs all three
// EHJAs on each, and prints a planner-style recommendation -- reproducing
// the paper's decision rule: "the replication-based algorithm should be
// preferred ... if the distribution of the join attribute values is highly
// skewed ... otherwise the split-based algorithm achieves better
// performance; the hybrid algorithm generally performs close to the better
// of the two."
//
// The last column runs the adaptive policy (core/expansion_policy), which
// makes that choice per overflow from the cost model instead of per run.
// Its comparison is greedy: a split's one-time migration vs a replica's
// recurring probe broadcast *for this overflow*.  Under extreme range skew
// that undervalues replication -- the hot range re-overflows after every
// split, and the model does not anticipate the repeat business -- so
// expect adaptive to track split there while the per-run rule says
// replicate (bench_adaptive_strategy has the regimes where it wins).
//
// Fault flags (same syntax as ehja_run) apply to every swept run, so the
// ranking can be re-examined under injected failures:
//   --kill-node=[ROLE:]I@T | [ROLE:]I@Kc   kill a process at time T / after
//                             K chunks; ROLE is join (default), source, or
//                             sched (needs --standby)
//   --detector=timeout|phi    failure-detector flavour
//   --phi-threshold=X         phi-accrual suspicion threshold
//   --standby                 run a standby scheduler
//   --net-jitter=SEC          uniform extra per-message delivery delay
//   --net-drop-prob=P         per-message drop-with-redelivery probability
//   --intra-threads=N         worker threads per join process (default 1)
//   --intra-mode=shared|merge concurrent-table build discipline
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "util/units.hpp"

namespace {

struct FaultFlags {
  ehja::FaultPlan faults;
  ehja::FaultToleranceConfig ft;
  double net_jitter_sec = 0.0;
  double net_drop_prob = 0.0;
  std::uint32_t intra_threads = 1;
  ehja::IntraMode intra_mode = ehja::IntraMode::kShared;
};

struct Outcome {
  ehja::Algorithm algorithm;
  double total = 0.0;
  double max_load_chunks = 0.0;
};

Outcome run_one(ehja::Algorithm algorithm, const ehja::DistributionSpec& dist,
                const FaultFlags& flags) {
  using namespace ehja;
  EhjaConfig config;
  config.algorithm = algorithm;
  config.initial_join_nodes = 4;
  config.join_pool_nodes = 24;
  config.data_sources = 4;
  config.build_rel.tuple_count = 1'000'000;
  config.probe_rel.tuple_count = 1'000'000;
  config.build_rel.dist = dist;
  config.probe_rel.dist = dist;
  config.node_hash_memory_bytes = 8 * kMiB;
  config.faults = flags.faults;
  config.ft = flags.ft;
  config.link.fault_jitter_sec = flags.net_jitter_sec;
  config.link.fault_drop_prob = flags.net_drop_prob;
  config.intra_threads = flags.intra_threads;
  config.intra_mode = flags.intra_mode;
  const RunResult result = run_ehja(config);
  Outcome outcome;
  outcome.algorithm = algorithm;
  outcome.total = result.metrics.total_time();
  for (const double load : result.metrics.load_chunks(config.chunk_tuples)) {
    outcome.max_load_chunks = std::max(outcome.max_load_chunks, load);
  }
  return outcome;
}

bool match_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

FaultFlags parse_fault_flags(int argc, char** argv) {
  FaultFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (match_flag(argv[i], "--kill-node", &value)) {
      ehja::KillSpec kill;
      if (const auto colon = value.find(':'); colon != std::string::npos) {
        const std::string role = value.substr(0, colon);
        if (role == "join") kill.role = ehja::KillRole::kJoin;
        else if (role == "source") kill.role = ehja::KillRole::kSource;
        else if (role == "sched") kill.role = ehja::KillRole::kScheduler;
        else {
          std::fprintf(stderr, "skew_explorer: unknown kill role %s\n",
                       role.c_str());
          std::exit(2);
        }
        value = value.substr(colon + 1);
      }
      const auto at = value.find('@');
      kill.pool_index =
          static_cast<std::uint32_t>(std::atoi(value.substr(0, at).c_str()));
      const std::string trigger =
          at == std::string::npos ? "" : value.substr(at + 1);
      if (!trigger.empty() && trigger.back() == 'c') {
        kill.after_chunks = std::strtoull(trigger.c_str(), nullptr, 10);
      } else {
        kill.at_time = std::atof(trigger.c_str());
      }
      flags.faults.kills.push_back(kill);
    } else if (match_flag(argv[i], "--detector", &value)) {
      if (value == "timeout") flags.ft.detector = ehja::DetectorKind::kTimeout;
      else if (value == "phi") {
        flags.ft.detector = ehja::DetectorKind::kPhiAccrual;
      } else {
        std::fprintf(stderr, "skew_explorer: unknown detector %s\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (match_flag(argv[i], "--phi-threshold", &value)) {
      flags.ft.phi_threshold = std::atof(value.c_str());
    } else if (match_flag(argv[i], "--net-jitter", &value)) {
      flags.net_jitter_sec = std::atof(value.c_str());
    } else if (match_flag(argv[i], "--net-drop-prob", &value)) {
      flags.net_drop_prob = std::atof(value.c_str());
    } else if (match_flag(argv[i], "--intra-threads", &value)) {
      const long threads = std::atol(value.c_str());
      if (threads < 1) {
        std::fprintf(stderr, "skew_explorer: --intra-threads must be >= 1\n");
        std::exit(2);
      }
      flags.intra_threads = static_cast<std::uint32_t>(threads);
    } else if (match_flag(argv[i], "--intra-mode", &value)) {
      if (value == "shared") flags.intra_mode = ehja::IntraMode::kShared;
      else if (value == "merge") flags.intra_mode = ehja::IntraMode::kMerge;
      else {
        std::fprintf(stderr, "skew_explorer: unknown intra mode %s\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--standby") == 0) {
      flags.ft.standby_scheduler = true;
    } else {
      std::fprintf(stderr, "skew_explorer: unknown option %s\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ehja;
  const FaultFlags fault_flags = parse_fault_flags(argc, argv);
  struct Case {
    const char* label;
    DistributionSpec dist;
  };
  const Case cases[] = {
      {"uniform", DistributionSpec::Uniform()},
      {"gaussian sigma=1e-2", DistributionSpec::Gaussian(0.5, 1e-2)},
      {"gaussian sigma=1e-3", DistributionSpec::Gaussian(0.5, 1e-3)},
      {"gaussian sigma=1e-4", DistributionSpec::Gaussian(0.5, 1e-4)},
      {"zipf s=1.1", DistributionSpec::Zipf(1.1, 1 << 16)},
  };

  std::printf("%-22s %12s %12s %12s %12s   %s\n", "distribution",
              "replicated(s)", "split(s)", "hybrid(s)", "adaptive(s)",
              "recommendation");
  for (const Case& c : cases) {
    std::vector<Outcome> outcomes;
    for (const Algorithm algorithm :
         {Algorithm::kReplicate, Algorithm::kSplit, Algorithm::kHybrid}) {
      outcomes.push_back(run_one(algorithm, c.dist, fault_flags));
    }
    const Outcome adaptive = run_one(Algorithm::kAdaptive, c.dist, fault_flags);
    const Outcome* best = &outcomes[0];
    for (const Outcome& o : outcomes) {
      if (o.total < best->total) best = &o;
    }
    // The planner's rule of thumb: hybrid unless another strategy wins by a
    // clear margin (>10%).
    const char* pick = algorithm_name(Algorithm::kHybrid);
    for (const Outcome& o : outcomes) {
      if (o.algorithm != Algorithm::kHybrid &&
          o.total * 1.10 < outcomes[2].total) {
        pick = algorithm_name(best->algorithm);
      }
    }
    std::printf("%-22s %12.2f %12.2f %12.2f %12.2f   use %s\n", c.label,
                outcomes[0].total, outcomes[1].total, outcomes[2].total,
                adaptive.total, pick);
  }
  std::printf("\n(max-load imbalance under the last distribution: "
              "see bench_fig12_13_load_balance for the full series)\n");
  return 0;
}
