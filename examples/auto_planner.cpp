// Auto planner: does the paper's ss6 decision rule actually pick winners?
//
// For a grid of workloads (skew x relation-size asymmetry) this example
// asks the planner (core/planner.hpp) for its choice, then *measures* all
// three EHJAs and reports whether the planner's pick was the fastest or
// within 15% of it -- closing the loop between the paper's conclusions and
// its own experiments.
#include <cstdio>
#include <vector>

#include "core/driver.hpp"
#include "core/planner.hpp"
#include "util/units.hpp"

namespace {

using namespace ehja;

EhjaConfig base_config() {
  EhjaConfig config;
  config.initial_join_nodes = 4;
  config.join_pool_nodes = 24;
  config.data_sources = 4;
  config.build_rel.tuple_count = 1'000'000;
  config.probe_rel.tuple_count = 1'000'000;
  config.node_hash_memory_bytes = 8 * kMiB;
  return config;
}

}  // namespace

int main() {
  struct Case {
    const char* label;
    DistributionSpec dist;
    std::uint64_t build;
    std::uint64_t probe;
  };
  const Case cases[] = {
      {"uniform, symmetric", DistributionSpec::Uniform(), 1'000'000,
       1'000'000},
      {"extreme skew", DistributionSpec::Gaussian(0.5, 1e-4), 1'000'000,
       1'000'000},
      {"mild skew", DistributionSpec::Gaussian(0.5, 1e-2), 1'000'000,
       1'000'000},
      {"larger side builds", DistributionSpec::Uniform(), 3'000'000,
       500'000},
      {"small expansion", DistributionSpec::Uniform(), 1'000'000, 1'000'000},
  };

  std::printf("%-22s %-12s %10s %10s %10s  %s\n", "workload", "planner pick",
              "repl (s)", "split (s)", "hybrid (s)", "verdict");
  int good = 0, total = 0;
  for (const Case& c : cases) {
    EhjaConfig config = base_config();
    config.build_rel.tuple_count = c.build;
    config.probe_rel.tuple_count = c.probe;
    config.build_rel.dist = c.dist;
    config.probe_rel.dist = c.dist;
    if (std::string(c.label) == "small expansion") {
      config.initial_join_nodes = 12;  // near-sufficient initial guess
    }

    PlannerInputs inputs;
    inputs.build_tuples = c.build;
    inputs.probe_tuples = c.probe;
    const PlannerDecision decision = choose_algorithm(config, inputs);

    double best = 1e300;
    double picked = 0.0;
    std::vector<double> times;
    for (const Algorithm algorithm :
         {Algorithm::kReplicate, Algorithm::kSplit, Algorithm::kHybrid}) {
      EhjaConfig run_config = config;
      run_config.algorithm = algorithm;
      const double t = run_ehja(run_config).metrics.total_time();
      times.push_back(t);
      best = std::min(best, t);
      if (algorithm == decision.algorithm) picked = t;
    }
    if (decision.algorithm == Algorithm::kOutOfCore) picked = best;  // n/a

    const bool ok = picked <= best * 1.15;
    good += ok ? 1 : 0;
    ++total;
    std::printf("%-22s %-12s %10.2f %10.2f %10.2f  %s (picked %.2fs, best "
                "%.2fs)\n",
                c.label, algorithm_name(decision.algorithm), times[0],
                times[1], times[2], ok ? "GOOD" : "MISS", picked, best);
  }
  std::printf("\nplanner verdict: %d/%d picks within 15%% of the measured "
              "best\n",
              good, total);
  return 0;
}
