// Streaming multi-join pipeline -- the scenario that motivates the paper's
// introduction and its ss6 future work, using the run_pipeline() API.
//
// A three-relation left-deep plan  (Orders |><| Items) |><| Shipments:
// each stage's output streams into the next stage's build side, so the
// memory a stage needs is unknowable until the previous stage finishes --
// exactly the case for starting on a small node set and expanding on
// demand.
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/units.hpp"

int main() {
  using namespace ehja;
  std::printf("left-deep streaming pipeline: (Orders |><| Items) |><| "
              "Shipments\n\n");

  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 300'000, Schema{100},
                                  DistributionSpec::SmallDomain(1 << 19)};
  plan.intermediate_dist = DistributionSpec::SmallDomain(1 << 19);
  plan.intermediate_tuple_bytes = 200;  // joined rows carry both payloads
  plan.join_pool_nodes = 12;
  plan.data_sources = 3;
  plan.node_hash_memory_bytes = 4 * kMiB;  // small enough to force expansion

  PipelineStage items;
  items.probe = RelationSpec{RelTag::kS, 600'000, Schema{100},
                             DistributionSpec::SmallDomain(1 << 19)};
  items.algorithm = Algorithm::kHybrid;
  items.initial_join_nodes = 2;  // conservative initial allocation
  plan.stages.push_back(items);

  PipelineStage shipments;
  shipments.probe = RelationSpec{RelTag::kS, 400'000, Schema{100},
                                 DistributionSpec::SmallDomain(1 << 19)};
  shipments.algorithm = Algorithm::kHybrid;
  shipments.initial_join_nodes = 2;
  plan.stages.push_back(shipments);

  const PipelineResult result = run_pipeline(plan);

  std::printf("%-8s %12s %12s %12s %10s %12s\n", "stage", "build rows",
              "probe rows", "output rows", "time (s)", "nodes");
  std::uint64_t build_rows = plan.first_build.tuple_count;
  for (std::size_t k = 0; k < result.stages.size(); ++k) {
    const RunResult& stage = result.stages[k];
    std::printf("%-8zu %12llu %12llu %12llu %10.2f %5u -> %-4u\n", k,
                static_cast<unsigned long long>(build_rows),
                static_cast<unsigned long long>(
                    stage.metrics.probe_tuples_total),
                static_cast<unsigned long long>(stage.join().matches),
                stage.metrics.total_time(),
                stage.metrics.initial_join_nodes,
                stage.metrics.final_join_nodes);
    build_rows = stage.join().matches;
  }
  std::printf(
      "\npipeline: %.2f virtual seconds, peak %u join nodes, %llu result "
      "rows\n",
      result.total_time, result.peak_join_nodes,
      static_cast<unsigned long long>(result.final_matches));
  std::printf(
      "every stage sized itself at runtime -- static provisioning would "
      "have needed the intermediate cardinalities in advance.\n");
  return 0;
}
