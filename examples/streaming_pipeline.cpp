// Streaming multi-join pipeline -- the scenario that motivates the paper's
// introduction and its ss6 future work, using the run_pipeline() API.
//
// A three-relation left-deep plan  (Orders |><| Items) |><| Shipments:
// each stage's output rows are captured, re-keyed, and materialized as the
// next stage's build relation, so the memory a stage needs is unknowable
// until the previous stage finishes -- exactly the case for starting on a
// small node set and expanding on demand.  All stages draw expansion nodes
// from one shared budget and return them when they drain.
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/units.hpp"

int main() {
  using namespace ehja;
  std::printf("left-deep streaming pipeline: (Orders |><| Items) |><| "
              "Shipments\n\n");

  PipelinePlan plan;
  plan.first_build = RelationSpec{RelTag::kR, 300'000, Schema{100},
                                  DistributionSpec::SmallDomain(1 << 19),
                                  nullptr};
  plan.intermediate_tuple_bytes = 200;  // joined rows carry both payloads
  plan.join_pool_nodes = 12;            // the shared budget
  plan.data_sources = 3;
  plan.node_hash_memory_bytes = 4 * kMiB;  // small enough to force expansion

  PipelineStage items;
  items.probe = RelationSpec{RelTag::kS, 600'000, Schema{100},
                             DistributionSpec::SmallDomain(1 << 19), nullptr};
  items.algorithm = Algorithm::kHybrid;
  items.initial_join_nodes = 2;  // conservative initial allocation
  items.link_dist = DistributionSpec::SmallDomain(1 << 19);
  plan.stages.push_back(items);

  PipelineStage shipments;
  shipments.probe = RelationSpec{RelTag::kS, 400'000, Schema{100},
                                 DistributionSpec::SmallDomain(1 << 19),
                                 nullptr};
  shipments.algorithm = Algorithm::kHybrid;
  shipments.initial_join_nodes = 2;
  plan.stages.push_back(shipments);

  const PipelineResult result = run_pipeline(plan);

  std::printf("%-8s %12s %12s %12s %10s %12s\n", "stage", "build rows",
              "probe rows", "output rows", "time (s)", "nodes");
  std::uint64_t build_rows = plan.first_build.tuple_count;
  for (std::size_t k = 0; k < result.stages.size(); ++k) {
    const StageResult& stage = result.stages[k];
    std::printf("%-8zu %12llu %12llu %12llu %10.2f %5u -> %-4u\n", k,
                static_cast<unsigned long long>(build_rows),
                static_cast<unsigned long long>(
                    stage.run.metrics.probe_tuples_total),
                static_cast<unsigned long long>(stage.output_rows),
                stage.run.metrics.total_time(),
                stage.run.metrics.initial_join_nodes,
                stage.run.metrics.final_join_nodes);
    build_rows = stage.output_rows;
  }
  std::printf(
      "\npipeline: %.2f virtual seconds, peak %u/%u join nodes, %u denied "
      "expansions, %llu result rows\n",
      result.total_time, result.peak_join_nodes, plan.join_pool_nodes,
      result.denied_expansions,
      static_cast<unsigned long long>(result.final.matches));

  // The whole chain, replayed tuple-by-tuple through the serial oracle.
  const MultiJoinResult oracle = serial_multi_join(plan);
  std::printf("serial oracle agrees: %s (%llu rows, checksum %016llx)\n",
              oracle.final == result.final && oracle.final_rows ==
                                                  result.final_rows
                  ? "yes"
                  : "NO",
              static_cast<unsigned long long>(oracle.final.matches),
              static_cast<unsigned long long>(oracle.final.checksum));
  std::printf(
      "every stage sized itself at runtime -- static provisioning would "
      "have needed the intermediate cardinalities in advance.\n");
  return 0;
}
