#include "hash/local_hash_table.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define EHJA_PREFETCH(p) __builtin_prefetch(p)
#define EHJA_PREFETCH_W(p) __builtin_prefetch((p), 1)
#else
#define EHJA_PREFETCH(p) ((void)0)
#define EHJA_PREFETCH_W(p) ((void)0)
#endif

namespace ehja {

namespace {

/// Comparisons a binary search over n sorted keys performs (ceil(log2)+1).
/// This is the *modeled* probe cost of the 2004 structure; the actual
/// lookup goes through the open-addressing key index.
std::uint64_t search_comparisons(std::size_t n) {
  std::uint64_t comparisons = 1;
  while (n > 1) {
    n >>= 1;
    ++comparisons;
  }
  return comparisons;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// How far ahead the batch loops prefetch the chain-head / index-slot
/// cache lines.  Large tables make both arrays miss LLC on random access;
/// a short software pipeline hides most of that latency.
constexpr std::size_t kPrefetchAhead = 16;

}  // namespace

LocalHashTable::LocalHashTable(Schema schema, PosRange range)
    : schema_(schema), range_(range) {
  EHJA_CHECK(!range.empty());
  chains_.resize(static_cast<std::size_t>(range.width()));
}

void LocalHashTable::insert(const Tuple& t) {
  const std::uint64_t pos = position_of(t.key);
  EHJA_CHECK_MSG(range_.contains(pos), "insert outside owned range");
  ChainRef& c = chain(pos);
  const std::uint32_t e = static_cast<std::uint32_t>(slab_.size());
  slab_.push_back(Entry{t.id, t.key, c.head, kNil});
  c.head = e;
  ++c.count;
  ++tuple_count_;
  footprint_bytes_ += tuple_footprint(schema_);
  if (index_built_) index_insert(e);
}

void LocalHashTable::insert_batch(const TupleBatch& batch) {
  const std::size_t n = batch.size();
  if (n == 0) return;
  const std::uint64_t* keys = batch.keys().data();
  const std::uint64_t* ids = batch.ids().data();
  const std::uint32_t* positions = batch.positions().data();
  // Validate once at batch granularity with a branchless (vectorizable)
  // scan: the hot loop then carries no per-row range check.  The abort
  // semantics match the scalar path -- the process dies either way, and
  // partial mutation is unobservable past an abort.
  {
    const std::uint32_t vlo = static_cast<std::uint32_t>(range_.lo);
    const std::uint32_t vwidth = static_cast<std::uint32_t>(range_.width());
    std::uint32_t bad = 0;
    for (std::size_t i = 0; i < n; ++i) {
      bad |= static_cast<std::uint32_t>(positions[i] - vlo >= vwidth);
    }
    EHJA_CHECK_MSG(bad == 0, "insert outside owned range");
  }
  // Claim the whole slab segment up front: entry e for row i is base + i,
  // written through a raw pointer so the hot loop carries no capacity
  // checks.  Chain heads are touched with write-intent prefetch -- the
  // random read-modify-write over chains_ is the loop's only miss.
  const std::size_t base = slab_.size();
  slab_.resize(base + n);
  Entry* slab = slab_.data();
  ChainRef* chains = chains_.data();
  const std::uint64_t lo = range_.lo;
  if (!index_built_) {
    // Common case: build phase, no key index to maintain.  Two straight-line
    // stages per row and nothing else -- the prefetched chain-head RMW and a
    // sequential slab store.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC unroll 4
#endif
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchAhead < n) {
        EHJA_PREFETCH_W(&chains[static_cast<std::size_t>(
            positions[i + kPrefetchAhead] - lo)]);
      }
      ChainRef& c = chains[static_cast<std::size_t>(positions[i] - lo)];
      const std::uint32_t e = static_cast<std::uint32_t>(base + i);
      slab[e] = Entry{ids[i], keys[i], c.head, kNil};
      c.head = e;
      ++c.count;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchAhead < n) {
        EHJA_PREFETCH_W(&chains[static_cast<std::size_t>(
            positions[i + kPrefetchAhead] - lo)]);
      }
      ChainRef& c = chains[static_cast<std::size_t>(positions[i] - lo)];
      const std::uint32_t e = static_cast<std::uint32_t>(base + i);
      slab[e] = Entry{ids[i], keys[i], c.head, kNil};
      c.head = e;
      ++c.count;
      index_insert(e);
    }
  }
  tuple_count_ += n;
  footprint_bytes_ += static_cast<std::uint64_t>(n) * tuple_footprint(schema_);
}

LocalHashTable::ProbeResult LocalHashTable::probe(const Tuple& s,
                                                  std::vector<Tuple>* sink) {
  const std::uint64_t pos = position_of(s.key);
  EHJA_CHECK_MSG(range_.contains(pos), "probe outside owned range");
  const ChainRef& c = chain(pos);
  ProbeResult result;
  if (c.count == 0) {
    result.comparisons = 1;
    return result;
  }
  ensure_index();
  result.comparisons = search_comparisons(c.count);
  for (std::uint32_t e = index_find(s.key); e != kNil; e = slab_[e].key_next) {
    ++result.matches;
    ++result.comparisons;
    result.checksum_delta += match_signature(slab_[e].id, s.id);
    if (sink) sink->push_back(Tuple{slab_[e].id, s.id});
  }
  return result;
}

LocalHashTable::BatchProbeResult LocalHashTable::probe_batch(
    const TupleBatch& batch, std::vector<Tuple>* sink) {
  BatchProbeResult agg;
  const std::size_t n = batch.size();
  agg.probed = n;
  if (n == 0) return agg;
  // Any non-empty chain needs the index; building once up front performs
  // the same lookups the scalar path would (build timing is unobservable).
  if (tuple_count_ != 0) ensure_index();
  const std::uint64_t* keys = batch.keys().data();
  const std::uint64_t* ids = batch.ids().data();
  const std::uint32_t* positions = batch.positions().data();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      const std::uint64_t ahead = positions[i + kPrefetchAhead];
      if (range_.contains(ahead)) {
        EHJA_PREFETCH(&chains_[static_cast<std::size_t>(ahead - range_.lo)]);
      }
      if (index_built_) {
        EHJA_PREFETCH(
            &index_slots_[SplitMix64::mix(keys[i + kPrefetchAhead]) &
                          index_mask_]);
      }
    }
    const std::uint64_t pos = positions[i];
    EHJA_CHECK_MSG(range_.contains(pos), "probe outside owned range");
    const ChainRef& c = chain(pos);
    if (c.count == 0) {
      agg.comparisons += 1;
      continue;
    }
    agg.comparisons += search_comparisons(c.count);
    for (std::uint32_t e = index_find(keys[i]); e != kNil;
         e = slab_[e].key_next) {
      ++agg.matches;
      ++agg.comparisons;
      agg.checksum_delta += match_signature(slab_[e].id, ids[i]);
      if (sink) sink->push_back(Tuple{slab_[e].id, ids[i]});
    }
  }
  return agg;
}

void LocalHashTable::ensure_index() {
  if (index_built_) return;
  rebuild_index();
  index_built_ = true;
}

void LocalHashTable::rebuild_index() {
  index_keys_ = 0;
  const std::size_t slots = next_pow2(std::max<std::size_t>(
      64, static_cast<std::size_t>(tuple_count_) * 2));
  index_slots_.assign(slots, kNil);
  index_mask_ = slots - 1;
  for (const ChainRef& c : chains_) {
    for (std::uint32_t e = c.head; e != kNil; e = slab_[e].chain_next) {
      index_insert(e);
    }
  }
}

void LocalHashTable::index_insert(std::uint32_t e) {
  // Grow ahead of a distinct-key insert so the load factor stays <= 1/2.
  if ((index_keys_ + 1) * 2 > index_slots_.size()) {
    std::vector<std::uint32_t> old = std::move(index_slots_);
    const std::size_t slots = std::max<std::size_t>(64, old.size() * 2);
    index_slots_.assign(slots, kNil);
    index_mask_ = slots - 1;
    for (std::uint32_t head : old) {
      if (head == kNil) continue;
      std::size_t s = SplitMix64::mix(slab_[head].key) & index_mask_;
      while (index_slots_[s] != kNil) s = (s + 1) & index_mask_;
      index_slots_[s] = head;
    }
  }
  const std::uint64_t key = slab_[e].key;
  std::size_t s = SplitMix64::mix(key) & index_mask_;
  while (true) {
    const std::uint32_t cur = index_slots_[s];
    if (cur == kNil) {
      slab_[e].key_next = kNil;
      index_slots_[s] = e;
      ++index_keys_;
      return;
    }
    if (slab_[cur].key == key) {
      slab_[e].key_next = cur;
      index_slots_[s] = e;
      return;
    }
    s = (s + 1) & index_mask_;
  }
}

std::uint32_t LocalHashTable::index_find(std::uint64_t key) const {
  std::size_t s = SplitMix64::mix(key) & index_mask_;
  while (true) {
    const std::uint32_t e = index_slots_[s];
    if (e == kNil) return kNil;
    if (slab_[e].key == key) return e;
    s = (s + 1) & index_mask_;
  }
}

std::vector<Tuple> LocalHashTable::extract_range(const PosRange& sub) {
  EHJA_CHECK(sub.lo >= range_.lo && sub.hi <= range_.hi);
  std::vector<Tuple> extracted;
  bool removed = false;
  for (std::uint64_t pos = sub.lo; pos < sub.hi; ++pos) {
    ChainRef& c = chain(pos);
    if (c.count == 0) continue;
    // Chains link newest-first; reverse the collected segment so the
    // extracted run preserves insertion order per position.
    const std::size_t mark = extracted.size();
    for (std::uint32_t e = c.head; e != kNil; e = slab_[e].chain_next) {
      extracted.push_back(Tuple{slab_[e].id, slab_[e].key});
    }
    std::reverse(extracted.begin() + mark, extracted.end());
    tuple_count_ -= c.count;
    footprint_bytes_ -=
        static_cast<std::uint64_t>(c.count) * tuple_footprint(schema_);
    c = ChainRef{};
    removed = true;
  }
  // Removed entries stay in the slab but leave the chains; the index would
  // keep resolving them, so it must be rebuilt before the next probe.
  if (removed) index_built_ = false;
  return extracted;
}

void LocalHashTable::set_range(const PosRange& next) {
  EHJA_CHECK(!next.empty());
  std::vector<ChainRef> fresh(static_cast<std::size_t>(next.width()));
  std::uint64_t retained = 0;
  for (std::uint64_t pos = range_.lo; pos < range_.hi; ++pos) {
    ChainRef& c = chain(pos);
    if (c.count == 0) continue;
    EHJA_CHECK_MSG(next.contains(pos),
                   "set_range would orphan retained tuples");
    retained += c.count;
    fresh[static_cast<std::size_t>(pos - next.lo)] = c;
  }
  EHJA_CHECK(retained == tuple_count_);
  range_ = next;
  chains_ = std::move(fresh);
  // Every retained entry survived, so the key index (keyed by join
  // attribute, not position) remains valid.
}

BinnedHistogram LocalHashTable::histogram(std::size_t bins) const {
  BinnedHistogram hist(range_.lo, range_.hi, bins);
  for (std::uint64_t pos = range_.lo; pos < range_.hi; ++pos) {
    const ChainRef& c = chain(pos);
    if (c.count != 0) hist.add(pos, c.count);
  }
  return hist;
}

void LocalHashTable::clear() {
  std::vector<Entry>().swap(slab_);
  std::vector<std::uint32_t>().swap(index_slots_);
  chains_.assign(chains_.size(), ChainRef{});
  index_mask_ = 0;
  index_keys_ = 0;
  index_built_ = false;
  tuple_count_ = 0;
  footprint_bytes_ = 0;
}

}  // namespace ehja
