#include "hash/local_hash_table.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ehja {

namespace {

bool key_less(const Tuple& a, const Tuple& b) { return a.key < b.key; }

/// Comparisons a binary search over n sorted keys performs (ceil(log2)+1).
std::uint64_t search_comparisons(std::size_t n) {
  std::uint64_t comparisons = 1;
  while (n > 1) {
    n >>= 1;
    ++comparisons;
  }
  return comparisons;
}

}  // namespace

LocalHashTable::LocalHashTable(Schema schema, PosRange range)
    : schema_(schema), range_(range) {
  EHJA_CHECK(!range.empty());
  chains_.resize(static_cast<std::size_t>(range.width()));
}

void LocalHashTable::insert(const Tuple& t) {
  const std::uint64_t pos = position_of(t.key);
  EHJA_CHECK_MSG(range_.contains(pos), "insert outside owned range");
  Chain& c = chain(pos);
  c.tuples.push_back(t);
  c.sorted = false;
  ++tuple_count_;
  footprint_bytes_ += tuple_footprint(schema_);
}

LocalHashTable::ProbeResult LocalHashTable::probe(const Tuple& s) {
  const std::uint64_t pos = position_of(s.key);
  EHJA_CHECK_MSG(range_.contains(pos), "probe outside owned range");
  Chain& c = chain(pos);
  ProbeResult result;
  if (c.tuples.empty()) {
    result.comparisons = 1;
    return result;
  }
  if (!c.sorted) {
    // One deferred sort after the build phase models the local index a real
    // implementation maintains; its cost is part of the insert charge.
    std::sort(c.tuples.begin(), c.tuples.end(), key_less);
    c.sorted = true;
  }
  const Tuple needle{0, s.key};
  auto [lo, hi] = std::equal_range(c.tuples.begin(), c.tuples.end(), needle,
                                   key_less);
  result.comparisons = search_comparisons(c.tuples.size());
  for (auto it = lo; it != hi; ++it) {
    ++result.matches;
    ++result.comparisons;
    result.checksum_delta += match_signature(it->id, s.id);
  }
  return result;
}

std::vector<Tuple> LocalHashTable::extract_range(const PosRange& sub) {
  EHJA_CHECK(sub.lo >= range_.lo && sub.hi <= range_.hi);
  std::vector<Tuple> extracted;
  for (std::uint64_t pos = sub.lo; pos < sub.hi; ++pos) {
    Chain& c = chain(pos);
    if (c.tuples.empty()) continue;
    extracted.insert(extracted.end(), c.tuples.begin(), c.tuples.end());
    tuple_count_ -= c.tuples.size();
    footprint_bytes_ -= c.tuples.size() * tuple_footprint(schema_);
    Chain().tuples.swap(c.tuples);  // release chain storage
    c.sorted = false;
  }
  return extracted;
}

void LocalHashTable::set_range(const PosRange& next) {
  EHJA_CHECK(!next.empty());
  std::vector<Chain> fresh(static_cast<std::size_t>(next.width()));
  std::uint64_t retained = 0;
  for (std::uint64_t pos = range_.lo; pos < range_.hi; ++pos) {
    Chain& c = chain(pos);
    if (c.tuples.empty()) continue;
    EHJA_CHECK_MSG(next.contains(pos),
                   "set_range would orphan retained tuples");
    retained += c.tuples.size();
    fresh[static_cast<std::size_t>(pos - next.lo)] = std::move(c);
  }
  EHJA_CHECK(retained == tuple_count_);
  range_ = next;
  chains_ = std::move(fresh);
}

BinnedHistogram LocalHashTable::histogram(std::size_t bins) const {
  BinnedHistogram hist(range_.lo, range_.hi, bins);
  for (std::uint64_t pos = range_.lo; pos < range_.hi; ++pos) {
    const Chain& c = chain(pos);
    if (!c.tuples.empty()) hist.add(pos, c.tuples.size());
  }
  return hist;
}

void LocalHashTable::clear() {
  for (Chain& c : chains_) {
    std::vector<Tuple>().swap(c.tuples);
    c.sorted = false;
  }
  tuple_count_ = 0;
  footprint_bytes_ = 0;
}

}  // namespace ehja
