// A join process's local hash-table partition.
//
// Covers one contiguous position range.  The *position* (high key bits) is
// the unit of partitioning, migration and reshuffling; within a position,
// tuples are indexed by their exact join attribute so that probing costs
// what a well-dimensioned 2004 hash table cost -- a handful of key
// comparisons -- rather than a linear walk over everything sharing the
// position.  (Under the paper's extreme-skew workloads a position can hold
// tens of thousands of distinct keys; a real implementation re-hashes them
// locally, and so must the model, or probe CPU would dwarf every effect the
// paper measures.)  Chains are sorted lazily on first probe and re-sorted
// after mutation; ProbeResult::comparisons reports the binary-search plus
// match comparisons actually performed, which the caller charges to the
// cost model.
//
// The memory *footprint* is byte-accurate against the declared schema
// (payload included plus per-entry overhead) even though payload bytes are
// not materialized; the owning join process compares footprint_bytes()
// against its node's budget to detect bucket overflow.
//
// Range surgery -- extract_range() for split migration, reshuffle and spill
// eviction, set_range() after a reshuffle -- returns the removed tuples so
// the caller can re-chunk and ship them, keeping accounting exact.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_family.hpp"
#include "relation/tuple.hpp"
#include "util/histogram.hpp"

namespace ehja {

class LocalHashTable {
 public:
  LocalHashTable(Schema schema, PosRange range);

  const PosRange& range() const { return range_; }
  const Schema& schema() const { return schema_; }
  std::uint64_t tuple_count() const { return tuple_count_; }
  std::uint64_t footprint_bytes() const { return footprint_bytes_; }
  bool empty() const { return tuple_count_ == 0; }

  /// Insert a build tuple whose position must lie inside range().
  void insert(const Tuple& t);

  struct ProbeResult {
    std::uint64_t matches = 0;         // matches found for this tuple
    std::uint64_t comparisons = 0;     // key comparisons performed (cost)
    std::uint64_t checksum_delta = 0;  // sum of match signatures
  };

  /// Probe with one tuple of the second relation.  (Lazily sorts the
  /// touched chain, hence non-const.)
  ProbeResult probe(const Tuple& s);

  /// Remove and return every tuple whose position lies in `sub` (must be
  /// inside range()); footprint shrinks accordingly.
  std::vector<Tuple> extract_range(const PosRange& sub);

  /// Shrink/slide the owned range after a reshuffle; every retained tuple
  /// must lie inside the new range (checked).
  void set_range(const PosRange& next);

  /// Per-position entry counts binned for the reshuffle global sum.
  BinnedHistogram histogram(std::size_t bins) const;

  /// Drop everything (phase-3 out-of-core joins reuse the node's budget).
  void clear();

 private:
  struct Chain {
    std::vector<Tuple> tuples;
    bool sorted = false;
  };

  Chain& chain(std::uint64_t pos) {
    return chains_[static_cast<std::size_t>(pos - range_.lo)];
  }
  const Chain& chain(std::uint64_t pos) const {
    return chains_[static_cast<std::size_t>(pos - range_.lo)];
  }

  Schema schema_;
  PosRange range_;
  std::uint64_t tuple_count_ = 0;
  std::uint64_t footprint_bytes_ = 0;
  std::vector<Chain> chains_;  // one per owned position
};

}  // namespace ehja
