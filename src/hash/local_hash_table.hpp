// A join process's local hash-table partition.
//
// Covers one contiguous position range.  The *position* (high key bits) is
// the unit of partitioning, migration and reshuffling; within a position,
// tuples are indexed by their exact join attribute so that probing costs
// what a well-dimensioned 2004 hash table cost -- a handful of key
// comparisons -- rather than a linear walk over everything sharing the
// position.  (Under the paper's extreme-skew workloads a position can hold
// tens of thousands of distinct keys; a real implementation re-hashes them
// locally, and so must the model, or probe CPU would dwarf every effect the
// paper measures.)
//
// Storage is a flat entry slab with per-position chain heads (one 8-byte
// ChainRef per owned position) -- no per-chain allocations.  Exact-key
// lookup goes through a table-wide open-addressing index over the join
// attribute, built lazily at the first probe and maintained incrementally
// by later inserts (the dynamic hybrid-hash spiller interleaves the two);
// range surgery that removes entries (extract_range, clear) invalidates the
// index and the next probe rebuilds it from the chains.  This replaces the
// earlier per-chain lazy sort.  ProbeResult::comparisons still reports what
// the modeled 2004 structure pays -- a binary search over the position's
// chain plus one comparison per match -- which the caller charges to the
// cost model; the index is the lookup mechanism, not the cost model.
//
// The batch interface (insert_batch / probe_batch) consumes columnar
// TupleBatches: positions come from the batch's precomputed hash column and
// the loops prefetch the chain-head and index cache lines a few rows ahead,
// which is where the bulk path's throughput over tuple-at-a-time calls
// comes from.  Results are bit-identical to the scalar calls
// (tests/test_hash.cpp fuzzes the equivalence).
//
// The memory *footprint* is byte-accurate against the declared schema
// (payload included plus per-entry overhead) even though payload bytes are
// not materialized; the owning join process compares footprint_bytes()
// against its node's budget to detect bucket overflow.
//
// Range surgery -- extract_range() for split migration, reshuffle and spill
// eviction, set_range() after a reshuffle -- returns the removed tuples so
// the caller can re-chunk and ship them, keeping accounting exact.
// (Removed slab entries are reclaimed on clear(), not eagerly; the slab
// high-water mark is bounded by the tuples this node ever inserted.)
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_family.hpp"
#include "relation/tuple.hpp"
#include "relation/tuple_batch.hpp"
#include "util/histogram.hpp"

namespace ehja {

class LocalHashTable {
 public:
  LocalHashTable(Schema schema, PosRange range);

  const PosRange& range() const { return range_; }
  const Schema& schema() const { return schema_; }
  std::uint64_t tuple_count() const { return tuple_count_; }
  std::uint64_t footprint_bytes() const { return footprint_bytes_; }
  bool empty() const { return tuple_count_ == 0; }

  /// Insert a build tuple whose position must lie inside range().
  void insert(const Tuple& t);

  /// Bulk insert of a whole batch (positions come from the batch's
  /// precomputed hash column; every one must lie inside range()).
  void insert_batch(const TupleBatch& batch);

  struct ProbeResult {
    std::uint64_t matches = 0;         // matches found for this tuple
    std::uint64_t comparisons = 0;     // key comparisons performed (cost)
    std::uint64_t checksum_delta = 0;  // sum of match signatures
  };

  /// Aggregate over a whole batch; each field is exactly the sum of the
  /// per-tuple ProbeResults the scalar path would have produced.
  struct BatchProbeResult {
    std::uint64_t probed = 0;
    std::uint64_t matches = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t checksum_delta = 0;
  };

  /// Probe with one tuple of the second relation.  (Lazily builds the key
  /// index, hence non-const.)  When `sink` is non-null every match appends
  /// one Tuple{build_row_id, probe_row_id} -- exactly one append per
  /// checksum_delta contribution, so the captured multiset always equals
  /// the counted result.
  ProbeResult probe(const Tuple& s, std::vector<Tuple>* sink = nullptr);

  /// Bulk probe with every tuple of `batch` (same sink contract as probe).
  BatchProbeResult probe_batch(const TupleBatch& batch,
                               std::vector<Tuple>* sink = nullptr);

  /// Remove and return every tuple whose position lies in `sub` (must be
  /// inside range()); footprint shrinks accordingly.
  std::vector<Tuple> extract_range(const PosRange& sub);

  /// Shrink/slide the owned range after a reshuffle; every retained tuple
  /// must lie inside the new range (checked).
  void set_range(const PosRange& next);

  /// Per-position entry counts binned for the reshuffle global sum.
  BinnedHistogram histogram(std::size_t bins) const;

  /// Drop everything (phase-3 out-of-core joins reuse the node's budget).
  void clear();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One stored tuple plus its two intrusive links: the per-position chain
  /// (newest first) and the index's same-key list.  The no-op default
  /// constructor keeps vector::resize from zero-filling slab segments the
  /// bulk insert is about to overwrite anyway.
  struct Entry {
    std::uint64_t id;
    std::uint64_t key;
    std::uint32_t chain_next;
    std::uint32_t key_next;

    Entry() {}  // intentionally uninitialized
    Entry(std::uint64_t id_, std::uint64_t key_, std::uint32_t chain_next_,
          std::uint32_t key_next_)
        : id(id_), key(key_), chain_next(chain_next_), key_next(key_next_) {}
  };

  struct ChainRef {
    std::uint32_t head = kNil;
    std::uint32_t count = 0;
  };

  ChainRef& chain(std::uint64_t pos) {
    return chains_[static_cast<std::size_t>(pos - range_.lo)];
  }
  const ChainRef& chain(std::uint64_t pos) const {
    return chains_[static_cast<std::size_t>(pos - range_.lo)];
  }

  void ensure_index();
  void rebuild_index();
  /// Link slab entry `e` into the index, growing the slot array as needed.
  void index_insert(std::uint32_t e);
  /// Head of the same-key list for `key`, or kNil.
  std::uint32_t index_find(std::uint64_t key) const;

  Schema schema_;
  PosRange range_;
  std::uint64_t tuple_count_ = 0;
  std::uint64_t footprint_bytes_ = 0;
  std::vector<Entry> slab_;       // unlinked entries stay until clear()
  std::vector<ChainRef> chains_;  // one per owned position
  // Open-addressing key index: slot -> head entry of a same-key list.
  std::vector<std::uint32_t> index_slots_;  // power-of-two size
  std::size_t index_mask_ = 0;
  std::uint64_t index_keys_ = 0;  // distinct keys indexed (load factor)
  bool index_built_ = false;
};

}  // namespace ehja
