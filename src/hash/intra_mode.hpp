// Intra-node build discipline for the concurrent hash table.
//
// Lives in its own tiny header so that core/config.hpp (the knob) and
// hash/concurrent_key_index.hpp (the implementation) can share the enum
// without the config layer pulling the whole concurrent table -- and its
// <atomic> machinery -- into every translation unit.
#pragma once

#include <cstdint>

namespace ehja {

/// How worker threads inside one join process cooperate on the shared
/// per-partition hash table (DESIGN.md §11).
///
///   kShared: every thread CAS-pushes directly into the shared chain heads
///            (lock-free, zero extra passes).  Per-position chain order is
///            whatever the interleaving produced -- join *results* are
///            unaffected (matches/checksums are commutative sums) but
///            extract_range emission order varies run to run.
///
///   kMerge:  per-thread-build-then-merge.  Threads first partition their
///            batch slice by position sub-range into private scratch, then
///            each thread exclusively merges one contiguous sub-range into
///            the shared chains -- no atomics on the hot store, and the
///            final chain linkage is bit-identical to the serial insert
///            order at every thread count.
enum class IntraMode : std::uint8_t {
  kShared = 0,
  kMerge = 1,
};

const char* intra_mode_name(IntraMode mode);

}  // namespace ehja
