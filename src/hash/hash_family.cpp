#include "hash/hash_family.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ehja {

std::vector<PosRange> equal_ranges(std::uint32_t buckets,
                                   std::uint64_t positions) {
  EHJA_CHECK(buckets > 0);
  EHJA_CHECK(positions >= buckets);
  std::vector<PosRange> ranges;
  ranges.reserve(buckets);
  for (std::uint32_t j = 0; j < buckets; ++j) {
    ranges.push_back(PosRange{positions * j / buckets,
                              positions * (j + 1) / buckets});
  }
  return ranges;
}

LinearHashMap::LinearHashMap(std::uint32_t initial_buckets,
                             std::uint64_t positions)
    : n0_(initial_buckets), positions_(positions) {
  EHJA_CHECK(initial_buckets > 0);
  EHJA_CHECK(positions >= initial_buckets);
  bounds_.reserve(initial_buckets + 1);
  for (std::uint32_t j = 0; j <= initial_buckets; ++j) {
    bounds_.push_back(positions * j / initial_buckets);
  }
}

std::size_t LinearHashMap::bucket_index_of(std::uint64_t pos) const {
  EHJA_CHECK(pos < positions_);
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), pos);
  return static_cast<std::size_t>(it - bounds_.begin()) - 1;
}

PosRange LinearHashMap::bucket_range(std::size_t index) const {
  EHJA_CHECK(index + 1 < bounds_.size());
  return PosRange{bounds_[index], bounds_[index + 1]};
}

std::size_t LinearHashMap::next_split_index() const {
  // At level i with pointer s, the first s level-i buckets have each become
  // two half-width buckets, so level-i bucket s sits at list index 2s.
  return 2 * static_cast<std::size_t>(split_ptr_);
}

bool LinearHashMap::split_possible() const {
  const std::size_t idx = next_split_index();
  return idx + 1 < bounds_.size() && bounds_[idx + 1] - bounds_[idx] >= 2;
}

LinearHashMap::Split LinearHashMap::split_next() {
  EHJA_CHECK_MSG(split_possible(), "split pointer bucket too narrow to split");
  const std::size_t idx = next_split_index();
  const std::uint64_t lo = bounds_[idx];
  const std::uint64_t hi = bounds_[idx + 1];
  const std::uint64_t mid = lo + (hi - lo) / 2;
  bounds_.insert(bounds_.begin() + static_cast<std::ptrdiff_t>(idx) + 1, mid);

  Split split;
  split.parent_index = idx;
  split.new_index = idx + 1;
  split.kept = PosRange{lo, mid};
  split.moved = PosRange{mid, hi};

  ++split_ptr_;
  if (split_ptr_ == (n0_ << level_)) {
    split_ptr_ = 0;
    ++level_;
  }
  return split;
}

}  // namespace ehja
