// Hash-position space and the linear-hashing address family.
//
// Position space.  A join attribute maps to a *hash table position* by its
// high bits: pos(k) = k >> (64 - kPositionBits).  This map is order
// preserving on purpose: the paper's Gaussian experiments show skewed join
// attributes concentrating in a few buckets, which only happens when the
// key->position map preserves the distribution's shape (a uniformizing hash
// would erase the skew and with it the entire phenomenon under study).
// Contiguous position ranges are the unit of bucket assignment, replication
// and reshuffling.
//
// Linear hashing (split-based algorithm, paper ss4.2.1).  Following
// Litwin'80/Larson'88 as adapted by Amin et al., the position space is cut
// into N0 initial buckets; a *split pointer* s and level i determine the
// active pair of hash functions:
//     h_i(pos)     = bucket of pos among N0*2^i equal ranges
//     h_{i+1}(pos) = bucket of pos among N0*2^{i+1} equal ranges
// Buckets before the pointer have been split (addressed by h_{i+1}); buckets
// at or past it are addressed by h_i.  On overflow, the bucket *at the
// pointer* is split -- not necessarily the one that overflowed -- and the
// pointer advances; when it reaches the end of the level, the level
// increments.  At most two hash functions are live at any instant; a
// scheduler-side barrier pointer (core/scheduler) keeps a bucket from being
// split while a split is in flight.
//
// LinearHashMap tracks the resulting ordered list of disjoint position
// ranges.  The range-based formulation makes h_i trivially consistent with
// the contiguous-range world of the other algorithms and keeps lookup O(log
// #buckets) by binary search (#buckets <= pool size, so effectively O(1) --
// the paper's point about not needing a DHT).
#pragma once

#include <cstdint>
#include <vector>

namespace ehja {

inline constexpr unsigned kPositionBits = 20;
inline constexpr std::uint64_t kPositionCount = 1ull << kPositionBits;

/// Hash-table position of a join attribute.
inline std::uint64_t position_of(std::uint64_t key) {
  return key >> (64 - kPositionBits);
}

/// Half-open range of hash-table positions.
struct PosRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool contains(std::uint64_t pos) const { return pos >= lo && pos < hi; }
  std::uint64_t width() const { return hi - lo; }
  bool empty() const { return hi <= lo; }

  friend bool operator==(const PosRange&, const PosRange&) = default;
};

class LinearHashMap {
 public:
  /// `initial_buckets` equal-width buckets over [0, positions).
  explicit LinearHashMap(std::uint32_t initial_buckets,
                         std::uint64_t positions = kPositionCount);

  std::uint32_t initial_buckets() const { return n0_; }
  std::uint32_t level() const { return level_; }
  std::uint32_t split_ptr() const { return split_ptr_; }
  std::size_t bucket_count() const { return bounds_.size() - 1; }

  /// Index (in the ordered bucket list) of the bucket holding `pos`.
  std::size_t bucket_index_of(std::uint64_t pos) const;
  PosRange bucket_range(std::size_t index) const;

  /// True while a further split is representable (the bucket at the pointer
  /// is at least two positions wide).
  bool split_possible() const;

  struct Split {
    std::size_t parent_index;  // list index of the split bucket (pre-split)
    std::size_t new_index;     // list index of the upper half (post-split)
    PosRange kept;             // lower half, stays with the parent owner
    PosRange moved;            // upper half, migrates to the new node
  };

  /// Perform the next split (at the split pointer) and advance the pointer;
  /// the level increments when the pointer wraps.
  Split split_next();

  /// The bucket list index the next split will target.
  std::size_t next_split_index() const;

  /// Ordered bucket boundaries (size bucket_count()+1); bounds()[0] == 0 and
  /// bounds().back() == positions.
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

 private:
  std::uint32_t n0_;
  std::uint64_t positions_;
  std::uint32_t level_ = 0;
  std::uint32_t split_ptr_ = 0;
  std::vector<std::uint64_t> bounds_;
};

/// The initial equal partitioning shared by all four algorithms: bucket j of
/// N covers [positions*j/N, positions*(j+1)/N).
std::vector<PosRange> equal_ranges(std::uint32_t buckets,
                                   std::uint64_t positions = kPositionCount);

}  // namespace ehja
