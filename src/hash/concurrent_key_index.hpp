// Lock-free concurrent counterpart of LocalHashTable.
//
// Same logical structure as the scalar table -- a flat entry slab,
// per-position chain heads, and an open-addressing key index over the join
// attribute -- but every shared word the parallel build/probe fan-out
// touches is an atomic:
//
//   * chain heads pack {count:32 | head:32} into one 64-bit word, so a
//     CAS push updates the head pointer and the chain length together
//     (the length feeds the modeled binary-search comparison count, which
//     must stay exactly what LocalHashTable would report);
//   * the slab is claimed in contiguous segments via a fetch_add cursor --
//     capacity is grown only between fork-join regions (reserve_rows), so
//     the hot path never reallocates under concurrency;
//   * index slots are CAS-published Treiber-style: an empty slot is claimed
//     with a release CAS, a same-key slot is replaced by linking the new
//     entry's key_next to the current head and CASing the slot over.
//
// Two build disciplines (IntraMode, hash/intra_mode.hpp): kShared CAS-pushes
// from every lane directly; kMerge scatters rows into per-thread scratch
// keyed by position sub-range, then each lane exclusively merges one
// sub-range with plain stores -- which reproduces the serial insert order
// (and therefore extract_range emission order) bit for bit at any thread
// count.  Either way the join-visible results -- matches, comparisons,
// checksum, footprint, histograms -- are identical to LocalHashTable for
// the same content (tests/test_concurrent_hash.cpp fuzzes this).
//
// Concurrency contract: insert_rows / probe_rows / scatter_rows /
// merge_subrange may run from many threads at once; everything else
// (reserve_rows, ensure_index, range surgery, accessors) is serial-only and
// must be separated from in-flight parallel calls by a synchronization
// point (IntraPool::run's join provides it on the actor path).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash_family.hpp"
#include "hash/intra_mode.hpp"
#include "hash/local_hash_table.hpp"
#include "relation/tuple.hpp"
#include "relation/tuple_batch.hpp"
#include "util/histogram.hpp"

namespace ehja {

class ConcurrentKeyIndex {
 public:
  using ProbeResult = LocalHashTable::ProbeResult;
  using BatchProbeResult = LocalHashTable::BatchProbeResult;

  ConcurrentKeyIndex(Schema schema, PosRange range);

  const PosRange& range() const { return range_; }
  const Schema& schema() const { return schema_; }
  std::uint64_t tuple_count() const {
    return tuple_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t footprint_bytes() const {
    return footprint_bytes_.load(std::memory_order_relaxed);
  }
  bool empty() const { return tuple_count() == 0; }

  // --- serial API (LocalHashTable-compatible) ---

  void insert(const Tuple& t);
  void insert_batch(const TupleBatch& batch);
  ProbeResult probe(const Tuple& s, std::vector<Tuple>* sink = nullptr);
  BatchProbeResult probe_batch(const TupleBatch& batch,
                               std::vector<Tuple>* sink = nullptr);
  std::vector<Tuple> extract_range(const PosRange& sub);
  void set_range(const PosRange& next);
  BinnedHistogram histogram(std::size_t bins) const;
  void clear();

  // --- parallel protocol (shared mode) ---

  /// Serial: guarantee slab and index capacity for `n` further rows so the
  /// concurrent calls below never reallocate.
  void reserve_rows(std::size_t n);
  /// Thread-safe: insert rows [begin, end) of `batch` (shared CAS path).
  /// Capacity for them must have been reserved.
  void insert_rows(const TupleBatch& batch, std::size_t begin,
                   std::size_t end);
  /// Thread-safe after ensure_index(): probe rows [begin, end) of `batch`.
  /// A non-null `sink` (one vector per calling lane) receives one
  /// Tuple{build_row_id, probe_row_id} per match, mirroring checksum_delta.
  BatchProbeResult probe_rows(const TupleBatch& batch, std::size_t begin,
                              std::size_t end,
                              std::vector<Tuple>* sink = nullptr) const;
  /// Serial: build the key index if absent (probe_rows requires it unless
  /// the table is empty).
  void ensure_index();

  // --- parallel protocol (merge mode) ---

  /// Serial: reserve capacity, claim the batch's slab segment, size the
  /// per-thread scratch.
  void begin_merge(const TupleBatch& batch, unsigned threads);
  /// Thread-safe: partition lane `t`'s slice of `batch` into scratch by
  /// position sub-range.
  void scatter_rows(const TupleBatch& batch, unsigned t, unsigned threads);
  /// Thread-safe: drain every lane's scratch for sub-range `sub` into the
  /// shared chains (exclusive owner of those positions; plain stores).
  void merge_subrange(const TupleBatch& batch, unsigned sub,
                      unsigned threads);
  /// Serial: commit counters and invalidate the key index (rebuilt lazily
  /// at the next probe).
  void finish_merge(const TupleBatch& batch);

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    std::uint64_t id;
    std::uint64_t key;
    std::uint32_t chain_next;
    std::uint32_t key_next;
  };

  static constexpr std::uint64_t pack(std::uint32_t head,
                                      std::uint32_t count) {
    return (static_cast<std::uint64_t>(count) << 32) | head;
  }
  static constexpr std::uint32_t head_of(std::uint64_t word) {
    return static_cast<std::uint32_t>(word);
  }
  static constexpr std::uint32_t count_of(std::uint64_t word) {
    return static_cast<std::uint32_t>(word >> 32);
  }
  // pack(kNil, 0), spelled out: an in-class constexpr member cannot call
  // pack() before the class is complete.
  static constexpr std::uint64_t kEmptyChain =
      static_cast<std::uint64_t>(kNil);

  std::size_t chain_slot(std::uint64_t pos) const {
    return static_cast<std::size_t>(pos - range_.lo);
  }
  /// Contiguous position sub-range owned by merge lane `sub` of `threads`.
  std::size_t subrange_of(std::uint64_t pos, unsigned threads) const {
    return static_cast<std::size_t>((pos - range_.lo) * threads /
                                    range_.width());
  }

  void validate_positions(const TupleBatch& batch, std::size_t begin,
                          std::size_t end) const;
  /// CAS-publish entry `e` into the key index (thread-safe; capacity must
  /// already cover it).
  void index_publish(std::uint32_t e);
  std::uint32_t index_find(std::uint64_t key) const;
  /// Serial: (re)build the index sized for at least `min_keys` keys.
  void rebuild_index(std::uint64_t min_keys);

  Schema schema_;
  PosRange range_;

  std::atomic<std::uint64_t> tuple_count_{0};
  std::atomic<std::uint64_t> footprint_bytes_{0};

  // Entry slab: fixed-capacity segment store, cursor-claimed.  Grown only
  // by reserve_rows / begin_merge (serial contexts).
  std::unique_ptr<Entry[]> slab_;
  std::size_t slab_capacity_ = 0;
  std::atomic<std::uint32_t> slab_used_{0};

  // One packed {count|head} word per owned position.
  std::unique_ptr<std::atomic<std::uint64_t>[]> chains_;

  // Open-addressing key index: slot -> head entry of a same-key list.
  std::unique_ptr<std::atomic<std::uint32_t>[]> index_slots_;
  std::size_t index_slot_count_ = 0;
  std::size_t index_mask_ = 0;
  std::atomic<std::uint64_t> index_keys_{0};
  std::atomic<bool> index_built_{false};

  // Merge-mode scratch: scratch_[source_lane][target_sub] = row indices.
  std::vector<std::vector<std::vector<std::uint32_t>>> scratch_;
  std::uint32_t merge_base_ = 0;
};

}  // namespace ehja
