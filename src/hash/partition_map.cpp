#include "hash/partition_map.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ehja {

PartitionMap PartitionMap::initial(const std::vector<ActorId>& owners,
                                   std::uint64_t positions) {
  EHJA_CHECK(!owners.empty());
  PartitionMap map;
  map.positions_ = positions;
  const auto ranges =
      equal_ranges(static_cast<std::uint32_t>(owners.size()), positions);
  map.entries_.reserve(owners.size());
  for (std::size_t j = 0; j < owners.size(); ++j) {
    map.entries_.push_back(Entry{ranges[j], {owners[j]}});
  }
  map.check();
  return map;
}

PartitionMap PartitionMap::from_entries(std::vector<Entry> entries,
                                        std::uint64_t positions) {
  PartitionMap map;
  map.positions_ = positions;
  map.entries_ = std::move(entries);
  map.check();
  return map;
}

std::size_t PartitionMap::index_for(std::uint64_t pos) const {
  EHJA_CHECK(pos < positions_);
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), pos,
      [](std::uint64_t p, const Entry& e) { return p < e.range.lo; });
  EHJA_CHECK(it != entries_.begin());
  return static_cast<std::size_t>(it - entries_.begin()) - 1;
}

const PartitionMap::Entry& PartitionMap::entry_for(std::uint64_t pos) const {
  return entries_[index_for(pos)];
}

std::size_t PartitionMap::owner_slots() const {
  std::size_t slots = 0;
  for (const Entry& e : entries_) slots += e.owners.size();
  return slots;
}

void PartitionMap::split_entry(std::size_t index, std::uint64_t mid,
                               ActorId new_owner) {
  EHJA_CHECK(index < entries_.size());
  Entry& entry = entries_[index];
  EHJA_CHECK(mid > entry.range.lo && mid < entry.range.hi);
  EHJA_CHECK_MSG(entry.owners.size() == 1,
                 "cannot split a replicated range");
  Entry upper{PosRange{mid, entry.range.hi}, {new_owner}};
  entry.range.hi = mid;
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                  std::move(upper));
}

void PartitionMap::add_replica(std::size_t index, ActorId new_owner) {
  EHJA_CHECK(index < entries_.size());
  Entry& entry = entries_[index];
  // The newest replica becomes the active owner; older replicas stay for
  // the probe-phase broadcast.
  entry.owners.insert(entry.owners.begin(), new_owner);
}

void PartitionMap::replace_entry(std::size_t index,
                                 std::vector<Entry> replacements) {
  EHJA_CHECK(index < entries_.size());
  EHJA_CHECK(!replacements.empty());
  const PosRange original = entries_[index].range;
  EHJA_CHECK(replacements.front().range.lo == original.lo);
  EHJA_CHECK(replacements.back().range.hi == original.hi);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(index),
                  std::make_move_iterator(replacements.begin()),
                  std::make_move_iterator(replacements.end()));
  check();
}

std::size_t PartitionMap::wire_bytes() const {
  std::size_t bytes = 32;
  for (const Entry& e : entries_) bytes += 16 + 4 * e.owners.size();
  return bytes;
}

void PartitionMap::check() const {
  EHJA_CHECK(!entries_.empty());
  EHJA_CHECK(entries_.front().range.lo == 0);
  EHJA_CHECK(entries_.back().range.hi == positions_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    EHJA_CHECK(!entries_[i].range.empty());
    EHJA_CHECK(!entries_[i].owners.empty());
    if (i + 1 < entries_.size()) {
      EHJA_CHECK(entries_[i].range.hi == entries_[i + 1].range.lo);
    }
  }
}

}  // namespace ehja
