#include "hash/concurrent_key_index.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define EHJA_PREFETCH(p) __builtin_prefetch(p)
#define EHJA_PREFETCH_W(p) __builtin_prefetch((p), 1)
#else
#define EHJA_PREFETCH(p) ((void)0)
#define EHJA_PREFETCH_W(p) ((void)0)
#endif

namespace ehja {

namespace {

/// Comparisons a binary search over n sorted keys performs (ceil(log2)+1).
/// Must match LocalHashTable's accounting exactly -- the differential fuzz
/// test holds both tables to the same comparison totals.
std::uint64_t search_comparisons(std::size_t n) {
  std::uint64_t comparisons = 1;
  while (n > 1) {
    n >>= 1;
    ++comparisons;
  }
  return comparisons;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::size_t kPrefetchAhead = 16;

}  // namespace

ConcurrentKeyIndex::ConcurrentKeyIndex(Schema schema, PosRange range)
    : schema_(schema), range_(range) {
  EHJA_CHECK(!range.empty());
  const std::size_t width = static_cast<std::size_t>(range.width());
  chains_ = std::make_unique<std::atomic<std::uint64_t>[]>(width);
  for (std::size_t i = 0; i < width; ++i) {
    chains_[i].store(kEmptyChain, std::memory_order_relaxed);
  }
}

void ConcurrentKeyIndex::reserve_rows(std::size_t n) {
  const std::size_t used = slab_used_.load(std::memory_order_relaxed);
  const std::size_t need = used + n;
  EHJA_CHECK_MSG(need < kNil, "slab exceeds 32-bit entry ids");
  if (need > slab_capacity_) {
    const std::size_t cap = next_pow2(std::max<std::size_t>(1024, need));
    std::unique_ptr<Entry[]> grown = std::make_unique<Entry[]>(cap);
    std::copy(slab_.get(), slab_.get() + used, grown.get());
    slab_ = std::move(grown);
    slab_capacity_ = cap;
  }
  // If the index is live, concurrent inserts will publish into it; keep the
  // load factor <= 1/2 for the worst case of n all-distinct keys.
  if (index_built_.load(std::memory_order_relaxed) &&
      (index_keys_.load(std::memory_order_relaxed) + n) * 2 >
          index_slot_count_) {
    rebuild_index(tuple_count_.load(std::memory_order_relaxed) + n);
  }
}

void ConcurrentKeyIndex::validate_positions(const TupleBatch& batch,
                                            std::size_t begin,
                                            std::size_t end) const {
  const std::uint32_t* positions = batch.positions().data();
  const std::uint32_t vlo = static_cast<std::uint32_t>(range_.lo);
  const std::uint32_t vwidth = static_cast<std::uint32_t>(range_.width());
  std::uint32_t bad = 0;
  for (std::size_t i = begin; i < end; ++i) {
    bad |= static_cast<std::uint32_t>(positions[i] - vlo >= vwidth);
  }
  EHJA_CHECK_MSG(bad == 0, "rows outside owned range");
}

void ConcurrentKeyIndex::insert_rows(const TupleBatch& batch,
                                     std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  validate_positions(batch, begin, end);
  const std::size_t n = end - begin;
  const std::uint64_t* keys = batch.keys().data();
  const std::uint64_t* ids = batch.ids().data();
  const std::uint32_t* positions = batch.positions().data();
  // Claim a contiguous slab segment; reserve_rows guaranteed capacity, so
  // this never races with reallocation.
  const std::uint32_t base = slab_used_.fetch_add(
      static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  EHJA_CHECK_MSG(base + n <= slab_capacity_,
                 "insert_rows without reserve_rows");
  const bool live_index = index_built_.load(std::memory_order_relaxed);
  const std::uint64_t lo = range_.lo;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = begin + i;
    if (i + kPrefetchAhead < n) {
      EHJA_PREFETCH_W(&chains_[static_cast<std::size_t>(
          positions[row + kPrefetchAhead] - lo)]);
    }
    const std::uint32_t e = base + static_cast<std::uint32_t>(i);
    Entry& ent = slab_[e];
    ent.id = ids[row];
    ent.key = keys[row];
    ent.key_next = kNil;
    std::atomic<std::uint64_t>& c =
        chains_[static_cast<std::size_t>(positions[row] - lo)];
    std::uint64_t cur = c.load(std::memory_order_relaxed);
    do {
      ent.chain_next = head_of(cur);
    } while (!c.compare_exchange_weak(cur, pack(e, count_of(cur) + 1),
                                      std::memory_order_release,
                                      std::memory_order_relaxed));
    if (live_index) index_publish(e);
  }
  tuple_count_.fetch_add(n, std::memory_order_relaxed);
  footprint_bytes_.fetch_add(
      static_cast<std::uint64_t>(n) * tuple_footprint(schema_),
      std::memory_order_relaxed);
}

ConcurrentKeyIndex::BatchProbeResult ConcurrentKeyIndex::probe_rows(
    const TupleBatch& batch, std::size_t begin, std::size_t end,
    std::vector<Tuple>* sink) const {
  BatchProbeResult agg;
  if (begin >= end) return agg;
  agg.probed = end - begin;
  EHJA_CHECK_MSG(index_built_.load(std::memory_order_relaxed) || empty(),
                 "probe_rows without ensure_index");
  const std::uint64_t* keys = batch.keys().data();
  const std::uint64_t* ids = batch.ids().data();
  const std::uint32_t* positions = batch.positions().data();
  const bool have_index = index_built_.load(std::memory_order_relaxed);
  for (std::size_t i = begin; i < end; ++i) {
    if (i + kPrefetchAhead < end) {
      const std::uint64_t ahead = positions[i + kPrefetchAhead];
      if (range_.contains(ahead)) {
        EHJA_PREFETCH(&chains_[static_cast<std::size_t>(ahead - range_.lo)]);
      }
      if (have_index) {
        EHJA_PREFETCH(&index_slots_[SplitMix64::mix(keys[i + kPrefetchAhead]) &
                                    index_mask_]);
      }
    }
    const std::uint64_t pos = positions[i];
    EHJA_CHECK_MSG(range_.contains(pos), "probe outside owned range");
    const std::uint64_t word =
        chains_[chain_slot(pos)].load(std::memory_order_acquire);
    const std::uint32_t count = count_of(word);
    if (count == 0) {
      agg.comparisons += 1;
      continue;
    }
    agg.comparisons += search_comparisons(count);
    for (std::uint32_t e = index_find(keys[i]); e != kNil;
         e = slab_[e].key_next) {
      ++agg.matches;
      ++agg.comparisons;
      agg.checksum_delta += match_signature(slab_[e].id, ids[i]);
      if (sink) sink->push_back(Tuple{slab_[e].id, ids[i]});
    }
  }
  return agg;
}

void ConcurrentKeyIndex::ensure_index() {
  if (index_built_.load(std::memory_order_relaxed)) return;
  rebuild_index(tuple_count_.load(std::memory_order_relaxed));
  index_built_.store(true, std::memory_order_relaxed);
}

void ConcurrentKeyIndex::rebuild_index(std::uint64_t min_keys) {
  const std::size_t slots = next_pow2(
      std::max<std::size_t>(64, static_cast<std::size_t>(min_keys) * 2));
  index_slots_ = std::make_unique<std::atomic<std::uint32_t>[]>(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    index_slots_[s].store(kNil, std::memory_order_relaxed);
  }
  index_slot_count_ = slots;
  index_mask_ = slots - 1;
  index_keys_.store(0, std::memory_order_relaxed);
  const std::size_t width = static_cast<std::size_t>(range_.width());
  for (std::size_t slot = 0; slot < width; ++slot) {
    const std::uint64_t word = chains_[slot].load(std::memory_order_relaxed);
    for (std::uint32_t e = head_of(word); e != kNil;
         e = slab_[e].chain_next) {
      index_publish(e);
    }
  }
}

void ConcurrentKeyIndex::index_publish(std::uint32_t e) {
  const std::uint64_t key = slab_[e].key;
  std::size_t s = SplitMix64::mix(key) & index_mask_;
  std::uint32_t cur = index_slots_[s].load(std::memory_order_acquire);
  while (true) {
    if (cur == kNil) {
      slab_[e].key_next = kNil;
      if (index_slots_[s].compare_exchange_weak(cur, e,
                                                std::memory_order_release,
                                                std::memory_order_acquire)) {
        index_keys_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      continue;  // cur reloaded by the failed CAS
    }
    if (slab_[cur].key == key) {
      // Same key: link in front of the current head, then swing the slot.
      slab_[e].key_next = cur;
      if (index_slots_[s].compare_exchange_weak(cur, e,
                                                std::memory_order_release,
                                                std::memory_order_acquire)) {
        return;
      }
      continue;
    }
    s = (s + 1) & index_mask_;
    cur = index_slots_[s].load(std::memory_order_acquire);
  }
}

std::uint32_t ConcurrentKeyIndex::index_find(std::uint64_t key) const {
  std::size_t s = SplitMix64::mix(key) & index_mask_;
  while (true) {
    const std::uint32_t e = index_slots_[s].load(std::memory_order_acquire);
    if (e == kNil) return kNil;
    if (slab_[e].key == key) return e;
    s = (s + 1) & index_mask_;
  }
}

// --- merge mode ---

void ConcurrentKeyIndex::begin_merge(const TupleBatch& batch,
                                     unsigned threads) {
  const std::size_t n = batch.size();
  reserve_rows(n);
  validate_positions(batch, 0, n);
  merge_base_ = slab_used_.fetch_add(static_cast<std::uint32_t>(n),
                                     std::memory_order_relaxed);
  scratch_.resize(threads);
  for (auto& per_lane : scratch_) {
    per_lane.resize(threads);
    for (auto& rows : per_lane) rows.clear();
  }
}

void ConcurrentKeyIndex::scatter_rows(const TupleBatch& batch, unsigned t,
                                      unsigned threads) {
  // Same contiguous slicing as IntraPool::slice (hash/ cannot see runtime/).
  const std::size_t n = batch.size();
  const std::size_t begin = n * t / threads;
  const std::size_t end = n * (t + 1) / threads;
  const std::uint32_t* positions = batch.positions().data();
  auto& out = scratch_[t];
  for (std::size_t row = begin; row < end; ++row) {
    out[subrange_of(positions[row], threads)].push_back(
        static_cast<std::uint32_t>(row));
  }
}

void ConcurrentKeyIndex::merge_subrange(const TupleBatch& batch, unsigned sub,
                                        unsigned threads) {
  const std::uint64_t* keys = batch.keys().data();
  const std::uint64_t* ids = batch.ids().data();
  const std::uint32_t* positions = batch.positions().data();
  const std::uint64_t lo = range_.lo;
  // Lanes are drained in index order and each lane's rows are ascending, so
  // per position the pushes happen in batch order -- exactly the linkage the
  // serial insert_batch would have produced.
  for (unsigned t = 0; t < threads; ++t) {
    for (const std::uint32_t row : scratch_[t][sub]) {
      const std::uint32_t e = merge_base_ + row;
      Entry& ent = slab_[e];
      ent.id = ids[row];
      ent.key = keys[row];
      ent.key_next = kNil;
      std::atomic<std::uint64_t>& c =
          chains_[static_cast<std::size_t>(positions[row] - lo)];
      // Exclusive owner of every position in `sub`: plain RMW, no CAS.
      const std::uint64_t cur = c.load(std::memory_order_relaxed);
      ent.chain_next = head_of(cur);
      c.store(pack(e, count_of(cur) + 1), std::memory_order_relaxed);
    }
  }
}

void ConcurrentKeyIndex::finish_merge(const TupleBatch& batch) {
  const std::size_t n = batch.size();
  tuple_count_.fetch_add(n, std::memory_order_relaxed);
  footprint_bytes_.fetch_add(
      static_cast<std::uint64_t>(n) * tuple_footprint(schema_),
      std::memory_order_relaxed);
  // Merged entries bypassed index maintenance; rebuild lazily at next probe.
  index_built_.store(false, std::memory_order_relaxed);
}

// --- serial LocalHashTable-compatible API ---

void ConcurrentKeyIndex::insert(const Tuple& t) {
  TupleBatch batch;
  batch.push_back(t);
  reserve_rows(1);
  insert_rows(batch, 0, 1);
}

void ConcurrentKeyIndex::insert_batch(const TupleBatch& batch) {
  reserve_rows(batch.size());
  insert_rows(batch, 0, batch.size());
}

ConcurrentKeyIndex::ProbeResult ConcurrentKeyIndex::probe(
    const Tuple& s, std::vector<Tuple>* sink) {
  if (!empty()) ensure_index();
  TupleBatch batch;
  batch.push_back(s);
  const BatchProbeResult agg = probe_rows(batch, 0, 1, sink);
  return ProbeResult{agg.matches, agg.comparisons, agg.checksum_delta};
}

ConcurrentKeyIndex::BatchProbeResult ConcurrentKeyIndex::probe_batch(
    const TupleBatch& batch, std::vector<Tuple>* sink) {
  if (!empty()) ensure_index();
  return probe_rows(batch, 0, batch.size(), sink);
}

std::vector<Tuple> ConcurrentKeyIndex::extract_range(const PosRange& sub) {
  EHJA_CHECK(sub.lo >= range_.lo && sub.hi <= range_.hi);
  std::vector<Tuple> extracted;
  bool removed = false;
  for (std::uint64_t pos = sub.lo; pos < sub.hi; ++pos) {
    std::atomic<std::uint64_t>& c = chains_[chain_slot(pos)];
    const std::uint64_t word = c.load(std::memory_order_relaxed);
    const std::uint32_t count = count_of(word);
    if (count == 0) continue;
    // Chains link newest-first; reverse the collected segment so the
    // extracted run preserves insertion order per position.
    const std::size_t mark = extracted.size();
    for (std::uint32_t e = head_of(word); e != kNil;
         e = slab_[e].chain_next) {
      extracted.push_back(Tuple{slab_[e].id, slab_[e].key});
    }
    std::reverse(extracted.begin() + mark, extracted.end());
    tuple_count_.fetch_sub(count, std::memory_order_relaxed);
    footprint_bytes_.fetch_sub(
        static_cast<std::uint64_t>(count) * tuple_footprint(schema_),
        std::memory_order_relaxed);
    c.store(kEmptyChain, std::memory_order_relaxed);
    removed = true;
  }
  // Removed entries stay in the slab but leave the chains; the index would
  // keep resolving them, so it must be rebuilt before the next probe.
  if (removed) index_built_.store(false, std::memory_order_relaxed);
  return extracted;
}

void ConcurrentKeyIndex::set_range(const PosRange& next) {
  EHJA_CHECK(!next.empty());
  const std::size_t next_width = static_cast<std::size_t>(next.width());
  std::unique_ptr<std::atomic<std::uint64_t>[]> fresh =
      std::make_unique<std::atomic<std::uint64_t>[]>(next_width);
  for (std::size_t i = 0; i < next_width; ++i) {
    fresh[i].store(kEmptyChain, std::memory_order_relaxed);
  }
  std::uint64_t retained = 0;
  for (std::uint64_t pos = range_.lo; pos < range_.hi; ++pos) {
    const std::uint64_t word =
        chains_[chain_slot(pos)].load(std::memory_order_relaxed);
    if (count_of(word) == 0) continue;
    EHJA_CHECK_MSG(next.contains(pos),
                   "set_range would orphan retained tuples");
    retained += count_of(word);
    fresh[static_cast<std::size_t>(pos - next.lo)].store(
        word, std::memory_order_relaxed);
  }
  EHJA_CHECK(retained == tuple_count_.load(std::memory_order_relaxed));
  range_ = next;
  chains_ = std::move(fresh);
  // Every retained entry survived, so the key index (keyed by join
  // attribute, not position) remains valid.
}

BinnedHistogram ConcurrentKeyIndex::histogram(std::size_t bins) const {
  BinnedHistogram hist(range_.lo, range_.hi, bins);
  for (std::uint64_t pos = range_.lo; pos < range_.hi; ++pos) {
    const std::uint32_t count =
        count_of(chains_[chain_slot(pos)].load(std::memory_order_relaxed));
    if (count != 0) hist.add(pos, count);
  }
  return hist;
}

void ConcurrentKeyIndex::clear() {
  slab_.reset();
  slab_capacity_ = 0;
  slab_used_.store(0, std::memory_order_relaxed);
  const std::size_t width = static_cast<std::size_t>(range_.width());
  for (std::size_t i = 0; i < width; ++i) {
    chains_[i].store(kEmptyChain, std::memory_order_relaxed);
  }
  index_slots_.reset();
  index_slot_count_ = 0;
  index_mask_ = 0;
  index_keys_.store(0, std::memory_order_relaxed);
  index_built_.store(false, std::memory_order_relaxed);
  tuple_count_.store(0, std::memory_order_relaxed);
  footprint_bytes_.store(0, std::memory_order_relaxed);
}

const char* intra_mode_name(IntraMode mode) {
  switch (mode) {
    case IntraMode::kShared:
      return "shared";
    case IntraMode::kMerge:
      return "merge";
  }
  return "?";
}

}  // namespace ehja
