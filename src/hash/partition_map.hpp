// Routing table shared between the scheduler and the data sources.
//
// A PartitionMap is an ordered list of disjoint position ranges covering the
// whole position space, each owned by one or more join processes:
//   * build phase: every range has exactly one *active* owner (for a
//     replicated range, the newest replica -- the only one still accepting
//     inserts);
//   * probe phase, replication-based algorithm: a range may list several
//     owners; probe tuples for it are broadcast to all of them (paper
//     ss4.2.2 / Fig. 1c);
//   * probe phase, split/hybrid/OOC: all ranges are single-owner again.
//
// The scheduler mutates its authoritative copy and broadcasts it to the data
// sources on every expansion ("the id of node w and its hash table range is
// broadcast to the data sources", ss4.1.1); wire_bytes() is what that
// broadcast costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/hash_family.hpp"
#include "runtime/message.hpp"

namespace ehja {

class PartitionMap {
 public:
  struct Entry {
    PosRange range;
    std::vector<ActorId> owners;  // owners[0] is the active owner

    ActorId active_owner() const { return owners.front(); }
  };

  PartitionMap() = default;

  /// Initial configuration: `owners[j]` owns equal range j of owners.size().
  static PartitionMap initial(const std::vector<ActorId>& owners,
                              std::uint64_t positions = kPositionCount);

  /// Rebuild from explicit entries (must be sorted, disjoint and covering;
  /// checked).
  static PartitionMap from_entries(std::vector<Entry> entries,
                                   std::uint64_t positions = kPositionCount);

  const Entry& entry_for(std::uint64_t pos) const;
  std::size_t index_for(std::uint64_t pos) const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t positions() const { return positions_; }

  /// Total distinct owner slots (counting replicas); the probe fan-out.
  std::size_t owner_slots() const;

  /// --- scheduler-side mutations ---
  /// Split entry `index` at `mid`; the upper half goes to `new_owner`.
  void split_entry(std::size_t index, std::uint64_t mid, ActorId new_owner);
  /// Push a new active replica for the entry at `index`.
  void add_replica(std::size_t index, ActorId new_owner);
  /// Replace the owners of entry `index` (hybrid reshuffle result).
  void replace_entry(std::size_t index, std::vector<Entry> replacements);

  /// Serialized size for broadcast cost: 16 B per range + 4 B per owner.
  std::size_t wire_bytes() const;

  /// Validate invariants (sorted, disjoint, covering, non-empty owners).
  void check() const;

 private:
  std::uint64_t positions_ = kPositionCount;
  std::vector<Entry> entries_;
};

}  // namespace ehja
