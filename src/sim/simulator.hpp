// Discrete-event simulation engine.
//
// Virtual time is a double in seconds.  Events are (time, sequence) ordered:
// ties are broken by insertion order, which together with the deterministic
// RNG streams makes every run bit-identical -- the property the determinism
// test suite asserts and which lets the benches regenerate the paper's
// figures exactly on every invocation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ehja {

using SimTime = double;  // seconds of virtual time

class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::uint64_t events_pending() const { return queue_.size(); }

  /// Schedule `fn` at absolute virtual time `when` (must be >= now()).
  void schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_after(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue is empty.  Returns the final virtual time.
  SimTime run();

  /// Run until the queue is empty or virtual time would exceed `deadline`.
  /// Events past the deadline stay queued.
  SimTime run_until(SimTime deadline);

  /// Drop all pending events (used by failure-injection tests).
  void clear();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ehja
