#include "sim/simulator.hpp"

#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace ehja {

void Simulator::schedule_at(SimTime when, Callback fn) {
  EHJA_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime Simulator::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle instead (std::function copy is cheap
    // relative to the work each event performs).
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  return now_;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace ehja
