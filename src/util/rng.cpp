#include "util/rng.hpp"

#include <cmath>

namespace ehja {

double SplitMix64::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller on two uniforms; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = radius * std::sin(theta);
  have_spare_ = true;
  return radius * std::cos(theta);
}

}  // namespace ehja
