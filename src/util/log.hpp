// Minimal leveled logger.
//
// The simulator is single-threaded but the ThreadRuntime is not, so emission
// is serialized by a mutex.  Log lines can be prefixed with the virtual time
// of the emitting actor (see Context::log* in runtime/actor.hpp), which makes
// protocol traces readable as an event timeline.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ehja {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; messages below it are dropped.  Defaults to kWarn so
/// tests and benches stay quiet; examples turn it up.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when `level` would be emitted.
bool log_enabled(LogLevel level);

/// Emit one line (thread-safe).  `origin` is a short tag such as "sched" or
/// "join[3]"; pass empty for none.
void log_line(LogLevel level, std::string_view origin, std::string_view text);

namespace detail {

template <typename... Args>
void log_fmt(LogLevel level, std::string_view origin, const Args&... args) {
  if (!log_enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, origin, os.str());
}

}  // namespace detail

}  // namespace ehja

#define EHJA_LOG(level, origin, ...)                                \
  ::ehja::detail::log_fmt((level), (origin), __VA_ARGS__)
#define EHJA_TRACE(origin, ...) EHJA_LOG(::ehja::LogLevel::kTrace, origin, __VA_ARGS__)
#define EHJA_DEBUG(origin, ...) EHJA_LOG(::ehja::LogLevel::kDebug, origin, __VA_ARGS__)
#define EHJA_INFO(origin, ...) EHJA_LOG(::ehja::LogLevel::kInfo, origin, __VA_ARGS__)
#define EHJA_WARN(origin, ...) EHJA_LOG(::ehja::LogLevel::kWarn, origin, __VA_ARGS__)
#define EHJA_ERROR(origin, ...) EHJA_LOG(::ehja::LogLevel::kError, origin, __VA_ARGS__)
