// Deterministic random number generation.
//
// Every stochastic component (workload generators, tie-breaking policies)
// draws from its own SplitMix64 stream seeded from (master_seed, stream_id).
// Streams are independent of each other and of the order in which other
// streams are consumed, so a run is bit-identical regardless of actor
// interleaving -- a property the determinism tests assert.
#pragma once

#include <cstdint>

namespace ehja {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream; ideal for
/// seeding and for workload synthesis where statistical quality well beyond
/// the paper's needs is sufficient.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Derive an independent stream: hash the pair (seed, stream) once.
  SplitMix64(std::uint64_t seed, std::uint64_t stream)
      : SplitMix64(mix(seed ^ mix(stream + 0x9e3779b97f4a7c15ull))) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    return mix(state_);
  }

  /// Uniform in [0, 1).
  double next_double() {
    // 53 high-quality bits -> double mantissa.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, bound).  Bias is negligible for bound << 2^64.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// half is cached).
  double next_gaussian();

  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ehja
