// Lightweight always-on invariant checks.
//
// EHJA_CHECK aborts with a diagnostic when an invariant is violated.  The
// simulator and the join protocol lean on these heavily: a protocol bug that
// silently drops a chunk would otherwise surface only as a subtly wrong join
// cardinality much later.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ehja::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "EHJA_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " -- " : "", msg);
  std::abort();
}

}  // namespace ehja::detail

#define EHJA_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ehja::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
    }                                                                  \
  } while (0)

#define EHJA_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ehja::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (0)
