#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ehja {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view origin, std::string_view text) {
  if (!log_enabled(level)) return;
  std::scoped_lock lock(g_emit_mutex);
  if (origin.empty()) {
    std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                 static_cast<int>(text.size()), text.data());
  } else {
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
                 static_cast<int>(origin.size()), origin.data(),
                 static_cast<int>(text.size()), text.data());
  }
}

}  // namespace ehja
