// Streaming summary statistics (min / max / mean / variance) used for the
// per-node load-balance figures (paper Figs. 12-13) and by the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ehja {

class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// max/mean; 1.0 is perfect balance.  Returns 0 for an empty series.
  double imbalance() const { return mean() > 0 ? max() / mean() : 0.0; }

  std::string to_string() const;

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford
};

/// Convenience: stats over a whole vector.
RunningStats summarize(const std::vector<double>& values);
RunningStats summarize(const std::vector<std::uint64_t>& values);

}  // namespace ehja
