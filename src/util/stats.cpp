#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ehja {

void RunningStats::add(double x) {
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count_ << " min=" << min() << " mean=" << mean()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

RunningStats summarize(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats;
}

RunningStats summarize(const std::vector<std::uint64_t>& values) {
  RunningStats stats;
  for (std::uint64_t v : values) stats.add(static_cast<double>(v));
  return stats;
}

}  // namespace ehja
