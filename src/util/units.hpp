// Byte- and rate-unit helpers used throughout the cost model.
#pragma once

#include <cstdint>

namespace ehja {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// Decimal units, used for network rates (100 Mb/s Ethernet is decimal).
inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;

/// Bits-per-second to bytes-per-second.
constexpr double bits_per_sec(double bps) { return bps / 8.0; }

/// 100 Mb/s full-duplex Ethernet NIC payload rate in bytes/second (TCP/IP
/// framing eats a few percent).
inline constexpr double kFastEthernetBytesPerSec = 11.5e6;

/// Gigabit-class goodput.  The paper *states* switched 100 Mb/s Ethernet,
/// but its reported times are physically impossible at that rate (moving
/// the 10M x 100 B relations through four source NICs alone would exceed
/// most of Figure 2); the numbers are consistent with ~1 Gb/s goodput
/// (channel bonding or an unstated GigE fabric).  The cost model therefore
/// calibrates to the numbers, not the stated spec -- see EXPERIMENTS.md.
inline constexpr double kGigabitBytesPerSec = 110e6;

}  // namespace ehja
