// Fixed-width binned histogram over an integer domain.
//
// The hybrid algorithm's reshuffling step needs per-hash-position entry
// counts summed across a replica set (paper ss4.2.3).  Shipping one counter
// per position would cost megabytes, so counts are binned: `BinnedHistogram`
// covers a contiguous position range [lo, hi) with `bins` equal-width bins.
// The greedy contiguous partitioner (util/partition.hpp) then operates on the
// bin weights.
#pragma once

#include <cstdint>
#include <vector>

namespace ehja {

class BinnedHistogram {
 public:
  BinnedHistogram() = default;

  /// Covers [lo, hi) with `bins` equal-width bins.  The last bin absorbs the
  /// remainder when (hi - lo) is not divisible by `bins`.
  BinnedHistogram(std::uint64_t lo, std::uint64_t hi, std::size_t bins);

  void add(std::uint64_t position, std::uint64_t weight = 1);

  /// Element-wise sum; both histograms must have identical geometry.  This is
  /// the "global sum operation ... among the nodes that share the same hash
  /// table range" from the paper.
  void merge(const BinnedHistogram& other);

  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin_weight(std::size_t bin) const { return counts_[bin]; }
  const std::vector<std::uint64_t>& weights() const { return counts_; }
  std::uint64_t total() const { return total_; }

  /// Inclusive lower position of `bin`.
  std::uint64_t bin_lo(std::size_t bin) const;
  /// Exclusive upper position of `bin`.
  std::uint64_t bin_hi(std::size_t bin) const;
  /// Bin index covering `position` (which must lie in [lo, hi)).
  std::size_t bin_of(std::uint64_t position) const;

  /// Serialized size in bytes when sent over the network (8 B per bin plus a
  /// small header); used by the cost model.
  std::size_t wire_bytes() const { return 32 + 8 * counts_.size(); }

  bool same_geometry(const BinnedHistogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

 private:
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
  std::uint64_t width_ = 1;  // bin width; last bin may be wider
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace ehja
