// Small integer helpers shared across layers.
#pragma once

#include <cstdint>

namespace ehja {

/// Ceiling division: smallest n with n * b >= a (b > 0).  The single home
/// of the rounding used for chunk counts (relation/chunk.hpp) and
/// multi-pass out-of-core fragments (join/grace_join.cpp).
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return a == 0 ? 0 : 1 + (a - 1) / b;
}

}  // namespace ehja
