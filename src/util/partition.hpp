// Greedy contiguous partitioning of a weight sequence.
//
// Used by the hybrid algorithm's reshuffling step: "the hash table array is
// partitioned into k contiguous sub-arrays so that the total number of
// entries in each array is equal" (paper ss4.2.3).  Exact equality is rarely
// achievable, so we implement the simple greedy heuristic the paper cites: a
// left-to-right sweep that closes a part once its weight reaches the ideal
// per-part share.
#pragma once

#include <cstdint>
#include <vector>

namespace ehja {

struct PartitionResult {
  /// `cuts[i]` is the first weight index of part i+1; parts are
  /// [0, cuts[0]), [cuts[0], cuts[1]), ..., [cuts.back(), n).
  /// Always exactly parts-1 cuts (some parts may be empty).
  std::vector<std::size_t> cuts;
  /// Total weight assigned to each part.
  std::vector<std::uint64_t> part_weights;
};

/// Split `weights` into `parts` contiguous groups with near-equal weight.
/// Guarantees: exactly `parts` groups, in order, covering all indices; the
/// heaviest part exceeds the ideal share by at most the largest single
/// weight (the classic greedy bound, asserted by the property tests).
PartitionResult greedy_contiguous_partition(
    const std::vector<std::uint64_t>& weights, std::size_t parts);

}  // namespace ehja
