#include "util/partition.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace ehja {

PartitionResult greedy_contiguous_partition(
    const std::vector<std::uint64_t>& weights, std::size_t parts) {
  EHJA_CHECK(parts >= 1);
  PartitionResult result;
  result.cuts.reserve(parts - 1);
  result.part_weights.assign(parts, 0);

  const std::uint64_t total =
      std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});

  std::size_t part = 0;
  std::uint64_t closed = 0;  // weight placed into already-closed parts
  for (std::size_t i = 0; i < weights.size(); ++i) {
    // Close the current part when it has reached its fair share of what the
    // remaining parts (current included) must cover.  Using the *remaining*
    // ideal (rather than total/parts) keeps later parts from starving after
    // an oversized early bin.
    if (part + 1 < parts && result.part_weights[part] > 0) {
      const std::uint64_t remaining_total = total - closed;
      const std::size_t remaining_parts = parts - part;
      const double ideal =
          static_cast<double>(remaining_total) / remaining_parts;
      if (static_cast<double>(result.part_weights[part]) +
              static_cast<double>(weights[i]) / 2.0 >
          ideal) {
        result.cuts.push_back(i);
        closed += result.part_weights[part];
        ++part;
      }
    }
    result.part_weights[part] += weights[i];
  }
  // Pad with empty parts when the sweep used fewer than `parts` groups.
  while (result.cuts.size() + 1 < parts) {
    result.cuts.push_back(weights.size());
  }
  EHJA_CHECK(result.cuts.size() + 1 == parts);
  return result;
}

}  // namespace ehja
