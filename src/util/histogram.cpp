#include "util/histogram.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ehja {

BinnedHistogram::BinnedHistogram(std::uint64_t lo, std::uint64_t hi,
                                 std::size_t bins)
    : lo_(lo), hi_(hi) {
  EHJA_CHECK(hi > lo);
  EHJA_CHECK(bins > 0);
  const std::uint64_t span = hi - lo;
  const std::size_t effective_bins =
      static_cast<std::size_t>(std::min<std::uint64_t>(bins, span));
  width_ = span / effective_bins;
  EHJA_CHECK(width_ >= 1);
  counts_.assign(effective_bins, 0);
}

void BinnedHistogram::add(std::uint64_t position, std::uint64_t weight) {
  counts_[bin_of(position)] += weight;
  total_ += weight;
}

void BinnedHistogram::merge(const BinnedHistogram& other) {
  EHJA_CHECK_MSG(same_geometry(other), "histogram geometry mismatch in merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::uint64_t BinnedHistogram::bin_lo(std::size_t bin) const {
  EHJA_CHECK(bin < counts_.size());
  return lo_ + width_ * bin;
}

std::uint64_t BinnedHistogram::bin_hi(std::size_t bin) const {
  EHJA_CHECK(bin < counts_.size());
  return bin + 1 == counts_.size() ? hi_ : lo_ + width_ * (bin + 1);
}

std::size_t BinnedHistogram::bin_of(std::uint64_t position) const {
  EHJA_CHECK_MSG(position >= lo_ && position < hi_,
                 "position outside histogram range");
  const std::size_t bin = static_cast<std::size_t>((position - lo_) / width_);
  // Positions in the remainder tail land past the last bin; clamp them in.
  return std::min(bin, counts_.size() - 1);
}

}  // namespace ehja
