#include "runtime/thread_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace ehja {

ThreadRuntime::ThreadRuntime(ClusterSpec spec)
    : spec_(std::move(spec)),
      epoch_(std::chrono::steady_clock::now()),
      node_dead_(new std::atomic<bool>[spec_.node_count()]) {
  for (std::size_t i = 0; i < spec_.node_count(); ++i) {
    node_dead_[i].store(false, std::memory_order_relaxed);
  }
}

ThreadRuntime::~ThreadRuntime() {
  request_stop();
  join_all();
}

ActorId ThreadRuntime::spawn(NodeId node, std::unique_ptr<Actor> actor) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  Cell* cell = nullptr;
  ActorId id = kInvalidActor;
  {
    std::scoped_lock lock(registry_mutex_);
    id = static_cast<ActorId>(cells_.size());
    actor->bind(this, id, node);
    cells_.push_back(std::make_unique<Cell>());
    cells_.back()->actor = std::move(actor);
    cell = cells_.back().get();
  }
  if (running_.load(std::memory_order_acquire)) {
    start_thread(*cell);
  }
  return id;
}

void ThreadRuntime::start_thread(Cell& cell) {
  cell.thread = std::thread([this, &cell] { actor_main(cell); });
}

void ThreadRuntime::actor_main(Cell& cell) {
  std::atomic<bool>& dead =
      node_dead_[static_cast<std::size_t>(cell.actor->node())];
  if (!dead.load(std::memory_order_acquire)) cell.actor->on_start();
  while (true) {
    Message msg;
    {
      std::unique_lock lock(cell.mutex);
      cell.cv.wait(lock, [this, &cell, &dead] {
        return !cell.mailbox.empty() ||
               stop_.load(std::memory_order_acquire) ||
               dead.load(std::memory_order_acquire);
      });
      // Abrupt stop on node death: the actor never sees another message,
      // mid-protocol state and all.
      if (stop_.load(std::memory_order_acquire) ||
          dead.load(std::memory_order_acquire)) {
        return;
      }
      msg = std::move(cell.mailbox.front());
      cell.mailbox.pop_front();
    }
    cell.actor->on_message(msg);
  }
}

void ThreadRuntime::send(Actor& from, ActorId to, Message msg) {
  // A dead sender's in-progress handler may still reach send(); the message
  // dies with the machine.
  if (node_dead_[static_cast<std::size_t>(from.node())].load(
          std::memory_order_acquire)) {
    return;
  }
  Cell* cell = nullptr;
  {
    std::scoped_lock lock(registry_mutex_);
    EHJA_CHECK(to >= 0 && static_cast<std::size_t>(to) < cells_.size());
    cell = cells_[static_cast<std::size_t>(to)].get();
  }
  if (node_dead_[static_cast<std::size_t>(cell->actor->node())].load(
          std::memory_order_acquire)) {
    return;
  }
  {
    std::scoped_lock lock(cell->mutex);
    cell->mailbox.push_back(std::move(msg));
  }
  cell->cv.notify_one();
}

void ThreadRuntime::deliver_direct(ActorId to, const Message& msg) {
  Cell* cell = nullptr;
  {
    std::scoped_lock lock(registry_mutex_);
    EHJA_CHECK(to >= 0 && static_cast<std::size_t>(to) < cells_.size());
    cell = cells_[static_cast<std::size_t>(to)].get();
  }
  if (node_dead_[static_cast<std::size_t>(cell->actor->node())].load(
          std::memory_order_acquire)) {
    return;
  }
  {
    std::scoped_lock lock(cell->mutex);
    cell->mailbox.push_back(msg);
  }
  cell->cv.notify_one();
}

void ThreadRuntime::defer(Actor& from, Message msg) {
  send(from, from.id(), std::move(msg));
}

void ThreadRuntime::charge(Actor& /*from*/, double /*cpu_seconds*/) {
  // Wall-clock runtime: CPU cost is whatever the host actually spends.
}

void ThreadRuntime::defer_after(Actor& from, Message msg, double delay_sec) {
  EHJA_CHECK(delay_sec >= 0.0);
  const ActorId to = from.id();
  const NodeId src = from.node();
  const auto when = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(delay_sec));
  auto shared = std::make_shared<Message>(std::move(msg));
  enqueue_timer(when, [this, to, src, shared] {
    if (node_dead_[static_cast<std::size_t>(src)].load(
            std::memory_order_acquire)) {
      return;
    }
    deliver_direct(to, *shared);
  });
}

void ThreadRuntime::kill_node(NodeId node) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  if (node_dead_[static_cast<std::size_t>(node)].exchange(
          true, std::memory_order_acq_rel)) {
    return;
  }
  kills_executed_.fetch_add(1, std::memory_order_acq_rel);
  // Wake every actor thread on the node so it observes the death and exits.
  // Same registry -> cell lock order as send(); safe from the timer thread
  // and from an actor killing its own node mid-handler.
  std::vector<Cell*> victims;
  {
    std::scoped_lock lock(registry_mutex_);
    for (auto& cell : cells_) {
      if (cell->actor->node() == node) victims.push_back(cell.get());
    }
  }
  for (Cell* cell : victims) {
    {
      std::scoped_lock m(cell->mutex);
    }
    cell->cv.notify_all();
  }
}

void ThreadRuntime::schedule_kill(NodeId node, double at) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  EHJA_CHECK(at >= 0.0);
  const auto when =
      epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(at));
  enqueue_timer(when, [this, node] { kill_node(node); });
}

bool ThreadRuntime::node_alive(NodeId node) const {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  return !node_dead_[static_cast<std::size_t>(node)].load(
      std::memory_order_acquire);
}

void ThreadRuntime::enqueue_timer(std::chrono::steady_clock::time_point when,
                                  std::function<void()> fn) {
  {
    std::scoped_lock lock(timer_mutex_);
    timer_heap_.push_back(TimerTask{when, timer_seq_++, std::move(fn)});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                   [](const TimerTask& a, const TimerTask& b) {
                     return std::tie(b.when, b.seq) < std::tie(a.when, a.seq);
                   });
  }
  timer_cv_.notify_all();
}

void ThreadRuntime::timer_main() {
  const auto later_first = [](const TimerTask& a, const TimerTask& b) {
    return std::tie(b.when, b.seq) < std::tie(a.when, a.seq);
  };
  std::unique_lock lock(timer_mutex_);
  while (true) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto due = timer_heap_.front().when;
    if (std::chrono::steady_clock::now() < due) {
      timer_cv_.wait_until(lock, due);
      continue;  // re-evaluate: stop, an earlier task, or now due
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), later_first);
    TimerTask task = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    lock.unlock();
    task.fn();  // takes registry/cell locks; must not hold timer_mutex_
    lock.lock();
  }
}

SimTime ThreadRuntime::actor_now(const Actor& /*actor*/) const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

void ThreadRuntime::run() {
  timer_thread_ = std::thread([this] { timer_main(); });
  {
    std::scoped_lock lock(registry_mutex_);
    running_.store(true, std::memory_order_release);
    for (auto& cell : cells_) {
      if (!cell->thread.joinable()) start_thread(*cell);
    }
  }
  std::unique_lock lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_.load(std::memory_order_acquire); });
  join_all();
}

void ThreadRuntime::join_all() {
  // The timer thread goes first: once it is joined no further timed
  // deliveries or kills can race the actor joins below.
  if (timer_thread_.joinable()) timer_thread_.join();
  // Join WITHOUT holding registry_mutex_ across the join: the actor thread
  // that called request_stop() still needs that mutex to finish its own
  // notification sweep, so joining it under the lock deadlocks.  Walking by
  // index (re-reading cells_.size() each step) also picks up cells spawned
  // while earlier threads were being joined; once every thread is joined no
  // actor is left to spawn more.
  std::size_t next = 0;
  while (true) {
    Cell* cell = nullptr;
    {
      std::scoped_lock reg(registry_mutex_);
      if (next == cells_.size()) break;
      cell = cells_[next].get();
    }
    {
      std::scoped_lock m(cell->mutex);
    }
    cell->cv.notify_all();
    if (cell->thread.joinable()) cell->thread.join();
    ++next;
  }
}

void ThreadRuntime::request_stop() {
  // Idempotent and registry-lock-free on repeat calls: a second caller may
  // be an actor thread racing run()'s join loop (which holds
  // registry_mutex_), so it must not block on the registry.
  //
  // Each notification acquires (and immediately releases) the waiter's
  // mutex between setting stop_ and notifying: a waiter that evaluated its
  // wait predicate before stop_ was published is guaranteed to be blocked
  // by the time the notify fires, so the wakeup cannot be lost.
  const bool repeat = stop_.exchange(true, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(stop_mutex_);
  }
  stop_cv_.notify_all();
  {
    std::scoped_lock lock(timer_mutex_);
  }
  timer_cv_.notify_all();
  if (repeat) return;
  std::scoped_lock lock(registry_mutex_);
  for (auto& cell : cells_) {
    {
      std::scoped_lock m(cell->mutex);
    }
    cell->cv.notify_all();
  }
}

std::size_t ThreadRuntime::actor_count() const {
  std::scoped_lock lock(registry_mutex_);
  return cells_.size();
}

Actor& ThreadRuntime::actor(ActorId id) {
  std::scoped_lock lock(registry_mutex_);
  EHJA_CHECK(id >= 0 && static_cast<std::size_t>(id) < cells_.size());
  return *cells_[static_cast<std::size_t>(id)]->actor;
}

}  // namespace ehja
