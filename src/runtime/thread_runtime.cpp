#include "runtime/thread_runtime.hpp"

#include <chrono>
#include <utility>

#include "util/assert.hpp"

namespace ehja {

ThreadRuntime::ThreadRuntime(ClusterSpec spec)
    : spec_(std::move(spec)), epoch_(std::chrono::steady_clock::now()) {}

ThreadRuntime::~ThreadRuntime() {
  request_stop();
  join_all();
}

ActorId ThreadRuntime::spawn(NodeId node, std::unique_ptr<Actor> actor) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  Cell* cell = nullptr;
  ActorId id = kInvalidActor;
  {
    std::scoped_lock lock(registry_mutex_);
    id = static_cast<ActorId>(cells_.size());
    actor->bind(this, id, node);
    cells_.push_back(std::make_unique<Cell>());
    cells_.back()->actor = std::move(actor);
    cell = cells_.back().get();
  }
  if (running_.load(std::memory_order_acquire)) {
    start_thread(*cell);
  }
  return id;
}

void ThreadRuntime::start_thread(Cell& cell) {
  cell.thread = std::thread([this, &cell] { actor_main(cell); });
}

void ThreadRuntime::actor_main(Cell& cell) {
  cell.actor->on_start();
  while (true) {
    Message msg;
    {
      std::unique_lock lock(cell.mutex);
      cell.cv.wait(lock, [this, &cell] {
        return !cell.mailbox.empty() || stop_.load(std::memory_order_acquire);
      });
      if (stop_.load(std::memory_order_acquire)) return;
      msg = std::move(cell.mailbox.front());
      cell.mailbox.pop_front();
    }
    cell.actor->on_message(msg);
  }
}

void ThreadRuntime::send(Actor& /*from*/, ActorId to, Message msg) {
  Cell* cell = nullptr;
  {
    std::scoped_lock lock(registry_mutex_);
    EHJA_CHECK(to >= 0 && static_cast<std::size_t>(to) < cells_.size());
    cell = cells_[static_cast<std::size_t>(to)].get();
  }
  {
    std::scoped_lock lock(cell->mutex);
    cell->mailbox.push_back(std::move(msg));
  }
  cell->cv.notify_one();
}

void ThreadRuntime::defer(Actor& from, Message msg) {
  send(from, from.id(), std::move(msg));
}

void ThreadRuntime::charge(Actor& /*from*/, double /*cpu_seconds*/) {
  // Wall-clock runtime: CPU cost is whatever the host actually spends.
}

SimTime ThreadRuntime::actor_now(const Actor& /*actor*/) const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

void ThreadRuntime::run() {
  {
    std::scoped_lock lock(registry_mutex_);
    running_.store(true, std::memory_order_release);
    for (auto& cell : cells_) {
      if (!cell->thread.joinable()) start_thread(*cell);
    }
  }
  std::unique_lock lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_.load(std::memory_order_acquire); });
  join_all();
}

void ThreadRuntime::join_all() {
  // Join WITHOUT holding registry_mutex_ across the join: the actor thread
  // that called request_stop() still needs that mutex to finish its own
  // notification sweep, so joining it under the lock deadlocks.  Walking by
  // index (re-reading cells_.size() each step) also picks up cells spawned
  // while earlier threads were being joined; once every thread is joined no
  // actor is left to spawn more.
  std::size_t next = 0;
  while (true) {
    Cell* cell = nullptr;
    {
      std::scoped_lock reg(registry_mutex_);
      if (next == cells_.size()) break;
      cell = cells_[next].get();
    }
    {
      std::scoped_lock m(cell->mutex);
    }
    cell->cv.notify_all();
    if (cell->thread.joinable()) cell->thread.join();
    ++next;
  }
}

void ThreadRuntime::request_stop() {
  // Idempotent and registry-lock-free on repeat calls: a second caller may
  // be an actor thread racing run()'s join loop (which holds
  // registry_mutex_), so it must not block on the registry.
  //
  // Each notification acquires (and immediately releases) the waiter's
  // mutex between setting stop_ and notifying: a waiter that evaluated its
  // wait predicate before stop_ was published is guaranteed to be blocked
  // by the time the notify fires, so the wakeup cannot be lost.
  const bool repeat = stop_.exchange(true, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(stop_mutex_);
  }
  stop_cv_.notify_all();
  if (repeat) return;
  std::scoped_lock lock(registry_mutex_);
  for (auto& cell : cells_) {
    {
      std::scoped_lock m(cell->mutex);
    }
    cell->cv.notify_all();
  }
}

std::size_t ThreadRuntime::actor_count() const {
  std::scoped_lock lock(registry_mutex_);
  return cells_.size();
}

Actor& ThreadRuntime::actor(ActorId id) {
  std::scoped_lock lock(registry_mutex_);
  EHJA_CHECK(id >= 0 && static_cast<std::size_t>(id) < cells_.size());
  return *cells_[static_cast<std::size_t>(id)]->actor;
}

}  // namespace ehja
