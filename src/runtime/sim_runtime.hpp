// Deterministic discrete-event runtime.
//
// Executes actors in virtual time.  Each node processes one handler at a
// time: a message arriving at time T starts executing at max(T, node busy
// time); charge() advances the handler's effective clock; sends leave at the
// effective clock and acquire NIC time from the NetworkModel.  Handlers run
// atomically at their arrival event, with busy-time bookkeeping keeping the
// logical timeline consistent (see the runtime tests for the ordering
// properties this guarantees).
//
// Determinism: single-threaded, tie-broken event queue, no wall-clock or
// entropy inputs => every run is bit-identical, which is what lets the
// benches regenerate the paper's figures exactly.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "net/network.hpp"
#include "runtime/actor.hpp"
#include "sim/simulator.hpp"

namespace ehja {

class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(ClusterSpec spec);

  ActorId spawn(NodeId node, std::unique_ptr<Actor> actor) override;
  void send(Actor& from, ActorId to, Message msg) override;
  void defer(Actor& from, Message msg) override;
  void charge(Actor& from, double cpu_seconds) override;
  SimTime actor_now(const Actor& actor) const override;
  void defer_after(Actor& from, Message msg, double delay_sec) override;
  void kill_node(NodeId node) override;
  void schedule_kill(NodeId node, double at) override;
  bool node_alive(NodeId node) const override;
  std::uint32_t kills_executed() const override { return kills_executed_; }
  void run() override;
  void request_stop() override;
  const ClusterSpec& cluster() const override { return spec_; }
  std::size_t actor_count() const override { return actors_.size(); }
  Actor& actor(ActorId id) override;

  /// Virtual time at which the last processed event's handler finished.
  SimTime now() const { return sim_.now(); }
  const NetworkModel& network() const { return network_; }
  Simulator& simulator() { return sim_; }

  /// Fixed cost of instantiating a join process on a new node (process
  /// startup + connection setup); the scheduler pays it on each expansion.
  static constexpr double kSpawnLatencySec = 5e-3;

 private:
  void deliver(ActorId to, Message msg, SimTime arrival, NodeId src_node);
  void execute(Actor& target, SimTime ready,
               const std::function<void()>& body);

  ClusterSpec spec_;
  Simulator sim_;
  NetworkModel network_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<SimTime> node_busy_until_;
  /// Fail-stop flags: a dead node executes no handlers, and messages whose
  /// sender or receiver node is dead vanish at delivery time (the wire and
  /// kernel buffers died with the machine).
  std::vector<char> node_dead_;
  std::uint32_t kills_executed_ = 0;
  Actor* executing_ = nullptr;
  SimTime exec_time_ = 0.0;
  bool stopped_ = false;
};

}  // namespace ehja
