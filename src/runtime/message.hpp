// Typed messages exchanged between actors.
//
// A Message carries an integer tag (the core layer defines an enum over it),
// a shared immutable payload, and a wire size used by the network cost
// model.  Payloads are shared_ptr<const any> so that a broadcast reuses one
// allocation across all recipients -- important when a probe chunk fans out
// to every replica of a hash range.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/assert.hpp"

namespace ehja {

using ActorId = std::int32_t;
inline constexpr ActorId kInvalidActor = -1;

/// Wire size of a bare control message (header + a few fields).
inline constexpr std::size_t kControlWireBytes = 48;

struct Message {
  int tag = 0;
  ActorId from = kInvalidActor;
  std::size_t wire_bytes = kControlWireBytes;
  std::shared_ptr<const std::any> payload;

  bool has_payload() const { return payload != nullptr; }

  /// Typed access; aborts on tag/type confusion (protocol bug).
  template <typename T>
  const T& as() const {
    EHJA_CHECK_MSG(payload != nullptr, "message has no payload");
    const T* value = std::any_cast<T>(payload.get());
    EHJA_CHECK_MSG(value != nullptr, "message payload type mismatch");
    return *value;
  }
};

/// Build a message carrying `value`.
template <typename Tag, typename T>
Message make_message(Tag tag, T value, std::size_t wire_bytes) {
  Message msg;
  msg.tag = static_cast<int>(tag);
  msg.wire_bytes = wire_bytes;
  msg.payload = std::make_shared<const std::any>(std::move(value));
  return msg;
}

/// Build a payload-free control message.
template <typename Tag>
Message make_signal(Tag tag, std::size_t wire_bytes = kControlWireBytes) {
  Message msg;
  msg.tag = static_cast<int>(tag);
  msg.wire_bytes = wire_bytes;
  return msg;
}

}  // namespace ehja
