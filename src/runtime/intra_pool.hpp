// Intra-node fork-join thread pool.
//
// One join process historically drove its partition table with the single
// thread its actor runs on; IntraPool is the "additional resource" *inside*
// a node -- a fixed crew of workers that fan one TupleBatch out across
// cores during build and probe (DESIGN.md §11).
//
// The shape is deliberately minimal: run(body) executes body(t) for every
// t in [0, threads) and returns when all of them finished.  The calling
// thread participates as lane 0, so a pool of N threads spawns only N-1
// workers and a pool of 1 degenerates to a plain call with no
// synchronization at all.  run() is not reentrant and must always be
// called from the owning thread (the join actor's message handler) -- the
// actor model already serializes everything around it, so the pool carries
// no job queue, no futures, no work stealing.
//
// The mutex/condvar handshake doubles as the memory fence between fork-join
// regions: everything lane t wrote in one run() happens-before everything
// any lane reads in the next, which is what lets ConcurrentKeyIndex do its
// serial bookkeeping (capacity growth, index rebuilds) between regions
// with plain loads and stores.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ehja {

class IntraPool {
 public:
  /// Spawns `threads - 1` workers; `threads` must be >= 1.
  explicit IntraPool(unsigned threads);
  ~IntraPool();

  IntraPool(const IntraPool&) = delete;
  IntraPool& operator=(const IntraPool&) = delete;

  unsigned threads() const { return threads_; }

  /// Execute body(t) for every lane t in [0, threads); the caller runs
  /// lane 0.  Returns after every lane finished.  body must not throw and
  /// must not call run() recursively.
  void run(const std::function<void(unsigned)>& body);

  /// Lane t's half-open slice of [0, n): the canonical way callers cut a
  /// batch so every lane sees the same contiguous rows at every call.
  static std::pair<std::size_t, std::size_t> slice(std::size_t n,
                                                   unsigned threads,
                                                   unsigned t) {
    return {n * t / threads, n * (t + 1) / threads};
  }

 private:
  void worker_main(unsigned lane);

  const unsigned threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned done_ = 0;  // workers finished this generation
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ehja
