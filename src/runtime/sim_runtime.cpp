#include "runtime/sim_runtime.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

SimRuntime::SimRuntime(ClusterSpec spec)
    : spec_(std::move(spec)),
      network_(spec_.node_count(), spec_.link),
      node_busy_until_(spec_.node_count(), 0.0),
      node_dead_(spec_.node_count(), 0) {}

ActorId SimRuntime::spawn(NodeId node, std::unique_ptr<Actor> actor) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  const ActorId id = static_cast<ActorId>(actors_.size());
  actor->bind(this, id, node);
  actors_.push_back(std::move(actor));
  Actor* raw = actors_.back().get();
  // Spawned from inside a handler: the new process starts after a setup
  // latency relative to the spawner's effective clock.  Spawned from the
  // driver before run(): starts at time zero.
  const SimTime start_at =
      executing_ != nullptr ? exec_time_ + kSpawnLatencySec : sim_.now();
  sim_.schedule_at(start_at, [this, raw, start_at] {
    execute(*raw, start_at, [raw] { raw->on_start(); });
  });
  return id;
}

void SimRuntime::send(Actor& from, ActorId to, Message msg) {
  EHJA_CHECK(to >= 0 && static_cast<std::size_t>(to) < actors_.size());
  EHJA_CHECK_MSG(&from == executing_ || executing_ == nullptr,
                 "send() outside the sender's own handler");
  const SimTime ready = executing_ != nullptr ? exec_time_ : sim_.now();
  const NodeId src = from.node();
  const NodeId dst = actors_[static_cast<std::size_t>(to)]->node();
  const NetworkModel::Delivery plan =
      network_.plan(src, dst, msg.wire_bytes, ready);
  // Blocking (synchronous) send semantics: the sender's handler resumes when
  // the NIC has taken the message.  This is both how the 2004 TCP stack
  // behaved under a full send window and the flow control that keeps a fast
  // generator from queueing its entire relation as in-flight events.
  if (executing_ == &from) {
    exec_time_ = std::max(exec_time_, plan.tx_done);
  }
  deliver(to, std::move(msg), plan.arrival, src);
}

void SimRuntime::defer(Actor& from, Message msg) {
  const SimTime ready = executing_ != nullptr ? exec_time_ : sim_.now();
  deliver(from.id(), std::move(msg), ready, from.node());
}

void SimRuntime::defer_after(Actor& from, Message msg, double delay_sec) {
  EHJA_CHECK(delay_sec >= 0.0);
  const SimTime ready = executing_ != nullptr ? exec_time_ : sim_.now();
  msg.from = from.id();
  deliver(from.id(), std::move(msg), ready + delay_sec, from.node());
}

void SimRuntime::deliver(ActorId to, Message msg, SimTime arrival,
                         NodeId src_node) {
  Actor* target = actors_[static_cast<std::size_t>(to)].get();
  auto shared = std::make_shared<Message>(std::move(msg));
  sim_.schedule_at(arrival, [this, target, shared, arrival, src_node] {
    // Fail-stop check at delivery time: a message in flight when either
    // endpoint died is lost with the machine.
    if (node_dead_[static_cast<std::size_t>(target->node())]) return;
    if (src_node >= 0 && node_dead_[static_cast<std::size_t>(src_node)]) {
      return;
    }
    execute(*target, arrival,
            [target, shared] { target->on_message(*shared); });
  });
}

void SimRuntime::kill_node(NodeId node) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  char& dead = node_dead_[static_cast<std::size_t>(node)];
  if (dead) return;
  dead = 1;
  ++kills_executed_;
}

void SimRuntime::schedule_kill(NodeId node, double at) {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  EHJA_CHECK(at >= sim_.now());
  sim_.schedule_at(at, [this, node] { kill_node(node); });
}

bool SimRuntime::node_alive(NodeId node) const {
  EHJA_CHECK(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count());
  return !node_dead_[static_cast<std::size_t>(node)];
}

void SimRuntime::execute(Actor& target, SimTime ready,
                         const std::function<void()>& body) {
  if (stopped_) return;
  if (node_dead_[static_cast<std::size_t>(target.node())]) return;
  EHJA_CHECK_MSG(executing_ == nullptr, "re-entrant handler execution");
  SimTime& busy = node_busy_until_[static_cast<std::size_t>(target.node())];
  executing_ = &target;
  exec_time_ = std::max(ready, busy);
  body();
  busy = exec_time_;
  executing_ = nullptr;
  // Consumer-paced admission: while this node was busy it was not draining
  // its receive buffers, so its RX side stays occupied until now and
  // senders targeting it block -- the backpressure that makes a disk-bound
  // node throttle its producers.
  network_.stall_rx(target.node(), busy);
}

void SimRuntime::charge(Actor& from, double cpu_seconds) {
  EHJA_CHECK_MSG(&from == executing_, "charge() outside the actor's handler");
  EHJA_CHECK(cpu_seconds >= 0.0);
  const double scale = spec_.node(from.node()).cpu_scale * spec_.cost.cpu_scale;
  exec_time_ += cpu_seconds / scale;
}

SimTime SimRuntime::actor_now(const Actor& actor) const {
  return &actor == executing_ ? exec_time_ : sim_.now();
}

void SimRuntime::run() {
  sim_.run();
}

void SimRuntime::request_stop() {
  stopped_ = true;
  sim_.clear();
}

Actor& SimRuntime::actor(ActorId id) {
  EHJA_CHECK(id >= 0 && static_cast<std::size_t>(id) < actors_.size());
  return *actors_[static_cast<std::size_t>(id)];
}

}  // namespace ehja
