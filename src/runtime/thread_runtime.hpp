// Real-thread runtime.
//
// Runs the same actor code as SimRuntime on one thread per actor with
// mutex-protected mailboxes.  There is no virtual time and no cost model --
// charge() is a no-op and now() is wall-clock -- so it produces no figures;
// its purpose is to demonstrate that the join protocol contains no hidden
// reliance on the DES's cooperative scheduling: the integration tests run
// every algorithm on both runtimes and require identical join results.
//
// Termination: unlike the DES (which stops when the event queue drains), a
// thread runtime cannot observe global quiescence cheaply, so the protocol's
// natural completion point calls Runtime::request_stop() (the driver's
// scheduler does this when the probe phase finishes).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class ThreadRuntime final : public Runtime {
 public:
  explicit ThreadRuntime(ClusterSpec spec);
  ~ThreadRuntime() override;

  ActorId spawn(NodeId node, std::unique_ptr<Actor> actor) override;
  void send(Actor& from, ActorId to, Message msg) override;
  void defer(Actor& from, Message msg) override;
  void charge(Actor& from, double cpu_seconds) override;
  SimTime actor_now(const Actor& actor) const override;
  void defer_after(Actor& from, Message msg, double delay_sec) override;
  void kill_node(NodeId node) override;
  void schedule_kill(NodeId node, double at) override;
  bool node_alive(NodeId node) const override;
  std::uint32_t kills_executed() const override {
    return kills_executed_.load(std::memory_order_acquire);
  }
  void run() override;
  void request_stop() override;
  const ClusterSpec& cluster() const override { return spec_; }
  std::size_t actor_count() const override;
  Actor& actor(ActorId id) override;

 private:
  struct Cell {
    std::unique_ptr<Actor> actor;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> mailbox;
    std::thread thread;
  };

  /// One pending timer-thread action (a delayed self-message or a scheduled
  /// kill).  Kept in a sorted min-heap keyed by (when, seq).
  struct TimerTask {
    std::chrono::steady_clock::time_point when;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void actor_main(Cell& cell);
  void start_thread(Cell& cell);
  void join_all();
  void timer_main();
  void enqueue_timer(std::chrono::steady_clock::time_point when,
                     std::function<void()> fn);
  /// Mailbox push without a live sender reference (timer-thread delivery).
  void deliver_direct(ActorId to, const Message& msg);

  ClusterSpec spec_;
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::chrono::steady_clock::time_point epoch_;

  /// Fail-stop flags, one per node (fixed size: nodes never appear at
  /// runtime).  A dead node's actor threads exit, and send()/delivery drops
  /// messages touching the node.
  std::unique_ptr<std::atomic<bool>[]> node_dead_;
  std::atomic<std::uint32_t> kills_executed_{0};

  /// Timer thread: fires defer_after() self-messages and scheduled kills.
  /// Started by run(); stopped and joined with the actor threads.
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<TimerTask> timer_heap_;
  std::uint64_t timer_seq_ = 0;
  std::thread timer_thread_;
};

}  // namespace ehja
