#include "runtime/message.hpp"

// Message is header-only; this translation unit anchors the module.
