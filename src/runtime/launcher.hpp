// Worker-process launcher for the socket runtime.
//
// The coordinator forks one OS process per remote cluster node by
// re-executing its own binary (/proc/self/exe) in worker mode
// (`--ehja-worker=<node> --ehja-coordinator-port=<port>`; the binary's
// main() hands such invocations to maybe_run_socket_worker() before doing
// anything else).  The launcher owns the pid table and is the single place
// that reaps children, which is how a *real* process death is folded into
// the existing fail-stop model: SocketRuntime turns every unexpected exit
// reported by reap() into the same node-dead state a FaultPlan kill
// produces, so the PR-2 heartbeat detector and RecoveryManager run
// unchanged whether the node died from an injected SIGKILL or a genuine
// crash.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace ehja {

/// Absolute path of the currently executing binary (/proc/self/exe).
std::string self_exe_path();

class Launcher {
 public:
  /// One reaped child.  `status` is the raw waitpid() status; `sigkilled`
  /// decodes the one exit cause the fault plan injects.
  struct Exit {
    NodeId node = -1;
    pid_t pid = -1;
    int status = 0;
    bool sigkilled = false;
  };

  Launcher() = default;
  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;
  /// Destruction must not leak children: any still-running worker is
  /// SIGKILLed and reaped.
  ~Launcher();

  /// Fork/exec one worker for `node`, phoning home to the coordinator's
  /// loopback `port`.  The child gets PDEATHSIG=SIGKILL so a crashed
  /// coordinator cannot leak workers.  Aborts on fork/exec failure.
  void spawn_worker(NodeId node, std::uint16_t port);

  /// Non-blocking reap of exited workers (call once per event-loop turn).
  std::vector<Exit> reap();

  /// SIGKILL the worker hosting `node` (fault injection: the time-triggered
  /// FaultPlan path).  No-op if it already exited.
  void kill_worker(NodeId node);

  /// True while `node`'s process has not been reaped.
  bool worker_running(NodeId node) const;

  /// Graceful teardown: give every worker `grace_sec` to exit on its own
  /// (they exit on the wire SHUTDOWN frame), then SIGKILL stragglers; reaps
  /// everything either way.
  void shutdown_all(double grace_sec);

  std::size_t spawned() const { return workers_.size(); }

 private:
  struct Worker {
    NodeId node = -1;
    pid_t pid = -1;
    bool exited = false;
  };

  Worker* find(NodeId node);
  const Worker* find(NodeId node) const;

  std::vector<Worker> workers_;
};

}  // namespace ehja
