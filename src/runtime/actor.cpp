#include "runtime/actor.hpp"

// Actor/Runtime interfaces are header-only; this anchors the module.
