#include "runtime/socket_runtime.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "core/data_source.hpp"
#include "core/join_process.hpp"
#include "net/framed_conn.hpp"
#include "net/wire.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

// The connection plumbing (Conn, listeners, frame cutting) lives in
// net/framed_conn.{hpp,cpp} now, shared with the serve layer's client links.
using netio::adopt_fd;
using netio::Conn;
using netio::connect_loopback;
using netio::flush_out;
using netio::make_listener;
using netio::must_flush;
using netio::must_recv_frame;
using netio::next_frame;
using netio::queue_frame;
using netio::read_available;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kLocalBatch = 64;
constexpr int kIdlePollMs = 50;
constexpr double kHandshakeTimeoutSec = 60.0;
constexpr std::uint64_t kFirstIncarnation = 1;

// --- control frame bodies ---

std::vector<std::uint8_t> hello_body(NodeId node, std::uint16_t port,
                                     std::uint64_t incarnation) {
  wire::Writer w;
  w.zigzag(node);
  w.varint(port);
  w.varint(incarnation);
  return w.take();
}

struct HelloInfo {
  NodeId node = -1;
  std::uint16_t port = 0;
  std::uint64_t incarnation = 0;
};

HelloInfo parse_hello(const wire::Frame& f, const char* what) {
  wire::Reader r(f.body);
  HelloInfo h;
  h.node = static_cast<NodeId>(r.zigzag());
  const std::uint64_t port = r.varint();
  h.incarnation = r.varint();
  EHJA_CHECK_MSG(r.ok() && r.remaining() == 0 && port <= 0xffff,
                 (std::string("corrupt ") + what).c_str());
  h.port = static_cast<std::uint16_t>(port);
  return h;
}

std::vector<std::uint8_t> announce_body(ActorId id, NodeId owner) {
  wire::Writer w;
  w.zigzag(id);
  w.zigzag(owner);
  return w.take();
}

std::vector<std::uint8_t> node_dead_body(NodeId node) {
  wire::Writer w;
  w.zigzag(node);
  return w.take();
}

void queue_msg_frame(Conn& c, ActorId to, const Message& msg) {
  if (!c.usable()) return;
  wire::Writer w;
  w.zigzag(to);
  w.varint(c.next_send_seq++);
  wire::encode_message(msg, w);
  wire::append_frame(c.out, wire::FrameKind::kActorMsg, w.data());
}

struct DecodedMsg {
  ActorId to = kInvalidActor;
  std::uint64_t seq = 0;
  Message msg;
};

DecodedMsg parse_msg_frame(const wire::Frame& f) {
  wire::Reader r(f.body);
  DecodedMsg d;
  d.to = static_cast<ActorId>(r.zigzag());
  d.seq = r.varint();
  const bool ok = wire::decode_message(r, d.msg);
  EHJA_CHECK_MSG(ok && r.ok() && r.remaining() == 0,
                 "corrupt actor-message frame");
  return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

SocketRuntime::SocketRuntime(ClusterSpec spec, const EhjaConfig& config)
    : spec_(std::move(spec)), config_(config) {
  ::signal(SIGPIPE, SIG_IGN);
  const std::size_t total = spec_.node_count();
  EHJA_CHECK_MSG(total >= 1, "socket runtime needs at least one node");
  node_dead_.assign(total, 0);
  conns_.resize(total);

  std::uint16_t port = 0;
  listen_fd_ = make_listener(port);
  for (std::size_t n = 1; n < total; ++n) {
    launcher_.spawn_worker(static_cast<NodeId>(n), port);
  }
  handshake(port);
}

SocketRuntime::~SocketRuntime() {
  shutdown_cluster();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketRuntime::handshake(std::uint16_t /*port*/) {
  const std::size_t total = spec_.node_count();
  const std::size_t workers = total - 1;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(kHandshakeTimeoutSec));
  auto check_progress = [&] {
    const auto exits = launcher_.reap();
    EHJA_CHECK_MSG(exits.empty(), "worker process died during handshake");
    EHJA_CHECK_MSG(Clock::now() < deadline, "cluster handshake timed out");
  };

  // Phase 1: collect one HELLO per worker (arrival order is arbitrary).
  std::vector<std::uint16_t> mesh_port(total, 0);
  std::vector<std::unique_ptr<Conn>> unnamed;
  std::size_t identified = 0;
  while (identified < workers) {
    check_progress();
    std::vector<pollfd> pfds;
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& c : unnamed) pfds.push_back({c->fd, POLLIN, 0});
    ::poll(pfds.data(), pfds.size(), 100);
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      unnamed.push_back(adopt_fd(fd));
    }
    for (auto& c : unnamed) {
      if (!c) continue;
      read_available(*c);
      EHJA_CHECK_MSG(!c->eof && !c->broken, "worker hung up during handshake");
      wire::Frame f;
      if (!next_frame(*c, f)) continue;
      EHJA_CHECK_MSG(f.kind == wire::FrameKind::kHello,
                     "expected HELLO from worker");
      const HelloInfo h = parse_hello(f, "HELLO");
      EHJA_CHECK_MSG(h.node >= 1 && static_cast<std::size_t>(h.node) < total,
                     "HELLO from unknown node");
      EHJA_CHECK_MSG(conns_[h.node] == nullptr, "duplicate HELLO for node");
      EHJA_CHECK_MSG(h.incarnation == kFirstIncarnation,
                     "HELLO carries unexpected incarnation epoch");
      c->peer = h.node;
      mesh_port[h.node] = h.port;
      conns_[h.node] = std::move(c);
      ++identified;
    }
    unnamed.erase(std::remove(unnamed.begin(), unnamed.end(), nullptr),
                  unnamed.end());
  }

  // Phase 2: WELCOME (the run config) + PEERS (the mesh table) to everyone.
  wire::Writer cw;
  wire::encode_config(config_, cw);
  const std::vector<std::uint8_t> config_body = cw.take();
  for (std::size_t n = 1; n < total; ++n) {
    Conn& c = *conns_[n];
    queue_frame(c, wire::FrameKind::kWelcome, config_body);
    wire::Writer pw;
    pw.varint(workers - 1);
    for (std::size_t m = 1; m < total; ++m) {
      if (m == n) continue;
      pw.zigzag(static_cast<NodeId>(m));
      pw.varint(mesh_port[m]);
    }
    queue_frame(c, wire::FrameKind::kPeers, pw.data());
  }

  // Phase 3: wait for every worker's READY (mesh established).
  std::size_t ready = 0;
  while (ready < workers) {
    check_progress();
    std::vector<pollfd> pfds;
    std::vector<NodeId> which;
    for (std::size_t n = 1; n < total; ++n) {
      Conn& c = *conns_[n];
      short ev = POLLIN;
      if (c.wants_write()) ev |= POLLOUT;
      pfds.push_back({c.fd, ev, 0});
      which.push_back(static_cast<NodeId>(n));
    }
    ::poll(pfds.data(), pfds.size(), 100);
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      Conn& c = *conns_[which[i]];
      flush_out(c);
      read_available(c);
      EHJA_CHECK_MSG(!c.eof && !c.broken, "worker hung up during handshake");
      wire::Frame f;
      while (next_frame(c, f)) {
        EHJA_CHECK_MSG(f.kind == wire::FrameKind::kReady,
                       "expected READY from worker");
        EHJA_CHECK_MSG(f.body.empty(), "corrupt READY");
        ++ready;
      }
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  EHJA_DEBUG("socket", "cluster up: ", workers, " worker processes");
}

ActorId SocketRuntime::spawn(NodeId node, std::unique_ptr<Actor> actor) {
  EHJA_CHECK_MSG(node >= 0 && static_cast<std::size_t>(node) < spec_.node_count(),
                 "spawn: node out of range");
  EHJA_CHECK_MSG(node_alive(node), "spawn on a dead node");
  const ActorId id = static_cast<ActorId>(actors_.size());
  route_.push_back(node);
  if (node == 0) {
    actor->bind(this, id, node);
    Actor* raw = actor.get();
    actors_.push_back(std::move(actor));
    broadcast_announce(id, node);
    // Always via the start queue: a mid-run spawn (the serving layer starts
    // whole queries from the idle hook) must not run on_start() before its
    // query finishes wiring -- the scheduler's on_start needs its pool.
    start_q_.push_back(raw);
  } else {
    const std::optional<RemoteSpawnSpec> spec = actor->remote_spawn_spec();
    EHJA_CHECK_MSG(spec.has_value(),
                   "actor kind cannot be re-instantiated in a worker process");
    // Park the instance (unbound) so actor(id) stays total; the live copy
    // runs in the worker.
    actors_.push_back(std::move(actor));
    const std::uint32_t config_id = ship_config(node, spec->config);
    wire::Writer w;
    w.zigzag(id);
    w.u8(static_cast<std::uint8_t>(spec->kind));
    w.varint(spec->source_index);
    w.zigzag(spec->scheduler);
    w.varint(config_id);
    queue_frame(*conns_[node], wire::FrameKind::kSpawn, w.data());
    broadcast_announce(id, node);
  }
  return id;
}

std::uint32_t SocketRuntime::ship_config(
    NodeId node, const std::shared_ptr<const EhjaConfig>& config) {
  // Id 0 is the handshake config every worker already holds.  Classic runs
  // always land here: the driver builds all actors from the one config it
  // passed to the runtime constructor.
  if (config == nullptr || config.get() == &config_) return 0;
  std::uint32_t id;
  const auto it = config_ids_.find(config.get());
  if (it != config_ids_.end()) {
    id = it->second;
  } else {
    id = next_config_id_++;
    config_ids_.emplace(config.get(), id);
    ShippedConfig shipped;
    shipped.config = config;
    wire::Writer w;
    w.varint(id);
    wire::encode_config(*config, w);
    shipped.body = w.take();
    shipped_configs_.emplace(id, std::move(shipped));
  }
  ShippedConfig& shipped = shipped_configs_.at(id);
  if (shipped.holders.insert(node).second && conns_[node]) {
    queue_frame(*conns_[node], wire::FrameKind::kQueryConfig, shipped.body);
  }
  return id;
}

void SocketRuntime::retire_actor(ActorId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= route_.size()) return;
  if (!retired_.insert(id).second) return;
  actors_[id].reset();  // the local instance or the parked remote copy
  // Everyone (owner included) forgets the actor; stragglers in flight are
  // dropped at whichever hop sees the tombstone first.
  wire::Writer w;
  w.zigzag(id);
  for (std::size_t n = 1; n < conns_.size(); ++n) {
    if (node_dead_[n] || !conns_[n]) continue;
    queue_frame(*conns_[n], wire::FrameKind::kRetire, w.data());
  }
}

void SocketRuntime::watch_fd(int fd, std::function<void()> on_event) {
  EHJA_CHECK(fd >= 0 && on_event != nullptr);
  watched_fds_[fd] = std::move(on_event);
}

void SocketRuntime::unwatch_fd(int fd) { watched_fds_.erase(fd); }

void SocketRuntime::broadcast_announce(ActorId id, NodeId owner) {
  const std::vector<std::uint8_t> body = announce_body(id, owner);
  for (std::size_t n = 1; n < spec_.node_count(); ++n) {
    if (static_cast<NodeId>(n) == owner || node_dead_[n] || !conns_[n]) continue;
    queue_frame(*conns_[n], wire::FrameKind::kAnnounce, body);
  }
}

void SocketRuntime::send(Actor& from, ActorId to, Message msg) {
  EHJA_CHECK_MSG(to >= 0 && static_cast<std::size_t>(to) < route_.size(),
                 "send to unknown actor");
  if (!node_alive(from.node())) return;
  if (retired_.count(to) != 0) return;  // finished query; traffic is void
  const NodeId dst = route_[to];
  if (dst == 0) {
    local_q_.push_back(Inbound{to, from.node(), std::move(msg)});
    return;
  }
  if (!node_alive(dst) || !conns_[dst]) return;  // fail-stop: drop silently
  queue_msg_frame(*conns_[dst], to, msg);
}

void SocketRuntime::defer(Actor& from, Message msg) {
  local_q_.push_back(Inbound{from.id(), from.node(), std::move(msg)});
}

void SocketRuntime::charge(Actor& /*from*/, double /*cpu_seconds*/) {
  // Wall-clock runtime: CPU cost is whatever the hardware does.
}

SimTime SocketRuntime::actor_now(const Actor& /*actor*/) const {
  return now_sec();
}

void SocketRuntime::defer_after(Actor& from, Message msg, double delay_sec) {
  const ActorId id = from.id();
  const NodeId node = from.node();
  auto shared = std::make_shared<Message>(std::move(msg));
  enqueue_timer(delay_sec, [this, id, node, shared] {
    local_q_.push_back(Inbound{id, node, *shared});
  });
}

void SocketRuntime::kill_node(NodeId node) {
  EHJA_CHECK_MSG(node != 0, "cannot kill the coordinator node");
  if (!node_alive(node)) return;
  launcher_.kill_worker(node);  // death surfaces through reap()
}

void SocketRuntime::schedule_kill(NodeId node, double at) {
  EHJA_CHECK_MSG(node != 0, "cannot kill the coordinator node");
  enqueue_timer(at, [this, node] {
    if (node_alive(node)) launcher_.kill_worker(node);
  });
}

bool SocketRuntime::node_alive(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= node_dead_.size()) {
    return false;
  }
  return !node_dead_[node];
}

Actor& SocketRuntime::actor(ActorId id) {
  EHJA_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < actors_.size(),
                 "actor id out of range");
  EHJA_CHECK_MSG(actors_[id] != nullptr, "actor was retired");
  return *actors_[id];
}

double SocketRuntime::now_sec() const {
  if (!running_) return 0.0;
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

void SocketRuntime::enqueue_timer(double delay_sec, std::function<void()> fn) {
  if (!running_) {
    pre_run_timers_.emplace_back(delay_sec, std::move(fn));
    return;
  }
  Timer t;
  t.due = now_sec() + std::max(0.0, delay_sec);
  t.seq = timer_seq_++;
  t.fn = std::move(fn);
  timer_heap_.push_back(std::move(t));
  std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                 [](const Timer& a, const Timer& b) {
                   return a.due > b.due || (a.due == b.due && a.seq > b.seq);
                 });
}

void SocketRuntime::fire_due_timers() {
  const auto later = [](const Timer& a, const Timer& b) {
    return a.due > b.due || (a.due == b.due && a.seq > b.seq);
  };
  while (!timer_heap_.empty() && timer_heap_.front().due <= now_sec()) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), later);
    Timer t = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    t.fn();
  }
}

void SocketRuntime::deliver_local(const Inbound& in) {
  if (!node_alive(in.from_node)) return;  // sender died; message lost
  if (retired_.count(in.to) != 0) return;  // retired mid-queue; drop
  EHJA_CHECK_MSG(route_[in.to] == 0, "local delivery to remote actor");
  actors_[in.to]->on_message(in.msg);
}

void SocketRuntime::drain_local(std::size_t budget) {
  while (budget-- > 0 && !local_q_.empty() && !stop_) {
    const Inbound in = std::move(local_q_.front());
    local_q_.pop_front();
    deliver_local(in);
  }
}

void SocketRuntime::mark_node_dead(NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= node_dead_.size()) return;
  if (node_dead_[node]) return;
  node_dead_[node] = 1;
  conns_[node].reset();  // unread input and unsent output die with the node
  const std::vector<std::uint8_t> body = node_dead_body(node);
  for (std::size_t n = 1; n < spec_.node_count(); ++n) {
    if (node_dead_[n] || !conns_[n]) continue;
    queue_frame(*conns_[n], wire::FrameKind::kNodeDead, body);
  }
}

void SocketRuntime::handle_frames(Conn& conn) {
  wire::Frame f;
  while (conn.usable() && next_frame(conn, f)) {
    EHJA_CHECK_MSG(f.kind == wire::FrameKind::kActorMsg,
                   "unexpected control frame from worker");
    DecodedMsg d = parse_msg_frame(f);
    EHJA_CHECK_MSG(fifo_accept(conn.next_recv_seq, d.seq),
                   "per-pair FIFO violation on coordinator link");
    EHJA_CHECK_MSG(d.to >= 0 && static_cast<std::size_t>(d.to) < route_.size(),
                   "worker sent to unknown actor");
    if (retired_.count(d.to) != 0) continue;  // straggler past retirement
    EHJA_CHECK_MSG(route_[d.to] == 0, "worker misrouted a message");
    local_q_.push_back(Inbound{d.to, conn.peer, std::move(d.msg)});
  }
}

void SocketRuntime::pump_sockets(int timeout_ms) {
  // Surface worker deaths first so a dead node's socket is already closed
  // when we poll.
  for (const Launcher::Exit& e : launcher_.reap()) {
    if (stopping_) continue;
    if (e.sigkilled) {
      ++kills_executed_;
      EHJA_INFO("socket", "node ", e.node, " fail-stopped (SIGKILL)");
    } else {
      EHJA_CHECK_MSG(false, ("worker for node " + std::to_string(e.node) +
                             " exited unexpectedly (status " +
                             std::to_string(e.status) + ")")
                                .c_str());
    }
    mark_node_dead(e.node);
  }

  std::vector<pollfd> pfds;
  std::vector<NodeId> which;
  for (std::size_t n = 1; n < conns_.size(); ++n) {
    if (!conns_[n] || !conns_[n]->usable()) continue;
    short ev = POLLIN;
    if (conns_[n]->wants_write()) ev |= POLLOUT;
    pfds.push_back({conns_[n]->fd, ev, 0});
    which.push_back(static_cast<NodeId>(n));
  }
  // External fds (the serve layer's client sockets) ride the same poll.
  const std::size_t fleet_count = pfds.size();
  std::vector<int> ext;
  for (const auto& [fd, cb] : watched_fds_) {
    pfds.push_back({fd, POLLIN, 0});
    ext.push_back(fd);
  }
  const int pr =
      ::poll(pfds.empty() ? nullptr : pfds.data(), pfds.size(), timeout_ms);
  if (pr < 0 && errno != EINTR) {
    EHJA_CHECK_MSG(false, "poll() failed");
  }
  for (std::size_t i = 0; i < fleet_count; ++i) {
    std::unique_ptr<Conn>& slot = conns_[which[i]];
    if (!slot) continue;  // died while handling an earlier conn's frames
    Conn& c = *slot;
    if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) read_available(c);
    handle_frames(c);
    flush_out(c);
    // EOF/broken without a reaped exit yet: the process is mid-death; the
    // next reap() turns it into node-dead state.
  }
  for (std::size_t i = 0; i < ext.size(); ++i) {
    if ((pfds[fleet_count + i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
      continue;
    }
    // The callback may watch_fd/unwatch_fd (accepting a client does both);
    // re-check membership so we never invoke a stale entry.
    const auto it = watched_fds_.find(ext[i]);
    if (it != watched_fds_.end()) it->second();
  }
}

void SocketRuntime::run() {
  EHJA_CHECK_MSG(!running_, "run() called twice");
  running_ = true;
  epoch_ = Clock::now();
  for (auto& [delay, fn] : pre_run_timers_) enqueue_timer(delay, std::move(fn));
  pre_run_timers_.clear();

  while (!stop_) {
    // Start freshly spawned local actors (index loop: an on_start may spawn
    // more).  Pre-run spawns start here on the first iteration.
    for (std::size_t i = 0; i < start_q_.size(); ++i) start_q_[i]->on_start();
    start_q_.clear();
    drain_local(kLocalBatch);
    fire_due_timers();
    // The serving coordinator's admission/finalization work runs here, on
    // the runtime thread, between actor deliveries.
    if (idle_hook_) idle_hook_();
    if (stop_) break;
    int timeout = 0;
    if (local_q_.empty()) {
      timeout = kIdlePollMs;
      if (!timer_heap_.empty()) {
        const double dt = timer_heap_.front().due - now_sec();
        const int ms = static_cast<int>(std::ceil(std::max(0.0, dt) * 1000.0));
        timeout = std::clamp(ms, 0, kIdlePollMs);
      }
    }
    pump_sockets(timeout);
  }
  shutdown_cluster();
}

void SocketRuntime::request_stop() { stop_ = true; }

void SocketRuntime::shutdown_cluster() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stopping_ = true;
  for (std::size_t n = 1; n < conns_.size(); ++n) {
    if (!conns_[n] || !conns_[n]->usable()) continue;
    queue_frame(*conns_[n], wire::FrameKind::kShutdown, {});
  }
  // Push the SHUTDOWN frames (and any tail of queued traffic) out, bounded.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool pending = false;
    for (auto& c : conns_) {
      if (!c || !c->usable()) continue;
      flush_out(*c);
      if (c->wants_write()) pending = true;
    }
    if (!pending || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  launcher_.shutdown_all(10.0);
  for (auto& c : conns_) c.reset();
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// The Runtime a worker process offers its locally hosted actors.  It never
/// originates spawns (all placement decisions happen on the coordinator);
/// it instantiates actors when SPAWN frames arrive, learns id->node routes
/// from ANNOUNCE frames, and fail-stops its whole process on kill_node.
class SocketWorkerRuntime final : public Runtime {
 public:
  SocketWorkerRuntime(NodeId node, std::uint16_t coordinator_port)
      : node_(node), coordinator_port_(coordinator_port) {}

  int run_worker();

  ActorId spawn(NodeId /*node*/, std::unique_ptr<Actor> /*actor*/) override {
    EHJA_CHECK_MSG(false, "worker processes do not originate spawns");
    return kInvalidActor;
  }

  void send(Actor& /*from*/, ActorId to, Message msg) override {
    if (retired_.count(to) != 0) return;  // finished query; traffic is void
    if (actors_.count(to) != 0) {
      local_q_.push_back(Inbound{to, node_, std::move(msg)});
      return;
    }
    const auto rit = route_.find(to);
    if (rit == route_.end()) {
      // Route not announced yet (the cross-connection spawn race); park the
      // message until the ANNOUNCE arrives.
      pending_out_[to].push_back(std::move(msg));
      return;
    }
    send_remote(rit->second, to, msg);
  }

  void defer(Actor& from, Message msg) override {
    local_q_.push_back(Inbound{from.id(), node_, std::move(msg)});
  }

  void charge(Actor& /*from*/, double /*cpu_seconds*/) override {}

  SimTime actor_now(const Actor& /*actor*/) const override {
    return now_sec();
  }

  void defer_after(Actor& from, Message msg, double delay_sec) override {
    const ActorId id = from.id();
    auto shared = std::make_shared<Message>(std::move(msg));
    Timer t;
    t.due = now_sec() + std::max(0.0, delay_sec);
    t.seq = timer_seq_++;
    t.fn = [this, id, shared] {
      local_q_.push_back(Inbound{id, node_, *shared});
    };
    timer_heap_.push_back(std::move(t));
    std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
  }

  void kill_node(NodeId node) override {
    // Fail-stop for real: the FaultPlan's chunk-triggered self-kill takes
    // down the whole OS process, mid-handler, no goodbye.  The coordinator
    // observes the SIGKILL via waitpid and folds it into the fault model.
    EHJA_CHECK_MSG(node == node_, "a worker can only kill its own node");
    ::raise(SIGKILL);
  }

  void schedule_kill(NodeId /*node*/, double /*at*/) override {
    EHJA_CHECK_MSG(false, "schedule_kill is coordinator-side");
  }

  bool node_alive(NodeId node) const override {
    if (node < 0 || static_cast<std::size_t>(node) >= dead_.size()) {
      return false;
    }
    return !dead_[node];
  }

  void run() override {
    EHJA_CHECK_MSG(false, "worker is driven by run_worker()");
  }
  void request_stop() override { stop_ = true; }

  const ClusterSpec& cluster() const override { return cluster_; }
  std::size_t actor_count() const override { return actors_.size(); }
  Actor& actor(ActorId id) override {
    const auto it = actors_.find(id);
    EHJA_CHECK_MSG(it != actors_.end(), "actor not hosted on this worker");
    return *it->second;
  }

 private:
  struct Inbound {
    ActorId to = kInvalidActor;
    NodeId from_node = -1;
    Message msg;
  };
  struct Timer {
    double due = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due > b.due || (a.due == b.due && a.seq > b.seq);
    }
  };

  void send_remote(NodeId dst, ActorId to, const Message& msg) {
    if (!node_alive(dst)) return;  // fail-stop: drop silently
    Conn* c = conn_for(dst);
    if (c == nullptr || !c->usable()) return;
    queue_msg_frame(*c, to, msg);
  }

  Conn* conn_for(NodeId dst) {
    if (dst == 0) return coord_.get();
    if (dst < 0 || static_cast<std::size_t>(dst) >= conns_.size()) return nullptr;
    return conns_[dst].get();
  }

  double now_sec() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  void drain_local(std::size_t budget) {
    while (budget-- > 0 && !local_q_.empty() && !stop_) {
      const Inbound in = std::move(local_q_.front());
      local_q_.pop_front();
      if (!node_alive(in.from_node)) continue;
      if (retired_.count(in.to) != 0) continue;  // finished query straggler
      const auto it = actors_.find(in.to);
      EHJA_CHECK_MSG(it != actors_.end(), "local queue names unknown actor");
      it->second->on_message(in.msg);
    }
  }

  void fire_due_timers() {
    while (!timer_heap_.empty() && timer_heap_.front().due <= now_sec()) {
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
      Timer t = std::move(timer_heap_.back());
      timer_heap_.pop_back();
      t.fn();
    }
  }

  void handle_spawn(const wire::Frame& f);
  void handle_announce(const wire::Frame& f);
  void handle_query_config(const wire::Frame& f);
  void handle_retire(const wire::Frame& f);
  void handle_frames(Conn& c);
  void pump(int timeout_ms);

  const NodeId node_;
  const std::uint16_t coordinator_port_;

  std::shared_ptr<const EhjaConfig> config_;
  ClusterSpec cluster_;
  std::unique_ptr<Conn> coord_;
  std::vector<std::unique_ptr<Conn>> conns_;  // indexed by peer NodeId

  std::map<ActorId, std::unique_ptr<Actor>> actors_;
  std::map<ActorId, NodeId> route_;
  std::set<ActorId> retired_;  // ids whose traffic is void (serve fleet)
  /// Per-query configs shipped by kQueryConfig (serve fleet); id 0 is the
  /// handshake config_.
  std::map<std::uint32_t, std::shared_ptr<const EhjaConfig>> query_configs_;
  /// Messages that arrived for a local actor whose SPAWN frame has not been
  /// processed yet (possible: a peer learned the id from its ANNOUNCE and
  /// raced us).  Replayed, in arrival order, at spawn.
  std::map<ActorId, std::vector<Inbound>> pending_in_;
  /// Messages a local actor sent to an id with no ANNOUNCEd route yet.
  /// Replayed, in send order, when the route arrives.
  std::map<ActorId, std::vector<Message>> pending_out_;

  std::deque<Inbound> local_q_;
  std::vector<Timer> timer_heap_;
  std::uint64_t timer_seq_ = 0;
  std::vector<char> dead_;
  bool stop_ = false;
  bool coord_lost_ = false;
  Clock::time_point epoch_ = Clock::now();
};

void SocketWorkerRuntime::handle_spawn(const wire::Frame& f) {
  wire::Reader r(f.body);
  const ActorId id = static_cast<ActorId>(r.zigzag());
  const std::uint8_t kind = r.u8();
  const std::uint32_t source_index = static_cast<std::uint32_t>(r.varint());
  const ActorId scheduler = static_cast<ActorId>(r.zigzag());
  const std::uint32_t config_id = static_cast<std::uint32_t>(r.varint());
  EHJA_CHECK_MSG(r.ok() && r.remaining() == 0 && kind <= 1, "corrupt SPAWN");
  EHJA_CHECK_MSG(actors_.count(id) == 0, "SPAWN for an existing actor");

  std::shared_ptr<const EhjaConfig> cfg = config_;
  if (config_id != 0) {
    // Per-pair FIFO guarantees the kQueryConfig frame landed first.
    const auto it = query_configs_.find(config_id);
    EHJA_CHECK_MSG(it != query_configs_.end(),
                   "SPAWN names an unshipped query config");
    cfg = it->second;
  }
  std::unique_ptr<Actor> actor;
  if (kind == static_cast<std::uint8_t>(RemoteSpawnSpec::Kind::kJoinProcess)) {
    actor = std::make_unique<JoinProcessActor>(cfg, scheduler);
  } else {
    actor = std::make_unique<DataSourceActor>(cfg, source_index, scheduler);
  }
  actor->bind(this, id, node_);
  Actor* raw = actor.get();
  route_[id] = node_;
  actors_.emplace(id, std::move(actor));
  raw->on_start();

  const auto in_it = pending_in_.find(id);
  if (in_it != pending_in_.end()) {
    for (Inbound& in : in_it->second) local_q_.push_back(std::move(in));
    pending_in_.erase(in_it);
  }
  const auto out_it = pending_out_.find(id);
  if (out_it != pending_out_.end()) {
    for (Message& m : out_it->second) {
      local_q_.push_back(Inbound{id, node_, std::move(m)});
    }
    pending_out_.erase(out_it);
  }
}

void SocketWorkerRuntime::handle_announce(const wire::Frame& f) {
  wire::Reader r(f.body);
  const ActorId id = static_cast<ActorId>(r.zigzag());
  const NodeId owner = static_cast<NodeId>(r.zigzag());
  EHJA_CHECK_MSG(r.ok() && r.remaining() == 0, "corrupt ANNOUNCE");
  EHJA_CHECK_MSG(owner != node_, "ANNOUNCE for own node without SPAWN");
  route_[id] = owner;
  const auto it = pending_out_.find(id);
  if (it != pending_out_.end()) {
    for (const Message& m : it->second) send_remote(owner, id, m);
    pending_out_.erase(it);
  }
}

void SocketWorkerRuntime::handle_query_config(const wire::Frame& f) {
  wire::Reader r(f.body);
  const std::uint32_t id = static_cast<std::uint32_t>(r.varint());
  EhjaConfig cfg;
  const bool ok = wire::decode_config(r, cfg);
  EHJA_CHECK_MSG(ok && r.ok() && r.remaining() == 0, "corrupt QUERY_CONFIG");
  EHJA_CHECK_MSG(id != 0, "query config id 0 is reserved for the handshake");
  query_configs_[id] = std::make_shared<const EhjaConfig>(std::move(cfg));
}

void SocketWorkerRuntime::handle_retire(const wire::Frame& f) {
  wire::Reader r(f.body);
  const ActorId id = static_cast<ActorId>(r.zigzag());
  EHJA_CHECK_MSG(r.ok() && r.remaining() == 0, "corrupt RETIRE");
  retired_.insert(id);
  actors_.erase(id);
  route_.erase(id);
  pending_in_.erase(id);
  pending_out_.erase(id);
}

void SocketWorkerRuntime::handle_frames(Conn& c) {
  wire::Frame f;
  while (c.usable() && next_frame(c, f)) {
    switch (f.kind) {
      case wire::FrameKind::kSpawn:
        handle_spawn(f);
        break;
      case wire::FrameKind::kAnnounce:
        handle_announce(f);
        break;
      case wire::FrameKind::kQueryConfig:
        handle_query_config(f);
        break;
      case wire::FrameKind::kRetire:
        handle_retire(f);
        break;
      case wire::FrameKind::kActorMsg: {
        DecodedMsg d = parse_msg_frame(f);
        EHJA_CHECK_MSG(fifo_accept(c.next_recv_seq, d.seq),
                       "per-pair FIFO violation on worker link");
        if (retired_.count(d.to) != 0) break;  // finished query straggler
        if (actors_.count(d.to) != 0) {
          local_q_.push_back(Inbound{d.to, c.peer, std::move(d.msg)});
        } else {
          // SPAWN not processed yet (frame races across connections).
          const auto rit = route_.find(d.to);
          EHJA_CHECK_MSG(rit == route_.end() || rit->second == node_,
                         "peer misrouted a message");
          pending_in_[d.to].push_back(Inbound{d.to, c.peer, std::move(d.msg)});
        }
        break;
      }
      case wire::FrameKind::kNodeDead: {
        wire::Reader r(f.body);
        const NodeId dead = static_cast<NodeId>(r.zigzag());
        EHJA_CHECK_MSG(r.ok() && r.remaining() == 0, "corrupt NODE_DEAD");
        if (dead >= 0 && static_cast<std::size_t>(dead) < dead_.size()) {
          dead_[dead] = 1;
          if (static_cast<std::size_t>(dead) < conns_.size()) {
            conns_[dead].reset();
          }
        }
        break;
      }
      case wire::FrameKind::kShutdown:
        stop_ = true;
        break;
      default:
        EHJA_CHECK_MSG(false, "unexpected frame kind on worker");
    }
  }
}

void SocketWorkerRuntime::pump(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<Conn*> which;
  auto add = [&](Conn* c) {
    if (c == nullptr || !c->usable()) return;
    short ev = POLLIN;
    if (c->wants_write()) ev |= POLLOUT;
    pfds.push_back({c->fd, ev, 0});
    which.push_back(c);
  };
  add(coord_.get());
  for (auto& c : conns_) add(c.get());
  const int pr =
      ::poll(pfds.empty() ? nullptr : pfds.data(), pfds.size(), timeout_ms);
  if (pr < 0 && errno != EINTR) {
    EHJA_CHECK_MSG(false, "poll() failed in worker");
  }
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    Conn* c = which[i];
    // A NODE_DEAD handled earlier in this sweep may have reset a peer conn;
    // the coordinator conn is never reset mid-sweep.
    bool still_here = (c == coord_.get());
    for (const auto& keep : conns_) {
      if (keep.get() == c) still_here = true;
    }
    if (!still_here) continue;
    if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) read_available(*c);
    handle_frames(*c);
    flush_out(*c);
    if ((c->eof || c->broken) && c == coord_.get() && !stop_) {
      coord_lost_ = true;  // coordinator vanished without SHUTDOWN
    }
  }
}

int SocketWorkerRuntime::run_worker() {
  ::signal(SIGPIPE, SIG_IGN);

  // Handshake step 1: dial the coordinator, stand up the mesh listener,
  // introduce ourselves.
  coord_ = adopt_fd(connect_loopback(coordinator_port_));
  coord_->peer = 0;
  std::uint16_t my_port = 0;
  const int listen_fd = make_listener(my_port);
  queue_frame(*coord_, wire::FrameKind::kHello,
              hello_body(node_, my_port, kFirstIncarnation));
  must_flush(*coord_, kHandshakeTimeoutSec, "HELLO");

  // Step 2: WELCOME carries the run config; rebuild the cluster view.
  wire::Frame f = must_recv_frame(*coord_, kHandshakeTimeoutSec, "WELCOME");
  EHJA_CHECK_MSG(f.kind == wire::FrameKind::kWelcome, "expected WELCOME");
  {
    wire::Reader r(f.body);
    EhjaConfig cfg;
    EHJA_CHECK_MSG(wire::decode_config(r, cfg) && r.remaining() == 0,
                   "corrupt WELCOME config");
    config_ = std::make_shared<const EhjaConfig>(std::move(cfg));
  }
  cluster_ = make_cluster(*config_);
  dead_.assign(cluster_.node_count(), 0);
  conns_.resize(cluster_.node_count());
  EHJA_CHECK_MSG(node_ >= 1 &&
                     static_cast<std::size_t>(node_) < cluster_.node_count(),
                 "worker node id outside the configured cluster");

  // Step 3: PEERS, then build the mesh -- dial lower-numbered workers,
  // accept the higher-numbered ones.
  f = must_recv_frame(*coord_, kHandshakeTimeoutSec, "PEERS");
  EHJA_CHECK_MSG(f.kind == wire::FrameKind::kPeers, "expected PEERS");
  std::size_t expect_accepts = 0;
  {
    wire::Reader r(f.body);
    const std::uint64_t n = r.varint();
    EHJA_CHECK_MSG(r.ok() && n == cluster_.node_count() - 2, "corrupt PEERS");
    for (std::uint64_t i = 0; i < n; ++i) {
      const NodeId peer = static_cast<NodeId>(r.zigzag());
      const std::uint64_t port = r.varint();
      EHJA_CHECK_MSG(r.ok() && peer >= 1 && peer != node_ &&
                         static_cast<std::size_t>(peer) < cluster_.node_count() &&
                         port <= 0xffff,
                     "corrupt PEERS entry");
      if (peer < node_) {
        auto c = adopt_fd(connect_loopback(static_cast<std::uint16_t>(port)));
        c->peer = peer;
        queue_frame(*c, wire::FrameKind::kPeerHello,
                    hello_body(node_, 0, kFirstIncarnation));
        must_flush(*c, kHandshakeTimeoutSec, "PEER_HELLO");
        conns_[peer] = std::move(c);
      } else {
        ++expect_accepts;
      }
    }
    EHJA_CHECK_MSG(r.remaining() == 0, "corrupt PEERS");
  }
  std::size_t accepted = 0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(kHandshakeTimeoutSec));
  while (accepted < expect_accepts) {
    EHJA_CHECK_MSG(Clock::now() < deadline, "mesh handshake timed out");
    pollfd p{listen_fd, POLLIN, 0};
    if (::poll(&p, 1, 100) <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto c = adopt_fd(fd);
    const wire::Frame hello =
        must_recv_frame(*c, kHandshakeTimeoutSec, "PEER_HELLO");
    EHJA_CHECK_MSG(hello.kind == wire::FrameKind::kPeerHello,
                   "expected PEER_HELLO");
    const HelloInfo h = parse_hello(hello, "PEER_HELLO");
    EHJA_CHECK_MSG(h.node > node_ &&
                       static_cast<std::size_t>(h.node) < cluster_.node_count(),
                   "PEER_HELLO from unexpected node");
    EHJA_CHECK_MSG(conns_[h.node] == nullptr, "duplicate peer connection");
    EHJA_CHECK_MSG(h.incarnation == kFirstIncarnation,
                   "PEER_HELLO carries unexpected incarnation epoch");
    c->peer = h.node;
    conns_[h.node] = std::move(c);
    ++accepted;
  }
  ::close(listen_fd);

  // Step 4: READY -- the coordinator may start placing actors.
  queue_frame(*coord_, wire::FrameKind::kReady, {});
  must_flush(*coord_, kHandshakeTimeoutSec, "READY");

  // Main loop: interleave local actor work with socket I/O.  The local
  // batch stays small so a self-deferring actor (a data source generating
  // slices) cannot starve inbound control traffic.
  while (!stop_ && !coord_lost_) {
    drain_local(32);
    fire_due_timers();
    if (stop_) break;
    int timeout = 0;
    if (local_q_.empty()) {
      timeout = kIdlePollMs;
      if (!timer_heap_.empty()) {
        const double dt = timer_heap_.front().due - now_sec();
        const int ms = static_cast<int>(std::ceil(std::max(0.0, dt) * 1000.0));
        timeout = std::clamp(ms, 0, kIdlePollMs);
      }
    }
    pump(timeout);
  }
  if (coord_lost_) {
    EHJA_WARN("socket", "worker ", node_,
              ": coordinator vanished without SHUTDOWN");
    return 1;
  }
  // Push any tail of queued output (last reports) before exiting.
  const auto flush_deadline = Clock::now() + std::chrono::seconds(2);
  while (coord_->wants_write() && Clock::now() < flush_deadline) {
    flush_out(*coord_);
    if (!coord_->wants_write()) break;
    pollfd p{coord_->fd, POLLOUT, 0};
    ::poll(&p, 1, 50);
  }
  return 0;
}

std::optional<int> maybe_run_socket_worker(int argc, char** argv) {
  long node = -1;
  long port = -1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--ehja-worker=", 14) == 0) {
      node = std::atol(a + 14);
    } else if (std::strncmp(a, "--ehja-coordinator-port=", 24) == 0) {
      port = std::atol(a + 24);
    }
  }
  if (node < 0) return std::nullopt;
  EHJA_CHECK_MSG(port > 0 && port <= 0xffff,
                 "worker mode requires --ehja-coordinator-port");
  SocketWorkerRuntime rt(static_cast<NodeId>(node),
                         static_cast<std::uint16_t>(port));
  return rt.run_worker();
}

}  // namespace ehja
