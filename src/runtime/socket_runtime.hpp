// Multi-process TCP runtime (the third Runtime backend).
//
// SimRuntime models the paper's cluster; ThreadRuntime shakes out protocol
// races; SocketRuntime *is* a cluster: every NodeId runs as a separate OS
// process (runtime/launcher.hpp forks this binary in worker mode) and every
// message crosses a real TCP connection in the net/wire.hpp format.
//
// Topology.  The coordinator process (the one that called run_ehja) hosts
// node 0 -- by the driver's layout the scheduler -- and spawns one worker
// process per remaining node.  Startup handshake, all over loopback TCP:
//
//   1. worker -> coordinator   HELLO    (node id, mesh listen port,
//                                        incarnation epoch)
//   2. coordinator -> worker   WELCOME  (the full EhjaConfig, serialized;
//                                        wire-version mismatches fail here)
//   3. coordinator -> worker   PEERS    (every other worker's listen port)
//   4. worker <-> worker       PEER_HELLO on direct connections: the
//                              higher-numbered node dials the lower, so each
//                              unordered pair gets exactly one socket
//   5. worker -> coordinator   READY once its mesh is complete
//
// After READY the cluster is a full mesh: worker<->worker traffic (chunk
// forwarding, splits, reshuffle) never relays through the coordinator.
//
// Actor placement.  All spawns happen on the coordinator (the scheduler and
// driver run there), which assigns ActorIds sequentially and ships a SPAWN
// frame (an Actor::remote_spawn_spec recipe) to the owning worker plus
// ANNOUNCE frames (id -> node routes) to everyone else.  Because the
// coordinator announces an id before any message naming it can be sent,
// routes are almost always known on arrival; the rare cross-connection race
// is absorbed by pending queues on both the send and receive side.
//
// Delivery contract.  One TCP connection per node pair plus a per-connection
// sequence number on every actor-message frame gives per-pair FIFO -- the
// same ordering NetworkModel guarantees and the drain protocol relies on --
// and the receiver EHJA_CHECKs the sequence to prove it.  Worker death
// (SIGKILL from the FaultPlan, or any real crash) is observed by the
// launcher's reap and folded into the same fail-stop state as
// SimRuntime::kill_node: the node is marked dead, peers get NODE_DEAD and
// drop traffic to/from it, and the scheduler's heartbeat detector + recovery
// protocol take it from there, unchanged.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "core/config.hpp"
#include "runtime/actor.hpp"
#include "runtime/launcher.hpp"

namespace ehja {

namespace netio {
struct Conn;
}

/// Worker-mode entry point.  If argv requests worker mode
/// (`--ehja-worker=<node> --ehja-coordinator-port=<port>`), runs the worker
/// to completion and returns its exit code; otherwise returns nullopt.
/// Every binary that can host a socket run must call this first thing in
/// main() -- the launcher re-executes the binary itself.
std::optional<int> maybe_run_socket_worker(int argc, char** argv);

/// Per-pair FIFO acceptance: frame sequence numbers on one connection must
/// arrive exactly in send order.  Exposed for the ordering tests; the
/// runtimes EHJA_CHECK this on every received actor-message frame.
inline bool fifo_accept(std::uint64_t& expected_next, std::uint64_t seq) {
  if (seq != expected_next) return false;
  ++expected_next;
  return true;
}

/// The coordinator-side Runtime.  Constructing it launches and handshakes
/// the whole worker fleet; run() drives the scheduler plus all socket I/O
/// on the calling thread until request_stop(), then shuts the fleet down.
class SocketRuntime final : public Runtime {
 public:
  /// `config` is shipped to every worker in the WELCOME frame (minus the
  /// trace sink -- tracing only observes coordinator-side actors).
  SocketRuntime(ClusterSpec spec, const EhjaConfig& config);
  ~SocketRuntime() override;

  ActorId spawn(NodeId node, std::unique_ptr<Actor> actor) override;
  void send(Actor& from, ActorId to, Message msg) override;
  void defer(Actor& from, Message msg) override;
  void charge(Actor& from, double cpu_seconds) override;
  SimTime actor_now(const Actor& actor) const override;
  void defer_after(Actor& from, Message msg, double delay_sec) override;
  void kill_node(NodeId node) override;
  void schedule_kill(NodeId node, double at) override;
  bool node_alive(NodeId node) const override;
  std::uint32_t kills_executed() const override { return kills_executed_; }
  void run() override;
  void request_stop() override;
  const ClusterSpec& cluster() const override { return spec_; }
  std::size_t actor_count() const override { return actors_.size(); }
  Actor& actor(ActorId id) override;

  // --- serving-layer extensions (see src/serve/) -----------------------

  /// Forget a finished actor cluster-wide: the coordinator drops its local
  /// instance (or tells the owning worker to), tombstones the id so
  /// straggler traffic is silently discarded, and broadcasts kRetire.  A
  /// long-lived coordinator would otherwise leak one Actor per query
  /// forever.  Must not be called from inside the actor's own handler.
  void retire_actor(ActorId id) override;

  /// Hook invoked once per event-loop iteration, after local delivery and
  /// timers, before blocking on sockets.  The serving coordinator does its
  /// admission/finalization work here, on the runtime thread, so it never
  /// races actor delivery.
  void set_idle_hook(std::function<void()> hook) { idle_hook_ = std::move(hook); }

  /// Poll an external fd alongside the fleet sockets; `on_event` fires on
  /// readability (or error/EOF -- the callee inspects the fd).  This is how
  /// the serve front end multiplexes its client listener and client
  /// connections into the runtime's single event loop.
  void watch_fd(int fd, std::function<void()> on_event);
  void unwatch_fd(int fd);

 private:
  struct Timer {
    double due = 0.0;  // seconds on the run clock
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct Inbound {
    ActorId to = kInvalidActor;
    NodeId from_node = -1;
    Message msg;
  };

  void handshake(std::uint16_t port);
  void deliver_local(const Inbound& in);
  void drain_local(std::size_t budget);
  void fire_due_timers();
  void enqueue_timer(double delay_sec, std::function<void()> fn);
  double now_sec() const;
  void pump_sockets(int timeout_ms);
  void handle_frames(netio::Conn& conn);
  void mark_node_dead(NodeId node);
  void broadcast_announce(ActorId id, NodeId node);
  void shutdown_cluster();
  /// Ship `config` (if it differs from the handshake config) to `node`
  /// exactly once; returns the config id to stamp into the SPAWN frame
  /// (0 = the handshake config).
  std::uint32_t ship_config(NodeId node,
                            const std::shared_ptr<const EhjaConfig>& config);

  ClusterSpec spec_;
  EhjaConfig config_;
  Launcher launcher_;
  int listen_fd_ = -1;

  /// Indexed by NodeId; entry 0 (the coordinator itself) stays null.
  std::vector<std::unique_ptr<netio::Conn>> conns_;

  std::vector<std::unique_ptr<Actor>> actors_;  // remote ones stay unbound
  std::vector<NodeId> route_;                   // ActorId -> hosting node
  std::set<ActorId> retired_;                   // ids whose traffic is void
  std::deque<Inbound> local_q_;
  std::vector<Actor*> start_q_;  // pre-run local spawns awaiting on_start

  std::vector<Timer> timer_heap_;
  std::uint64_t timer_seq_ = 0;
  /// defer_after()/schedule_kill() before run(): delays are relative to run
  /// start (ThreadRuntime semantics), so they park here until the clock
  /// exists.
  std::vector<std::pair<double, std::function<void()>>> pre_run_timers_;

  std::vector<char> node_dead_;
  std::uint32_t kills_executed_ = 0;
  bool running_ = false;
  bool stop_ = false;
  bool stopping_ = false;  // shutdown begun: exits are no longer failures
  bool shutdown_done_ = false;
  std::chrono::steady_clock::time_point epoch_;

  // Serving-layer state: per-query config shipping and the external-fd /
  // idle-hook plumbing (empty and inert for classic one-shot runs).
  struct ShippedConfig {
    /// Pinned so the pointer key in config_ids_ can never be recycled by a
    /// later allocation (a few hundred bytes per distinct query config).
    std::shared_ptr<const EhjaConfig> config;
    std::vector<std::uint8_t> body;  // encoded once
    std::set<NodeId> holders;        // nodes that already received it
  };
  std::map<const EhjaConfig*, std::uint32_t> config_ids_;
  std::map<std::uint32_t, ShippedConfig> shipped_configs_;
  std::uint32_t next_config_id_ = 1;
  std::function<void()> idle_hook_;
  std::map<int, std::function<void()>> watched_fds_;
};

}  // namespace ehja
