// Multi-process TCP runtime (the third Runtime backend).
//
// SimRuntime models the paper's cluster; ThreadRuntime shakes out protocol
// races; SocketRuntime *is* a cluster: every NodeId runs as a separate OS
// process (runtime/launcher.hpp forks this binary in worker mode) and every
// message crosses a real TCP connection in the net/wire.hpp format.
//
// Topology.  The coordinator process (the one that called run_ehja) hosts
// node 0 -- by the driver's layout the scheduler -- and spawns one worker
// process per remaining node.  Startup handshake, all over loopback TCP:
//
//   1. worker -> coordinator   HELLO    (node id, mesh listen port,
//                                        incarnation epoch)
//   2. coordinator -> worker   WELCOME  (the full EhjaConfig, serialized;
//                                        wire-version mismatches fail here)
//   3. coordinator -> worker   PEERS    (every other worker's listen port)
//   4. worker <-> worker       PEER_HELLO on direct connections: the
//                              higher-numbered node dials the lower, so each
//                              unordered pair gets exactly one socket
//   5. worker -> coordinator   READY once its mesh is complete
//
// After READY the cluster is a full mesh: worker<->worker traffic (chunk
// forwarding, splits, reshuffle) never relays through the coordinator.
//
// Actor placement.  All spawns happen on the coordinator (the scheduler and
// driver run there), which assigns ActorIds sequentially and ships a SPAWN
// frame (an Actor::remote_spawn_spec recipe) to the owning worker plus
// ANNOUNCE frames (id -> node routes) to everyone else.  Because the
// coordinator announces an id before any message naming it can be sent,
// routes are almost always known on arrival; the rare cross-connection race
// is absorbed by pending queues on both the send and receive side.
//
// Delivery contract.  One TCP connection per node pair plus a per-connection
// sequence number on every actor-message frame gives per-pair FIFO -- the
// same ordering NetworkModel guarantees and the drain protocol relies on --
// and the receiver EHJA_CHECKs the sequence to prove it.  Worker death
// (SIGKILL from the FaultPlan, or any real crash) is observed by the
// launcher's reap and folded into the same fail-stop state as
// SimRuntime::kill_node: the node is marked dead, peers get NODE_DEAD and
// drop traffic to/from it, and the scheduler's heartbeat detector + recovery
// protocol take it from there, unchanged.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "core/config.hpp"
#include "runtime/actor.hpp"
#include "runtime/launcher.hpp"

namespace ehja {

namespace socket_detail {
struct Conn;
}

/// Worker-mode entry point.  If argv requests worker mode
/// (`--ehja-worker=<node> --ehja-coordinator-port=<port>`), runs the worker
/// to completion and returns its exit code; otherwise returns nullopt.
/// Every binary that can host a socket run must call this first thing in
/// main() -- the launcher re-executes the binary itself.
std::optional<int> maybe_run_socket_worker(int argc, char** argv);

/// Per-pair FIFO acceptance: frame sequence numbers on one connection must
/// arrive exactly in send order.  Exposed for the ordering tests; the
/// runtimes EHJA_CHECK this on every received actor-message frame.
inline bool fifo_accept(std::uint64_t& expected_next, std::uint64_t seq) {
  if (seq != expected_next) return false;
  ++expected_next;
  return true;
}

/// The coordinator-side Runtime.  Constructing it launches and handshakes
/// the whole worker fleet; run() drives the scheduler plus all socket I/O
/// on the calling thread until request_stop(), then shuts the fleet down.
class SocketRuntime final : public Runtime {
 public:
  /// `config` is shipped to every worker in the WELCOME frame (minus the
  /// trace sink -- tracing only observes coordinator-side actors).
  SocketRuntime(ClusterSpec spec, const EhjaConfig& config);
  ~SocketRuntime() override;

  ActorId spawn(NodeId node, std::unique_ptr<Actor> actor) override;
  void send(Actor& from, ActorId to, Message msg) override;
  void defer(Actor& from, Message msg) override;
  void charge(Actor& from, double cpu_seconds) override;
  SimTime actor_now(const Actor& actor) const override;
  void defer_after(Actor& from, Message msg, double delay_sec) override;
  void kill_node(NodeId node) override;
  void schedule_kill(NodeId node, double at) override;
  bool node_alive(NodeId node) const override;
  std::uint32_t kills_executed() const override { return kills_executed_; }
  void run() override;
  void request_stop() override;
  const ClusterSpec& cluster() const override { return spec_; }
  std::size_t actor_count() const override { return actors_.size(); }
  Actor& actor(ActorId id) override;

 private:
  struct Timer {
    double due = 0.0;  // seconds on the run clock
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct Inbound {
    ActorId to = kInvalidActor;
    NodeId from_node = -1;
    Message msg;
  };

  void handshake(std::uint16_t port);
  void deliver_local(const Inbound& in);
  void drain_local(std::size_t budget);
  void fire_due_timers();
  void enqueue_timer(double delay_sec, std::function<void()> fn);
  double now_sec() const;
  void pump_sockets(int timeout_ms);
  void handle_frames(socket_detail::Conn& conn);
  void mark_node_dead(NodeId node);
  void broadcast_announce(ActorId id, NodeId node);
  void shutdown_cluster();

  ClusterSpec spec_;
  EhjaConfig config_;
  Launcher launcher_;
  int listen_fd_ = -1;

  /// Indexed by NodeId; entry 0 (the coordinator itself) stays null.
  std::vector<std::unique_ptr<socket_detail::Conn>> conns_;

  std::vector<std::unique_ptr<Actor>> actors_;  // remote ones stay unbound
  std::vector<NodeId> route_;                   // ActorId -> hosting node
  std::deque<Inbound> local_q_;
  std::vector<Actor*> start_q_;  // pre-run local spawns awaiting on_start

  std::vector<Timer> timer_heap_;
  std::uint64_t timer_seq_ = 0;
  /// defer_after()/schedule_kill() before run(): delays are relative to run
  /// start (ThreadRuntime semantics), so they park here until the clock
  /// exists.
  std::vector<std::pair<double, std::function<void()>>> pre_run_timers_;

  std::vector<char> node_dead_;
  std::uint32_t kills_executed_ = 0;
  bool running_ = false;
  bool stop_ = false;
  bool stopping_ = false;  // shutdown begun: exits are no longer failures
  bool shutdown_done_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ehja
