#include "runtime/intra_pool.hpp"

#include "util/assert.hpp"

namespace ehja {

IntraPool::IntraPool(unsigned threads) : threads_(threads) {
  EHJA_CHECK_MSG(threads >= 1, "IntraPool needs at least one lane");
  workers_.reserve(threads - 1);
  for (unsigned lane = 1; lane < threads; ++lane) {
    workers_.emplace_back(&IntraPool::worker_main, this, lane);
  }
}

IntraPool::~IntraPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void IntraPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(unsigned)>* job = job_;
    lock.unlock();
    (*job)(lane);
    lock.lock();
    if (++done_ == threads_ - 1) done_cv_.notify_one();
  }
}

void IntraPool::run(const std::function<void(unsigned)>& body) {
  if (threads_ == 1) {
    body(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &body;
    done_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  body(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_ == threads_ - 1; });
  job_ = nullptr;
}

}  // namespace ehja
