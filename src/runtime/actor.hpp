// Actor programming model.
//
// The paper's three components -- scheduler, data sources, join processes
// (ss4.1) -- are actors: event handlers driven by message delivery.  Actors
// are written once against the abstract Runtime and run unchanged on either
// the deterministic discrete-event runtime (SimRuntime, virtual time, used
// for all figures) or the thread runtime (ThreadRuntime, real concurrency,
// used to shake out protocol races).
//
// Handler contract:
//   * on_start() runs once when the actor is spawned.
//   * on_message() runs once per delivered message, serialized per node.
//   * charge(sec) accounts CPU work at the actor's node; under the DES it
//     advances the node's busy time, under threads it is a no-op.
//   * send() transfers a message with network cost; defer() re-enqueues a
//     message to self with no cost (used to slice long local work so that
//     control messages interleave, e.g. a data source pausing generation
//     when the scheduler announces a new join node).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cluster/cluster_spec.hpp"
#include "net/network.hpp"
#include "runtime/message.hpp"
#include "sim/simulator.hpp"

namespace ehja {

class Runtime;
struct EhjaConfig;

/// Recipe for re-instantiating an actor in another OS process (the socket
/// runtime forks one worker per cluster node).  Actors cannot be shipped as
/// objects, but the two kinds the driver and scheduler place on worker nodes
/// -- join processes and data sources -- are fully determined by the shared
/// EhjaConfig plus these few fields, so a worker-side factory rebuilds them.
struct RemoteSpawnSpec {
  enum class Kind : std::uint8_t { kJoinProcess = 0, kDataSource = 1 };
  Kind kind = Kind::kJoinProcess;
  std::uint32_t source_index = 0;  // kDataSource only
  ActorId scheduler = kInvalidActor;
  /// The config the actor was built against.  Classic runs ship one config
  /// in the handshake and this matches it; a serving fleet multiplexes many
  /// queries with *different* configs onto one worker, so the socket
  /// runtime ships this one (deduplicated) before the SPAWN that needs it.
  std::shared_ptr<const EhjaConfig> config;
};

class Actor {
 public:
  virtual ~Actor() = default;

  virtual void on_start() {}
  virtual void on_message(const Message& msg) = 0;
  /// Short tag for log lines.
  virtual std::string name() const { return "actor"; }

  /// How to rebuild this actor in a worker process, or nullopt for actor
  /// kinds that only run where they were constructed (the socket runtime
  /// refuses to place those on a remote node).
  virtual std::optional<RemoteSpawnSpec> remote_spawn_spec() const {
    return std::nullopt;
  }

  ActorId id() const { return id_; }
  NodeId node() const { return node_; }

 protected:
  Runtime& rt() const {
    EHJA_CHECK_MSG(rt_ != nullptr, "actor not yet spawned");
    return *rt_;
  }
  void send(ActorId to, Message msg);
  void defer(Message msg);
  void defer_after(Message msg, double delay_sec);
  void charge(double cpu_seconds);
  SimTime now() const;

 private:
  friend class SimRuntime;
  friend class ThreadRuntime;
  friend class SocketRuntime;
  friend class SocketWorkerRuntime;
  friend class HarnessRuntime;  // tests/actor_harness.hpp
  void bind(Runtime* rt, ActorId id, NodeId node) {
    rt_ = rt;
    id_ = id;
    node_ = node;
  }

  Runtime* rt_ = nullptr;
  ActorId id_ = kInvalidActor;
  NodeId node_ = -1;
};

/// Abstract execution environment shared by both runtimes.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Register an actor on `node`.  Legal before run() and from inside a
  /// running handler (the scheduler spawns join processes dynamically).
  virtual ActorId spawn(NodeId node, std::unique_ptr<Actor> actor) = 0;

  virtual void send(Actor& from, ActorId to, Message msg) = 0;
  virtual void defer(Actor& from, Message msg) = 0;
  virtual void charge(Actor& from, double cpu_seconds) = 0;
  virtual SimTime actor_now(const Actor& actor) const = 0;

  /// Deliver `msg` back to `from` after `delay_sec` (heartbeat and other
  /// self-timers).  The base default degrades to an immediate defer(), which
  /// is only acceptable for runtimes that never host timed protocols.
  virtual void defer_after(Actor& from, Message msg, double /*delay_sec*/) {
    defer(from, std::move(msg));
  }

  /// --- fault injection (fail-stop node crashes) ---
  /// Crash every actor on `node` now: their handlers stop running and all
  /// messages to or from the node are silently discarded from this point on.
  virtual void kill_node(NodeId /*node*/) {}
  /// Crash `node` at time `at` (virtual seconds under the DES, wall seconds
  /// after run() under threads).  Legal before run().
  virtual void schedule_kill(NodeId /*node*/, double /*at*/) {}
  virtual bool node_alive(NodeId /*node*/) const { return true; }
  /// Kills that actually fired (a kill scheduled after the run drained the
  /// event queue never executes).
  virtual std::uint32_t kills_executed() const { return 0; }

  /// Drive to completion: the DES runs the event queue dry; the thread
  /// runtime blocks until request_stop().
  virtual void run() = 0;
  virtual void request_stop() = 0;

  virtual const ClusterSpec& cluster() const = 0;
  virtual std::size_t actor_count() const = 0;

  /// Borrow a spawned actor (driver-side result collection after run()).
  virtual Actor& actor(ActorId id) = 0;

  /// Forget a finished actor: free its instance and discard any straggler
  /// traffic addressed to it.  Optional -- one-shot runtimes tear everything
  /// down at exit and need not implement it; a long-lived serving runtime
  /// must, or it leaks one actor per completed query.
  virtual void retire_actor(ActorId /*id*/) {}
};

inline void Actor::send(ActorId to, Message msg) {
  msg.from = id_;
  rt().send(*this, to, std::move(msg));
}

inline void Actor::defer(Message msg) {
  msg.from = id_;
  rt().defer(*this, std::move(msg));
}

inline void Actor::defer_after(Message msg, double delay_sec) {
  msg.from = id_;
  rt().defer_after(*this, std::move(msg), delay_sec);
}

inline void Actor::charge(double cpu_seconds) { rt().charge(*this, cpu_seconds); }

inline SimTime Actor::now() const { return rt().actor_now(*this); }

}  // namespace ehja
