#include "runtime/launcher.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EHJA_CHECK_MSG(n > 0, "readlink(/proc/self/exe) failed");
  buf[n] = '\0';
  return std::string(buf);
}

Launcher::~Launcher() {
  for (Worker& w : workers_) {
    if (w.exited) continue;
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.exited = true;
  }
}

void Launcher::spawn_worker(NodeId node, std::uint16_t port) {
  EHJA_CHECK_MSG(find(node) == nullptr, "worker node spawned twice");
  const std::string exe = self_exe_path();
  char node_arg[64];
  char port_arg[64];
  std::snprintf(node_arg, sizeof(node_arg), "--ehja-worker=%d", node);
  std::snprintf(port_arg, sizeof(port_arg), "--ehja-coordinator-port=%u",
                static_cast<unsigned>(port));

  const pid_t pid = ::fork();
  EHJA_CHECK_MSG(pid >= 0, "fork() failed");
  if (pid == 0) {
    // Child.  Die with the coordinator rather than leaking; guard against
    // the race where the parent already died before the prctl.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) _exit(127);
    char* const argv[] = {const_cast<char*>(exe.c_str()), node_arg, port_arg,
                          nullptr};
    ::execv(exe.c_str(), argv);
    std::fprintf(stderr, "ehja worker: execv(%s) failed: %s\n", exe.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  workers_.push_back(Worker{node, pid, false});
}

std::vector<Launcher::Exit> Launcher::reap() {
  std::vector<Exit> exits;
  for (Worker& w : workers_) {
    if (w.exited) continue;
    int status = 0;
    const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
    if (r == w.pid) {
      w.exited = true;
      Exit e;
      e.node = w.node;
      e.pid = w.pid;
      e.status = status;
      e.sigkilled = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
      exits.push_back(e);
    }
  }
  return exits;
}

void Launcher::kill_worker(NodeId node) {
  Worker* w = find(node);
  EHJA_CHECK_MSG(w != nullptr, "kill_worker: unknown node");
  if (w->exited) return;
  ::kill(w->pid, SIGKILL);
}

bool Launcher::worker_running(NodeId node) const {
  const Worker* w = find(node);
  return w != nullptr && !w->exited;
}

void Launcher::shutdown_all(double grace_sec) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(grace_sec);
  bool pending = true;
  while (pending) {
    pending = false;
    for (Worker& w : workers_) {
      if (w.exited) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
        w.exited = true;
      } else {
        pending = true;
      }
    }
    if (!pending) return;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (Worker& w : workers_) {
    if (w.exited) continue;
    EHJA_WARN("launcher", "worker for node ", w.node,
              " ignored shutdown; killing");
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.exited = true;
  }
}

Launcher::Worker* Launcher::find(NodeId node) {
  for (Worker& w : workers_) {
    if (w.node == node) return &w;
  }
  return nullptr;
}

const Launcher::Worker* Launcher::find(NodeId node) const {
  for (const Worker& w : workers_) {
    if (w.node == node) return &w;
  }
  return nullptr;
}

}  // namespace ehja
