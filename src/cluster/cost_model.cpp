#include "cluster/cost_model.hpp"

namespace ehja {

double build_migration_cost_sec(const CostModel& cost, std::uint64_t tuples,
                                std::uint64_t tuple_bytes,
                                double sec_per_byte) {
  const double per_tuple_cpu = cost.scaled(cost.tuple_pack_sec) * 2.0 +
                               cost.scaled(cost.tuple_insert_sec);
  const double per_tuple_wire =
      static_cast<double>(tuple_bytes) * sec_per_byte;
  return static_cast<double>(tuples) * (per_tuple_cpu + per_tuple_wire);
}

double probe_broadcast_cost_sec(const CostModel& cost, std::uint64_t tuples,
                                std::uint64_t tuple_bytes,
                                double sec_per_byte) {
  const double per_tuple_cpu = cost.scaled(cost.tuple_pack_sec) * 2.0 +
                               cost.scaled(cost.tuple_probe_sec);
  const double per_tuple_wire =
      static_cast<double>(tuple_bytes) * sec_per_byte;
  return static_cast<double>(tuples) * (per_tuple_cpu + per_tuple_wire);
}

}  // namespace ehja
