#include "cluster/cost_model.hpp"

// CostModel and DiskConfig are aggregates; this translation unit exists so
// the module owns a .cpp (and future non-inline helpers have a home).
