// Cost model for the simulated cluster.
//
// Calibrated to the paper's testbed (OSUMed: Pentium III 933 MHz, 512 MB
// RAM, switched Ethernet, local IDE disks).  Absolute figures are
// not expected to match the 2004 measurements -- the goal is that the
// relative costs (network-dominated joins, disk an order of magnitude
// slower than memory, CPU second-order) reproduce the paper's *shapes*.
// Every constant is a plain member so benches can sweep them (ablation A2
// in DESIGN.md ss4).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ehja {

struct CostModel {
  // --- CPU, seconds per tuple (933 MHz-era implementation) ---
  /// Generate one synthetic tuple at a data source (RNG + buffer append).
  double tuple_generate_sec = 120e-9;
  /// Hash + chain-insert one tuple into the local hash table.
  double tuple_insert_sec = 250e-9;
  /// Hash + chain-walk for one probe tuple (excluding per-candidate cost).
  double tuple_probe_sec = 180e-9;
  /// Compare join attributes with one hash-chain candidate.
  double tuple_compare_sec = 25e-9;
  /// Emit one matching output pair (copy to the output buffer).
  double match_emit_sec = 60e-9;
  /// Per-tuple cost of packing/unpacking a network chunk.
  double tuple_pack_sec = 40e-9;
  /// Fixed cost of handling any control message.
  double control_handle_sec = 5e-6;

  /// Multiplier applied to all CPU costs of a node (NodeSpec::cpu_scale
  /// composes with this); 1.0 = the P3-933 reference machine.
  double cpu_scale = 1.0;

  double scaled(double sec) const { return sec * cpu_scale; }
};

/// One-shot expansion cost estimates the adaptive policy compares on each
/// overflow (core/expansion_policy.hpp).  `sec_per_byte` is the inverse
/// link bandwidth; both helpers price CPU per tuple plus wire transfer.

/// Migrate `tuples` build tuples to a fresh node during the build: pack at
/// the sender, wire transfer, unpack + re-insert at the receiver.  Paid
/// once, when the split op runs.
double build_migration_cost_sec(const CostModel& cost, std::uint64_t tuples,
                                std::uint64_t tuple_bytes,
                                double sec_per_byte);

/// Deliver `tuples` extra probe tuples to one additional replica of a
/// range: pack at the source, wire transfer, probe at the replica.  Paid
/// over the whole probe phase -- the recurring price of a replica.
double probe_broadcast_cost_sec(const CostModel& cost, std::uint64_t tuples,
                                std::uint64_t tuple_bytes,
                                double sec_per_byte);

struct DiskConfig {
  /// Effective write bandwidth, bytes/second: a 2004 IDE disk moved
  /// ~30-35 MB/s sequentially, minus filesystem overhead.  With the
  /// gigabit-class interconnect this makes the disk ~4x slower than the
  /// network -- the ratio that produces the paper's OOC-vs-EHJA gap.
  double write_bytes_per_sec = 26e6;
  /// Effective read bandwidth, bytes/second (phase-3 reads alternate
  /// between an R and an S partition file).
  double read_bytes_per_sec = 30e6;
  /// Average seek + rotational latency charged when switching between
  /// partitions/files, seconds.
  double seek_sec = 8e-3;
  /// Runs are written through a buffer of this size; a seek is charged per
  /// buffer flush when multiple partitions interleave.
  std::size_t io_buffer_bytes = 1u << 20;
};

}  // namespace ehja
