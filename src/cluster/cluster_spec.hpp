// Static description of the simulated cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cost_model.hpp"
#include "net/network.hpp"
#include "util/units.hpp"

namespace ehja {

struct NodeSpec {
  NodeId id = -1;
  /// Bytes of memory this node may devote to hash-table state.  The paper's
  /// nodes have 512 MB of RAM; the experiments cap the join's share so that
  /// 16 nodes exactly hold the 10 M x 100 B table (see DESIGN.md ss4).
  std::uint64_t hash_memory_bytes = 80 * kMiB;
  /// Relative CPU speed (1.0 = reference Pentium III 933 MHz).
  double cpu_scale = 1.0;
};

struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  LinkConfig link;
  CostModel cost;
  DiskConfig disk;

  std::size_t node_count() const { return nodes.size(); }
  const NodeSpec& node(NodeId id) const;
};

/// A homogeneous cluster of `n` nodes, mirroring OSUMed's 24 compute nodes
/// plus one front-end (node 0 hosts the scheduler by convention in the
/// driver, but nothing in the spec enforces placement).
ClusterSpec make_uniform_cluster(std::size_t n,
                                 std::uint64_t hash_memory_bytes = 80 * kMiB);

}  // namespace ehja
