// Pool of potential join nodes.
//
// The scheduler draws a new node from this pool whenever a working join node
// reports memory full.  The paper's policy: "the node with the largest
// amount of available memory is selected" (ss4.1.1).  Alternative policies
// are provided for the initial-node-selection ablation the paper defers to
// future work.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/cluster_spec.hpp"

namespace ehja {

enum class NodePickPolicy {
  kLargestFreeMemory,  // the paper's policy
  kFirstAvailable,     // lowest node id first
  kRoundRobin,         // cycle through the pool
};

class ResourcePool {
 public:
  ResourcePool(const ClusterSpec& spec, std::vector<NodeId> potential,
               NodePickPolicy policy = NodePickPolicy::kLargestFreeMemory);

  /// Remove and return the next node per the policy; nullopt when empty.
  std::optional<NodeId> acquire();

  /// Return a node to the pool (used when an expansion is aborted).
  void release(NodeId node);

  std::size_t available() const { return potential_.size(); }
  /// Unclaimed nodes, in pool order (scheduler-failover snapshot input).
  const std::vector<NodeId>& free_nodes() const { return potential_; }
  std::size_t acquired_count() const { return acquired_; }
  NodePickPolicy policy() const { return policy_; }

 private:
  const ClusterSpec* spec_;
  std::vector<NodeId> potential_;
  NodePickPolicy policy_;
  std::size_t acquired_ = 0;
  std::size_t rr_cursor_ = 0;
};

}  // namespace ehja
