// Pool of potential join nodes.
//
// The scheduler draws a new node from this pool whenever a working join node
// reports memory full.  The paper's policy: "the node with the largest
// amount of available memory is selected" (ss4.1.1).  Alternative policies
// are provided for the initial-node-selection ablation the paper defers to
// future work.
//
// Two extensions for the serving layer (src/serve/):
//
//   * Thread safety.  One process may run many query schedulers plus the
//     admission controller, each touching a pool from its own thread, so
//     every public method takes an internal mutex.  The mutex lives behind
//     a unique_ptr because pools are moved by value into the scheduler's
//     ExpansionPolicy.
//
//   * Provider hooks.  A per-query pool can be backed by the fleet-level
//     admission controller: when the local free list is empty, acquire()
//     asks the hook for one more node (which the controller may deny --
//     that is the cross-query "additional resources" negotiation), and
//     hook-granted nodes are returned to the *hook* on release, not to the
//     local free list.  Without hooks the behaviour is exactly the
//     pre-serve single-query pool.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_spec.hpp"

namespace ehja {

enum class NodePickPolicy {
  kLargestFreeMemory,  // the paper's policy
  kFirstAvailable,     // lowest node id first
  kRoundRobin,         // cycle through the pool
};

/// External provider backing a pool (the admission controller in serve
/// mode).  `acquire` may return nullopt -- a denied expansion, which the
/// scheduler already treats as "pool exhausted" (spill / co-locate paths).
struct PoolHooks {
  std::function<std::optional<NodeId>()> acquire;
  std::function<void(NodeId)> release;
};

class ResourcePool {
 public:
  ResourcePool(const ClusterSpec& spec, std::vector<NodeId> potential,
               NodePickPolicy policy = NodePickPolicy::kLargestFreeMemory);

  /// Back this pool with an external provider (see PoolHooks).  Both
  /// callbacks must be set.  Install before the pool is shared.
  void set_hooks(PoolHooks hooks);

  /// Remove and return the next node per the policy; when the local free
  /// list is empty, consult the hook (if any); nullopt when both deny.
  std::optional<NodeId> acquire();

  /// Return a node to the pool (used when an expansion is aborted).  A
  /// hook-granted node goes back to the provider, not the local free list.
  void release(NodeId node);

  /// All-or-nothing: atomically remove `count` nodes from the local free
  /// list (policy order), or take nothing and return nullopt.  Does not
  /// consult the hook -- this is the admission controller's own primitive
  /// for carving out a query's initial placement from the fleet pool.
  std::optional<std::vector<NodeId>> try_reserve(std::size_t count);

  std::size_t available() const;
  /// Unclaimed nodes, in pool order (scheduler-failover snapshot input).
  /// Returns a copy: under concurrency a reference would dangle.
  std::vector<NodeId> free_nodes() const;
  std::size_t acquired_count() const;
  NodePickPolicy policy() const { return policy_; }

 private:
  /// Policy pick against the locked free list; requires non-empty.
  std::size_t pick_locked();

  const ClusterSpec* spec_;
  std::vector<NodeId> potential_;
  NodePickPolicy policy_;
  std::size_t acquired_ = 0;
  std::size_t rr_cursor_ = 0;
  PoolHooks hooks_;
  /// Nodes currently out on loan *from the hook*, with a count per node
  /// (provenance: each release must reach the provider).  A count, not a
  /// set: the fleet-level provider may grant the same worker node several
  /// times to one query -- co-locating processes is legitimate placement.
  /// Guarded by mutex_ like everything else.
  std::unordered_map<NodeId, std::uint32_t> granted_by_hook_;
  mutable std::unique_ptr<std::mutex> mutex_;
};

}  // namespace ehja
