#include "cluster/resource_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ehja {

ResourcePool::ResourcePool(const ClusterSpec& spec,
                           std::vector<NodeId> potential,
                           NodePickPolicy policy)
    : spec_(&spec),
      potential_(std::move(potential)),
      policy_(policy),
      mutex_(std::make_unique<std::mutex>()) {
  for (NodeId id : potential_) {
    EHJA_CHECK(id >= 0 && static_cast<std::size_t>(id) < spec.node_count());
  }
}

void ResourcePool::set_hooks(PoolHooks hooks) {
  EHJA_CHECK(hooks.acquire && hooks.release);
  std::lock_guard<std::mutex> lock(*mutex_);
  hooks_ = std::move(hooks);
}

std::size_t ResourcePool::pick_locked() {
  std::size_t pick = 0;
  switch (policy_) {
    case NodePickPolicy::kLargestFreeMemory: {
      // All pool nodes are idle, so "available memory" is the node's
      // hash-memory capacity; ties break toward the lower node id for
      // determinism.
      for (std::size_t i = 1; i < potential_.size(); ++i) {
        const auto& best = spec_->node(potential_[pick]);
        const auto& cand = spec_->node(potential_[i]);
        if (cand.hash_memory_bytes > best.hash_memory_bytes ||
            (cand.hash_memory_bytes == best.hash_memory_bytes &&
             potential_[i] < potential_[pick])) {
          pick = i;
        }
      }
      break;
    }
    case NodePickPolicy::kFirstAvailable: {
      for (std::size_t i = 1; i < potential_.size(); ++i) {
        if (potential_[i] < potential_[pick]) pick = i;
      }
      break;
    }
    case NodePickPolicy::kRoundRobin: {
      // Acquisition order cycles through the pool in insertion order; with
      // no releases this degenerates to FIFO, which is the intent.
      pick = 0;
      ++rr_cursor_;
      break;
    }
  }
  return pick;
}

std::optional<NodeId> ResourcePool::acquire() {
  std::function<std::optional<NodeId>()> ask_hook;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    if (!potential_.empty()) {
      const std::size_t pick = pick_locked();
      const NodeId chosen = potential_[pick];
      potential_.erase(potential_.begin() + static_cast<std::ptrdiff_t>(pick));
      ++acquired_;
      return chosen;
    }
    ask_hook = hooks_.acquire;
  }
  if (!ask_hook) return std::nullopt;
  // The provider call runs unlocked: the admission controller takes its own
  // lock in there, and holding ours across it invites lock-order cycles.
  const std::optional<NodeId> granted = ask_hook();
  if (!granted) return std::nullopt;
  std::lock_guard<std::mutex> lock(*mutex_);
  ++granted_by_hook_[*granted];  // counted: a node may be granted repeatedly
  ++acquired_;
  return granted;
}

void ResourcePool::release(NodeId node) {
  std::function<void(NodeId)> give_back;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    EHJA_CHECK(acquired_ > 0);
    --acquired_;
    const auto it = granted_by_hook_.find(node);
    if (it != granted_by_hook_.end()) {
      if (--it->second == 0) granted_by_hook_.erase(it);
      give_back = hooks_.release;
      EHJA_CHECK(give_back != nullptr);
    } else {
      EHJA_CHECK(std::find(potential_.begin(), potential_.end(), node) ==
                 potential_.end());
      potential_.push_back(node);
      return;
    }
  }
  give_back(node);
}

std::optional<std::vector<NodeId>> ResourcePool::try_reserve(
    std::size_t count) {
  std::lock_guard<std::mutex> lock(*mutex_);
  if (potential_.size() < count) return std::nullopt;
  std::vector<NodeId> taken;
  taken.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = pick_locked();
    taken.push_back(potential_[pick]);
    potential_.erase(potential_.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  acquired_ += count;
  return taken;
}

std::size_t ResourcePool::available() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return potential_.size();
}

std::vector<NodeId> ResourcePool::free_nodes() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return potential_;
}

std::size_t ResourcePool::acquired_count() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return acquired_;
}

}  // namespace ehja
