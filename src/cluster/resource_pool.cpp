#include "cluster/resource_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ehja {

ResourcePool::ResourcePool(const ClusterSpec& spec,
                           std::vector<NodeId> potential,
                           NodePickPolicy policy)
    : spec_(&spec), potential_(std::move(potential)), policy_(policy) {
  for (NodeId id : potential_) {
    EHJA_CHECK(id >= 0 && static_cast<std::size_t>(id) < spec.node_count());
  }
}

std::optional<NodeId> ResourcePool::acquire() {
  if (potential_.empty()) return std::nullopt;
  std::size_t pick = 0;
  switch (policy_) {
    case NodePickPolicy::kLargestFreeMemory: {
      // All pool nodes are idle, so "available memory" is the node's
      // hash-memory capacity; ties break toward the lower node id for
      // determinism.
      for (std::size_t i = 1; i < potential_.size(); ++i) {
        const auto& best = spec_->node(potential_[pick]);
        const auto& cand = spec_->node(potential_[i]);
        if (cand.hash_memory_bytes > best.hash_memory_bytes ||
            (cand.hash_memory_bytes == best.hash_memory_bytes &&
             potential_[i] < potential_[pick])) {
          pick = i;
        }
      }
      break;
    }
    case NodePickPolicy::kFirstAvailable: {
      for (std::size_t i = 1; i < potential_.size(); ++i) {
        if (potential_[i] < potential_[pick]) pick = i;
      }
      break;
    }
    case NodePickPolicy::kRoundRobin: {
      // Acquisition order cycles through the pool in insertion order; with
      // no releases this degenerates to FIFO, which is the intent.
      pick = 0;
      ++rr_cursor_;
      break;
    }
  }
  const NodeId chosen = potential_[pick];
  potential_.erase(potential_.begin() + static_cast<std::ptrdiff_t>(pick));
  ++acquired_;
  return chosen;
}

void ResourcePool::release(NodeId node) {
  EHJA_CHECK(std::find(potential_.begin(), potential_.end(), node) ==
             potential_.end());
  potential_.push_back(node);
  EHJA_CHECK(acquired_ > 0);
  --acquired_;
}

}  // namespace ehja
