#include "cluster/cluster_spec.hpp"

#include "util/assert.hpp"

namespace ehja {

const NodeSpec& ClusterSpec::node(NodeId id) const {
  EHJA_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes.size());
  return nodes[static_cast<std::size_t>(id)];
}

ClusterSpec make_uniform_cluster(std::size_t n,
                                 std::uint64_t hash_memory_bytes) {
  EHJA_CHECK(n > 0);
  ClusterSpec spec;
  spec.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    spec.nodes.push_back(NodeSpec{static_cast<NodeId>(i), hash_memory_bytes,
                                  /*cpu_scale=*/1.0});
  }
  return spec;
}

}  // namespace ehja
