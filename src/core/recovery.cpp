#include "core/recovery.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

namespace {

/// Sort, drop empties, coalesce overlapping/adjacent ranges.
std::vector<PosRange> normalize(std::vector<PosRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const PosRange& a, const PosRange& b) { return a.lo < b.lo; });
  std::vector<PosRange> out;
  for (const PosRange& r : ranges) {
    if (r.empty()) continue;
    if (!out.empty() && r.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, r.hi);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

/// `r` clipped against a normalized range list.
std::vector<PosRange> intersect(const PosRange& r,
                                const std::vector<PosRange>& list) {
  std::vector<PosRange> out;
  for (const PosRange& l : list) {
    const std::uint64_t lo = std::max(r.lo, l.lo);
    const std::uint64_t hi = std::min(r.hi, l.hi);
    if (lo < hi) out.push_back(PosRange{lo, hi});
  }
  return out;
}

}  // namespace

RecoveryManager::RecoveryManager(std::shared_ptr<const EhjaConfig> config,
                                 ExpansionEnv& env, RecoveryHost& host)
    : config_(std::move(config)), env_(env), host_(host) {}

void RecoveryManager::on_death(ActorId dead, bool probe_phase) {
  EHJA_CHECK_MSG(dead_.insert(dead).second, "actor declared dead twice");
  const PosRange hull = host_.coverage_of(dead);
  if (!hull.empty()) hulls_.push_back(hull);
  probe_ = probe_ || probe_phase;
  if (stage_ == Stage::kIdle) {
    started_ = env_.now();
    wave_deaths_ = 0;
  }
  ++wave_deaths_;
  ++epoch_;
  env_.trace(TraceKind::kRecoveryStart, static_cast<std::int64_t>(epoch_),
             static_cast<std::int64_t>(wave_deaths_));
  EHJA_WARN("recovery", "join actor ", dead, " dead; epoch ", epoch_, " (",
            probe_ ? "probe" : "build", "-phase recovery, wave of ",
            wave_deaths_, ")");
  run_surgery();
}

void RecoveryManager::on_wipe(bool probe_phase) {
  hulls_.push_back(PosRange{0, env_.map().positions()});
  probe_ = probe_ || probe_phase;
  if (stage_ == Stage::kIdle) {
    started_ = env_.now();
    wave_deaths_ = 0;
  }
  ++wave_deaths_;
  ++epoch_;
  env_.trace(TraceKind::kRecoveryStart, static_cast<std::int64_t>(epoch_),
             static_cast<std::int64_t>(wave_deaths_));
  EHJA_WARN("recovery", "full-coverage wipe; epoch ", epoch_, " (",
            probe_ ? "probe" : "build", "-phase recovery, wave of ",
            wave_deaths_, ")");
  run_surgery();
}

void RecoveryManager::on_source_death(ActorId dead, bool probe_phase) {
  EHJA_CHECK_MSG(dead_.insert(dead).second,
                 "data source declared dead twice");
  on_wipe(probe_phase);
}

void RecoveryManager::add_fresh_source(ActorId source, bool probe_phase) {
  fresh_build_.insert(source);
  if (probe_phase) fresh_probe_.insert(source);
}

void RecoveryManager::add_fresh_probe_source(ActorId source) {
  fresh_probe_.insert(source);
}

void RecoveryManager::restore(std::uint64_t epoch, std::set<ActorId> dead) {
  EHJA_CHECK_MSG(stage_ == Stage::kIdle,
                 "restore into an active recovery");
  epoch_ = epoch;
  dead_ = std::move(dead);
}

void RecoveryManager::run_surgery() {
  stage_ = Stage::kResetting;
  pending_resets_.clear();
  pending_replays_.clear();
  const std::vector<PosRange> lost = normalize(hulls_);

  std::map<ActorId, RangeResetPayload> resets;
  std::vector<PartitionMap::Entry> out;
  std::vector<std::size_t> grown;  // out-indices whose range was extended
  std::vector<PosRange> replay_acc;
  std::optional<std::uint64_t> orphan_lo;  // unowned prefix awaiting a home

  auto reset_of = [&resets, this](ActorId actor) -> RangeResetPayload& {
    RangeResetPayload& r = resets[actor];
    r.epoch = epoch_;
    return r;
  };
  auto emit = [&out, &grown, &orphan_lo](PartitionMap::Entry entry) {
    if (orphan_lo.has_value()) {
      entry.range.lo = *orphan_lo;
      orphan_lo.reset();
      out.push_back(std::move(entry));
      grown.push_back(out.size() - 1);
    } else {
      out.push_back(std::move(entry));
    }
  };

  for (const PartitionMap::Entry& entry : env_.map().entries()) {
    std::vector<ActorId> live;
    for (ActorId owner : entry.owners) {
      if (dead_.count(owner) == 0) live.push_back(owner);
    }
    const bool member_died = live.size() != entry.owners.size();
    const std::vector<PosRange> overlap = intersect(entry.range, lost);
    if (!member_died && overlap.empty()) {
      emit(entry);
      continue;
    }

    if (!probe_ && !member_died) {
      // Build phase, owners intact, a dead neighbour's hull reaches into
      // this entry (it owned a wider range once): surgical repair.  Any
      // member may hold overlap tuples (temporal shards), so every one
      // discards them; the replay re-delivers to the active owner.
      for (ActorId owner : live) {
        RangeResetPayload& r = reset_of(owner);
        r.discard.insert(r.discard.end(), overlap.begin(), overlap.end());
      }
      replay_acc.insert(replay_acc.end(), overlap.begin(), overlap.end());
      emit(entry);
      continue;
    }

    // Collapse: the entry is rebuilt from scratch on a single owner.  A
    // dead member's hull covers the whole entry (ownership is folded into
    // coverage at every map broadcast) and probe recovery widens to the
    // full range regardless, so the discard is the entry range either way.
    replay_acc.push_back(entry.range);
    ActorId chosen = kInvalidActor;
    if (!live.empty()) {
      // Prefer the pre-failure active owner; else any survivor.
      chosen = dead_.count(entry.owners.front()) == 0 ? entry.owners.front()
                                                      : live.front();
    } else if (const auto node = host_.recruit_node(); node.has_value()) {
      chosen = env_.spawn_join(*node);
      JoinInitPayload init;
      init.role = JoinRole::kInitial;
      init.range = entry.range;
      init.source_count = config_->data_sources;
      env_.send_to(chosen,
                   make_message(Tag::kJoinInit, init, kControlWireBytes));
      EHJA_INFO("recovery", "recruited join ", chosen, " on node ", *node,
                " for [", entry.range.lo, ",", entry.range.hi, ")");
    }
    if (chosen == kInvalidActor) {
      // No survivor and the pool is dry: merge the range into a neighbour
      // (its owner regrows via RangeReset::new_range and may well end up
      // spilling -- correct, if slow, beats wedged).
      if (!out.empty()) {
        out.back().range.hi = entry.range.hi;
        grown.push_back(out.size() - 1);
      } else if (!orphan_lo.has_value()) {
        orphan_lo = entry.range.lo;
      }
      continue;
    }
    // The fresh-recruit discard is vacuous (empty table) but uniform; the
    // reset doubles as the barrier ack and the epoch adoption.
    RangeResetPayload& r = reset_of(chosen);
    r.discard.push_back(entry.range);
    r.zero_probe_results |= probe_;
    for (ActorId other : live) {
      if (other == chosen) continue;
      RangeResetPayload& o = reset_of(other);
      o.discard.push_back(entry.range);
      o.zero_probe_results |= probe_;
      o.retired = true;
    }
    emit(PartitionMap::Entry{entry.range, {chosen}});
  }
  EHJA_CHECK_MSG(!out.empty(), "recovery: no live join node remains");
  EHJA_CHECK(!orphan_lo.has_value());

  // Deduplicate grown indices (an entry can absorb several orphans) and
  // hand every owner of a grown entry its final range.
  std::sort(grown.begin(), grown.end());
  grown.erase(std::unique(grown.begin(), grown.end()), grown.end());
  for (const std::size_t idx : grown) {
    for (ActorId owner : out[idx].owners) {
      reset_of(owner).new_range = out[idx].range;
    }
  }

  replay_ = normalize(std::move(replay_acc));
  env_.map() = PartitionMap::from_entries(std::move(out),
                                          env_.map().positions());
  env_.broadcast_map();  // re-route the sources; refresh coverage hulls

  // Fence first (FIFO: every reset recipient has the fence applied before
  // the reset), then the resets; replay waits for the full ack barrier.
  RecoveryFencePayload fence;
  fence.epoch = epoch_;
  fence.lost = replay_;
  const std::size_t fence_wire = kControlWireBytes + 16 * replay_.size();
  for (ActorId join : env_.join_actors()) {
    env_.send_to(join, make_message(Tag::kRecoveryFence, fence, fence_wire));
  }
  for (auto& [actor, payload] : resets) {
    payload.discard = normalize(std::move(payload.discard));
    const std::size_t wire = kControlWireBytes + 16 * payload.discard.size();
    pending_resets_.insert(actor);
    env_.send_to(actor, make_message(Tag::kRangeReset, payload, wire));
  }
  if (pending_resets_.empty()) start_build_replay();
}

void RecoveryManager::start_build_replay() {
  stage_ = Stage::kBuildReplay;
  // Reset barrier passed: every join has discarded the ranges a fresh
  // replacement source will (re-)deliver, so its normal build stream can
  // start.  It streams its full slice as an ordinary counted stream -- no
  // replay job, because it has produced nothing to replay.
  for (ActorId source : fresh_build_) {
    host_.start_replacement_source(source, config_->build_rel.tag, epoch_);
  }
  if (replay_.empty()) {
    // The dead actor never owned a range (e.g. a recruit lost before its
    // first map broadcast): nothing to rebuild.
    fresh_build_.clear();
    if (probe_) {
      stage_ = Stage::kSettleDrain;
      host_.start_settle_drain();
    } else {
      finish();
    }
    return;
  }
  // The fresh set must stay populated through the send: a just-started
  // replacement must NOT also receive a replay request, or it would re-send
  // whatever prefix its brand-new stream produced before the request landed.
  send_replay_requests(config_->build_rel.tag, /*pause_after=*/probe_);
  fresh_build_.clear();
  if (pending_replays_.empty()) {
    // Every source is a fresh replacement: the new streams re-deliver
    // everything; the phase drain (or settle drain) waits for them.
    if (probe_) {
      stage_ = Stage::kSettleDrain;
      host_.start_settle_drain();
    } else {
      finish();
    }
  }
}

void RecoveryManager::send_replay_requests(RelTag rel, bool pause_after) {
  ReplayRequestPayload req;
  req.epoch = epoch_;
  req.rel = rel;
  req.ranges = replay_;
  const std::size_t wire = kControlWireBytes + 16 * replay_.size();
  const bool probe_rel = rel == config_->probe_rel.tag;
  pending_replays_.clear();
  for (ActorId source : env_.source_actors()) {
    // A replacement whose build stream never started has nothing to replay
    // (its kStartBuild goes out at the barrier); one awaiting its probe
    // stream has produced no relation-S tuples either.
    if (fresh_build_.count(source) != 0) continue;
    if (probe_rel && fresh_probe_.count(source) != 0) continue;
    // The settle drain pauses sources that finished the build and are
    // streaming probes; a replacement still mid-build-stream must keep
    // flowing or the settle drain would never balance.
    req.pause_after = pause_after && fresh_probe_.count(source) == 0;
    pending_replays_.insert(source);
    env_.send_to(source, make_message(Tag::kReplayRequest, req, wire));
  }
}

void RecoveryManager::on_reset_ack(ActorId from,
                                   const RangeResetAckPayload& ack) {
  if (ack.epoch != epoch_ || stage_ != Stage::kResetting) return;  // stale
  pending_resets_.erase(from);
  if (pending_resets_.empty()) start_build_replay();
}

void RecoveryManager::on_replay_done(ActorId from,
                                     const ReplayDonePayload& done) {
  if (done.epoch != epoch_) return;  // superseded by a folded recovery
  if (stage_ == Stage::kBuildReplay && done.rel == config_->build_rel.tag) {
    env_.metrics().replayed_build_tuples += done.tuples_replayed;
    env_.trace(TraceKind::kReplay, from,
               static_cast<std::int64_t>(done.tuples_replayed));
    pending_replays_.erase(from);
    if (!pending_replays_.empty()) return;
    if (probe_) {
      stage_ = Stage::kSettleDrain;
      host_.start_settle_drain();
    } else {
      finish();
    }
  } else if (stage_ == Stage::kProbeReplay &&
             done.rel == config_->probe_rel.tag) {
    env_.metrics().replayed_probe_tuples += done.tuples_replayed;
    env_.trace(TraceKind::kReplay, from,
               static_cast<std::int64_t>(done.tuples_replayed));
    pending_replays_.erase(from);
    if (pending_replays_.empty()) finish();
  } else {
    EHJA_WARN("recovery", "replay-done from ", from, " out of stage");
  }
}

void RecoveryManager::on_settle_drained() {
  if (stage_ != Stage::kSettleDrain) return;  // aborted by a fold
  stage_ = Stage::kProbeReplay;
  // The replayed build chunks have landed; a replacement source that never
  // produced relation S starts its normal probe stream now (the run's
  // kStartProbe broadcast predates its spawn, so it never saw one).
  for (ActorId source : fresh_probe_) {
    host_.start_replacement_source(source, config_->probe_rel.tag, epoch_);
  }
  // As in start_build_replay: clear only after the send, so the skip check
  // keeps replay requests away from streams that just started fresh.
  send_replay_requests(config_->probe_rel.tag, /*pause_after=*/false);
  fresh_probe_.clear();
  if (pending_replays_.empty()) finish();
}

void RecoveryManager::finish() {
  const double duration = env_.now() - started_;
  ++env_.metrics().recoveries;
  env_.metrics().recovery_time_total += duration;
  env_.trace(TraceKind::kRecoveryDone, static_cast<std::int64_t>(epoch_),
             static_cast<std::int64_t>(duration * 1e6));
  EHJA_INFO("recovery", "epoch ", epoch_, " recovered in ", duration, "s (",
            wave_deaths_, " death(s), ",
            probe_ ? "probe" : "build", " phase)");
  stage_ = Stage::kIdle;
  hulls_.clear();
  replay_.clear();
  pending_resets_.clear();
  pending_replays_.clear();
  fresh_build_.clear();
  fresh_probe_.clear();
  const bool probe = probe_;
  probe_ = false;
  host_.recovery_complete(probe);
}

}  // namespace ehja
