// The join protocol's message vocabulary.
//
// Naming follows the paper where it names a message ("memory full message",
// "start probe message", ...).  Tag numbering is stable so protocol traces
// are readable.  See core/scheduler.hpp for the phase state machine.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/metrics.hpp"
#include "hash/partition_map.hpp"
#include "net/network.hpp"
#include "relation/chunk.hpp"
#include "runtime/message.hpp"
#include "util/histogram.hpp"

namespace ehja {

enum class Tag : int {
  // --- bootstrap ---
  kJoinInit = 1,       // scheduler -> join: your range and role
  kStartBuild = 2,     // scheduler -> source: initial map, begin relation R
  kGenSlice = 3,       // source -> self: generate the next quantum

  // --- data plane ---
  kDataChunk = 10,     // source/peer -> join: a chunk of R or S tuples
  kForwardEnd = 11,    // peer -> join: migration/handoff stream complete

  // --- expansion (build phase) ---
  kMemoryFull = 20,    // join -> scheduler (paper ss4.1.1)
  kSplitRequest = 21,  // scheduler -> join: ship `moved` range to new node
  kHandoffStart = 22,  // scheduler -> join: you are frozen; forward pending
  kOpComplete = 23,    // new join -> scheduler: expansion op done
  kRelief = 24,        // scheduler -> join: your request was serviced
  kSwitchToSpill = 25, // scheduler -> join: pool exhausted, spill locally
  kMapUpdate = 26,     // scheduler -> source: new partition map

  // --- phase barriers ---
  kSourceDone = 30,    // source -> scheduler: finished one relation
  kDrainProbe = 31,    // scheduler -> join: report your chunk counters
  kDrainAck = 32,      // join -> scheduler
  kBuildComplete = 33, // scheduler -> join: build phase over
  kStartProbe = 34,    // scheduler -> source: final map, begin relation S
  kSourceProgress = 35,// source -> scheduler: build tuples so far (adaptive)

  // --- hybrid reshuffle ---
  kHistogramRequest = 40,  // scheduler -> join (replica-set member)
  kHistogramReply = 41,    // join -> scheduler
  kReshuffleMove = 42,     // scheduler -> join: new sub-partitioning
  kReshuffleDone = 43,     // join -> scheduler: finished shipping

  // --- completion ---
  kReportRequest = 50,  // scheduler -> join: finish + report
  kNodeReport = 51,     // join -> scheduler
  kResultChunk = 52,    // join -> scheduler: captured output rows (pipeline)

  // --- failure detection and recovery (recovery_enabled() runs only) ---
  kPing = 60,           // scheduler -> join: are you alive?
  kPong = 61,           // join -> scheduler
  kHeartbeatTick = 62,  // scheduler -> self (timed): run the detector
  kRecoveryFence = 63,  // scheduler -> join: epoch bump + stale-range fence
  kRangeReset = 64,     // scheduler -> join: discard ranges, maybe regrow
  kRangeResetAck = 65,  // join -> scheduler: reset applied
  kReplayRequest = 66,  // scheduler -> source: regenerate lost ranges
  kReplayDone = 67,     // source -> scheduler: replay stream complete

  // --- scheduler failover (ft.standby_scheduler runs only) ---
  kSchedulerSnapshot = 70,    // active -> standby: state checkpoint
  kSchedulerHandoff = 71,     // promoted standby -> join/source/old active
  kSchedulerHandoffAck = 72,  // source -> promoted standby: local truth
};

/// Modes a join process can be initialized into.
enum class JoinRole : std::uint8_t {
  kInitial,     // one of the J initial working nodes
  kSplitChild,  // receives the upper half of a split bucket
  kReplica,     // fresh replica of an overflowed range
};

struct JoinInitPayload {
  JoinRole role = JoinRole::kInitial;
  PosRange range;
  std::uint32_t source_count = 0;
  std::uint64_t op_id = 0;  // expansion op this spawn belongs to (0 = none)
};

struct StartBuildPayload {
  PartitionMap map;
  /// Incarnation epoch the source must stamp outgoing chunks with from the
  /// start.  Nonzero only for a replacement source started mid-recovery:
  /// its tuples must pass the fences already installed at the joins.
  std::uint64_t epoch = 0;
};

struct ChunkPayload {
  Chunk chunk;
  bool forwarded = false;  // peer-to-peer (migration/handoff/stale-route)
  /// Recovery incarnation epoch of the sender at flush time (always 0 in
  /// fault-free runs).  Receivers drop tuples from epochs older than a
  /// fence covering their position -- the lost ranges are re-delivered by
  /// source replay instead.
  std::uint64_t epoch = 0;
};

struct ForwardEndPayload {
  std::uint64_t op_id = 0;  // 0 for ad-hoc stale-route streams
};

struct MemoryFullPayload {
  std::uint64_t footprint_bytes = 0;
  std::uint64_t budget_bytes = 0;
};

struct SplitRequestPayload {
  std::uint64_t op_id = 0;
  PosRange moved;     // upper half, leaves the owner
  ActorId target = kInvalidActor;
};

struct HandoffStartPayload {
  std::uint64_t op_id = 0;
  ActorId target = kInvalidActor;  // the fresh replica
};

struct OpCompletePayload {
  std::uint64_t op_id = 0;
  std::uint64_t tuples_received = 0;
};

struct MapUpdatePayload {
  std::uint64_t version = 0;
  PartitionMap map;
};

struct SourceDonePayload {
  RelTag rel = RelTag::kR;
  std::uint64_t chunks_sent = 0;
  std::uint64_t tuples_sent = 0;
  /// Per-destination cumulative data-chunk counts (normal + replay streams).
  /// Populated only when recovery is enabled: the scheduler needs them to
  /// exclude chunks sent to since-dead nodes from the drain balance.
  std::map<ActorId, std::uint64_t> chunks_to;
};

struct SourceProgressPayload {
  RelTag rel = RelTag::kR;
  std::uint64_t tuples_sent = 0;  // cumulative for this source
};

struct DrainProbePayload {
  std::uint64_t epoch = 0;
};

struct DrainAckPayload {
  std::uint64_t epoch = 0;
  std::uint64_t data_chunks_received = 0;
  std::uint64_t data_chunks_forwarded = 0;
  /// Per-sender / per-destination breakdowns of the two counters above.
  /// Populated only when recovery is enabled, so the scheduler can reduce
  /// the drain balance over live nodes only.
  std::map<ActorId, std::uint64_t> received_from;
  std::map<ActorId, std::uint64_t> forwarded_to;
};

struct StartProbePayload {
  PartitionMap map;
  /// See StartBuildPayload::epoch.
  std::uint64_t epoch = 0;
};

struct HistogramRequestPayload {
  std::uint64_t set_id = 0;
  std::size_t bins = 0;
  /// Reshuffle attempt number.  A recovery can abort a reshuffle mid-flight
  /// and re-run it; the round stamp lets the scheduler drop stragglers from
  /// the aborted attempt (always 0 in fault-free runs).
  std::uint32_t round = 0;
};

struct HistogramReplyPayload {
  std::uint64_t set_id = 0;
  BinnedHistogram histogram;
  std::uint32_t round = 0;
};

struct ReshuffleMovePayload {
  /// The replica set's range re-cut into disjoint sub-ranges, one per set
  /// member; every member receives the same plan and ships accordingly.
  std::vector<PartitionMap::Entry> plan;
  std::uint32_t round = 0;
};

struct ReshuffleDonePayload {
  std::uint32_t round = 0;
};

struct NodeReportPayload {
  NodeMetrics metrics;
  std::uint64_t checksum = 0;
  /// Output rows this node captured and shipped via kResultChunk before
  /// this report (capture_output runs only; 0 otherwise).  The scheduler
  /// cross-checks it against the chunk stream -- a mismatch means rows were
  /// lost in flight, which the per-pair FIFO contract forbids.
  std::uint64_t result_rows = 0;
};

/// One chunk of a join node's captured output rows (id = build row id,
/// key = probe row id), streamed to the scheduler ahead of the node report
/// (same FIFO pair, so all chunks precede the report).  A re-requested
/// report resends the full stream; `first` lets the scheduler reset that
/// node's accumulation instead of double-counting, and `total` is the
/// node's full captured count for incremental validation.
struct ResultChunkPayload {
  Chunk chunk;
  bool first = false;
  std::uint64_t total = 0;
};

// --- failure detection and recovery payloads ---

/// Epoch bump broadcast to every live join when nodes are declared dead.
/// Data chunks stamped with an epoch older than `epoch` must drop tuples
/// whose hash position falls in `lost` -- the authoritative copies are
/// re-delivered by source replay under the new epoch.
struct RecoveryFencePayload {
  std::uint64_t epoch = 0;
  std::vector<PosRange> lost;
};

/// Surgical state reset ordered before replay starts.  `discard` lists the
/// position ranges whose build (and spilled) tuples the node must drop;
/// `zero_probe_results` additionally clears accumulated matches (probe-phase
/// recovery re-derives them); `new_range` regrows the node's range when a
/// dead neighbour's orphaned entry was merged into it.
struct RangeResetPayload {
  std::uint64_t epoch = 0;
  std::vector<PosRange> discard;
  bool zero_probe_results = false;
  std::optional<PosRange> new_range;
  /// When set, the node is no longer an owner of any map entry (its replica
  /// set collapsed to a surviving peer); it keeps serving drain/report
  /// traffic but will receive no further data.
  bool retired = false;
};

struct RangeResetAckPayload {
  std::uint64_t epoch = 0;
};

/// Scheduler -> source: regenerate the deterministic slice of `rel` and
/// resend the tuples hashing into `ranges` that were already produced,
/// routed by the current partition map (the kMapUpdate broadcast by the
/// recovery surgery precedes this request on the FIFO scheduler->source
/// channel).  The source first flushes its buffers, then adopts `epoch`, so
/// every pre-replay tuple is either out the door under the old epoch (and
/// fence-dropped if lost) or re-sent by this replay.  `pause_after` holds
/// the normal stream paused once the replay completes (probe-phase
/// recovery: the settle drain needs quiescent sources); the next replay
/// request with `pause_after == false` releases it.
struct ReplayRequestPayload {
  std::uint64_t epoch = 0;
  RelTag rel = RelTag::kR;
  std::vector<PosRange> ranges;
  bool pause_after = false;
};

struct ReplayDonePayload {
  std::uint64_t epoch = 0;
  RelTag rel = RelTag::kR;
  /// Tuples re-sent by this replay job (not counted in tuples_sent).
  std::uint64_t tuples_replayed = 0;
  /// Cumulative per-destination data-chunk counts (normal + replay).
  std::map<ActorId, std::uint64_t> chunks_to;
  std::uint64_t chunks_sent_total = 0;
};

// --- scheduler failover payloads ---

/// Checkpoint of the active scheduler's authoritative state, streamed to
/// the standby after every state transition (phase change, map broadcast,
/// join spawn, epoch bump, source completion).  Deliberately small: node
/// reports, drain rounds and the join result are *not* carried -- the
/// promoted scheduler re-collects them from the workers, which stayed
/// alive and hold the authoritative copies.
struct SchedulerSnapshotPayload {
  std::uint64_t generation = 0;  // checkpoint sequence number
  std::uint8_t phase = 0;        // SchedulerActor phase at checkpoint time
  bool probe_recovery = false;   // phase == recovery: which flavour
  std::uint64_t epoch = 0;       // recovery incarnation epoch
  std::uint64_t map_version = 0;
  PartitionMap map;
  std::vector<ActorId> joins;    // live join actors, spawn order
  std::vector<ActorId> sources;  // source actors, source-index order
  std::vector<ActorId> dead;     // all-time dead actors (straggler fencing)
  std::vector<ActorId> spilled;  // joins degraded to local spilling
  std::vector<NodeId> pool_free; // unclaimed pool nodes
  std::uint32_t reshuffle_round = 0;
  std::uint64_t drain_epoch = 0; // drain-probe epoch floor (monotonicity)
  /// Per-source per-destination cumulative data-chunk accounting (the
  /// drain-balance input; superseded by handoff acks where sources are
  /// still alive to send them).
  std::map<ActorId, std::map<ActorId, std::uint64_t>> source_chunks_to;
  /// Scalar metrics accrued so far (phase timestamps, expansion and
  /// failure counters).  The codec carries only scheduler-accrued scalars;
  /// per-node vectors and the join result re-arrive with the reports.
  RunMetrics metrics;
};

/// Promoted standby -> every join, every source, and the (possibly falsely
/// declared dead) old active: `msg.from` is the scheduler now.  Guarded by
/// `generation` so a stale or re-delivered handoff never demotes a newer
/// scheduler; an old active that sees a generation above its own abdicates
/// instead of fighting (split-brain safety on a false positive).
struct SchedulerHandoffPayload {
  std::uint64_t generation = 0;
  std::uint64_t epoch = 0;  // promoted scheduler's pre-wipe epoch
};

/// Source -> promoted scheduler: the source's authoritative local truth.
/// The promoted scheduler rebuilds its per-source bookkeeping from these
/// acks rather than trusting the snapshot, which may trail the active's
/// death by a few transitions (completions lost with it in flight).
struct SchedulerHandoffAckPayload {
  std::uint64_t generation = 0;
  /// Bit 0: R finished; bit 1: S finished; bit 2: R stream started;
  /// bit 3: S stream started.  A clear started bit flags a replacement
  /// whose stream start was lost with the dead coordinator.
  std::uint8_t done_mask = 0;
  std::uint64_t build_tuples = 0;  // normal-stream tuples sent, relation R
  std::uint64_t probe_tuples = 0;
  std::uint64_t build_chunks = 0;
  std::uint64_t probe_chunks = 0;
  /// Cumulative per-destination data-chunk counts (normal + replay).
  std::map<ActorId, std::uint64_t> chunks_to;
};

/// Wire size of a data chunk under `schema`.
inline std::size_t chunk_wire_bytes(const Chunk& chunk, const Schema& schema) {
  return chunk.wire_bytes(schema);
}

}  // namespace ehja
