// The join protocol's message vocabulary.
//
// Naming follows the paper where it names a message ("memory full message",
// "start probe message", ...).  Tag numbering is stable so protocol traces
// are readable.  See core/scheduler.hpp for the phase state machine.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "hash/partition_map.hpp"
#include "relation/chunk.hpp"
#include "runtime/message.hpp"
#include "util/histogram.hpp"

namespace ehja {

enum class Tag : int {
  // --- bootstrap ---
  kJoinInit = 1,       // scheduler -> join: your range and role
  kStartBuild = 2,     // scheduler -> source: initial map, begin relation R
  kGenSlice = 3,       // source -> self: generate the next quantum

  // --- data plane ---
  kDataChunk = 10,     // source/peer -> join: a chunk of R or S tuples
  kForwardEnd = 11,    // peer -> join: migration/handoff stream complete

  // --- expansion (build phase) ---
  kMemoryFull = 20,    // join -> scheduler (paper ss4.1.1)
  kSplitRequest = 21,  // scheduler -> join: ship `moved` range to new node
  kHandoffStart = 22,  // scheduler -> join: you are frozen; forward pending
  kOpComplete = 23,    // new join -> scheduler: expansion op done
  kRelief = 24,        // scheduler -> join: your request was serviced
  kSwitchToSpill = 25, // scheduler -> join: pool exhausted, spill locally
  kMapUpdate = 26,     // scheduler -> source: new partition map

  // --- phase barriers ---
  kSourceDone = 30,    // source -> scheduler: finished one relation
  kDrainProbe = 31,    // scheduler -> join: report your chunk counters
  kDrainAck = 32,      // join -> scheduler
  kBuildComplete = 33, // scheduler -> join: build phase over
  kStartProbe = 34,    // scheduler -> source: final map, begin relation S
  kSourceProgress = 35,// source -> scheduler: build tuples so far (adaptive)

  // --- hybrid reshuffle ---
  kHistogramRequest = 40,  // scheduler -> join (replica-set member)
  kHistogramReply = 41,    // join -> scheduler
  kReshuffleMove = 42,     // scheduler -> join: new sub-partitioning
  kReshuffleDone = 43,     // join -> scheduler: finished shipping

  // --- completion ---
  kReportRequest = 50,  // scheduler -> join: finish + report
  kNodeReport = 51,     // join -> scheduler
};

/// Modes a join process can be initialized into.
enum class JoinRole : std::uint8_t {
  kInitial,     // one of the J initial working nodes
  kSplitChild,  // receives the upper half of a split bucket
  kReplica,     // fresh replica of an overflowed range
};

struct JoinInitPayload {
  JoinRole role = JoinRole::kInitial;
  PosRange range;
  std::uint32_t source_count = 0;
  std::uint64_t op_id = 0;  // expansion op this spawn belongs to (0 = none)
};

struct StartBuildPayload {
  PartitionMap map;
};

struct ChunkPayload {
  Chunk chunk;
  bool forwarded = false;  // peer-to-peer (migration/handoff/stale-route)
};

struct ForwardEndPayload {
  std::uint64_t op_id = 0;  // 0 for ad-hoc stale-route streams
};

struct MemoryFullPayload {
  std::uint64_t footprint_bytes = 0;
  std::uint64_t budget_bytes = 0;
};

struct SplitRequestPayload {
  std::uint64_t op_id = 0;
  PosRange moved;     // upper half, leaves the owner
  ActorId target = kInvalidActor;
};

struct HandoffStartPayload {
  std::uint64_t op_id = 0;
  ActorId target = kInvalidActor;  // the fresh replica
};

struct OpCompletePayload {
  std::uint64_t op_id = 0;
  std::uint64_t tuples_received = 0;
};

struct MapUpdatePayload {
  std::uint64_t version = 0;
  PartitionMap map;
};

struct SourceDonePayload {
  RelTag rel = RelTag::kR;
  std::uint64_t chunks_sent = 0;
  std::uint64_t tuples_sent = 0;
};

struct SourceProgressPayload {
  RelTag rel = RelTag::kR;
  std::uint64_t tuples_sent = 0;  // cumulative for this source
};

struct DrainProbePayload {
  std::uint64_t epoch = 0;
};

struct DrainAckPayload {
  std::uint64_t epoch = 0;
  std::uint64_t data_chunks_received = 0;
  std::uint64_t data_chunks_forwarded = 0;
};

struct StartProbePayload {
  PartitionMap map;
};

struct HistogramRequestPayload {
  std::uint64_t set_id = 0;
  std::size_t bins = 0;
};

struct HistogramReplyPayload {
  std::uint64_t set_id = 0;
  BinnedHistogram histogram;
};

struct ReshuffleMovePayload {
  /// The replica set's range re-cut into disjoint sub-ranges, one per set
  /// member; every member receives the same plan and ships accordingly.
  std::vector<PartitionMap::Entry> plan;
};

struct NodeReportPayload {
  NodeMetrics metrics;
  std::uint64_t checksum = 0;
};

/// Wire size of a data chunk under `schema`.
inline std::size_t chunk_wire_bytes(const Chunk& chunk, const Schema& schema) {
  return chunk.wire_bytes(schema);
}

}  // namespace ehja
