#include "core/data_source.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

DataSourceActor::DataSourceActor(std::shared_ptr<const EhjaConfig> config,
                                 std::uint32_t source_index, ActorId scheduler)
    : config_(std::move(config)),
      source_index_(source_index),
      scheduler_(scheduler) {}

std::string DataSourceActor::name() const {
  std::ostringstream os;
  os << "source[" << source_index_ << "]";
  return os.str();
}

const RelationSpec& DataSourceActor::active_spec() const {
  return phase_ == Phase::kBuild ? config_->build_rel : config_->probe_rel;
}

const RelationSpec& DataSourceActor::spec_of(RelTag rel) const {
  return rel == config_->build_rel.tag ? config_->build_rel
                                       : config_->probe_rel;
}

void DataSourceActor::on_message(const Message& msg) {
  const Tag tag = static_cast<Tag>(msg.tag);
  // Split-brain guard: scheduler control is only obeyed from the scheduler
  // this source currently follows.  After a (possibly false-positive)
  // failover the deposed scheduler may still emit control traffic; dropping
  // it here keeps exactly one coordinator authoritative.
  const bool scheduler_control =
      tag == Tag::kStartBuild || tag == Tag::kStartProbe ||
      tag == Tag::kMapUpdate || tag == Tag::kReplayRequest || tag == Tag::kPing;
  // (kInvalidActor marks a harness-injected message; no live actor has it.)
  if (scheduler_control && msg.from != scheduler_ &&
      msg.from != kInvalidActor) {
    EHJA_WARN(name(), "dropping control tag ", msg.tag,
              " from non-current scheduler ", msg.from);
    return;
  }
  switch (tag) {
    case Tag::kStartBuild: {
      charge(config_->cost.control_handle_sec);
      phase_ = Phase::kBuild;
      paused_ = false;  // a phase start always outranks a settle pause
      const auto& start = msg.as<StartBuildPayload>();
      epoch_ = std::max(epoch_, start.epoch);
      done_mask_ |= 0x4;  // build stream started
      start_relation(config_->build_rel.tag, start.map);
      break;
    }
    case Tag::kStartProbe: {
      charge(config_->cost.control_handle_sec);
      phase_ = Phase::kProbe;
      paused_ = false;  // a phase start always outranks a settle pause
      const auto& start = msg.as<StartProbePayload>();
      epoch_ = std::max(epoch_, start.epoch);
      done_mask_ |= 0x8;  // probe stream started
      start_relation(config_->probe_rel.tag, start.map);
      break;
    }
    case Tag::kMapUpdate: {
      charge(config_->cost.control_handle_sec);
      const auto& update = msg.as<MapUpdatePayload>();
      if (update.version > map_version_) {
        map_version_ = update.version;
        map_ = update.map;
      }
      break;
    }
    case Tag::kGenSlice: {
      generate_slice();
      break;
    }
    case Tag::kReplayRequest: {
      charge(config_->cost.control_handle_sec);
      handle_replay(msg.as<ReplayRequestPayload>());
      break;
    }
    case Tag::kPing: {
      charge(config_->cost.control_handle_sec);
      send(scheduler_, make_signal(Tag::kPong));
      break;
    }
    case Tag::kSchedulerHandoff: {
      charge(config_->cost.control_handle_sec);
      handle_scheduler_handoff(msg);
      break;
    }
    default:
      EHJA_CHECK_MSG(false, "data source received unexpected tag");
  }
}

void DataSourceActor::handle_scheduler_handoff(const Message& msg) {
  const auto& handoff = msg.as<SchedulerHandoffPayload>();
  if (handoff.generation <= scheduler_generation_) {
    EHJA_WARN(name(), "ignoring stale scheduler handoff gen ",
              handoff.generation);
    return;
  }
  scheduler_generation_ = handoff.generation;
  scheduler_ = msg.from;
  epoch_ = std::max(epoch_, handoff.epoch);
  EHJA_INFO(name(), "following scheduler ", scheduler_, " (gen ",
            scheduler_generation_, ")");
  // Report local truth: the promoted scheduler rebuilds its per-source
  // bookkeeping from these acks instead of its (possibly stale) snapshot.
  SchedulerHandoffAckPayload ack;
  ack.generation = handoff.generation;
  ack.done_mask = done_mask_;
  ack.build_tuples = build_tuples_total_;
  ack.probe_tuples = probe_tuples_total_;
  ack.build_chunks = build_chunks_;
  ack.probe_chunks = probe_chunks_;
  ack.chunks_to = chunks_to_;
  const std::size_t wire = kControlWireBytes + 24 * ack.chunks_to.size();
  send(scheduler_,
       make_message(Tag::kSchedulerHandoffAck, std::move(ack), wire));
}

void DataSourceActor::start_relation(RelTag /*rel*/, const PartitionMap& map) {
  map_ = map;
  // A phase-start map is authoritative; later kMapUpdate versions continue
  // from wherever the build left off.
  stream_.emplace(active_spec(), config_->seed, source_index_,
                  config_->data_sources);
  tuples_sent_ = 0;
  defer_slice();
}

void DataSourceActor::defer_slice() {
  if (slice_pending_) return;
  slice_pending_ = true;
  defer(make_signal(Tag::kGenSlice));
}

void DataSourceActor::generate_slice() {
  slice_pending_ = false;
  if (replay_.has_value()) {
    replay_slice();
    return;
  }
  if (paused_ || phase_ == Phase::kIdle || phase_ == Phase::kDone) return;
  const RelTag rel = active_spec().tag;
  Tuple t;
  std::uint32_t produced = 0;
  stage_.clear();
  stage_.reserve(config_->generation_slice_tuples);
  while (produced < config_->generation_slice_tuples && stream_->next(t)) {
    stage_.append(t.id, t.key);
    ++produced;
  }
  route_batch(stage_, rel, /*probe_fanout=*/phase_ == Phase::kProbe);
  charge(static_cast<double>(produced) * config_->cost.tuple_generate_sec);

  // The adaptive policy's observed-rate input.  Only kAdaptive pays for
  // these reports: under the paper's algorithms the extra control messages
  // would perturb event timing without anyone reading them.
  if (config_->algorithm == Algorithm::kAdaptive && phase_ == Phase::kBuild &&
      ++slices_since_report_ >= config_->source_progress_slices) {
    slices_since_report_ = 0;
    SourceProgressPayload progress;
    progress.rel = rel;
    progress.tuples_sent = tuples_sent_;
    send(scheduler_,
         make_message(Tag::kSourceProgress, progress, kControlWireBytes));
  }

  if (stream_->remaining() > 0) {
    defer_slice();
    return;
  }
  flush_all();
  SourceDonePayload done;
  done.rel = rel;
  done.chunks_sent = rel == RelTag::kR ? build_chunks_ : probe_chunks_;
  done.tuples_sent = tuples_sent_;
  std::size_t wire = kControlWireBytes;
  if (config_->recovery_enabled()) {
    done.chunks_to = chunks_to_;
    wire += 24 * done.chunks_to.size();
  }
  send(scheduler_, make_message(Tag::kSourceDone, std::move(done), wire));
  done_mask_ |= rel == RelTag::kR ? 0x1 : 0x2;
  phase_ = phase_ == Phase::kBuild ? Phase::kIdle : Phase::kDone;
  EHJA_DEBUG(name(), "finished ", rel_name(rel), ": ", tuples_sent_,
             " tuples");
}

void DataSourceActor::handle_replay(const ReplayRequestPayload& req) {
  // Everything buffered so far belongs to the old incarnation: out the door
  // under the old epoch (fences sort out what must die), then adopt the new
  // one.  A folded recovery's request simply overwrites a running job.
  flush_all();
  epoch_ = std::max(epoch_, req.epoch);
  paused_ = req.pause_after;
  ReplayJob job;
  job.epoch = req.epoch;
  job.rel = req.rel;
  job.ranges = req.ranges;
  job.stream.emplace(spec_of(req.rel), config_->seed, source_index_,
                     config_->data_sources);
  // Replay exactly the prefix already produced: the normal stream covers
  // the rest.  Once the relation finished (or was never this phase's
  // stream), the whole slice is fair game.
  const bool streaming_it =
      stream_.has_value() &&
      ((req.rel == config_->build_rel.tag && phase_ == Phase::kBuild) ||
       (req.rel == config_->probe_rel.tag && phase_ == Phase::kProbe));
  job.cap = streaming_it ? stream_->produced() : job.stream->slice_size();
  EHJA_INFO(name(), "replay ", rel_name(req.rel), " epoch ", req.epoch, ": ",
            job.cap, " tuples to re-examine over ", req.ranges.size(),
            " range(s)", req.pause_after ? ", then pause" : "");
  replay_ = std::move(job);
  defer_slice();
}

void DataSourceActor::replay_slice() {
  ReplayJob& job = *replay_;
  Tuple t;
  std::uint32_t produced = 0;
  while (produced < config_->generation_slice_tuples &&
         job.stream->produced() < job.cap && job.stream->next(t)) {
    ++produced;
    const std::uint64_t pos = position_of(t.key);
    bool lost = false;
    for (const PosRange& r : job.ranges) {
      if (r.contains(pos)) {
        lost = true;
        break;
      }
    }
    if (!lost) continue;
    ++job.replayed;
    route_tuple(t, job.rel, /*probe_fanout=*/job.rel == config_->probe_rel.tag);
  }
  charge(static_cast<double>(produced) * config_->cost.tuple_generate_sec);
  if (job.stream->produced() < job.cap && job.stream->remaining() > 0) {
    defer_slice();
    return;
  }
  flush_all();  // replay chunks go out stamped with the new epoch
  ReplayDonePayload done;
  done.epoch = job.epoch;
  done.rel = job.rel;
  done.tuples_replayed = job.replayed;
  done.chunks_to = chunks_to_;
  done.chunks_sent_total = build_chunks_ + probe_chunks_;
  const std::size_t wire = kControlWireBytes + 24 * done.chunks_to.size();
  EHJA_INFO(name(), "replay done: ", job.replayed, " tuples re-sent");
  send(scheduler_, make_message(Tag::kReplayDone, std::move(done), wire));
  replay_.reset();
  if (!paused_ && (phase_ == Phase::kBuild || phase_ == Phase::kProbe) &&
      stream_.has_value() && stream_->remaining() > 0) {
    defer_slice();
  }
}

void DataSourceActor::route_batch(const TupleBatch& batch, RelTag rel,
                                  bool probe_fanout) {
  const std::size_t n = batch.size();
  if (n == 0) return;
  // One-pass partition histogram over the precomputed position column:
  // the destination map entry of every row plus per-entry counts.
  stage_entry_.resize(n);
  entry_counts_.assign(map_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = map_.index_for(batch.position(i));
    stage_entry_[i] = static_cast<std::uint32_t>(idx);
    ++entry_counts_[idx];
  }
  // Size the destination buffers from the histogram before scattering.
  const auto& entries = map_.entries();
  for (std::size_t idx = 0; idx < entries.size(); ++idx) {
    const std::uint32_t count = entry_counts_[idx];
    if (count == 0) continue;
    const auto reserve_for = [&](ActorId owner) {
      Chunk& buffer = buffers_[owner];
      buffer.batch.reserve(std::min<std::size_t>(
          config_->chunk_tuples, buffer.size() + count));
    };
    if (!probe_fanout) {
      reserve_for(entries[idx].active_owner());
    } else {
      for (ActorId owner : entries[idx].owners) reserve_for(owner);
    }
  }
  // Scatter in generation order; a buffer flushes the moment it fills, so
  // chunk boundaries and send order match the tuple-at-a-time semantics.
  for (std::size_t i = 0; i < n; ++i) {
    const PartitionMap::Entry& entry = entries[stage_entry_[i]];
    if (!probe_fanout) {
      buffer_row(entry.active_owner(), batch, i, rel);
    } else {
      // Probe: replicated ranges receive every probe tuple on all replicas.
      for (ActorId owner : entry.owners) {
        buffer_row(owner, batch, i, rel);
      }
    }
  }
}

void DataSourceActor::route_tuple(const Tuple& t, RelTag rel,
                                  bool probe_fanout) {
  const auto& entry = map_.entry_for(position_of(t.key));
  if (!probe_fanout) {
    buffer_tuple(entry.active_owner(), t, rel);
  } else {
    // Probe: replicated ranges receive every probe tuple on all replicas.
    for (ActorId owner : entry.owners) {
      buffer_tuple(owner, t, rel);
    }
  }
}

void DataSourceActor::buffer_tuple(ActorId to, const Tuple& t, RelTag rel) {
  Chunk& buffer = buffers_[to];
  if (buffer.empty()) {
    buffer.rel = rel;
  }
  EHJA_CHECK_MSG(buffer.rel == rel, "mixed-relation buffer");
  buffer.batch.push_back(t);
  if (buffer.size() >= config_->chunk_tuples) {
    flush(to);
  }
}

void DataSourceActor::buffer_row(ActorId to, const TupleBatch& batch,
                                 std::size_t i, RelTag rel) {
  Chunk& buffer = buffers_[to];
  if (buffer.empty()) {
    buffer.rel = rel;
  }
  EHJA_CHECK_MSG(buffer.rel == rel, "mixed-relation buffer");
  buffer.batch.append_row(batch, i);
  if (buffer.size() >= config_->chunk_tuples) {
    flush(to);
  }
}

void DataSourceActor::flush(ActorId to) {
  auto it = buffers_.find(to);
  if (it == buffers_.end() || it->second.empty()) return;
  // Chunk-triggered source kill: die as the K-th data chunk is about to go
  // out.  On the socket runtime kill_node() raises SIGKILL in this very
  // process; on sim/thread runtimes it marks the node dead, so the send
  // below (and everything after) is discarded with the machine.
  if (const KillSpec* kill = config_->kill_for_node(node());
      kill != nullptr && kill->role == KillRole::kSource &&
      kill->after_chunks > 0 &&
      build_chunks_ + probe_chunks_ + 1 == kill->after_chunks) {
    EHJA_INFO(name(), "injected kill before chunk ", kill->after_chunks);
    rt().kill_node(node());
  }
  Chunk& buffer = it->second;
  const std::size_t n = buffer.size();
  charge(static_cast<double>(n) * config_->cost.tuple_pack_sec);
  // Replayed tuples are re-deliveries, not new production: keeping them out
  // of tuples_sent_ preserves the build-side conservation check.
  if (!replay_.has_value()) {
    tuples_sent_ += n;
    if (buffer.rel == RelTag::kR) {
      build_tuples_total_ += n;
    } else {
      probe_tuples_total_ += n;
    }
  }
  if (buffer.rel == RelTag::kR) {
    ++build_chunks_;
  } else {
    ++probe_chunks_;
  }
  if (config_->recovery_enabled()) ++chunks_to_[to];
  ChunkPayload payload;
  payload.chunk = std::move(buffer);
  payload.forwarded = false;
  payload.epoch = epoch_;
  const std::size_t wire =
      chunk_wire_bytes(payload.chunk, spec_of(payload.chunk.rel).schema);
  buffers_.erase(it);
  send(to, make_message(Tag::kDataChunk, std::move(payload), wire));
}

void DataSourceActor::flush_all() {
  // std::map iteration order makes the flush sequence deterministic.
  while (!buffers_.empty()) {
    flush(buffers_.begin()->first);
  }
}

}  // namespace ehja
