#include "core/data_source.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

DataSourceActor::DataSourceActor(std::shared_ptr<const EhjaConfig> config,
                                 std::uint32_t source_index, ActorId scheduler)
    : config_(std::move(config)),
      source_index_(source_index),
      scheduler_(scheduler) {}

std::string DataSourceActor::name() const {
  std::ostringstream os;
  os << "source[" << source_index_ << "]";
  return os.str();
}

const RelationSpec& DataSourceActor::active_spec() const {
  return phase_ == Phase::kBuild ? config_->build_rel : config_->probe_rel;
}

void DataSourceActor::on_message(const Message& msg) {
  switch (static_cast<Tag>(msg.tag)) {
    case Tag::kStartBuild: {
      charge(config_->cost.control_handle_sec);
      phase_ = Phase::kBuild;
      start_relation(config_->build_rel.tag, msg.as<StartBuildPayload>().map);
      break;
    }
    case Tag::kStartProbe: {
      charge(config_->cost.control_handle_sec);
      phase_ = Phase::kProbe;
      start_relation(config_->probe_rel.tag, msg.as<StartProbePayload>().map);
      break;
    }
    case Tag::kMapUpdate: {
      charge(config_->cost.control_handle_sec);
      const auto& update = msg.as<MapUpdatePayload>();
      if (update.version > map_version_) {
        map_version_ = update.version;
        map_ = update.map;
      }
      break;
    }
    case Tag::kGenSlice: {
      generate_slice();
      break;
    }
    default:
      EHJA_CHECK_MSG(false, "data source received unexpected tag");
  }
}

void DataSourceActor::start_relation(RelTag /*rel*/, const PartitionMap& map) {
  map_ = map;
  // A phase-start map is authoritative; later kMapUpdate versions continue
  // from wherever the build left off.
  stream_.emplace(active_spec(), config_->seed, source_index_,
                  config_->data_sources);
  tuples_sent_ = 0;
  defer(make_signal(Tag::kGenSlice));
}

void DataSourceActor::generate_slice() {
  EHJA_CHECK(phase_ == Phase::kBuild || phase_ == Phase::kProbe);
  const RelTag rel = active_spec().tag;
  Tuple t;
  std::uint32_t produced = 0;
  while (produced < config_->generation_slice_tuples && stream_->next(t)) {
    route(t, rel);
    ++produced;
  }
  charge(static_cast<double>(produced) * config_->cost.tuple_generate_sec);

  // The adaptive policy's observed-rate input.  Only kAdaptive pays for
  // these reports: under the paper's algorithms the extra control messages
  // would perturb event timing without anyone reading them.
  if (config_->algorithm == Algorithm::kAdaptive && phase_ == Phase::kBuild &&
      ++slices_since_report_ >= config_->source_progress_slices) {
    slices_since_report_ = 0;
    SourceProgressPayload progress;
    progress.rel = rel;
    progress.tuples_sent = tuples_sent_;
    send(scheduler_,
         make_message(Tag::kSourceProgress, progress, kControlWireBytes));
  }

  if (stream_->remaining() > 0) {
    defer(make_signal(Tag::kGenSlice));
    return;
  }
  flush_all();
  SourceDonePayload done;
  done.rel = rel;
  done.chunks_sent = rel == RelTag::kR ? build_chunks_ : probe_chunks_;
  done.tuples_sent = tuples_sent_;
  send(scheduler_, make_message(Tag::kSourceDone, done, kControlWireBytes));
  phase_ = phase_ == Phase::kBuild ? Phase::kIdle : Phase::kDone;
  EHJA_DEBUG(name(), "finished ", rel_name(rel), ": ", done.chunks_sent,
             " chunks, ", done.tuples_sent, " tuples");
}

void DataSourceActor::route(const Tuple& t, RelTag rel) {
  const auto& entry = map_.entry_for(position_of(t.key));
  if (phase_ == Phase::kBuild) {
    buffer_tuple(entry.active_owner(), t, rel);
  } else {
    // Probe: replicated ranges receive every probe tuple on all replicas.
    for (ActorId owner : entry.owners) {
      buffer_tuple(owner, t, rel);
    }
  }
}

void DataSourceActor::buffer_tuple(ActorId to, const Tuple& t, RelTag rel) {
  Chunk& buffer = buffers_[to];
  if (buffer.tuples.empty()) {
    buffer.rel = rel;
    buffer.tuples.reserve(config_->chunk_tuples);
  }
  EHJA_CHECK_MSG(buffer.rel == rel, "mixed-relation buffer");
  buffer.tuples.push_back(t);
  if (buffer.tuples.size() >= config_->chunk_tuples) {
    flush(to);
  }
}

void DataSourceActor::flush(ActorId to) {
  auto it = buffers_.find(to);
  if (it == buffers_.end() || it->second.empty()) return;
  Chunk& buffer = it->second;
  const std::size_t n = buffer.tuples.size();
  charge(static_cast<double>(n) * config_->cost.tuple_pack_sec);
  tuples_sent_ += n;
  if (buffer.rel == RelTag::kR) {
    ++build_chunks_;
  } else {
    ++probe_chunks_;
  }
  ChunkPayload payload;
  payload.chunk = std::move(buffer);
  payload.forwarded = false;
  const std::size_t wire =
      chunk_wire_bytes(payload.chunk, active_spec().schema);
  buffers_.erase(it);
  send(to, make_message(Tag::kDataChunk, std::move(payload), wire));
}

void DataSourceActor::flush_all() {
  // std::map iteration order makes the flush sequence deterministic.
  while (!buffers_.empty()) {
    flush(buffers_.begin()->first);
  }
}

}  // namespace ehja
