// Replica-failover and source-replay recovery (the robustness extension).
//
// The paper's protocol assumes fail-free join nodes; this module makes any
// single (or multiple, including mid-recovery) join-node fail-stop crash
// survivable without changing the answer.  The key obstacle is that a
// replica set holds *disjoint temporal shards* -- a frozen member keeps the
// tuples it stored before the handoff, the fresh replica only receives
// later ones -- so no surviving member holds the dead member's data and
// plain promotion would silently lose tuples.  Instead recovery rebuilds
// from the only authoritative copy that still exists: the data sources'
// deterministic generators (TupleStream is a pure function of seed and
// stream position), which regenerate exactly the lost position ranges.
//
// Protocol, driven from the scheduler's phase machine (Phase::kRecovery):
//
//   death declared            (failure_detector.hpp, scheduler declare_dead)
//     -> incarnation epoch++  (every data chunk is stamped; see below)
//     -> map surgery          collapse affected entries to one live owner,
//                             recruit a pool node or merge into a neighbour
//                             when none survives
//     -> kRecoveryFence       to every live join: stale chunks (older
//                             epoch) drop tuples inside the lost ranges
//     -> kRangeReset          to affected owners: discard rebuilt ranges,
//                             unfreeze, maybe regrow or retire
//     -> all kRangeResetAck   (barrier: no replay before resets applied)
//     -> kReplayRequest(R)    sources resend lost build tuples
//     -> all kReplayDone(R)   build-phase recovery resumes the run here;
//                             probe-phase recovery continues:
//     -> settle drain         (sources hold paused; replayed build chunks
//                             must land before re-probing)
//     -> kReplayRequest(S)    re-probe every tuple of the affected ranges
//     -> all kReplayDone(S)   resume the probe.
//
// Epoch fences.  Chunks in flight at declaration time carry the old epoch;
// their tuples inside a lost range would duplicate the replay (or land in a
// discarded table), so receivers filter them out per-tuple.  Dropping is
// always safe because a fence covers exactly the ranges being replayed.
//
// Probe-phase recovery widens every affected entry to full-range treatment
// (discard all, zero accumulated probe results, replay the whole entry for
// both relations): matches computed against the partial pre-crash table
// cannot be told apart from matches the replay will recompute, so the only
// duplicate-free accounting is to recompute the entry from scratch.
//
// A death during an active recovery *folds*: the epoch bumps again, surgery
// re-runs on the current map, fences/resets go out again and the replay
// restarts from scratch (sources treat a new request as an overwrite).  All
// stale acks and dones are rejected by epoch, making the fold idempotent.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/expansion_policy.hpp"
#include "core/messages.hpp"
#include "hash/hash_family.hpp"

namespace ehja {

/// Scheduler services recovery needs beyond the ExpansionEnv seam.
class RecoveryHost {
 public:
  virtual ~RecoveryHost() = default;

  /// Acquire a live pool node for a replacement join (policy-owned pool);
  /// nullopt when exhausted (recovery falls back to a neighbour merge).
  virtual std::optional<NodeId> recruit_node() = 0;
  /// Run a drain round train while phase == kRecovery; report the result
  /// back via on_settle_drained().
  virtual void start_settle_drain() = 0;
  /// Recovery finished: resume the interrupted phase (`probe_recovery`
  /// tells the scheduler which side of the run to resume).
  virtual void recovery_complete(bool probe_recovery) = 0;
  /// Position-range *hull* ever covered by `actor` (envelope over all maps
  /// it appeared in); empty range if never an owner.  An over-approximation
  /// is safe: extra discard is repaired by the matching extra replay.
  virtual PosRange coverage_of(ActorId actor) const = 0;
  /// Start a replacement data source's normal stream: kStartBuild (rel ==
  /// build) or kStartProbe (rel == probe) carrying the current map and
  /// `epoch`, so its chunks pass the fences already installed at the joins.
  virtual void start_replacement_source(ActorId source, RelTag rel,
                                        std::uint64_t epoch) = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(std::shared_ptr<const EhjaConfig> config, ExpansionEnv& env,
                  RecoveryHost& host);

  bool active() const { return stage_ != Stage::kIdle; }
  /// Current incarnation epoch (0 until the first recovery).
  std::uint64_t epoch() const { return epoch_; }
  /// Whether the active recovery interrupted the probe phase.
  bool probe_recovery() const { return probe_; }
  /// Every actor (join or data source) ever declared dead.  The scheduler
  /// uses it to drop stragglers and to filter drain-ack bookkeeping.
  const std::set<ActorId>& dead_actors() const { return dead_; }

  /// `dead` was declared failed while the run was in a probe-side phase
  /// (`probe_phase`).  Starts a recovery, or folds into the active one.
  /// The scheduler has already pruned the actor from its live lists.
  void on_death(ActorId dead, bool probe_phase);

  /// Full-coverage wipe: discard and replay every position range.  Used
  /// when the lost state cannot be localized to a join node's hull -- a
  /// data-source death (the dead stream's tuples are interleaved across
  /// every range) or a scheduler failover (the promoted coordinator cannot
  /// know which deliveries its predecessor saw).  Starts a recovery, or
  /// folds into the active one, exactly like on_death.
  void on_wipe(bool probe_phase);

  /// Data source `dead` was declared failed: record it in the all-time dead
  /// set (its in-flight chunks and stale acks must be fenced like a join's)
  /// and run a full-coverage wipe -- the dead stream's tuples are
  /// interleaved across every position range, so no smaller hull is sound.
  void on_source_death(ActorId dead, bool probe_phase);

  /// Register `source` as a fresh replacement whose streams have not
  /// started.  It is excluded from replay waves (it has produced nothing to
  /// replay); instead its build stream starts as a *normal counted stream*
  /// at the reset barrier, and -- for probe-phase recoveries, where the
  /// scheduler's kStartProbe broadcast predates the spawn -- its probe
  /// stream starts at settle-drain completion, both through
  /// RecoveryHost::start_replacement_source.
  void add_fresh_source(ActorId source, bool probe_phase);

  /// A source whose build stream ran (or finished) but whose kStartProbe
  /// was lost with a dead coordinator: start only its probe stream fresh
  /// at settle-drain completion.
  void add_fresh_probe_source(ActorId source);

  /// Seed a promoted scheduler from its predecessor's snapshot: adopt the
  /// incarnation epoch and the all-time dead set (straggler fencing).
  /// Valid only while idle, before the promotion wipe.
  void restore(std::uint64_t epoch, std::set<ActorId> dead);

  void on_reset_ack(ActorId from, const RangeResetAckPayload& ack);
  void on_replay_done(ActorId from, const ReplayDonePayload& done);
  /// The settle drain requested via RecoveryHost::start_settle_drain ran to
  /// completion (two stable balanced rounds over the live nodes).
  void on_settle_drained();

 private:
  enum class Stage {
    kIdle,         // no recovery in flight
    kResetting,    // fences sent, awaiting every kRangeResetAck
    kBuildReplay,  // awaiting every source's kReplayDone for R
    kSettleDrain,  // probe recovery: draining replayed build chunks
    kProbeReplay,  // probe recovery: awaiting every kReplayDone for S
  };

  /// Rewrite the partition map around the dead set, queue the per-owner
  /// resets, broadcast fences, and enter kResetting.
  void run_surgery();
  void send_replay_requests(RelTag rel, bool pause_after);
  void start_build_replay();
  void finish();

  std::shared_ptr<const EhjaConfig> config_;
  ExpansionEnv& env_;
  RecoveryHost& host_;

  Stage stage_ = Stage::kIdle;
  std::uint64_t epoch_ = 0;
  bool probe_ = false;
  SimTime started_ = 0.0;
  std::uint32_t wave_deaths_ = 0;     // deaths folded into this recovery
  std::set<ActorId> dead_;            // all-time
  std::vector<PosRange> hulls_;       // lost coverage of this recovery
  std::vector<PosRange> replay_;      // normalized ranges being replayed
  std::set<ActorId> pending_resets_;
  std::set<ActorId> pending_replays_;
  /// Replacement sources whose build stream has not started yet (excluded
  /// from every replay wave until kStartBuild goes out at the barrier).
  std::set<ActorId> fresh_build_;
  /// Replacement sources awaiting their probe stream (probe recoveries
  /// only; excluded from relation-S replay waves until settle completion).
  std::set<ActorId> fresh_probe_;
};

}  // namespace ehja
