// Replica-failover and source-replay recovery (the robustness extension).
//
// The paper's protocol assumes fail-free join nodes; this module makes any
// single (or multiple, including mid-recovery) join-node fail-stop crash
// survivable without changing the answer.  The key obstacle is that a
// replica set holds *disjoint temporal shards* -- a frozen member keeps the
// tuples it stored before the handoff, the fresh replica only receives
// later ones -- so no surviving member holds the dead member's data and
// plain promotion would silently lose tuples.  Instead recovery rebuilds
// from the only authoritative copy that still exists: the data sources'
// deterministic generators (TupleStream is a pure function of seed and
// stream position), which regenerate exactly the lost position ranges.
//
// Protocol, driven from the scheduler's phase machine (Phase::kRecovery):
//
//   death declared            (failure_detector.hpp, scheduler declare_dead)
//     -> incarnation epoch++  (every data chunk is stamped; see below)
//     -> map surgery          collapse affected entries to one live owner,
//                             recruit a pool node or merge into a neighbour
//                             when none survives
//     -> kRecoveryFence       to every live join: stale chunks (older
//                             epoch) drop tuples inside the lost ranges
//     -> kRangeReset          to affected owners: discard rebuilt ranges,
//                             unfreeze, maybe regrow or retire
//     -> all kRangeResetAck   (barrier: no replay before resets applied)
//     -> kReplayRequest(R)    sources resend lost build tuples
//     -> all kReplayDone(R)   build-phase recovery resumes the run here;
//                             probe-phase recovery continues:
//     -> settle drain         (sources hold paused; replayed build chunks
//                             must land before re-probing)
//     -> kReplayRequest(S)    re-probe every tuple of the affected ranges
//     -> all kReplayDone(S)   resume the probe.
//
// Epoch fences.  Chunks in flight at declaration time carry the old epoch;
// their tuples inside a lost range would duplicate the replay (or land in a
// discarded table), so receivers filter them out per-tuple.  Dropping is
// always safe because a fence covers exactly the ranges being replayed.
//
// Probe-phase recovery widens every affected entry to full-range treatment
// (discard all, zero accumulated probe results, replay the whole entry for
// both relations): matches computed against the partial pre-crash table
// cannot be told apart from matches the replay will recompute, so the only
// duplicate-free accounting is to recompute the entry from scratch.
//
// A death during an active recovery *folds*: the epoch bumps again, surgery
// re-runs on the current map, fences/resets go out again and the replay
// restarts from scratch (sources treat a new request as an overwrite).  All
// stale acks and dones are rejected by epoch, making the fold idempotent.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/expansion_policy.hpp"
#include "core/messages.hpp"
#include "hash/hash_family.hpp"

namespace ehja {

/// Scheduler services recovery needs beyond the ExpansionEnv seam.
class RecoveryHost {
 public:
  virtual ~RecoveryHost() = default;

  /// Acquire a live pool node for a replacement join (policy-owned pool);
  /// nullopt when exhausted (recovery falls back to a neighbour merge).
  virtual std::optional<NodeId> recruit_node() = 0;
  /// Run a drain round train while phase == kRecovery; report the result
  /// back via on_settle_drained().
  virtual void start_settle_drain() = 0;
  /// Recovery finished: resume the interrupted phase (`probe_recovery`
  /// tells the scheduler which side of the run to resume).
  virtual void recovery_complete(bool probe_recovery) = 0;
  /// Position-range *hull* ever covered by `actor` (envelope over all maps
  /// it appeared in); empty range if never an owner.  An over-approximation
  /// is safe: extra discard is repaired by the matching extra replay.
  virtual PosRange coverage_of(ActorId actor) const = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(std::shared_ptr<const EhjaConfig> config, ExpansionEnv& env,
                  RecoveryHost& host);

  bool active() const { return stage_ != Stage::kIdle; }
  /// Current incarnation epoch (0 until the first recovery).
  std::uint64_t epoch() const { return epoch_; }
  /// Whether the active recovery interrupted the probe phase.
  bool probe_recovery() const { return probe_; }
  /// Every join actor ever declared dead.
  const std::set<ActorId>& dead_actors() const { return dead_; }

  /// `dead` was declared failed while the run was in a probe-side phase
  /// (`probe_phase`).  Starts a recovery, or folds into the active one.
  /// The scheduler has already pruned the actor from its live lists.
  void on_death(ActorId dead, bool probe_phase);

  void on_reset_ack(ActorId from, const RangeResetAckPayload& ack);
  void on_replay_done(ActorId from, const ReplayDonePayload& done);
  /// The settle drain requested via RecoveryHost::start_settle_drain ran to
  /// completion (two stable balanced rounds over the live nodes).
  void on_settle_drained();

 private:
  enum class Stage {
    kIdle,         // no recovery in flight
    kResetting,    // fences sent, awaiting every kRangeResetAck
    kBuildReplay,  // awaiting every source's kReplayDone for R
    kSettleDrain,  // probe recovery: draining replayed build chunks
    kProbeReplay,  // probe recovery: awaiting every kReplayDone for S
  };

  /// Rewrite the partition map around the dead set, queue the per-owner
  /// resets, broadcast fences, and enter kResetting.
  void run_surgery();
  void send_replay_requests(RelTag rel, bool pause_after);
  void start_build_replay();
  void finish();

  std::shared_ptr<const EhjaConfig> config_;
  ExpansionEnv& env_;
  RecoveryHost& host_;

  Stage stage_ = Stage::kIdle;
  std::uint64_t epoch_ = 0;
  bool probe_ = false;
  SimTime started_ = 0.0;
  std::uint32_t wave_deaths_ = 0;     // deaths folded into this recovery
  std::set<ActorId> dead_;            // all-time
  std::vector<PosRange> hulls_;       // lost coverage of this recovery
  std::vector<PosRange> replay_;      // normalized ranges being replayed
  std::set<ActorId> pending_resets_;
  std::set<ActorId> pending_replays_;
};

}  // namespace ehja
