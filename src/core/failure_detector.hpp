// Heartbeat failure detector.
//
// A pure state machine (no actor machinery), driven by the scheduler's
// timed kHeartbeatTick: track() registers a join process, heard_from()
// records any sign of life (a kPong, but any message counts), and tick()
// returns who to ping next and who has been silent past the timeout.  The
// scheduler owns all messaging; this class only keeps the clock book.
//
// The detector is deliberately *eventually perfect* rather than accurate: a
// busy-but-live node that misses the timeout is declared dead, and the
// recovery protocol stays correct anyway (the false-dead node's traffic is
// fenced by incarnation epochs and its state is rebuilt elsewhere) -- the
// cost of a false positive is wasted replay, never a wrong join result.
// Phi-accrual suspicion levels and node rejuvenation are ROADMAP follow-ups.
#pragma once

#include <map>
#include <vector>

#include "runtime/message.hpp"
#include "sim/simulator.hpp"

namespace ehja {

class FailureDetector {
 public:
  explicit FailureDetector(double timeout_sec) : timeout_sec_(timeout_sec) {}

  /// Start watching `actor`; `now` seeds its last-heard clock.
  void track(ActorId actor, SimTime now);
  /// Stop watching (the actor died or the protocol is winding down).
  void untrack(ActorId actor);
  bool tracking(ActorId actor) const;
  std::size_t tracked_count() const { return last_heard_.size(); }

  /// Record a sign of life.  Ignored for untracked actors (a pong from an
  /// actor already declared dead must not resurrect it).
  void heard_from(ActorId actor, SimTime now);

  struct Death {
    ActorId actor = kInvalidActor;
    double silence_sec = 0.0;  // detection latency: now - last heard
  };
  struct TickResult {
    std::vector<ActorId> ping;  // still live: ping them again
    std::vector<Death> dead;    // silent past the timeout; now untracked
  };

  /// One detector round at time `now`.  Actors silent for longer than the
  /// timeout are declared dead (and untracked); everyone else should be
  /// pinged.  Deterministic: results are in ActorId order.
  TickResult tick(SimTime now);

  double timeout_sec() const { return timeout_sec_; }

 private:
  double timeout_sec_;
  std::map<ActorId, SimTime> last_heard_;
};

}  // namespace ehja
