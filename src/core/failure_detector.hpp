// Heartbeat failure detector.
//
// A pure state machine (no actor machinery), driven by the scheduler's
// timed kHeartbeatTick: track() registers a watched actor, heard_from()
// records any sign of life (a kPong, but any message counts), and tick()
// returns who to ping next and who should be declared dead.  The scheduler
// owns all messaging; this class only keeps the clock book.
//
// Two detection rules (DetectorKind, core/config.hpp):
//
//   kTimeout     dead after a fixed silence threshold.  Simple, but the
//                threshold must be sized for the *worst* case: a node
//                rebuilding a collapsed range during recovery is legitimately
//                silent for a long time, so a tight timeout re-declares the
//                rebuilder dead and cascades (DESIGN.md §7).
//
//   kPhiAccrual  Hayashibara et al.'s accrual detector: per-actor pong
//                inter-arrival times feed a sliding normal estimate, and
//                the current silence is scored as
//                    phi(t) = -log10 P(next pong arrives later than t)
//                under that estimate.  phi grows continuously with
//                silence, so the threshold expresses confidence rather
//                than seconds: detection is fast when the link has been
//                quiet and regular, and automatically slack when arrivals
//                have been erratic.  The fixed timeout survives as a hard
//                cap (an actor silent that long is dead regardless of
//                history) and as the fallback rule until enough samples
//                exist.  During an active recovery pass the threshold is
//                doubled -- the busy-rebuilder guard: rebuilders answer
//                pings late and irregularly, exactly the pattern a
//                confident detector would flag.
//
// The detector is deliberately *eventually perfect* rather than accurate: a
// busy-but-live node that misses the rule is declared dead, and the
// recovery protocol stays correct anyway (the false-dead node's traffic is
// fenced by incarnation epochs and its state is rebuilt elsewhere) -- the
// cost of a false positive is wasted replay, never a wrong join result.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/config.hpp"
#include "runtime/message.hpp"
#include "sim/simulator.hpp"

namespace ehja {

class FailureDetector {
 public:
  /// Legacy fixed-timeout detector.
  explicit FailureDetector(double timeout_sec)
      : FailureDetector(DetectorKind::kTimeout, timeout_sec, 8.0) {}

  /// `window` is the phi inter-arrival ring size (ft.phi_window); it is
  /// ignored under kTimeout.  Must be >= 1 (config validation enforces it
  /// before a detector is ever constructed).
  FailureDetector(DetectorKind kind, double timeout_sec, double phi_threshold,
                  std::size_t window = 32);

  /// Start watching `actor`; `now` seeds its last-heard clock.
  void track(ActorId actor, SimTime now);
  /// Stop watching (the actor died or the protocol is winding down).
  void untrack(ActorId actor);
  bool tracking(ActorId actor) const;
  std::size_t tracked_count() const { return tracked_.size(); }

  /// Record a sign of life.  Ignored for untracked actors (a pong from an
  /// actor already declared dead must not resurrect it).  `sample` marks
  /// arrivals of the periodic kind (pongs, snapshots): only those feed the
  /// phi inter-arrival window -- counting every protocol message would
  /// flood the window with near-zero gaps during a burst and make the
  /// estimate absurdly confident.
  void heard_from(ActorId actor, SimTime now, bool sample = false);

  struct Death {
    ActorId actor = kInvalidActor;
    double silence_sec = 0.0;  // detection latency: now - last heard
    double phi = 0.0;          // suspicion at declaration (0 under kTimeout)
  };
  struct TickResult {
    std::vector<ActorId> ping;  // still live: ping them again
    std::vector<Death> dead;    // declared dead; now untracked
  };

  /// One detector round at time `now`.  Actors whose silence violates the
  /// active rule are declared dead (and untracked); everyone else should
  /// be pinged.  `recovery_active` arms the busy-rebuilder guard (phi
  /// threshold doubled).  Deterministic: results are in ActorId order.
  TickResult tick(SimTime now, bool recovery_active = false);

  /// Current suspicion level for a tracked actor (kPhiAccrual; 0 while the
  /// sample window is still warming up).  Exposed for tests and tracing.
  double phi(ActorId actor, SimTime now) const;

  double timeout_sec() const { return timeout_sec_; }
  DetectorKind kind() const { return kind_; }
  double phi_threshold() const { return phi_threshold_; }

 private:
  /// Sliding inter-arrival window per tracked actor.
  struct Track {
    SimTime last_heard = 0.0;
    SimTime last_sample = 0.0;
    bool sampled_once = false;
    std::vector<double> gaps;   // ring buffer of inter-arrival seconds
    std::size_t next_gap = 0;   // ring cursor
    void push_gap(double gap, std::size_t window);
  };

  bool is_dead(const Track& t, SimTime now, bool recovery_active,
               double* phi_out) const;
  double phi_of(const Track& t, SimTime now) const;

  DetectorKind kind_;
  double timeout_sec_;
  double phi_threshold_;
  /// Window size (samples kept per actor) -- ft.phi_window.
  std::size_t window_;
  /// Minimum samples before phi replaces the timeout fallback; tiny windows
  /// clamp it down so a window of e.g. 4 still warms up.
  std::size_t min_samples_;
  std::map<ActorId, Track> tracked_;
};

}  // namespace ehja
