// One join query as a reusable, re-entrant unit.
//
// Historically core/driver.cpp wired scheduler + sources + joins straight
// into a runtime, ran it to completion, and exited -- run-once semantics
// baked into the only entry point.  The serving layer (src/serve/) needs
// the same wiring as an object: a persistent coordinator hosts *many*
// concurrent QueryRuns over one warm worker fleet, each with its own
// scheduler instance, its own RunMetrics, and its own placement on the
// shared pool.  run_ehja() is now a thin wrapper over one QueryRun.
//
// Differences from the classic single-query layout, all opt-in:
//   * placement is explicit (QueryPlacement) instead of derived from the
//     config's node-numbering scheme, so many queries can pack onto one
//     fleet;
//   * completion is a callback (scheduler set_on_done) instead of stopping
//     the runtime;
//   * the per-query ResourcePool can be backed by PoolHooks, so expansion
//     ("give me one more node") becomes a negotiation with the admission
//     controller rather than a free grant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cluster/resource_pool.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class SchedulerActor;

/// Where one query's processes live.  `pool_nodes` are the *unclaimed*
/// expansion candidates (the classic layout puts config.join_pool_nodes -
/// initial_join_nodes of them); they seed the query's ResourcePool.
struct QueryPlacement {
  NodeId scheduler_node = 0;
  std::vector<NodeId> source_nodes;          // size == config.data_sources
  std::vector<NodeId> join_nodes;            // size == config.initial_join_nodes
  std::vector<NodeId> pool_nodes;            // unclaimed expansion candidates
  std::optional<NodeId> standby_node;        // ft.standby_scheduler only

  /// The classic config-derived layout (node 0 scheduler, then sources,
  /// then pool).  `standby_on_scheduler_node` reproduces the socket-runtime
  /// rule that the standby shares the coordinator process.
  static QueryPlacement from_config(const EhjaConfig& config,
                                    bool standby_on_scheduler_node);
};

/// One join run: spawns and wires the actors on construction via start(),
/// then hands control to the runtime.  The QueryRun must outlive the
/// runtime's use of it only in the sense that metrics are read from the
/// scheduler actor; collect_metrics() must be called before the actors are
/// retired.
class QueryRun {
 public:
  QueryRun(Runtime& rt, std::shared_ptr<const EhjaConfig> config);
  ~QueryRun();

  QueryRun(const QueryRun&) = delete;
  QueryRun& operator=(const QueryRun&) = delete;

  /// Completion hook, forwarded to the scheduler(s); install before
  /// start().  Without one, run completion stops the whole runtime (the
  /// one-shot driver behaviour).
  void set_on_done(std::function<void()> on_done) {
    on_done_ = std::move(on_done);
  }
  /// Back this query's expansion pool with an external provider (the
  /// admission controller); install before start().
  void set_pool_hooks(PoolHooks hooks) { hooks_ = std::move(hooks); }

  /// Spawn scheduler (+ standby), sources and initial joins per
  /// `placement`, build the ResourcePool from placement.pool_nodes, and
  /// wire everything.  Call exactly once, before Runtime::run() (or, in a
  /// serving coordinator, from the runtime's idle hook).
  void start(const QueryPlacement& placement);

  /// Did either coordinator finish the run?
  bool finished() const;

  /// Metrics from whichever coordinator finished (aborts if none did).
  /// `kills_executed` is runtime-global, so the driver (not this class)
  /// stamps failures_injected.
  RunMetrics collect_metrics() const;

  ActorId scheduler_id() const { return *scheduler_id_; }

  /// Every actor this query ever spawned (initial wiring plus expansion
  /// recruits and replacement sources) -- the retirement list a serving
  /// coordinator hands to Runtime::retire_actor once results are read.
  std::vector<ActorId> spawned_actors() const;

 private:
  ActorId record(ActorId id);

  Runtime& rt_;
  std::shared_ptr<const EhjaConfig> config_;
  std::function<void()> on_done_;
  PoolHooks hooks_;
  std::shared_ptr<ActorId> scheduler_id_;
  SchedulerActor* scheduler_raw_ = nullptr;
  SchedulerActor* standby_raw_ = nullptr;
  bool started_ = false;
  /// Expansion recruits are spawned from scheduler message handling, which
  /// on ThreadRuntime is another thread than the one reading
  /// spawned_actors(); a mutex keeps the ledger sound everywhere.
  mutable std::mutex spawned_mutex_;
  std::vector<ActorId> spawned_;
};

}  // namespace ehja
