#include "core/driver.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/data_source.hpp"
#include "core/join_process.hpp"
#include "core/scheduler.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/socket_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "util/assert.hpp"
#include "workload/generator.hpp"

namespace ehja {

namespace {

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind, ClusterSpec spec,
                                      const EhjaConfig& config) {
  switch (kind) {
    case RuntimeKind::kSim:
      return std::make_unique<SimRuntime>(std::move(spec));
    case RuntimeKind::kThread:
      return std::make_unique<ThreadRuntime>(std::move(spec));
    case RuntimeKind::kSocket:
      // Forks one worker process per non-coordinator node; the config rides
      // along so workers can rebuild actors from spawn specs.
      return std::make_unique<SocketRuntime>(std::move(spec), config);
  }
  EHJA_CHECK_MSG(false, "unreachable: bad RuntimeKind");
  return nullptr;
}

}  // namespace

RunResult run_ehja(const EhjaConfig& config, RuntimeKind kind) {
  config.validate();
  auto cfg = std::make_shared<const EhjaConfig>(config);
  std::unique_ptr<Runtime> runtime =
      make_runtime(kind, make_cluster(config), config);
  Runtime* rt = runtime.get();

  // The scheduler instantiates join processes on demand through this hook
  // ("a join process on node w is instantiated", paper ss4.1.1).
  auto scheduler_id = std::make_shared<ActorId>(kInvalidActor);
  auto spawn_join = [rt, cfg, scheduler_id](NodeId node) {
    return rt->spawn(node,
                     std::make_unique<JoinProcessActor>(cfg, *scheduler_id));
  };

  auto scheduler = std::make_unique<SchedulerActor>(cfg, spawn_join);
  SchedulerActor* scheduler_raw = scheduler.get();
  *scheduler_id = rt->spawn(cfg->scheduler_node(), std::move(scheduler));

  std::vector<ActorId> sources;
  sources.reserve(cfg->data_sources);
  for (std::uint32_t i = 0; i < cfg->data_sources; ++i) {
    sources.push_back(rt->spawn(
        cfg->source_node(i),
        std::make_unique<DataSourceActor>(cfg, i, *scheduler_id)));
  }

  std::vector<ActorId> initial_joins;
  initial_joins.reserve(cfg->initial_join_nodes);
  for (std::uint32_t j = 0; j < cfg->initial_join_nodes; ++j) {
    initial_joins.push_back(spawn_join(cfg->pool_node(j)));
  }

  std::vector<NodeId> potential;
  potential.reserve(cfg->join_pool_nodes - cfg->initial_join_nodes);
  for (std::uint32_t j = cfg->initial_join_nodes; j < cfg->join_pool_nodes;
       ++j) {
    potential.push_back(cfg->pool_node(j));
  }
  ResourcePool pool(rt->cluster(), std::move(potential), cfg->pick_policy);

  scheduler_raw->wire(std::move(sources), std::move(initial_joins),
                      std::move(pool));

  // Install the fault plan's time-triggered kills (progress-triggered ones
  // fire from inside the victim join process as its K-th chunk arrives).
  for (const KillSpec& kill : cfg->faults.kills) {
    if (kill.at_time >= 0.0) {
      rt->schedule_kill(cfg->pool_node(kill.pool_index), kill.at_time);
    }
  }

  rt->run();

  EHJA_CHECK_MSG(scheduler_raw->finished(),
                 "runtime stopped before the join completed");
  RunResult result;
  result.metrics = std::as_const(*scheduler_raw).metrics();
  result.metrics.failures_injected = rt->kills_executed();
  result.runtime = kind;
  return result;
}

JoinResult reference_join(const EhjaConfig& config) {
  const Relation build =
      materialize(config.build_rel, config.seed, config.data_sources);
  const Relation probe =
      materialize(config.probe_rel, config.seed, config.data_sources);
  return serial_hash_join(build, probe);
}

}  // namespace ehja
