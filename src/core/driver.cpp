#include "core/driver.hpp"

#include <memory>
#include <utility>

#include "core/query_run.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/socket_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "util/assert.hpp"
#include "workload/generator.hpp"

namespace ehja {

namespace {

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind, ClusterSpec spec,
                                      const EhjaConfig& config) {
  switch (kind) {
    case RuntimeKind::kSim:
      return std::make_unique<SimRuntime>(std::move(spec));
    case RuntimeKind::kThread:
      return std::make_unique<ThreadRuntime>(std::move(spec));
    case RuntimeKind::kSocket:
      // Forks one worker process per non-coordinator node; the config rides
      // along so workers can rebuild actors from spawn specs.
      return std::make_unique<SocketRuntime>(std::move(spec), config);
  }
  EHJA_CHECK_MSG(false, "unreachable: bad RuntimeKind");
  return nullptr;
}

}  // namespace

RunResult run_ehja(const EhjaConfig& config, RuntimeKind kind) {
  RunOptions options;
  options.kind = kind;
  return run_ehja(config, options);
}

RunResult run_ehja(const EhjaConfig& config, const RunOptions& options) {
  const RuntimeKind kind = options.kind;
  config.validate();
  auto cfg = std::make_shared<const EhjaConfig>(config);
  std::unique_ptr<Runtime> runtime =
      make_runtime(kind, make_cluster(config), config);
  Runtime* rt = runtime.get();

  // One query, classic layout, run-to-completion: the whole pre-serve
  // driver is now QueryRun with the config-derived placement.  Under the
  // socket runtime the coordinator process hosts the driver and cannot be
  // killed, so the standby shares its node.
  QueryRun query(*rt, cfg);
  if (options.pool_hooks.acquire) query.set_pool_hooks(options.pool_hooks);
  query.start(options.placement
                  ? *options.placement
                  : QueryPlacement::from_config(
                        *cfg,
                        /*standby_on_scheduler_node=*/kind ==
                            RuntimeKind::kSocket));

  // Install the fault plan's time-triggered kills (progress-triggered ones
  // fire from inside the victim process as its K-th chunk or message
  // arrives).
  for (const KillSpec& kill : cfg->faults.kills) {
    EHJA_CHECK_MSG(
        kind != RuntimeKind::kSocket || kill.role != KillRole::kScheduler,
        "socket runtime: the coordinator process hosts the driver and "
        "cannot be killed");
    if (kill.at_time >= 0.0) {
      rt->schedule_kill(cfg->kill_node_of(kill), kill.at_time);
    }
  }

  rt->run();

  RunResult result;
  result.metrics = query.collect_metrics();
  result.metrics.failures_injected = rt->kills_executed();
  result.runtime = kind;
  return result;
}

JoinResult reference_join(const EhjaConfig& config) {
  const Relation build =
      materialize(config.build_rel, config.seed, config.data_sources);
  const Relation probe =
      materialize(config.probe_rel, config.seed, config.data_sources);
  return serial_hash_join(build, probe);
}

}  // namespace ehja
