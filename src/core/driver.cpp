#include "core/driver.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "core/data_source.hpp"
#include "core/join_process.hpp"
#include "core/scheduler.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/socket_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "util/assert.hpp"
#include "workload/generator.hpp"

namespace ehja {

namespace {

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind, ClusterSpec spec,
                                      const EhjaConfig& config) {
  switch (kind) {
    case RuntimeKind::kSim:
      return std::make_unique<SimRuntime>(std::move(spec));
    case RuntimeKind::kThread:
      return std::make_unique<ThreadRuntime>(std::move(spec));
    case RuntimeKind::kSocket:
      // Forks one worker process per non-coordinator node; the config rides
      // along so workers can rebuild actors from spawn specs.
      return std::make_unique<SocketRuntime>(std::move(spec), config);
  }
  EHJA_CHECK_MSG(false, "unreachable: bad RuntimeKind");
  return nullptr;
}

}  // namespace

RunResult run_ehja(const EhjaConfig& config, RuntimeKind kind) {
  config.validate();
  auto cfg = std::make_shared<const EhjaConfig>(config);
  std::unique_ptr<Runtime> runtime =
      make_runtime(kind, make_cluster(config), config);
  Runtime* rt = runtime.get();

  // The scheduler instantiates join processes on demand through this hook
  // ("a join process on node w is instantiated", paper ss4.1.1); replacement
  // data sources come through the sibling hook.  Each scheduler instance
  // (active and standby) gets closures bound to its own id cell, so a
  // recruit obeys whichever coordinator spawned it.
  auto make_spawn_join = [rt, cfg](std::shared_ptr<ActorId> sched) {
    return [rt, cfg, sched](NodeId node) {
      return rt->spawn(node, std::make_unique<JoinProcessActor>(cfg, *sched));
    };
  };
  auto make_spawn_source = [rt, cfg](std::shared_ptr<ActorId> sched) {
    return [rt, cfg, sched](NodeId node, std::uint32_t index) {
      return rt->spawn(node,
                       std::make_unique<DataSourceActor>(cfg, index, *sched));
    };
  };
  auto scheduler_id = std::make_shared<ActorId>(kInvalidActor);
  auto spawn_join = make_spawn_join(scheduler_id);

  auto scheduler = std::make_unique<SchedulerActor>(
      cfg, spawn_join, make_spawn_source(scheduler_id));
  SchedulerActor* scheduler_raw = scheduler.get();
  *scheduler_id = rt->spawn(cfg->scheduler_node(), std::move(scheduler));

  SchedulerActor* standby_raw = nullptr;
  if (cfg->ft.standby_scheduler) {
    auto standby_id = std::make_shared<ActorId>(kInvalidActor);
    auto standby = std::make_unique<SchedulerActor>(
        cfg, make_spawn_join(standby_id), make_spawn_source(standby_id));
    standby_raw = standby.get();
    // Under the socket runtime the coordinator process hosts the driver and
    // cannot be killed, so the standby shares its node; the simulated and
    // threaded runtimes give it a cluster node of its own.
    const NodeId standby_node = kind == RuntimeKind::kSocket
                                    ? cfg->scheduler_node()
                                    : cfg->standby_node();
    *standby_id = rt->spawn(standby_node, std::move(standby));
    standby_raw->wire_standby(*scheduler_id);
    scheduler_raw->set_standby(*standby_id);
  }

  std::vector<ActorId> sources;
  sources.reserve(cfg->data_sources);
  for (std::uint32_t i = 0; i < cfg->data_sources; ++i) {
    sources.push_back(rt->spawn(
        cfg->source_node(i),
        std::make_unique<DataSourceActor>(cfg, i, *scheduler_id)));
  }

  std::vector<ActorId> initial_joins;
  initial_joins.reserve(cfg->initial_join_nodes);
  for (std::uint32_t j = 0; j < cfg->initial_join_nodes; ++j) {
    initial_joins.push_back(spawn_join(cfg->pool_node(j)));
  }

  std::vector<NodeId> potential;
  potential.reserve(cfg->join_pool_nodes - cfg->initial_join_nodes);
  for (std::uint32_t j = cfg->initial_join_nodes; j < cfg->join_pool_nodes;
       ++j) {
    potential.push_back(cfg->pool_node(j));
  }
  ResourcePool pool(rt->cluster(), std::move(potential), cfg->pick_policy);

  scheduler_raw->wire(std::move(sources), std::move(initial_joins),
                      std::move(pool));

  // Install the fault plan's time-triggered kills (progress-triggered ones
  // fire from inside the victim process as its K-th chunk or message
  // arrives).
  for (const KillSpec& kill : cfg->faults.kills) {
    EHJA_CHECK_MSG(
        kind != RuntimeKind::kSocket || kill.role != KillRole::kScheduler,
        "socket runtime: the coordinator process hosts the driver and "
        "cannot be killed");
    if (kill.at_time >= 0.0) {
      rt->schedule_kill(cfg->kill_node_of(kill), kill.at_time);
    }
  }

  rt->run();

  // With a standby the run may have been finished by either coordinator.
  SchedulerActor* finished = scheduler_raw->finished() ? scheduler_raw
                             : standby_raw != nullptr && standby_raw->finished()
                                 ? standby_raw
                                 : nullptr;
  EHJA_CHECK_MSG(finished != nullptr,
                 "runtime stopped before the join completed");
  RunResult result;
  result.metrics = std::as_const(*finished).metrics();
  result.metrics.failures_injected = rt->kills_executed();
  result.runtime = kind;
  return result;
}

JoinResult reference_join(const EhjaConfig& config) {
  const Relation build =
      materialize(config.build_rel, config.seed, config.data_sources);
  const Relation probe =
      materialize(config.probe_rel, config.seed, config.data_sources);
  return serial_hash_join(build, probe);
}

}  // namespace ehja
