#include "core/metrics.hpp"

#include <sstream>

namespace ehja {

std::vector<double> RunMetrics::load_chunks(std::uint32_t chunk_tuples) const {
  std::vector<double> loads;
  loads.reserve(nodes.size());
  for (const NodeMetrics& n : nodes) {
    loads.push_back(static_cast<double>(n.build_tuples) /
                    static_cast<double>(chunk_tuples));
  }
  return loads;
}

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << "total=" << total_time() << "s build=" << build_time()
     << "s reshuffle=" << reshuffle_time() << "s probe=" << probe_time()
     << "s finish=" << finish_time() << "s split_time=" << split_time
     << "s nodes=" << initial_join_nodes << "->" << final_join_nodes
     << " extra_chunks=" << extra_build_chunks << " matches=" << join.matches;
  if (failures_injected > 0 || failures_detected > 0 ||
      scheduler_failovers > 0) {
    os << " failures=" << failures_injected << "/" << failures_detected
       << " (join=" << join_failures << " source=" << source_failures
       << " sched=" << scheduler_failovers << ")"
       << " detect_lat=" << detection_latency_total
       << "s detect_max=" << detection_latency_max
       << "s false_pos=" << false_positive_deaths
       << " recoveries=" << recoveries
       << " recovery_time=" << recovery_time_total
       << "s replayed=" << replayed_build_tuples << "+"
       << replayed_probe_tuples;
  }
  return os.str();
}

}  // namespace ehja
