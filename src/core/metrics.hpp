// Run metrics -- everything the paper's figures plot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "join/serial_join.hpp"
#include "sim/simulator.hpp"

namespace ehja {

/// Per-join-node observations gathered with the final report.
struct NodeMetrics {
  std::int32_t actor = -1;
  std::int32_t node = -1;
  /// Build tuples this node ended up responsible for (in-memory + spilled);
  /// "load" in Figures 12-13 when expressed in chunks.
  std::uint64_t build_tuples = 0;
  std::uint64_t probe_tuples = 0;
  std::uint64_t matches = 0;
  /// Data chunks received (from sources and from peers).
  std::uint64_t chunks_received = 0;
  /// Data chunks this node forwarded/migrated to peers (build-phase extra
  /// communication, Figures 4 and 11).
  std::uint64_t chunks_forwarded = 0;
  /// Peak bytes above the memory budget (split-mode overshoot and reshuffle
  /// imbalance show up here).
  std::uint64_t max_overshoot_bytes = 0;
  std::uint64_t spilled_build_tuples = 0;
  std::uint64_t spilled_probe_tuples = 0;
  std::uint64_t spilled_partitions = 0;
  /// Tuples discarded because they arrived from a dead incarnation (their
  /// authoritative copies came via source replay).
  std::uint64_t fence_dropped_tuples = 0;
};

struct RunMetrics {
  // --- phase timeline (virtual seconds; zero-length on ThreadRuntime) ---
  SimTime t_start = 0.0;
  SimTime t_build_end = 0.0;      // build phase complete at the scheduler
  SimTime t_reshuffle_end = 0.0;  // == t_build_end unless hybrid expanded
  SimTime t_probe_end = 0.0;      // last probe chunk drained
  SimTime t_complete = 0.0;       // last node report (incl. OOC disk joins)

  double total_time() const { return t_complete - t_start; }
  double build_time() const { return t_build_end - t_start; }
  double reshuffle_time() const { return t_reshuffle_end - t_build_end; }
  double probe_time() const { return t_probe_end - t_reshuffle_end; }
  /// Probe-to-completion tail: the OOC algorithm's phase-3 disk joins.
  double finish_time() const { return t_complete - t_probe_end; }

  /// Cumulative time spent inside split operations (Fig. 5 "split time").
  double split_time = 0.0;
  /// Expansion (replication handoff) operation time, cumulative.
  double expand_time = 0.0;

  // --- expansion trace ---
  std::uint32_t initial_join_nodes = 0;
  std::uint32_t expansions = 0;       // nodes recruited during the build
  std::uint32_t final_join_nodes = 0;
  bool pool_exhausted = false;
  /// kAdaptive only: how each overflow was resolved (sums to expansions).
  std::uint32_t adaptive_splits = 0;
  std::uint32_t adaptive_replicas = 0;

  // --- communication (chunks of the configured size) ---
  std::uint64_t source_build_chunks = 0;  // sources -> nodes, relation R
  std::uint64_t source_probe_chunks = 0;  // sources -> nodes, relation S
  /// Node-to-node data chunks during build + reshuffle: the "extra
  /// communication volume" series of Figures 4 and 11.
  std::uint64_t extra_build_chunks = 0;

  // --- failures and recovery (all zero in fault-free runs) ---
  std::uint32_t failures_injected = 0;   // kills that actually fired
  std::uint32_t failures_detected = 0;   // deaths the detector declared
  /// Sum over detected failures of (declaration time - last heartbeat),
  /// virtual seconds; divide by failures_detected for the mean latency.
  double detection_latency_total = 0.0;
  /// Worst single detection latency (the phi detector's selling point).
  double detection_latency_max = 0.0;
  /// Deaths declared while the node was in fact still alive.  The join is
  /// still correct (stale traffic is fenced, state rebuilt elsewhere), but
  /// every false positive is a wasted replay -- the busy-rebuilder cascade
  /// of DESIGN.md §7 shows up here.
  std::uint32_t false_positive_deaths = 0;
  /// Detected deaths by role (join_failures + source_failures ==
  /// failures_detected at the scheduler; scheduler deaths are counted by
  /// the standby as promotions).
  std::uint32_t join_failures = 0;
  std::uint32_t source_failures = 0;
  std::uint32_t scheduler_failovers = 0;  // standby promotions
  std::uint32_t recoveries = 0;          // recovery passes completed
  /// Wall (virtual) time from first death of a pass to protocol resumption.
  double recovery_time_total = 0.0;
  std::uint64_t replayed_build_tuples = 0;
  std::uint64_t replayed_probe_tuples = 0;

  // --- join output ---
  JoinResult join;
  std::uint64_t build_tuples_total = 0;
  std::uint64_t probe_tuples_total = 0;

  /// Captured output pairs (id = build row id, key = probe row id), present
  /// only when EhjaConfig::capture_output asked for them.  Arrival order is
  /// per-node report order, so treat as a multiset; the pipeline driver
  /// canonicalizes it before handing to the next stage.  Deliberately NOT
  /// carried by the scheduler-snapshot codec: a promoted scheduler re-runs
  /// the report collection, which re-delivers every node's chunk stream.
  std::vector<Tuple> output_rows;

  std::vector<NodeMetrics> nodes;

  /// Build-tuple load per node, in chunks (Figures 12-13).
  std::vector<double> load_chunks(std::uint32_t chunk_tuples) const;

  std::string summary() const;
};

}  // namespace ehja
