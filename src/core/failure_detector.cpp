#include "core/failure_detector.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ehja {

FailureDetector::FailureDetector(DetectorKind kind, double timeout_sec,
                                 double phi_threshold, std::size_t window)
    : kind_(kind),
      timeout_sec_(timeout_sec),
      phi_threshold_(phi_threshold),
      window_(window),
      min_samples_(std::min<std::size_t>(8, window)) {
  EHJA_CHECK(window_ >= 1);
}

void FailureDetector::Track::push_gap(double gap, std::size_t window) {
  if (gaps.size() < window) {
    gaps.push_back(gap);
  } else {
    gaps[next_gap] = gap;
    next_gap = (next_gap + 1) % window;
  }
}

void FailureDetector::track(ActorId actor, SimTime now) {
  EHJA_CHECK(actor != kInvalidActor);
  Track t;
  t.last_heard = now;
  tracked_.emplace(actor, std::move(t));
}

void FailureDetector::untrack(ActorId actor) { tracked_.erase(actor); }

bool FailureDetector::tracking(ActorId actor) const {
  return tracked_.count(actor) != 0;
}

void FailureDetector::heard_from(ActorId actor, SimTime now, bool sample) {
  auto it = tracked_.find(actor);
  if (it == tracked_.end()) return;  // late pong from a declared death
  Track& t = it->second;
  if (now > t.last_heard) t.last_heard = now;
  if (!sample) return;
  if (t.sampled_once) {
    const double gap = now - t.last_sample;
    if (gap > 0.0) t.push_gap(gap, window_);
  }
  t.sampled_once = true;
  if (now > t.last_sample) t.last_sample = now;
}

double FailureDetector::phi_of(const Track& t, SimTime now) const {
  if (t.gaps.size() < min_samples_) return 0.0;
  double mean = 0.0;
  for (double g : t.gaps) mean += g;
  mean /= static_cast<double>(t.gaps.size());
  double var = 0.0;
  for (double g : t.gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(t.gaps.size());
  // Stddev floor: a perfectly regular arrival history would otherwise make
  // the estimate infinitely confident and fire on the first jitter.
  const double sigma = std::max(std::sqrt(var), 0.1 * mean);
  const double silence = now - t.last_heard;
  if (silence <= 0.0 || sigma <= 0.0) return 0.0;
  // P(next arrival later than `silence`) under N(mean, sigma): the normal
  // tail Q(x) = erfc(x / sqrt(2)) / 2.  phi = -log10 of that.
  const double x = (silence - mean) / sigma;
  const double tail = 0.5 * std::erfc(x / std::sqrt(2.0));
  if (tail <= 0.0) return 1e9;  // erfc underflow: certainty
  return -std::log10(tail);
}

double FailureDetector::phi(ActorId actor, SimTime now) const {
  auto it = tracked_.find(actor);
  if (it == tracked_.end()) return 0.0;
  return phi_of(it->second, now);
}

bool FailureDetector::is_dead(const Track& t, SimTime now, bool recovery_active,
                              double* phi_out) const {
  const double silence = now - t.last_heard;
  *phi_out = 0.0;
  if (kind_ == DetectorKind::kTimeout) return silence > timeout_sec_;
  // Phi-accrual: the fixed timeout survives as a hard cap -- no arrival
  // history justifies waiting longer than that.
  if (silence > timeout_sec_) {
    *phi_out = phi_of(t, now);
    return true;
  }
  if (t.gaps.size() < min_samples_) return false;  // warming up: cap only
  const double suspicion = phi_of(t, now);
  // Busy-rebuilder guard: while a recovery pass is rebuilding partitions,
  // live nodes answer pings late and irregularly; demand much stronger
  // evidence before folding them into the recovery too (DESIGN.md §7).
  const double threshold =
      recovery_active ? 2.0 * phi_threshold_ : phi_threshold_;
  if (suspicion > threshold) {
    *phi_out = suspicion;
    return true;
  }
  return false;
}

FailureDetector::TickResult FailureDetector::tick(SimTime now,
                                                  bool recovery_active) {
  TickResult result;
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    double suspicion = 0.0;
    if (is_dead(it->second, now, recovery_active, &suspicion)) {
      result.dead.push_back(Death{it->first, now - it->second.last_heard,
                                  suspicion});
      it = tracked_.erase(it);
    } else {
      result.ping.push_back(it->first);
      ++it;
    }
  }
  return result;
}

}  // namespace ehja
