#include "core/failure_detector.hpp"

#include "util/assert.hpp"

namespace ehja {

void FailureDetector::track(ActorId actor, SimTime now) {
  EHJA_CHECK(actor != kInvalidActor);
  last_heard_.emplace(actor, now);
}

void FailureDetector::untrack(ActorId actor) { last_heard_.erase(actor); }

bool FailureDetector::tracking(ActorId actor) const {
  return last_heard_.count(actor) != 0;
}

void FailureDetector::heard_from(ActorId actor, SimTime now) {
  auto it = last_heard_.find(actor);
  if (it == last_heard_.end()) return;  // late pong from a declared death
  if (now > it->second) it->second = now;
}

FailureDetector::TickResult FailureDetector::tick(SimTime now) {
  TickResult result;
  for (auto it = last_heard_.begin(); it != last_heard_.end();) {
    const double silence = now - it->second;
    if (silence > timeout_sec_) {
      result.dead.push_back(Death{it->first, silence});
      it = last_heard_.erase(it);
    } else {
      result.ping.push_back(it->first);
      ++it;
    }
  }
  return result;
}

}  // namespace ehja
