#include "core/expansion_policy.hpp"

#include <algorithm>
#include <utility>

#include "cluster/cost_model.hpp"
#include "relation/tuple.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

// ------------------------------------------------------------- base policy

std::unique_ptr<ExpansionPolicy> ExpansionPolicy::make(
    std::shared_ptr<const EhjaConfig> config, ExpansionEnv& env,
    ResourcePool pool) {
  switch (config->algorithm) {
    case Algorithm::kSplit:
      return std::make_unique<SplitPolicy>(std::move(config), env,
                                           std::move(pool));
    case Algorithm::kReplicate:
      return std::make_unique<ReplicatePolicy>(std::move(config), env,
                                               std::move(pool));
    case Algorithm::kHybrid:
      return std::make_unique<HybridPolicy>(std::move(config), env,
                                            std::move(pool));
    case Algorithm::kOutOfCore:
      return std::make_unique<OutOfCorePolicy>(std::move(config), env,
                                               std::move(pool));
    case Algorithm::kAdaptive:
      return std::make_unique<AdaptivePolicy>(std::move(config), env,
                                              std::move(pool));
  }
  EHJA_CHECK_MSG(false, "unknown algorithm");
  return nullptr;
}

ExpansionPolicy::ExpansionPolicy(std::shared_ptr<const EhjaConfig> config,
                                 ExpansionEnv& env, ResourcePool pool)
    : config_(std::move(config)), env_(env), pool_(std::move(pool)) {}

void ExpansionPolicy::on_memory_full(ActorId requester,
                                     const MemoryFullPayload& payload) {
  env_.trace(TraceKind::kMemoryFull, requester,
             static_cast<std::int64_t>(payload.footprint_bytes));
  if (pool_exhausted_) {
    send_switch_to_spill(requester);
    return;
  }
  if (std::find(full_queue_.begin(), full_queue_.end(), requester) ==
      full_queue_.end()) {
    full_queue_.push_back(requester);
  }
  try_start_expansion();
}

void ExpansionPolicy::try_start_expansion() {
  if (op_.has_value() || full_queue_.empty()) return;
  if (!env_.expansion_starting()) return;
  const ActorId requester = full_queue_.front();
  full_queue_.pop_front();
  start_expansion(requester);
}

void ExpansionPolicy::on_op_complete(const OpCompletePayload& done) {
  // A completion for an op abandoned by on_actor_dead() (or superseded
  // after a recovery) is stale, not a protocol violation.
  if (!op_.has_value() || done.op_id != op_->op_id) {
    EHJA_WARN("policy", "ignoring stale op-complete for op ", done.op_id);
    return;
  }
  const double duration = env_.now() - op_->started;
  if (op_->is_split) {
    env_.metrics().split_time += duration;
    env_.trace(TraceKind::kSplitOp, op_->requester,
               static_cast<std::int64_t>(done.tuples_received));
  } else {
    env_.metrics().expand_time += duration;
    env_.trace(TraceKind::kHandoffOp, op_->requester,
               static_cast<std::int64_t>(done.tuples_received));
  }
  env_.send_to(op_->requester, make_signal(Tag::kRelief));
  op_.reset();
  try_start_expansion();
}

void ExpansionPolicy::send_switch_to_spill(ActorId requester) {
  env_.metrics().pool_exhausted = true;
  env_.trace(TraceKind::kSpillSwitch, requester);
  spilled_.push_back(requester);
  env_.send_to(requester, make_signal(Tag::kSwitchToSpill));
}

void ExpansionPolicy::degrade_requester(ActorId requester) {
  pool_exhausted_ = true;
  send_switch_to_spill(requester);
  try_start_expansion();
}

void ExpansionPolicy::drop_stale(ActorId requester) {
  // The requester lost active ownership while queued (cannot happen with
  // FIFO channels, but degrade gracefully rather than wedge the build).
  EHJA_WARN("policy", "dropping stale memory-full from join ", requester);
  try_start_expansion();
}

std::optional<NodeId> ExpansionPolicy::acquire_node() {
  // Dead pool nodes are consumed and skipped: the pool does not know about
  // failures, but handing out a corpse would wedge the expansion op.
  while (auto picked = pool_.acquire()) {
    if (env_.node_alive(*picked)) return picked;
  }
  return std::nullopt;
}

void ExpansionPolicy::on_actor_dead(ActorId dead) {
  full_queue_.erase(std::remove(full_queue_.begin(), full_queue_.end(), dead),
                    full_queue_.end());
  spilled_.erase(std::remove(spilled_.begin(), spilled_.end(), dead),
                 spilled_.end());
  if (op_.has_value() &&
      (op_->requester == dead || op_->fresh == dead)) {
    // A participant died mid-op: the kOpComplete will never arrive and the
    // survivor's state is rebuilt by recovery.  Abandon without credit.
    EHJA_WARN("policy", "abandoning expansion op ", op_->op_id,
              " after death of join ", dead);
    op_.reset();
  }
}

std::optional<NodeId> ExpansionPolicy::acquire_or_spill_all(
    ActorId requester) {
  const auto picked = acquire_node();
  if (!picked.has_value()) {
    pool_exhausted_ = true;
    send_switch_to_spill(requester);
    // Everyone still queued gets the same answer.
    while (!full_queue_.empty()) {
      send_switch_to_spill(full_queue_.front());
      full_queue_.pop_front();
    }
  }
  return picked;
}

ActorId ExpansionPolicy::spawn_recruit(ActorId requester, NodeId node) {
  const ActorId fresh = env_.spawn_join(node);
  ++env_.metrics().expansions;
  env_.trace(TraceKind::kExpansion, requester, fresh);
  return fresh;
}

std::size_t ExpansionPolicy::entry_owned_by(ActorId actor) const {
  const PartitionMap& map = env_.map();
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (map.entries()[i].active_owner() == actor) return i;
  }
  return map.size();
}

std::uint64_t ExpansionPolicy::begin_op(ActorId requester, bool is_split) {
  const std::uint64_t op_id = next_op_id_++;
  op_ = OpInfo{env_.now(), is_split, requester, kInvalidActor, op_id};
  return op_id;
}

void ExpansionPolicy::launch_split(ActorId requester, ActorId fresh,
                                   std::size_t entry_index, std::uint64_t mid,
                                   ActorId split_request_to) {
  PartitionMap& map = env_.map();
  const PosRange range = map.entries()[entry_index].range;
  const PosRange moved{mid, range.hi};
  map.split_entry(entry_index, mid, fresh);

  const std::uint64_t op_id = begin_op(requester, /*is_split=*/true);
  op_->fresh = fresh;

  JoinInitPayload init;
  init.role = JoinRole::kSplitChild;
  init.range = moved;
  init.source_count = config_->data_sources;
  init.op_id = op_id;
  env_.send_to(fresh, make_message(Tag::kJoinInit, init, kControlWireBytes));

  SplitRequestPayload req;
  req.op_id = op_id;
  req.moved = moved;
  req.target = fresh;
  env_.send_to(split_request_to,
               make_message(Tag::kSplitRequest, req, kControlWireBytes));

  env_.broadcast_map();
  EHJA_DEBUG("policy", "split op ", op_id, ": join ", split_request_to,
             " ships [", moved.lo, ",", moved.hi, ") -> join ", fresh);
}

void ExpansionPolicy::launch_replica(ActorId requester, ActorId fresh,
                                     std::size_t entry_index) {
  PartitionMap& map = env_.map();
  const PosRange range = map.entries()[entry_index].range;
  map.add_replica(entry_index, fresh);

  const std::uint64_t op_id = begin_op(requester, /*is_split=*/false);
  op_->fresh = fresh;

  JoinInitPayload init;
  init.role = JoinRole::kReplica;
  init.range = range;
  init.source_count = config_->data_sources;
  init.op_id = op_id;
  env_.send_to(fresh, make_message(Tag::kJoinInit, init, kControlWireBytes));

  HandoffStartPayload handoff;
  handoff.op_id = op_id;
  handoff.target = fresh;
  env_.send_to(requester,
               make_message(Tag::kHandoffStart, handoff, kControlWireBytes));

  env_.broadcast_map();
  EHJA_DEBUG("policy", "replication op ", op_id, ": join ", requester,
             " frozen, replica join ", fresh, " for [", range.lo, ",",
             range.hi, ")");
}

// ------------------------------------------------------------ split policy

SplitPolicy::SplitPolicy(std::shared_ptr<const EhjaConfig> config,
                         ExpansionEnv& env, ResourcePool pool,
                         std::uint64_t positions)
    : ExpansionPolicy(std::move(config), env, std::move(pool)) {
  if (this->config().split_variant == SplitVariant::kLinearPointer) {
    // The Litwin pointer variant assumes equal-width level-0 buckets.
    EHJA_CHECK_MSG(!this->config().balanced_initial_partition,
                   "linear-pointer split needs equal initial ranges");
    linear_.emplace(this->config().initial_join_nodes, positions);
  }
}

void SplitPolicy::start_expansion(ActorId requester) {
  if (config().split_variant == SplitVariant::kRequesterMidpoint) {
    start_requester_split(requester);
  } else {
    start_pointer_split(requester);
  }
}

void SplitPolicy::start_pointer_split(ActorId requester) {
  if (!linear_->split_possible()) {
    // Position resolution exhausted at the split pointer; nothing sane to
    // split, degrade the requester to local spilling.
    degrade_requester(requester);
    return;
  }
  const auto picked = acquire_or_spill_all(requester);
  if (!picked.has_value()) return;
  const ActorId fresh = spawn_recruit(requester, *picked);

  const LinearHashMap::Split split = linear_->split_next();
  // Owner of the bucket at the split pointer -- not necessarily the
  // requester (classic linear hashing).
  PartitionMap& map = env().map();
  const std::size_t entry_index = map.index_for(split.kept.lo);
  EHJA_CHECK(map.entries()[entry_index].range.lo == split.kept.lo);
  EHJA_CHECK(map.entries()[entry_index].range.hi == split.moved.hi);
  const ActorId owner = map.entries()[entry_index].active_owner();
  launch_split(requester, fresh, entry_index, split.moved.lo, owner);
}

void SplitPolicy::start_requester_split(ActorId requester) {
  // ss1 semantics: "partitions the hash table range assigned to the node,
  // on which memory is full, into two segments and assigns one of the
  // segments to a new node".
  const std::size_t entry_index = entry_owned_by(requester);
  if (entry_index == env().map().size()) {
    drop_stale(requester);
    return;
  }
  const PosRange range = env().map().entries()[entry_index].range;
  if (range.width() < 2) {
    // Position resolution exhausted: this range cannot be subdivided.
    degrade_requester(requester);
    return;
  }
  const auto picked = acquire_or_spill_all(requester);
  if (!picked.has_value()) return;
  const ActorId fresh = spawn_recruit(requester, *picked);
  const std::uint64_t mid = range.lo + range.width() / 2;
  launch_split(requester, fresh, entry_index, mid, requester);
}

// -------------------------------------------------------- replicate/hybrid

void ReplicatePolicy::start_expansion(ActorId requester) {
  // The requester must be the active owner of exactly one range.
  const std::size_t entry_index = entry_owned_by(requester);
  if (entry_index == env().map().size()) {
    drop_stale(requester);
    return;
  }
  const auto picked = acquire_or_spill_all(requester);
  if (!picked.has_value()) return;
  const ActorId fresh = spawn_recruit(requester, *picked);
  launch_replica(requester, fresh, entry_index);
}

bool HybridPolicy::wants_reshuffle() const {
  for (const auto& entry : env().map().entries()) {
    if (entry.owners.size() > 1) return true;
  }
  return false;
}

// ------------------------------------------------------------- out-of-core

void OutOfCorePolicy::on_memory_full(ActorId /*requester*/,
                                     const MemoryFullPayload& /*payload*/) {
  EHJA_CHECK_MSG(false, "out-of-core nodes must spill, not expand");
}

void OutOfCorePolicy::start_expansion(ActorId /*requester*/) {
  EHJA_CHECK_MSG(false, "out-of-core policy never expands");
}

// ---------------------------------------------------------------- adaptive

void AdaptivePolicy::on_memory_full(ActorId requester,
                                    const MemoryFullPayload& payload) {
  bool found = false;
  for (auto& [actor, report] : last_report_) {
    if (actor == requester) {
      report = payload;
      found = true;
      break;
    }
  }
  if (!found) last_report_.emplace_back(requester, payload);
  ExpansionPolicy::on_memory_full(requester, payload);
}

void AdaptivePolicy::start_expansion(ActorId requester) {
  const std::size_t entry_index = entry_owned_by(requester);
  if (entry_index == env().map().size()) {
    drop_stale(requester);
    return;
  }
  const PartitionMap::Entry& entry = env().map().entries()[entry_index];
  const PosRange range = entry.range;
  // A replica set pins its range: frozen members hold tuples of the full
  // range, so the map cannot subdivide it.  Degenerate ranges cannot split
  // either.  Otherwise let the cost model decide.
  MemoryFullPayload report;
  for (const auto& [actor, r] : last_report_) {
    if (actor == requester) report = r;
  }
  const bool can_split = entry.owners.size() == 1 && range.width() >= 2;
  const bool split = can_split && prefer_split(range, report);
  env().trace(TraceKind::kAdaptiveChoice, requester, split ? 1 : 0);

  const auto picked = acquire_or_spill_all(requester);
  if (!picked.has_value()) return;
  const ActorId fresh = spawn_recruit(requester, *picked);
  if (split) {
    ++env().metrics().adaptive_splits;
    const std::uint64_t mid = range.lo + range.width() / 2;
    launch_split(requester, fresh, entry_index, mid, requester);
  } else {
    ++env().metrics().adaptive_replicas;
    launch_replica(requester, fresh, entry_index);
  }
}

bool AdaptivePolicy::prefer_split(const PosRange& /*range*/,
                                  const MemoryFullPayload& report) const {
  const EhjaConfig& cfg = config();
  const double sec_per_byte = 1.0 / cfg.link.bandwidth_bytes_per_sec;
  const std::uint64_t footprint = report.footprint_bytes > 0
                                      ? report.footprint_bytes
                                      : cfg.node_hash_memory_bytes;
  const std::uint64_t held = footprint / tuple_footprint(cfg.build_rel.schema);

  // Split: ship half of the requester's held tuples to the recruit, once.
  const double split_cost = build_migration_cost_sec(
      cfg.cost, held / 2, cfg.build_rel.schema.tuple_bytes, sec_per_byte);

  // Replicate: every probe tuple of this range is broadcast to one more
  // node for the rest of the run.  The range's probe share is estimated
  // from its observed build share (the sources' progress reports); with no
  // reports yet the requester's own tuples are the only evidence.
  const std::uint64_t observed =
      std::max(env().observed_build_tuples(), held);
  const double share =
      static_cast<double>(held) / static_cast<double>(observed);
  const double range_probe_tuples =
      share * static_cast<double>(cfg.probe_rel.tuple_count);
  const double replicate_cost = probe_broadcast_cost_sec(
      cfg.cost, static_cast<std::uint64_t>(range_probe_tuples),
      cfg.probe_rel.schema.tuple_bytes, sec_per_byte);

  return split_cost <= replicate_cost;
}

}  // namespace ehja
