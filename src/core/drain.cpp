#include "core/drain.hpp"

#include "util/assert.hpp"

namespace ehja {

void DrainProtocol::arm() {
  prev_.reset();
  in_round_ = false;
}

DrainProbePayload DrainProtocol::begin_round() {
  ++epoch_;
  in_round_ = true;
  acked_.clear();
  received_ = 0;
  forwarded_ = 0;
  DrainProbePayload probe;
  probe.epoch = epoch_;
  return probe;
}

void DrainProtocol::abort() {
  in_round_ = false;
  prev_.reset();
}

DrainProtocol::Outcome DrainProtocol::on_ack(
    ActorId from, const DrainAckPayload& ack, std::size_t join_count,
    std::uint64_t expected_source_chunks) {
  if (ack.epoch != epoch_) return Outcome::kStale;  // older round
  if (!in_round_) return Outcome::kStale;           // round aborted
  if (!acked_.insert(from).second) return Outcome::kStale;  // duplicate
  received_ += ack.data_chunks_received;
  forwarded_ += ack.data_chunks_forwarded;
  if (acked_.size() < join_count) return Outcome::kPending;

  in_round_ = false;
  const auto totals = std::make_pair(received_, forwarded_);
  const bool balanced = received_ == expected_source_chunks + forwarded_;
  const bool stable = prev_.has_value() && *prev_ == totals;
  prev_ = totals;
  return balanced && stable ? Outcome::kDrained : Outcome::kRepoll;
}

}  // namespace ehja
