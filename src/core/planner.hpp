// Algorithm selection: the paper's conclusions as executable policy.
//
// The paper's decision rule (ss6): prefer the replication-based algorithm
// when the join-attribute distribution is highly skewed and/or the larger
// relation must build the hash table; otherwise the split-based algorithm;
// the hybrid algorithm is the safe default ("generally performs close to
// the better of the two or is the best").
//
// Two inputs feed the rule:
//   * SkewEstimate -- a sampling pass over the build stream (the paper's
//     intro discusses estimating memory needs by sampling and why it can
//     be expensive/inaccurate; the estimator reports its own confidence);
//   * the ss4.2.4 analytical model of split vs reshuffle overhead, exposed
//     directly so callers can reason about the expansion factor.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "util/rng.hpp"

namespace ehja {

// --------------------------------------------------------- skew estimation

struct SkewEstimate {
  /// Fraction of sampled tuples whose position lands in the most loaded
  /// 1/64th of the position space (1/64 == perfectly uniform).
  double hot_fraction = 0.0;
  /// hot_fraction / (1/64): 1.0 = uniform, 64 = everything in one slice.
  double concentration = 1.0;
  std::uint64_t sampled = 0;
  /// Sampling error bound on hot_fraction (3-sigma binomial).
  double error_bound = 1.0;

  bool highly_skewed() const { return concentration >= 8.0; }
  bool mildly_skewed() const { return concentration >= 2.0; }
};

/// Sample `sample_size` keys from the distribution (as a data source
/// would generate them) and summarize position concentration.
SkewEstimate estimate_skew(const DistributionSpec& dist,
                           std::uint64_t sample_size, std::uint64_t seed);

// ------------------------------------------------- ss4.2.4 overhead model

struct ExpansionModel {
  /// Bucket size B in bytes (the build share of one initial bucket).
  double bucket_bytes = 0.0;
  std::uint32_t initial_buckets = 0;  // N0
  std::uint32_t final_buckets = 0;    // N
  /// Seconds to move one byte across the network (t_c).
  double sec_per_byte = 0.0;

  double expansion_factor() const {
    return initial_buckets == 0
               ? 1.0
               : static_cast<double>(final_buckets) / initial_buckets;
  }
  /// O_split ~ (N - N0) * (B/2) * t_c
  double split_overhead_sec() const;
  /// O_reshuffle ~ ((E-1)/E) * B * N0 * t_c
  double reshuffle_overhead_sec() const;
};

/// Instantiate the ss4.2.4 model from a run configuration: B from the
/// build relation and N from the memory it will need.
ExpansionModel model_from_config(const EhjaConfig& config);

// ------------------------------------------------------------ the planner

struct PlannerDecision {
  Algorithm algorithm = Algorithm::kHybrid;
  std::string rationale;
  SkewEstimate skew;
  ExpansionModel model;
};

struct PlannerInputs {
  /// Candidate build/probe sides as the query plan sees them; the planner
  /// may not reorder them (streaming order can force the larger side to
  /// build -- the Fig. 8 scenario).
  std::uint64_t build_tuples = 0;
  std::uint64_t probe_tuples = 0;
  /// Sample size for skew estimation (0 = trust dist as given).
  std::uint64_t skew_sample = 100'000;
};

/// Apply the paper's ss6 decision rule to a configuration.
PlannerDecision choose_algorithm(const EhjaConfig& config,
                                 const PlannerInputs& inputs);

}  // namespace ehja
