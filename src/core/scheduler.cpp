#include "core/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "core/reshuffle.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

SchedulerActor::SchedulerActor(
    std::shared_ptr<const EhjaConfig> config,
    std::function<ActorId(NodeId)> spawn_join,
    std::function<ActorId(NodeId, std::uint32_t)> spawn_source)
    : config_(std::move(config)),
      spawn_join_(std::move(spawn_join)),
      spawn_source_(std::move(spawn_source)),
      detector_(config_->ft.detector, config_->ft.heartbeat_timeout_sec,
                config_->ft.phi_threshold, config_->ft.phi_window) {}

void SchedulerActor::wire(std::vector<ActorId> sources,
                          std::vector<ActorId> initial_joins,
                          ResourcePool pool,
                          std::vector<NodeId> source_nodes,
                          std::vector<NodeId> join_nodes) {
  sources_ = std::move(sources);
  joins_ = std::move(initial_joins);
  policy_ = ExpansionPolicy::make(config_, *this, std::move(pool));
  recovery_ = std::make_unique<RecoveryManager>(
      config_, static_cast<ExpansionEnv&>(*this),
      static_cast<RecoveryHost&>(*this));
  EHJA_CHECK(sources_.size() == config_->data_sources);
  EHJA_CHECK(joins_.size() == config_->initial_join_nodes);
  EHJA_CHECK(join_nodes.empty() || join_nodes.size() == joins_.size());
  EHJA_CHECK(source_nodes.empty() || source_nodes.size() == sources_.size());
  for (std::uint32_t j = 0; j < joins_.size(); ++j) {
    node_of_[joins_[j]] =
        join_nodes.empty() ? config_->pool_node(j) : join_nodes[j];
  }
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    node_of_[sources_[i]] =
        source_nodes.empty() ? config_->source_node(i) : source_nodes[i];
  }
}

void SchedulerActor::wire_standby(ActorId active) {
  mode_ = Mode::kStandby;
  active_ = active;
}

void SchedulerActor::on_start() {
  if (mode_ == Mode::kStandby) {
    // A standby holds no run state; it only watches the active coordinator
    // (whose pings and snapshots feed the detector) and keeps the latest
    // checkpoint ready for promotion.
    detector_.track(active_, Actor::now());
    defer_after(make_signal(Tag::kHeartbeatTick),
                config_->ft.heartbeat_interval_sec);
    return;
  }
  EHJA_CHECK_MSG(policy_ != nullptr, "scheduler not wired before run");
  metrics_.t_start = Actor::now();
  trace_event(TraceKind::kPhase, 0, 0, "build");
  metrics_.initial_join_nodes = config_->initial_join_nodes;

  if (config_->balanced_initial_partition) {
    // Sample the build distribution and cut the initial ranges to equal
    // *weight* instead of equal width (config.hpp).  Sampling is real work
    // on the front-end node.
    BinnedHistogram sampled(0, kPositionCount, config_->reshuffle_bins);
    SplitMix64 rng(config_->seed, /*stream=*/0xba1a);
    for (std::uint64_t i = 0; i < config_->partition_sample; ++i) {
      sampled.add(position_of(sample_key(config_->build_rel.dist, rng)));
    }
    charge(static_cast<double>(config_->partition_sample) *
           config_->cost.tuple_generate_sec);
    map_ = PartitionMap::from_entries(plan_reshuffle(sampled, joins_));
  } else {
    map_ = PartitionMap::initial(joins_);
  }

  absorb_coverage();
  if (config_->recovery_enabled()) {
    for (ActorId join : joins_) detector_.track(join, Actor::now());
    for (ActorId source : sources_) detector_.track(source, Actor::now());
    defer_after(make_signal(Tag::kHeartbeatTick),
                config_->ft.heartbeat_interval_sec);
  }

  // Hand every initial join node its bucket...
  for (std::size_t j = 0; j < joins_.size(); ++j) {
    JoinInitPayload init;
    init.role = JoinRole::kInitial;
    init.range = map_.entries()[j].range;
    init.source_count = config_->data_sources;
    send(joins_[j], make_message(Tag::kJoinInit, init, kControlWireBytes));
  }
  // ...and start the build phase at the sources.
  for (ActorId source : sources_) {
    StartBuildPayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartBuild, std::move(start), wire));
  }
  EHJA_INFO(name(), "start: ", config_->to_string());
  checkpoint();
}

void SchedulerActor::on_message(const Message& msg) {
  ++messages_processed_;
  if (const KillSpec* kill = config_->kill_for_node(node());
      kill != nullptr && kill->role == KillRole::kScheduler &&
      kill->after_chunks > 0 && messages_processed_ == kill->after_chunks) {
    EHJA_WARN(name(), "fault injection: coordinator dies after message ",
              kill->after_chunks);
    rt().kill_node(node());
    return;
  }
  charge(config_->cost.control_handle_sec);
  if (mode_ == Mode::kDeposed) {
    return;  // superseded by a promoted standby: stay silent forever
  }
  if (mode_ == Mode::kStandby) {
    on_standby_message(msg);
    return;
  }
  const Tag tag = static_cast<Tag>(msg.tag);
  if (tag == Tag::kSchedulerHandoff) {
    handle_handoff_at_active(msg);
    return;
  }
  if (tag == Tag::kSchedulerHandoffAck) {
    handle_handoff_ack(msg.from, msg.as<SchedulerHandoffAckPayload>());
    return;
  }
  if (tag == Tag::kSchedulerSnapshot || tag == Tag::kPing) {
    // Checkpoint or liveness ping from the predecessor coordinator: after a
    // (possibly false-positive) promotion the old active keeps sending until
    // our handoff deposes it.  Its view is stale by construction -- drop.
    EHJA_WARN(name(), "dropping stale coordinator tag ", msg.tag, " from ",
              msg.from);
    return;
  }
  if (promotion_pending_ && tag != Tag::kHeartbeatTick && tag != Tag::kPong) {
    // Until every source acked the handoff, the ack-rebuilt bookkeeping is
    // not in place; replaying the stash afterwards keeps FIFO order.
    promotion_stash_.push_back(msg);
    return;
  }
  if (config_->recovery_enabled()) {
    if (recovery_->dead_actors().count(msg.from) != 0) {
      return;  // straggler from a declared death: drop wholesale
    }
    detector_.heard_from(msg.from, Actor::now(),
                         /*sample=*/tag == Tag::kPong);
    switch (tag) {
      case Tag::kPong:
        return;  // heard_from above is the whole point
      case Tag::kHeartbeatTick:
        handle_heartbeat_tick();
        return;
      case Tag::kRangeResetAck:
        recovery_->on_reset_ack(msg.from, msg.as<RangeResetAckPayload>());
        return;
      case Tag::kReplayDone:
        handle_replay_done(msg.from, msg.as<ReplayDonePayload>());
        return;
      default:
        break;  // the regular protocol below
    }
  }
  switch (static_cast<Tag>(msg.tag)) {
    case Tag::kMemoryFull:
      handle_memory_full(msg.from, msg.as<MemoryFullPayload>());
      break;
    case Tag::kOpComplete:
      handle_op_complete(msg.as<OpCompletePayload>());
      break;
    case Tag::kSourceDone:
      handle_source_done(msg.from, msg.as<SourceDonePayload>());
      break;
    case Tag::kSourceProgress:
      handle_source_progress(msg.from, msg.as<SourceProgressPayload>());
      break;
    case Tag::kDrainAck:
      handle_drain_ack(msg.from, msg.as<DrainAckPayload>());
      break;
    case Tag::kHistogramReply:
      handle_histogram_reply(msg.as<HistogramReplyPayload>());
      break;
    case Tag::kReshuffleDone:
      handle_reshuffle_done(msg.as<ReshuffleDonePayload>());
      break;
    case Tag::kResultChunk:
      handle_result_chunk(msg.from, msg.as<ResultChunkPayload>());
      break;
    case Tag::kNodeReport:
      handle_node_report(msg.from, msg.as<NodeReportPayload>());
      break;
    default:
      EHJA_CHECK_MSG(false, "scheduler received unexpected tag");
  }
}

// ------------------------------------------------- expansion (policy side)

void SchedulerActor::handle_memory_full(ActorId from,
                                        const MemoryFullPayload& payload) {
  if (!config_->recovery_enabled()) {
    EHJA_CHECK_MSG(phase_ == Phase::kBuild || phase_ == Phase::kBuildDrain,
                   "memory full outside the build phase");
  } else if (phase_ == Phase::kRecovery && recovery_->probe_recovery()) {
    // A rebuilt owner absorbed more range than fits.  No expansions during
    // recovery: degrade it to local spilling and let the replay continue.
    policy_->force_spill(from);
    return;
  } else if (phase_ != Phase::kBuild && phase_ != Phase::kBuildDrain &&
             phase_ != Phase::kRecovery) {
    EHJA_WARN(name(), "ignoring memory-full from join ", from,
              " outside the build (replay races the probe start)");
    return;
  }
  EHJA_DEBUG(name(), "memory full from join ", from, " (",
             payload.footprint_bytes, " > ", payload.budget_bytes, ")");
  policy_->on_memory_full(from, payload);
  // The request may have been resolved without starting an op (pool
  // exhausted -> spill switch, or a stale requester dropped).  If sources
  // finished in the meantime, the build drain must be (re)started here --
  // nothing else will.
  maybe_start_build_drain();
}

void SchedulerActor::handle_op_complete(const OpCompletePayload& done) {
  policy_->on_op_complete(done);
  maybe_start_build_drain();
}

// --- ExpansionEnv -------------------------------------------------------

ActorId SchedulerActor::spawn_join(NodeId node) {
  const ActorId fresh = spawn_join_(node);
  joins_.push_back(fresh);
  node_of_[fresh] = node;
  if (config_->recovery_enabled()) detector_.track(fresh, Actor::now());
  return fresh;
}

void SchedulerActor::send_to(ActorId to, Message msg) {
  send(to, std::move(msg));
}

bool SchedulerActor::expansion_starting() {
  if (phase_ != Phase::kBuild && phase_ != Phase::kBuildDrain) return false;
  // An expansion invalidates an in-progress drain; it will be restarted
  // when the op completes.
  if (phase_ == Phase::kBuildDrain) {
    phase_ = Phase::kBuild;
    drain_.abort();
  }
  return true;
}

std::uint64_t SchedulerActor::observed_build_tuples() const {
  std::uint64_t total = 0;
  for (const auto& [source, tuples] : source_progress_) total += tuples;
  return total;
}

void SchedulerActor::broadcast_map() {
  absorb_coverage();
  MapUpdatePayload update;
  update.version = ++map_version_;
  update.map = map_;
  const std::size_t wire = map_.wire_bytes();
  for (ActorId source : sources_) {
    send(source, make_message(Tag::kMapUpdate, update, wire));
  }
  checkpoint();
}

// ------------------------------------- failure detection and recovery

void SchedulerActor::absorb_coverage() {
  for (const auto& entry : map_.entries()) {
    for (ActorId owner : entry.owners) {
      auto [it, inserted] = coverage_.try_emplace(owner, entry.range);
      if (!inserted) {
        it->second.lo = std::min(it->second.lo, entry.range.lo);
        it->second.hi = std::max(it->second.hi, entry.range.hi);
      }
    }
  }
}

PosRange SchedulerActor::coverage_of(ActorId actor) const {
  const auto it = coverage_.find(actor);
  return it == coverage_.end() ? PosRange{} : it->second;
}

void SchedulerActor::handle_heartbeat_tick() {
  if (phase_ == Phase::kDone) return;
  if (phase_ == Phase::kReporting) {
    // Disarm join/source detection: every join must answer the report
    // request anyway.  Keep the standby fed, or it would falsely promote.
    if (standby_ != kInvalidActor) {
      send(standby_, make_signal(Tag::kPing));
      defer_after(make_signal(Tag::kHeartbeatTick),
                  config_->ft.heartbeat_interval_sec);
    }
    return;
  }
  const FailureDetector::TickResult result =
      detector_.tick(Actor::now(), /*recovery_active=*/
                     phase_ == Phase::kRecovery);
  for (const FailureDetector::Death& death : result.dead) {
    declare_dead(death.actor, death.silence_sec);
  }
  for (ActorId target : result.ping) {
    send(target, make_signal(Tag::kPing));
  }
  if (standby_ != kInvalidActor) {
    send(standby_, make_signal(Tag::kPing));
  }
  defer_after(make_signal(Tag::kHeartbeatTick),
              config_->ft.heartbeat_interval_sec);
}

void SchedulerActor::declare_dead(ActorId dead, double silence_sec) {
  if (recovery_->dead_actors().count(dead) != 0) return;
  detector_.untrack(dead);
  ++metrics_.failures_detected;
  metrics_.detection_latency_total += silence_sec;
  metrics_.detection_latency_max =
      std::max(metrics_.detection_latency_max, silence_sec);
  if (const auto it = node_of_.find(dead);
      it != node_of_.end() && rt().node_alive(it->second)) {
    // The host node is still up: the detector was wrong, not the process.
    // Recovery proceeds anyway (the false-dead actor's traffic is fenced),
    // but the mistake is counted.
    ++metrics_.false_positive_deaths;
  }
  trace_event(TraceKind::kFailureDetected, dead,
              static_cast<std::int64_t>(silence_sec * 1e6));
  const bool is_source =
      std::find(sources_.begin(), sources_.end(), dead) != sources_.end();
  EHJA_WARN(name(), is_source ? "source" : "join", " actor ", dead,
            " silent for ", silence_sec, "s: declared dead");
  // Whether the run was on the probe side decides the recovery flavour
  // (and must be pinned before the phase flips to kRecovery).
  const bool probe_side =
      phase_ == Phase::kProbe || phase_ == Phase::kProbeDrain ||
      (phase_ == Phase::kRecovery && recovery_->probe_recovery());
  // Membership changed under whatever drain or reshuffle was in flight.
  drain_.abort();
  if (phase_ == Phase::kReshuffle || phase_ == Phase::kReshuffleDrain) {
    reshuffle_sets_.clear();
    reshuffle_pending_replies_ = 0;
    reshuffle_pending_done_ = 0;
    ++reshuffle_round_;  // stragglers of the aborted attempt become stale
  }
  if (is_source) {
    ++metrics_.source_failures;
    const ActorId fresh = replace_source(dead);
    phase_ = Phase::kRecovery;
    recovery_->add_fresh_source(fresh, probe_side);
    recovery_->on_source_death(dead, probe_side);
  } else {
    ++metrics_.join_failures;
    joins_.erase(std::remove(joins_.begin(), joins_.end(), dead),
                 joins_.end());
    policy_->on_actor_dead(dead);
    phase_ = Phase::kRecovery;
    recovery_->on_death(dead, probe_side);
  }
  checkpoint();
}

ActorId SchedulerActor::replace_source(ActorId dead) {
  EHJA_CHECK_MSG(spawn_source_ != nullptr,
                 "data source died but no spawn_source callback is wired");
  const auto it = std::find(sources_.begin(), sources_.end(), dead);
  EHJA_CHECK(it != sources_.end());
  const auto index =
      static_cast<std::uint32_t>(std::distance(sources_.begin(), it));
  // Un-count everything the dead stream contributed: the replacement
  // re-emits the identical slice (TupleStream is deterministic in the
  // source index) and re-reports its own completions.
  const SourceRecord rec = source_records_[dead];
  if (rec.done_build) {
    --sources_done_build_;
    source_chunks_build_ -= rec.build_chunks;
    source_tuples_build_ -= rec.build_tuples;
  }
  if (rec.done_probe) {
    --sources_done_probe_;
    source_chunks_probe_ -= rec.probe_chunks;
    source_tuples_probe_ -= rec.probe_tuples;
  }
  source_records_.erase(dead);
  source_progress_.erase(dead);
  source_chunks_to_.erase(dead);
  // Prefer a free pool node; with the pool exhausted (every node joined the
  // join), co-locate the replacement with the scheduler -- a source is pure
  // CPU + network, and survivability must not depend on pool slack.
  const std::optional<NodeId> pool_node = policy_->acquire_node();
  const NodeId host = pool_node.has_value() ? *pool_node : node();
  const ActorId fresh = spawn_source_(host, index);
  EHJA_WARN(name(), "source ", dead, " (index ", index,
            ") reassigned to fresh actor ", fresh, " on node ", host,
            pool_node.has_value() ? "" : " (pool exhausted: co-located)");
  sources_[index] = fresh;
  node_of_[fresh] = host;
  detector_.track(fresh, Actor::now());
  return fresh;
}

void SchedulerActor::handle_replay_done(ActorId from,
                                        const ReplayDonePayload& done) {
  source_chunks_to_[from] = done.chunks_to;
  recovery_->on_replay_done(from, done);
}

void SchedulerActor::start_settle_drain() {
  drain_.arm();
  start_drain_round();
}

void SchedulerActor::recovery_complete(bool probe_recovery) {
  EHJA_CHECK(phase_ == Phase::kRecovery);
  if (probe_recovery) {
    phase_ = Phase::kProbe;
    trace_event(TraceKind::kPhase, 0, 0, "probe_resume");
    if (sources_done_probe_ == config_->data_sources) {
      phase_ = Phase::kProbeDrain;
      drain_.arm();
      start_drain_round();
    }
  } else {
    phase_ = Phase::kBuild;
    trace_event(TraceKind::kPhase, 0, 0, "build_resume");
    policy_->kick();  // restart expansions queued during the recovery
    maybe_start_build_drain();
  }
  checkpoint();
}

std::uint64_t SchedulerActor::expected_live_chunks() const {
  std::uint64_t expected = 0;
  for (const auto& [source, dests] : source_chunks_to_) {
    for (const auto& [dest, chunks] : dests) {
      if (recovery_->dead_actors().count(dest) == 0) expected += chunks;
    }
  }
  return expected;
}

// ------------------------------------------------- scheduler failover

void SchedulerActor::checkpoint() {
  if (standby_ == kInvalidActor || mode_ != Mode::kActive) return;
  SchedulerSnapshotPayload snap;
  snap.generation = ++snapshot_generation_;
  snap.phase = static_cast<std::uint8_t>(phase_);
  snap.probe_recovery = recovery_ != nullptr && recovery_->probe_recovery();
  snap.epoch = recovery_ != nullptr ? recovery_->epoch() : 0;
  snap.map_version = map_version_;
  snap.map = map_;
  snap.joins = joins_;
  snap.sources = sources_;
  if (recovery_ != nullptr) {
    snap.dead.assign(recovery_->dead_actors().begin(),
                     recovery_->dead_actors().end());
  }
  snap.spilled = policy_->spilled();
  snap.pool_free = policy_->free_pool_nodes();
  snap.reshuffle_round = reshuffle_round_;
  snap.drain_epoch = drain_.epoch();
  snap.source_chunks_to = source_chunks_to_;
  snap.metrics = metrics_;
  std::size_t wire = map_.wire_bytes() + 128 +
                     8 * (snap.joins.size() + snap.sources.size() +
                          snap.dead.size() + snap.spilled.size() +
                          snap.pool_free.size());
  for (const auto& [source, dests] : snap.source_chunks_to) {
    wire += 16 + 24 * dests.size();
  }
  send(standby_, make_message(Tag::kSchedulerSnapshot, std::move(snap), wire));
}

void SchedulerActor::on_standby_message(const Message& msg) {
  switch (static_cast<Tag>(msg.tag)) {
    case Tag::kSchedulerSnapshot: {
      detector_.heard_from(msg.from, Actor::now(), /*sample=*/true);
      const auto& snap = msg.as<SchedulerSnapshotPayload>();
      if (!snapshot_.has_value() || snap.generation > snapshot_->generation) {
        snapshot_ = snap;
      }
      break;
    }
    case Tag::kPing:
      detector_.heard_from(msg.from, Actor::now(), /*sample=*/true);
      break;
    case Tag::kHeartbeatTick: {
      const FailureDetector::TickResult result = detector_.tick(Actor::now());
      for (const FailureDetector::Death& death : result.dead) {
        if (death.actor != active_) continue;
        EHJA_WARN(name(), "active coordinator ", active_, " silent for ",
                  death.silence_sec, "s (phi ", death.phi, "): promoting");
        promote(death.silence_sec);
        return;  // promote() re-arms its own tick
      }
      defer_after(make_signal(Tag::kHeartbeatTick),
                  config_->ft.heartbeat_interval_sec);
      break;
    }
    default:
      // Stray worker traffic addressed here by mistake; a standby holds no
      // protocol state to apply it to.
      EHJA_WARN(name(), "standby ignoring tag ", msg.tag, " from ", msg.from);
      break;
  }
}

void SchedulerActor::promote(double silence_sec) {
  EHJA_CHECK_MSG(snapshot_.has_value(),
                 "standby promoted before any checkpoint arrived");
  const SchedulerSnapshotPayload snap = std::move(*snapshot_);
  snapshot_.reset();
  detector_.untrack(active_);
  mode_ = Mode::kActive;
  handoff_generation_ = 1;  // a single standby promotes at most once

  // Adopt the checkpointed coordination state.
  phase_ = static_cast<Phase>(snap.phase);
  promoted_probe_recovery_ = snap.probe_recovery;
  map_ = snap.map;
  map_version_ = snap.map_version;
  joins_ = snap.joins;
  sources_ = snap.sources;
  reshuffle_round_ = snap.reshuffle_round + 1;  // stale any in-flight attempt
  drain_.restore_epoch(snap.drain_epoch);
  source_chunks_to_ = snap.source_chunks_to;
  metrics_ = snap.metrics;
  ++metrics_.scheduler_failovers;
  ++metrics_.failures_detected;
  metrics_.detection_latency_total += silence_sec;
  metrics_.detection_latency_max =
      std::max(metrics_.detection_latency_max, silence_sec);
  if (rt().node_alive(config_->scheduler_node())) {
    ++metrics_.false_positive_deaths;  // the handoff will depose it
  }
  absorb_coverage();

  // Rebuild the collaborators a snapshot cannot carry: a fresh policy over
  // the unclaimed pool, and a recovery manager seeded with the
  // predecessor's incarnation epoch and all-time dead set.
  policy_ = ExpansionPolicy::make(
      config_, *this,
      ResourcePool(rt().cluster(), snap.pool_free, config_->pick_policy));
  policy_->adopt_spilled(snap.spilled);
  recovery_ = std::make_unique<RecoveryManager>(
      config_, static_cast<ExpansionEnv&>(*this),
      static_cast<RecoveryHost&>(*this));
  recovery_->restore(snap.epoch,
                     std::set<ActorId>(snap.dead.begin(), snap.dead.end()));

  // Node bookkeeping: initial placements are config-determined; later
  // recruits are unknown to a promoted coordinator (that only weakens the
  // false-positive metric, never correctness).
  for (std::uint32_t i = 0;
       i < sources_.size() && i < config_->data_sources; ++i) {
    node_of_.emplace(sources_[i], config_->source_node(i));
  }
  for (ActorId join : joins_) detector_.track(join, Actor::now());
  for (ActorId source : sources_) detector_.track(source, Actor::now());

  EHJA_WARN(name(), "promoting to active coordinator: generation ",
            handoff_generation_, ", checkpointed phase ",
            static_cast<int>(snap.phase), ", epoch ", snap.epoch);

  if (phase_ == Phase::kDone) {
    // The predecessor finished the run and died after; adopt and stop.
    if (on_done_) {
      on_done_();
    } else {
      rt().request_stop();
    }
    return;
  }

  SchedulerHandoffPayload handoff;
  handoff.generation = handoff_generation_;
  handoff.epoch = snap.epoch;
  for (ActorId join : joins_) {
    send(join,
         make_message(Tag::kSchedulerHandoff, handoff, kControlWireBytes));
  }
  promotion_pending_ = true;
  pending_handoff_acks_.clear();
  handoff_acks_.clear();
  for (ActorId source : sources_) {
    pending_handoff_acks_.insert(source);
    send(source,
         make_message(Tag::kSchedulerHandoff, handoff, kControlWireBytes));
  }
  // The predecessor may be alive (false suspicion): order it to abdicate.
  send(active_,
       make_message(Tag::kSchedulerHandoff, handoff, kControlWireBytes));
  defer_after(make_signal(Tag::kHeartbeatTick),
              config_->ft.heartbeat_interval_sec);
}

void SchedulerActor::handle_handoff_ack(
    ActorId from, const SchedulerHandoffAckPayload& ack) {
  if (ack.generation != handoff_generation_ || !promotion_pending_) {
    EHJA_WARN(name(), "stale handoff ack from ", from, " (generation ",
              ack.generation, ")");
    return;
  }
  if (pending_handoff_acks_.erase(from) == 0) return;  // duplicate
  handoff_acks_[from] = ack;
  if (pending_handoff_acks_.empty()) finish_promotion();
}

void SchedulerActor::finish_promotion() {
  promotion_pending_ = false;
  // Rebuild source bookkeeping from the acks: the workers' local truth
  // outranks any checkpoint (the predecessor may have died between a
  // source's kSourceDone and its next snapshot).
  sources_done_build_ = 0;
  sources_done_probe_ = 0;
  source_chunks_build_ = 0;
  source_chunks_probe_ = 0;
  source_tuples_build_ = 0;
  source_tuples_probe_ = 0;
  source_progress_.clear();
  source_records_.clear();
  source_chunks_to_.clear();
  for (const auto& [source, ack] : handoff_acks_) {
    SourceRecord& rec = source_records_[source];
    rec.done_build = (ack.done_mask & 0x1) != 0;
    rec.done_probe = (ack.done_mask & 0x2) != 0;
    rec.build_chunks = ack.build_chunks;
    rec.probe_chunks = ack.probe_chunks;
    rec.build_tuples = ack.build_tuples;
    rec.probe_tuples = ack.probe_tuples;
    if (rec.done_build) {
      ++sources_done_build_;
      source_chunks_build_ += ack.build_chunks;
      source_tuples_build_ += ack.build_tuples;
    }
    if (rec.done_probe) {
      ++sources_done_probe_;
      source_chunks_probe_ += ack.probe_chunks;
      source_tuples_probe_ += ack.probe_tuples;
    }
    source_progress_[source] = ack.build_tuples;
    source_chunks_to_[source] = ack.chunks_to;
  }

  if (phase_ == Phase::kReporting) {
    // The probe already drained, so no data is in flight; the only lost
    // state is the report aggregation.  Joins answer a re-request with
    // their stored report, so re-asking is idempotent.
    metrics_.nodes.clear();
    metrics_.join.matches = 0;
    metrics_.join.checksum = 0;
    metrics_.build_tuples_total = 0;
    metrics_.probe_tuples_total = 0;
    metrics_.extra_build_chunks = 0;
    result_rows_.clear();
    reports_pending_ = static_cast<std::uint32_t>(joins_.size());
    for (ActorId join : joins_) send(join, make_signal(Tag::kReportRequest));
  } else {
    // Mid-phase takeover.  The checkpoint says which deliveries the
    // predecessor *requested*, never which ones landed; the one sound
    // answer is to assume none did and wipe-recover the whole position
    // space through the standard machinery.
    const bool probe_side =
        phase_ == Phase::kProbe || phase_ == Phase::kProbeDrain ||
        (phase_ == Phase::kRecovery && promoted_probe_recovery_);
    drain_.abort();
    reshuffle_sets_.clear();
    reshuffle_pending_replies_ = 0;
    reshuffle_pending_done_ = 0;
    phase_ = Phase::kRecovery;
    // A source whose stream start died with the predecessor (a replacement
    // spawned just before the failover: its kStartBuild/kStartProbe came
    // from the deposed coordinator and was dropped by the split-brain
    // guard) holds no stream to replay.  Its ack's started bits expose
    // that; re-start it as a fresh replacement so the wipe streams its
    // slice as a normal counted stream and the done barriers stay whole.
    for (const auto& [source, ack] : handoff_acks_) {
      const bool started_build = (ack.done_mask & 0x4) != 0;
      const bool started_probe = (ack.done_mask & 0x8) != 0;
      if (!started_build) {
        recovery_->add_fresh_source(source, probe_side);
      } else if (probe_side && !started_probe) {
        recovery_->add_fresh_probe_source(source);
      }
    }
    recovery_->on_wipe(probe_side);
  }
  handoff_acks_.clear();
  checkpoint();  // no-op (no second standby), kept for symmetry

  // Replay whatever arrived mid-promotion, in arrival order.
  std::vector<Message> stash;
  stash.swap(promotion_stash_);
  for (const Message& stashed : stash) on_message(stashed);
}

void SchedulerActor::handle_handoff_at_active(const Message& msg) {
  const auto& handoff = msg.as<SchedulerHandoffPayload>();
  if (handoff.generation <= handoff_generation_) {
    EHJA_WARN(name(), "ignoring handoff with stale generation ",
              handoff.generation);
    return;
  }
  // A promoted standby believes this coordinator died.  Whether it is right
  // (node about to go down) or wrong (false suspicion), exactly one
  // coordinator may speak, and the generation orders them.
  EHJA_WARN(name(), "deposed by promoted standby ", msg.from, " (generation ",
            handoff.generation, "); abdicating");
  mode_ = Mode::kDeposed;
  handoff_generation_ = handoff.generation;
}

void SchedulerActor::start_replacement_source(ActorId source, RelTag rel,
                                              std::uint64_t epoch) {
  if (rel == config_->build_rel.tag) {
    StartBuildPayload start;
    start.map = map_;
    start.epoch = epoch;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartBuild, std::move(start), wire));
  } else {
    StartProbePayload start;
    start.map = map_;
    start.epoch = epoch;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartProbe, std::move(start), wire));
  }
  EHJA_INFO(name(), "replacement source ", source, " starts its ",
            rel == config_->build_rel.tag ? "build" : "probe",
            " stream at epoch ", epoch);
}

// ------------------------------------------------------------ phase change

void SchedulerActor::handle_source_done(ActorId from,
                                        const SourceDonePayload& done) {
  if (config_->recovery_enabled()) source_chunks_to_[from] = done.chunks_to;
  SourceRecord& rec = source_records_[from];
  if (done.rel == config_->build_rel.tag) {
    ++sources_done_build_;
    source_chunks_build_ += done.chunks_sent;
    source_tuples_build_ += done.tuples_sent;
    source_progress_[from] = done.tuples_sent;
    rec.done_build = true;
    rec.build_chunks = done.chunks_sent;
    rec.build_tuples = done.tuples_sent;
    checkpoint();
    maybe_start_build_drain();
  } else {
    ++sources_done_probe_;
    source_chunks_probe_ += done.chunks_sent;
    source_tuples_probe_ += done.tuples_sent;
    rec.done_probe = true;
    rec.probe_chunks = done.chunks_sent;
    rec.probe_tuples = done.tuples_sent;
    checkpoint();
    if (sources_done_probe_ == config_->data_sources) {
      if (phase_ == Phase::kProbe) {
        phase_ = Phase::kProbeDrain;
        drain_.arm();
        start_drain_round();
      } else {
        // A source resumed by a replay can finish mid-recovery; the probe
        // drain then starts from recovery_complete() instead.
        EHJA_CHECK_MSG(phase_ == Phase::kRecovery,
                       "probe sources done in unexpected phase");
      }
    }
  }
}

void SchedulerActor::handle_source_progress(
    ActorId from, const SourceProgressPayload& progress) {
  if (progress.rel != config_->build_rel.tag) return;
  source_progress_[from] = progress.tuples_sent;
}

std::uint64_t SchedulerActor::expected_source_chunks() const {
  std::uint64_t expected = source_chunks_build_;
  if (phase_ == Phase::kProbeDrain) expected += source_chunks_probe_;
  return expected;
}

void SchedulerActor::maybe_start_build_drain() {
  if (phase_ != Phase::kBuild) return;
  if (sources_done_build_ != config_->data_sources) return;
  if (!policy_->idle()) return;
  phase_ = Phase::kBuildDrain;
  drain_.arm();
  start_drain_round();
  checkpoint();
}

void SchedulerActor::start_drain_round() {
  const DrainProbePayload probe = drain_.begin_round();
  trace_event(TraceKind::kDrainRound, static_cast<std::int64_t>(probe.epoch),
              static_cast<std::int64_t>(drain_.prev_received()));
  for (ActorId join : joins_) {
    send(join, make_message(Tag::kDrainProbe, probe, kControlWireBytes));
  }
}

void SchedulerActor::handle_drain_ack(ActorId from,
                                      const DrainAckPayload& ack) {
  if (phase_ != Phase::kBuildDrain && phase_ != Phase::kReshuffleDrain &&
      phase_ != Phase::kProbeDrain && phase_ != Phase::kRecovery) {
    return;  // round aborted by an expansion
  }
  DrainProtocol::Outcome outcome;
  if (config_->recovery_enabled()) {
    // Reduce the per-pair counters over live nodes only: chunks addressed
    // to (or forwarded by) a dead node can never balance.
    const auto& dead = recovery_->dead_actors();
    DrainAckPayload live;
    live.epoch = ack.epoch;
    for (const auto& [sender, chunks] : ack.received_from) {
      if (dead.count(sender) == 0) live.data_chunks_received += chunks;
    }
    for (const auto& [dest, chunks] : ack.forwarded_to) {
      if (dead.count(dest) == 0) live.data_chunks_forwarded += chunks;
    }
    outcome = drain_.on_ack(from, live, joins_.size(), expected_live_chunks());
  } else {
    outcome =
        drain_.on_ack(from, ack, joins_.size(), expected_source_chunks());
  }
  switch (outcome) {
    case DrainProtocol::Outcome::kStale:
    case DrainProtocol::Outcome::kPending:
      break;
    case DrainProtocol::Outcome::kRepoll:
      start_drain_round();
      break;
    case DrainProtocol::Outcome::kDrained:
      on_drained();
      break;
  }
}

void SchedulerActor::on_drained() {
  drain_.arm();
  switch (phase_) {
    case Phase::kBuildDrain:
      build_complete();
      break;
    case Phase::kReshuffleDrain:
      metrics_.t_reshuffle_end = Actor::now();
      start_probe();
      break;
    case Phase::kProbeDrain:
      metrics_.t_probe_end = Actor::now();
      phase_ = Phase::kReporting;
      reports_pending_ = static_cast<std::uint32_t>(joins_.size());
      for (ActorId join : joins_) {
        send(join, make_signal(Tag::kReportRequest));
      }
      break;
    case Phase::kRecovery:
      recovery_->on_settle_drained();
      break;
    default:
      EHJA_CHECK_MSG(false, "drained in unexpected phase");
  }
  checkpoint();
}

void SchedulerActor::build_complete() {
  metrics_.t_build_end = Actor::now();
  trace_event(TraceKind::kPhase, 0, 0, "build_complete");
  EHJA_INFO(name(), "build complete at t=", Actor::now(), "s with ",
            joins_.size(), " join nodes");
  if (policy_->wants_reshuffle()) {
    start_reshuffle();
  } else {
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

// -------------------------------------------------------- hybrid reshuffle

void SchedulerActor::start_reshuffle() {
  phase_ = Phase::kReshuffle;
  trace_event(TraceKind::kPhase, 0, 0, "reshuffle");
  reshuffle_sets_.clear();
  reshuffle_pending_replies_ = 0;
  const std::vector<ActorId>& spilled = policy_->spilled();
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto& entry = map_.entries()[i];
    if (entry.owners.size() < 2) continue;
    // A member that degraded to local spilling holds its partitions on
    // disk; its set cannot be reshuffled and keeps replication semantics
    // (probe broadcast) instead.
    const bool any_spilled = std::any_of(
        entry.owners.begin(), entry.owners.end(), [&spilled](ActorId owner) {
          return std::find(spilled.begin(), spilled.end(), owner) !=
                 spilled.end();
        });
    if (any_spilled) continue;
    ReshuffleSet set;
    set.members = entry.owners;
    reshuffle_sets_.emplace(i, std::move(set));
    HistogramRequestPayload req;
    req.set_id = i;
    req.bins = config_->reshuffle_bins;
    req.round = reshuffle_round_;
    for (ActorId member : entry.owners) {
      send(member, make_message(Tag::kHistogramRequest, req,
                                kControlWireBytes));
      ++reshuffle_pending_replies_;
    }
  }
  EHJA_INFO(name(), "reshuffle: ", reshuffle_sets_.size(),
            " replica set(s)");
  if (reshuffle_pending_replies_ == 0) {
    // Every replicated set contained a spilled member: nothing to do.
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

void SchedulerActor::handle_histogram_reply(
    const HistogramReplyPayload& reply) {
  if (reply.round != reshuffle_round_) return;  // aborted attempt
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  auto it = reshuffle_sets_.find(reply.set_id);
  EHJA_CHECK(it != reshuffle_sets_.end());
  ReshuffleSet& set = it->second;
  if (!set.merged.has_value()) {
    set.merged = reply.histogram;
  } else {
    set.merged->merge(reply.histogram);
  }
  ++set.replies;
  EHJA_CHECK(set.replies <= set.members.size());
  EHJA_CHECK(reshuffle_pending_replies_ > 0);
  if (--reshuffle_pending_replies_ == 0) {
    dispatch_reshuffle_moves();
  }
}

void SchedulerActor::dispatch_reshuffle_moves() {
  // Rebuild the map wholesale: untouched entries stay, every replica set's
  // entry is replaced by its plan.
  std::vector<PartitionMap::Entry> entries;
  reshuffle_pending_done_ = 0;
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto it = reshuffle_sets_.find(i);
    if (it == reshuffle_sets_.end()) {
      entries.push_back(map_.entries()[i]);
      continue;
    }
    ReshuffleSet& set = it->second;
    EHJA_CHECK(set.replies == set.members.size());
    std::vector<PartitionMap::Entry> plan =
        plan_reshuffle(*set.merged, set.members);
    ReshuffleMovePayload move;
    move.plan = plan;
    move.round = reshuffle_round_;
    const std::size_t wire = 32 + 24 * plan.size();
    for (ActorId member : set.members) {
      send(member, make_message(Tag::kReshuffleMove, move, wire));
      ++reshuffle_pending_done_;
    }
    for (auto& entry : plan) entries.push_back(std::move(entry));
  }
  map_ = PartitionMap::from_entries(std::move(entries));
  ++map_version_;
  absorb_coverage();
  checkpoint();
}

void SchedulerActor::handle_reshuffle_done(const ReshuffleDonePayload& done) {
  if (done.round != reshuffle_round_) return;  // aborted attempt
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  EHJA_CHECK(reshuffle_pending_done_ > 0);
  if (--reshuffle_pending_done_ > 0) return;
  phase_ = Phase::kReshuffleDrain;
  drain_.arm();
  start_drain_round();
  checkpoint();
}

// ------------------------------------------------------------------- probe

void SchedulerActor::start_probe() {
  phase_ = Phase::kProbe;
  trace_event(TraceKind::kPhase, 0, 0, "probe");
  for (ActorId source : sources_) {
    StartProbePayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartProbe, std::move(start), wire));
  }
  EHJA_INFO(name(), "probe phase started at t=", Actor::now(), "s (",
            map_.owner_slots(), " owner slots over ", map_.size(),
            " ranges)");
}

// -------------------------------------------------------------- completion

void SchedulerActor::handle_result_chunk(ActorId from,
                                         const ResultChunkPayload& payload) {
  EHJA_CHECK_MSG(config_->capture_output,
                 "result chunk on a run that never asked for capture");
  EHJA_CHECK(phase_ == Phase::kReporting);
  std::vector<Tuple>& rows = result_rows_[from];
  // A re-requested report resends the node's whole stream; the first-chunk
  // flag restarts accumulation so the duplicate stream replaces (never
  // doubles) the original.
  if (payload.first) rows.clear();
  rows.reserve(rows.size() + payload.chunk.size());
  for (std::size_t i = 0; i < payload.chunk.size(); ++i) {
    rows.push_back(payload.chunk.batch.tuple(i));
  }
  EHJA_CHECK_MSG(rows.size() <= payload.total,
                 "result chunks exceed the sender's declared total");
}

void SchedulerActor::handle_node_report(ActorId from,
                                        const NodeReportPayload& report) {
  EHJA_CHECK(phase_ == Phase::kReporting);
  if (config_->capture_output) {
    // FIFO per pair: every chunk of this node's stream precedes its report.
    const auto it = result_rows_.find(from);
    const std::size_t rows = it == result_rows_.end() ? 0 : it->second.size();
    EHJA_CHECK_MSG(rows == report.result_rows,
                   "captured result rows lost in flight");
    EHJA_CHECK_MSG(report.result_rows == report.metrics.matches,
                   "captured rows disagree with the match count");
  }
  metrics_.nodes.push_back(report.metrics);
  metrics_.join.matches += report.metrics.matches;
  metrics_.join.checksum += report.checksum;
  metrics_.build_tuples_total += report.metrics.build_tuples;
  metrics_.probe_tuples_total += report.metrics.probe_tuples;
  metrics_.extra_build_chunks += report.metrics.chunks_forwarded;
  EHJA_CHECK(reports_pending_ > 0);
  if (--reports_pending_ > 0) return;

  metrics_.t_complete = Actor::now();
  metrics_.final_join_nodes = static_cast<std::uint32_t>(joins_.size());
  metrics_.source_build_chunks = source_chunks_build_;
  metrics_.source_probe_chunks = source_chunks_probe_;
  if (config_->capture_output) {
    // Flatten per-node streams in actor-id order (the map's iteration
    // order); the consumer treats the result as a multiset and the total
    // was verified against each report above.
    metrics_.output_rows.clear();
    metrics_.output_rows.reserve(
        static_cast<std::size_t>(metrics_.join.matches));
    for (auto& [actor, rows] : result_rows_) {
      metrics_.output_rows.insert(metrics_.output_rows.end(), rows.begin(),
                                  rows.end());
    }
    EHJA_CHECK_MSG(metrics_.output_rows.size() == metrics_.join.matches,
                   "captured pipeline output disagrees with the match count");
  }
  // Conservation: every generated build tuple is stored exactly once.
  if (metrics_.build_tuples_total != source_tuples_build_) {
    EHJA_ERROR(name(), "build-tuple conservation broken: joins hold ",
               metrics_.build_tuples_total, ", sources sent ",
               source_tuples_build_);
    for (const NodeMetrics& nm : metrics_.nodes) {
      EHJA_ERROR(name(), "  join actor ", nm.actor, " node ", nm.node,
                 " holds ", nm.build_tuples, " (received ",
                 nm.chunks_received, " chunks, forwarded ",
                 nm.chunks_forwarded, ")");
    }
  }
  EHJA_CHECK_MSG(metrics_.build_tuples_total == source_tuples_build_,
                 "build tuples lost or duplicated");
  // Probe tuples may be duplicated (replication broadcast), never lost.
  // source_tuples_probe_ counts *deliveries* (one per fanned-out copy), so
  // after a probe-phase recovery the bound no longer holds: a collapsed
  // entry's dead and retired replicas received deliveries the source counted
  // that are deliberately not re-sent to the single surviving owner.
  EHJA_CHECK(metrics_.failures_detected > 0 ||
             metrics_.probe_tuples_total >= source_tuples_probe_);
  phase_ = Phase::kDone;
  trace_event(TraceKind::kPhase, 0, 0, "done");
  checkpoint();
  EHJA_INFO(name(), "done: ", metrics_.summary());
  // A serving coordinator installs on_done_ and keeps the runtime alive for
  // the other queries it hosts; the one-shot driver stops the world here.
  if (on_done_) {
    on_done_();
  } else {
    rt().request_stop();
  }
}

}  // namespace ehja
