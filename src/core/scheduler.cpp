#include "core/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "core/reshuffle.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

SchedulerActor::SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                               std::function<ActorId(NodeId)> spawn_join)
    : config_(std::move(config)),
      spawn_join_(std::move(spawn_join)),
      detector_(config_->ft.heartbeat_timeout_sec) {}

void SchedulerActor::wire(std::vector<ActorId> sources,
                          std::vector<ActorId> initial_joins,
                          ResourcePool pool) {
  sources_ = std::move(sources);
  joins_ = std::move(initial_joins);
  policy_ = ExpansionPolicy::make(config_, *this, std::move(pool));
  recovery_ = std::make_unique<RecoveryManager>(
      config_, static_cast<ExpansionEnv&>(*this),
      static_cast<RecoveryHost&>(*this));
  EHJA_CHECK(sources_.size() == config_->data_sources);
  EHJA_CHECK(joins_.size() == config_->initial_join_nodes);
}

void SchedulerActor::on_start() {
  EHJA_CHECK_MSG(policy_ != nullptr, "scheduler not wired before run");
  metrics_.t_start = Actor::now();
  trace_event(TraceKind::kPhase, 0, 0, "build");
  metrics_.initial_join_nodes = config_->initial_join_nodes;

  if (config_->balanced_initial_partition) {
    // Sample the build distribution and cut the initial ranges to equal
    // *weight* instead of equal width (config.hpp).  Sampling is real work
    // on the front-end node.
    BinnedHistogram sampled(0, kPositionCount, config_->reshuffle_bins);
    SplitMix64 rng(config_->seed, /*stream=*/0xba1a);
    for (std::uint64_t i = 0; i < config_->partition_sample; ++i) {
      sampled.add(position_of(sample_key(config_->build_rel.dist, rng)));
    }
    charge(static_cast<double>(config_->partition_sample) *
           config_->cost.tuple_generate_sec);
    map_ = PartitionMap::from_entries(plan_reshuffle(sampled, joins_));
  } else {
    map_ = PartitionMap::initial(joins_);
  }

  absorb_coverage();
  if (config_->recovery_enabled()) {
    for (ActorId join : joins_) detector_.track(join, Actor::now());
    defer_after(make_signal(Tag::kHeartbeatTick),
                config_->ft.heartbeat_interval_sec);
  }

  // Hand every initial join node its bucket...
  for (std::size_t j = 0; j < joins_.size(); ++j) {
    JoinInitPayload init;
    init.role = JoinRole::kInitial;
    init.range = map_.entries()[j].range;
    init.source_count = config_->data_sources;
    send(joins_[j], make_message(Tag::kJoinInit, init, kControlWireBytes));
  }
  // ...and start the build phase at the sources.
  for (ActorId source : sources_) {
    StartBuildPayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartBuild, std::move(start), wire));
  }
  EHJA_INFO(name(), "start: ", config_->to_string());
}

void SchedulerActor::on_message(const Message& msg) {
  charge(config_->cost.control_handle_sec);
  if (config_->recovery_enabled()) {
    if (recovery_->dead_actors().count(msg.from) != 0) {
      return;  // straggler from a declared death: drop wholesale
    }
    detector_.heard_from(msg.from, Actor::now());
    switch (static_cast<Tag>(msg.tag)) {
      case Tag::kPong:
        return;  // heard_from above is the whole point
      case Tag::kHeartbeatTick:
        handle_heartbeat_tick();
        return;
      case Tag::kRangeResetAck:
        recovery_->on_reset_ack(msg.from, msg.as<RangeResetAckPayload>());
        return;
      case Tag::kReplayDone:
        handle_replay_done(msg.from, msg.as<ReplayDonePayload>());
        return;
      default:
        break;  // the regular protocol below
    }
  }
  switch (static_cast<Tag>(msg.tag)) {
    case Tag::kMemoryFull:
      handle_memory_full(msg.from, msg.as<MemoryFullPayload>());
      break;
    case Tag::kOpComplete:
      handle_op_complete(msg.as<OpCompletePayload>());
      break;
    case Tag::kSourceDone:
      handle_source_done(msg.from, msg.as<SourceDonePayload>());
      break;
    case Tag::kSourceProgress:
      handle_source_progress(msg.from, msg.as<SourceProgressPayload>());
      break;
    case Tag::kDrainAck:
      handle_drain_ack(msg.from, msg.as<DrainAckPayload>());
      break;
    case Tag::kHistogramReply:
      handle_histogram_reply(msg.as<HistogramReplyPayload>());
      break;
    case Tag::kReshuffleDone:
      handle_reshuffle_done(msg.as<ReshuffleDonePayload>());
      break;
    case Tag::kNodeReport:
      handle_node_report(msg.as<NodeReportPayload>());
      break;
    default:
      EHJA_CHECK_MSG(false, "scheduler received unexpected tag");
  }
}

// ------------------------------------------------- expansion (policy side)

void SchedulerActor::handle_memory_full(ActorId from,
                                        const MemoryFullPayload& payload) {
  if (!config_->recovery_enabled()) {
    EHJA_CHECK_MSG(phase_ == Phase::kBuild || phase_ == Phase::kBuildDrain,
                   "memory full outside the build phase");
  } else if (phase_ == Phase::kRecovery && recovery_->probe_recovery()) {
    // A rebuilt owner absorbed more range than fits.  No expansions during
    // recovery: degrade it to local spilling and let the replay continue.
    policy_->force_spill(from);
    return;
  } else if (phase_ != Phase::kBuild && phase_ != Phase::kBuildDrain &&
             phase_ != Phase::kRecovery) {
    EHJA_WARN(name(), "ignoring memory-full from join ", from,
              " outside the build (replay races the probe start)");
    return;
  }
  EHJA_DEBUG(name(), "memory full from join ", from, " (",
             payload.footprint_bytes, " > ", payload.budget_bytes, ")");
  policy_->on_memory_full(from, payload);
  // The request may have been resolved without starting an op (pool
  // exhausted -> spill switch, or a stale requester dropped).  If sources
  // finished in the meantime, the build drain must be (re)started here --
  // nothing else will.
  maybe_start_build_drain();
}

void SchedulerActor::handle_op_complete(const OpCompletePayload& done) {
  policy_->on_op_complete(done);
  maybe_start_build_drain();
}

// --- ExpansionEnv -------------------------------------------------------

ActorId SchedulerActor::spawn_join(NodeId node) {
  const ActorId fresh = spawn_join_(node);
  joins_.push_back(fresh);
  if (config_->recovery_enabled()) detector_.track(fresh, Actor::now());
  return fresh;
}

void SchedulerActor::send_to(ActorId to, Message msg) {
  send(to, std::move(msg));
}

bool SchedulerActor::expansion_starting() {
  if (phase_ != Phase::kBuild && phase_ != Phase::kBuildDrain) return false;
  // An expansion invalidates an in-progress drain; it will be restarted
  // when the op completes.
  if (phase_ == Phase::kBuildDrain) {
    phase_ = Phase::kBuild;
    drain_.abort();
  }
  return true;
}

std::uint64_t SchedulerActor::observed_build_tuples() const {
  std::uint64_t total = 0;
  for (const auto& [source, tuples] : source_progress_) total += tuples;
  return total;
}

void SchedulerActor::broadcast_map() {
  absorb_coverage();
  MapUpdatePayload update;
  update.version = ++map_version_;
  update.map = map_;
  const std::size_t wire = map_.wire_bytes();
  for (ActorId source : sources_) {
    send(source, make_message(Tag::kMapUpdate, update, wire));
  }
}

// ------------------------------------- failure detection and recovery

void SchedulerActor::absorb_coverage() {
  for (const auto& entry : map_.entries()) {
    for (ActorId owner : entry.owners) {
      auto [it, inserted] = coverage_.try_emplace(owner, entry.range);
      if (!inserted) {
        it->second.lo = std::min(it->second.lo, entry.range.lo);
        it->second.hi = std::max(it->second.hi, entry.range.hi);
      }
    }
  }
}

PosRange SchedulerActor::coverage_of(ActorId actor) const {
  const auto it = coverage_.find(actor);
  return it == coverage_.end() ? PosRange{} : it->second;
}

void SchedulerActor::handle_heartbeat_tick() {
  if (phase_ == Phase::kReporting || phase_ == Phase::kDone) {
    return;  // disarm: every join must answer the report request anyway
  }
  const FailureDetector::TickResult result = detector_.tick(Actor::now());
  for (const FailureDetector::Death& death : result.dead) {
    declare_dead(death.actor, death.silence_sec);
  }
  for (ActorId target : result.ping) {
    send(target, make_signal(Tag::kPing));
  }
  defer_after(make_signal(Tag::kHeartbeatTick),
              config_->ft.heartbeat_interval_sec);
}

void SchedulerActor::declare_dead(ActorId dead, double silence_sec) {
  if (recovery_->dead_actors().count(dead) != 0) return;
  detector_.untrack(dead);
  ++metrics_.failures_detected;
  metrics_.detection_latency_total += silence_sec;
  trace_event(TraceKind::kFailureDetected, dead,
              static_cast<std::int64_t>(silence_sec * 1e6));
  EHJA_WARN(name(), "join actor ", dead, " silent for ", silence_sec,
            "s: declared dead");
  joins_.erase(std::remove(joins_.begin(), joins_.end(), dead), joins_.end());
  policy_->on_actor_dead(dead);
  // Whether the run was on the probe side decides the recovery flavour
  // (and must be pinned before the phase flips to kRecovery).
  const bool probe_side =
      phase_ == Phase::kProbe || phase_ == Phase::kProbeDrain ||
      (phase_ == Phase::kRecovery && recovery_->probe_recovery());
  // Membership changed under whatever drain or reshuffle was in flight.
  drain_.abort();
  if (phase_ == Phase::kReshuffle || phase_ == Phase::kReshuffleDrain) {
    reshuffle_sets_.clear();
    reshuffle_pending_replies_ = 0;
    reshuffle_pending_done_ = 0;
    ++reshuffle_round_;  // stragglers of the aborted attempt become stale
  }
  phase_ = Phase::kRecovery;
  recovery_->on_death(dead, probe_side);
}

void SchedulerActor::handle_replay_done(ActorId from,
                                        const ReplayDonePayload& done) {
  source_chunks_to_[from] = done.chunks_to;
  recovery_->on_replay_done(from, done);
}

void SchedulerActor::start_settle_drain() {
  drain_.arm();
  start_drain_round();
}

void SchedulerActor::recovery_complete(bool probe_recovery) {
  EHJA_CHECK(phase_ == Phase::kRecovery);
  if (probe_recovery) {
    phase_ = Phase::kProbe;
    trace_event(TraceKind::kPhase, 0, 0, "probe_resume");
    if (sources_done_probe_ == config_->data_sources) {
      phase_ = Phase::kProbeDrain;
      drain_.arm();
      start_drain_round();
    }
  } else {
    phase_ = Phase::kBuild;
    trace_event(TraceKind::kPhase, 0, 0, "build_resume");
    policy_->kick();  // restart expansions queued during the recovery
    maybe_start_build_drain();
  }
}

std::uint64_t SchedulerActor::expected_live_chunks() const {
  std::uint64_t expected = 0;
  for (const auto& [source, dests] : source_chunks_to_) {
    for (const auto& [dest, chunks] : dests) {
      if (recovery_->dead_actors().count(dest) == 0) expected += chunks;
    }
  }
  return expected;
}

// ------------------------------------------------------------ phase change

void SchedulerActor::handle_source_done(ActorId from,
                                        const SourceDonePayload& done) {
  if (config_->recovery_enabled()) source_chunks_to_[from] = done.chunks_to;
  if (done.rel == config_->build_rel.tag) {
    ++sources_done_build_;
    source_chunks_build_ += done.chunks_sent;
    source_tuples_build_ += done.tuples_sent;
    source_progress_[from] = done.tuples_sent;
    maybe_start_build_drain();
  } else {
    ++sources_done_probe_;
    source_chunks_probe_ += done.chunks_sent;
    source_tuples_probe_ += done.tuples_sent;
    if (sources_done_probe_ == config_->data_sources) {
      if (phase_ == Phase::kProbe) {
        phase_ = Phase::kProbeDrain;
        drain_.arm();
        start_drain_round();
      } else {
        // A source resumed by a replay can finish mid-recovery; the probe
        // drain then starts from recovery_complete() instead.
        EHJA_CHECK_MSG(phase_ == Phase::kRecovery,
                       "probe sources done in unexpected phase");
      }
    }
  }
}

void SchedulerActor::handle_source_progress(
    ActorId from, const SourceProgressPayload& progress) {
  if (progress.rel != config_->build_rel.tag) return;
  source_progress_[from] = progress.tuples_sent;
}

std::uint64_t SchedulerActor::expected_source_chunks() const {
  std::uint64_t expected = source_chunks_build_;
  if (phase_ == Phase::kProbeDrain) expected += source_chunks_probe_;
  return expected;
}

void SchedulerActor::maybe_start_build_drain() {
  if (phase_ != Phase::kBuild) return;
  if (sources_done_build_ != config_->data_sources) return;
  if (!policy_->idle()) return;
  phase_ = Phase::kBuildDrain;
  drain_.arm();
  start_drain_round();
}

void SchedulerActor::start_drain_round() {
  const DrainProbePayload probe = drain_.begin_round();
  trace_event(TraceKind::kDrainRound, static_cast<std::int64_t>(probe.epoch),
              static_cast<std::int64_t>(drain_.prev_received()));
  for (ActorId join : joins_) {
    send(join, make_message(Tag::kDrainProbe, probe, kControlWireBytes));
  }
}

void SchedulerActor::handle_drain_ack(ActorId from,
                                      const DrainAckPayload& ack) {
  if (phase_ != Phase::kBuildDrain && phase_ != Phase::kReshuffleDrain &&
      phase_ != Phase::kProbeDrain && phase_ != Phase::kRecovery) {
    return;  // round aborted by an expansion
  }
  DrainProtocol::Outcome outcome;
  if (config_->recovery_enabled()) {
    // Reduce the per-pair counters over live nodes only: chunks addressed
    // to (or forwarded by) a dead node can never balance.
    const auto& dead = recovery_->dead_actors();
    DrainAckPayload live;
    live.epoch = ack.epoch;
    for (const auto& [sender, chunks] : ack.received_from) {
      if (dead.count(sender) == 0) live.data_chunks_received += chunks;
    }
    for (const auto& [dest, chunks] : ack.forwarded_to) {
      if (dead.count(dest) == 0) live.data_chunks_forwarded += chunks;
    }
    outcome = drain_.on_ack(from, live, joins_.size(), expected_live_chunks());
  } else {
    outcome =
        drain_.on_ack(from, ack, joins_.size(), expected_source_chunks());
  }
  switch (outcome) {
    case DrainProtocol::Outcome::kStale:
    case DrainProtocol::Outcome::kPending:
      break;
    case DrainProtocol::Outcome::kRepoll:
      start_drain_round();
      break;
    case DrainProtocol::Outcome::kDrained:
      on_drained();
      break;
  }
}

void SchedulerActor::on_drained() {
  drain_.arm();
  switch (phase_) {
    case Phase::kBuildDrain:
      build_complete();
      break;
    case Phase::kReshuffleDrain:
      metrics_.t_reshuffle_end = Actor::now();
      start_probe();
      break;
    case Phase::kProbeDrain:
      metrics_.t_probe_end = Actor::now();
      phase_ = Phase::kReporting;
      reports_pending_ = static_cast<std::uint32_t>(joins_.size());
      for (ActorId join : joins_) {
        send(join, make_signal(Tag::kReportRequest));
      }
      break;
    case Phase::kRecovery:
      recovery_->on_settle_drained();
      break;
    default:
      EHJA_CHECK_MSG(false, "drained in unexpected phase");
  }
}

void SchedulerActor::build_complete() {
  metrics_.t_build_end = Actor::now();
  trace_event(TraceKind::kPhase, 0, 0, "build_complete");
  EHJA_INFO(name(), "build complete at t=", Actor::now(), "s with ",
            joins_.size(), " join nodes");
  if (policy_->wants_reshuffle()) {
    start_reshuffle();
  } else {
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

// -------------------------------------------------------- hybrid reshuffle

void SchedulerActor::start_reshuffle() {
  phase_ = Phase::kReshuffle;
  trace_event(TraceKind::kPhase, 0, 0, "reshuffle");
  reshuffle_sets_.clear();
  reshuffle_pending_replies_ = 0;
  const std::vector<ActorId>& spilled = policy_->spilled();
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto& entry = map_.entries()[i];
    if (entry.owners.size() < 2) continue;
    // A member that degraded to local spilling holds its partitions on
    // disk; its set cannot be reshuffled and keeps replication semantics
    // (probe broadcast) instead.
    const bool any_spilled = std::any_of(
        entry.owners.begin(), entry.owners.end(), [&spilled](ActorId owner) {
          return std::find(spilled.begin(), spilled.end(), owner) !=
                 spilled.end();
        });
    if (any_spilled) continue;
    ReshuffleSet set;
    set.members = entry.owners;
    reshuffle_sets_.emplace(i, std::move(set));
    HistogramRequestPayload req;
    req.set_id = i;
    req.bins = config_->reshuffle_bins;
    req.round = reshuffle_round_;
    for (ActorId member : entry.owners) {
      send(member, make_message(Tag::kHistogramRequest, req,
                                kControlWireBytes));
      ++reshuffle_pending_replies_;
    }
  }
  EHJA_INFO(name(), "reshuffle: ", reshuffle_sets_.size(),
            " replica set(s)");
  if (reshuffle_pending_replies_ == 0) {
    // Every replicated set contained a spilled member: nothing to do.
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

void SchedulerActor::handle_histogram_reply(
    const HistogramReplyPayload& reply) {
  if (reply.round != reshuffle_round_) return;  // aborted attempt
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  auto it = reshuffle_sets_.find(reply.set_id);
  EHJA_CHECK(it != reshuffle_sets_.end());
  ReshuffleSet& set = it->second;
  if (!set.merged.has_value()) {
    set.merged = reply.histogram;
  } else {
    set.merged->merge(reply.histogram);
  }
  ++set.replies;
  EHJA_CHECK(set.replies <= set.members.size());
  EHJA_CHECK(reshuffle_pending_replies_ > 0);
  if (--reshuffle_pending_replies_ == 0) {
    dispatch_reshuffle_moves();
  }
}

void SchedulerActor::dispatch_reshuffle_moves() {
  // Rebuild the map wholesale: untouched entries stay, every replica set's
  // entry is replaced by its plan.
  std::vector<PartitionMap::Entry> entries;
  reshuffle_pending_done_ = 0;
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto it = reshuffle_sets_.find(i);
    if (it == reshuffle_sets_.end()) {
      entries.push_back(map_.entries()[i]);
      continue;
    }
    ReshuffleSet& set = it->second;
    EHJA_CHECK(set.replies == set.members.size());
    std::vector<PartitionMap::Entry> plan =
        plan_reshuffle(*set.merged, set.members);
    ReshuffleMovePayload move;
    move.plan = plan;
    move.round = reshuffle_round_;
    const std::size_t wire = 32 + 24 * plan.size();
    for (ActorId member : set.members) {
      send(member, make_message(Tag::kReshuffleMove, move, wire));
      ++reshuffle_pending_done_;
    }
    for (auto& entry : plan) entries.push_back(std::move(entry));
  }
  map_ = PartitionMap::from_entries(std::move(entries));
  ++map_version_;
  absorb_coverage();
}

void SchedulerActor::handle_reshuffle_done(const ReshuffleDonePayload& done) {
  if (done.round != reshuffle_round_) return;  // aborted attempt
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  EHJA_CHECK(reshuffle_pending_done_ > 0);
  if (--reshuffle_pending_done_ > 0) return;
  phase_ = Phase::kReshuffleDrain;
  drain_.arm();
  start_drain_round();
}

// ------------------------------------------------------------------- probe

void SchedulerActor::start_probe() {
  phase_ = Phase::kProbe;
  trace_event(TraceKind::kPhase, 0, 0, "probe");
  for (ActorId source : sources_) {
    StartProbePayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartProbe, std::move(start), wire));
  }
  EHJA_INFO(name(), "probe phase started at t=", Actor::now(), "s (",
            map_.owner_slots(), " owner slots over ", map_.size(),
            " ranges)");
}

// -------------------------------------------------------------- completion

void SchedulerActor::handle_node_report(const NodeReportPayload& report) {
  EHJA_CHECK(phase_ == Phase::kReporting);
  metrics_.nodes.push_back(report.metrics);
  metrics_.join.matches += report.metrics.matches;
  metrics_.join.checksum += report.checksum;
  metrics_.build_tuples_total += report.metrics.build_tuples;
  metrics_.probe_tuples_total += report.metrics.probe_tuples;
  metrics_.extra_build_chunks += report.metrics.chunks_forwarded;
  EHJA_CHECK(reports_pending_ > 0);
  if (--reports_pending_ > 0) return;

  metrics_.t_complete = Actor::now();
  metrics_.final_join_nodes = static_cast<std::uint32_t>(joins_.size());
  metrics_.source_build_chunks = source_chunks_build_;
  metrics_.source_probe_chunks = source_chunks_probe_;
  // Conservation: every generated build tuple is stored exactly once.
  EHJA_CHECK_MSG(metrics_.build_tuples_total == source_tuples_build_,
                 "build tuples lost or duplicated");
  // Probe tuples may be duplicated (replication broadcast), never lost.
  // source_tuples_probe_ counts *deliveries* (one per fanned-out copy), so
  // after a probe-phase recovery the bound no longer holds: a collapsed
  // entry's dead and retired replicas received deliveries the source counted
  // that are deliberately not re-sent to the single surviving owner.
  EHJA_CHECK(metrics_.failures_detected > 0 ||
             metrics_.probe_tuples_total >= source_tuples_probe_);
  phase_ = Phase::kDone;
  trace_event(TraceKind::kPhase, 0, 0, "done");
  EHJA_INFO(name(), "done: ", metrics_.summary());
  rt().request_stop();
}

}  // namespace ehja
