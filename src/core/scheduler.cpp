#include "core/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "core/reshuffle.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

SchedulerActor::SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                               std::function<ActorId(NodeId)> spawn_join)
    : config_(std::move(config)), spawn_join_(std::move(spawn_join)) {}

void SchedulerActor::wire(std::vector<ActorId> sources,
                          std::vector<ActorId> initial_joins,
                          ResourcePool pool) {
  sources_ = std::move(sources);
  joins_ = std::move(initial_joins);
  policy_ = ExpansionPolicy::make(config_, *this, std::move(pool));
  EHJA_CHECK(sources_.size() == config_->data_sources);
  EHJA_CHECK(joins_.size() == config_->initial_join_nodes);
}

void SchedulerActor::on_start() {
  EHJA_CHECK_MSG(policy_ != nullptr, "scheduler not wired before run");
  metrics_.t_start = Actor::now();
  trace_event(TraceKind::kPhase, 0, 0, "build");
  metrics_.initial_join_nodes = config_->initial_join_nodes;

  if (config_->balanced_initial_partition) {
    // Sample the build distribution and cut the initial ranges to equal
    // *weight* instead of equal width (config.hpp).  Sampling is real work
    // on the front-end node.
    BinnedHistogram sampled(0, kPositionCount, config_->reshuffle_bins);
    SplitMix64 rng(config_->seed, /*stream=*/0xba1a);
    for (std::uint64_t i = 0; i < config_->partition_sample; ++i) {
      sampled.add(position_of(sample_key(config_->build_rel.dist, rng)));
    }
    charge(static_cast<double>(config_->partition_sample) *
           config_->cost.tuple_generate_sec);
    map_ = PartitionMap::from_entries(plan_reshuffle(sampled, joins_));
  } else {
    map_ = PartitionMap::initial(joins_);
  }

  // Hand every initial join node its bucket...
  for (std::size_t j = 0; j < joins_.size(); ++j) {
    JoinInitPayload init;
    init.role = JoinRole::kInitial;
    init.range = map_.entries()[j].range;
    init.source_count = config_->data_sources;
    send(joins_[j], make_message(Tag::kJoinInit, init, kControlWireBytes));
  }
  // ...and start the build phase at the sources.
  for (ActorId source : sources_) {
    StartBuildPayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartBuild, std::move(start), wire));
  }
  EHJA_INFO(name(), "start: ", config_->to_string());
}

void SchedulerActor::on_message(const Message& msg) {
  charge(config_->cost.control_handle_sec);
  switch (static_cast<Tag>(msg.tag)) {
    case Tag::kMemoryFull:
      handle_memory_full(msg.from, msg.as<MemoryFullPayload>());
      break;
    case Tag::kOpComplete:
      handle_op_complete(msg.as<OpCompletePayload>());
      break;
    case Tag::kSourceDone:
      handle_source_done(msg.from, msg.as<SourceDonePayload>());
      break;
    case Tag::kSourceProgress:
      handle_source_progress(msg.from, msg.as<SourceProgressPayload>());
      break;
    case Tag::kDrainAck:
      handle_drain_ack(msg.from, msg.as<DrainAckPayload>());
      break;
    case Tag::kHistogramReply:
      handle_histogram_reply(msg.as<HistogramReplyPayload>());
      break;
    case Tag::kReshuffleDone:
      handle_reshuffle_done();
      break;
    case Tag::kNodeReport:
      handle_node_report(msg.as<NodeReportPayload>());
      break;
    default:
      EHJA_CHECK_MSG(false, "scheduler received unexpected tag");
  }
}

// ------------------------------------------------- expansion (policy side)

void SchedulerActor::handle_memory_full(ActorId from,
                                        const MemoryFullPayload& payload) {
  EHJA_CHECK_MSG(phase_ == Phase::kBuild || phase_ == Phase::kBuildDrain,
                 "memory full outside the build phase");
  EHJA_DEBUG(name(), "memory full from join ", from, " (",
             payload.footprint_bytes, " > ", payload.budget_bytes, ")");
  policy_->on_memory_full(from, payload);
  // The request may have been resolved without starting an op (pool
  // exhausted -> spill switch, or a stale requester dropped).  If sources
  // finished in the meantime, the build drain must be (re)started here --
  // nothing else will.
  maybe_start_build_drain();
}

void SchedulerActor::handle_op_complete(const OpCompletePayload& done) {
  policy_->on_op_complete(done);
  maybe_start_build_drain();
}

// --- ExpansionEnv -------------------------------------------------------

ActorId SchedulerActor::spawn_join(NodeId node) {
  const ActorId fresh = spawn_join_(node);
  joins_.push_back(fresh);
  return fresh;
}

void SchedulerActor::send_to(ActorId to, Message msg) {
  send(to, std::move(msg));
}

bool SchedulerActor::expansion_starting() {
  if (phase_ != Phase::kBuild && phase_ != Phase::kBuildDrain) return false;
  // An expansion invalidates an in-progress drain; it will be restarted
  // when the op completes.
  if (phase_ == Phase::kBuildDrain) {
    phase_ = Phase::kBuild;
    drain_.abort();
  }
  return true;
}

std::uint64_t SchedulerActor::observed_build_tuples() const {
  std::uint64_t total = 0;
  for (const auto& [source, tuples] : source_progress_) total += tuples;
  return total;
}

void SchedulerActor::broadcast_map() {
  MapUpdatePayload update;
  update.version = ++map_version_;
  update.map = map_;
  const std::size_t wire = map_.wire_bytes();
  for (ActorId source : sources_) {
    send(source, make_message(Tag::kMapUpdate, update, wire));
  }
}

// ------------------------------------------------------------ phase change

void SchedulerActor::handle_source_done(ActorId from,
                                        const SourceDonePayload& done) {
  if (done.rel == config_->build_rel.tag) {
    ++sources_done_build_;
    source_chunks_build_ += done.chunks_sent;
    source_tuples_build_ += done.tuples_sent;
    source_progress_[from] = done.tuples_sent;
    maybe_start_build_drain();
  } else {
    ++sources_done_probe_;
    source_chunks_probe_ += done.chunks_sent;
    source_tuples_probe_ += done.tuples_sent;
    if (sources_done_probe_ == config_->data_sources) {
      EHJA_CHECK(phase_ == Phase::kProbe);
      phase_ = Phase::kProbeDrain;
      drain_.arm();
      start_drain_round();
    }
  }
}

void SchedulerActor::handle_source_progress(
    ActorId from, const SourceProgressPayload& progress) {
  if (progress.rel != config_->build_rel.tag) return;
  source_progress_[from] = progress.tuples_sent;
}

std::uint64_t SchedulerActor::expected_source_chunks() const {
  std::uint64_t expected = source_chunks_build_;
  if (phase_ == Phase::kProbeDrain) expected += source_chunks_probe_;
  return expected;
}

void SchedulerActor::maybe_start_build_drain() {
  if (phase_ != Phase::kBuild) return;
  if (sources_done_build_ != config_->data_sources) return;
  if (!policy_->idle()) return;
  phase_ = Phase::kBuildDrain;
  drain_.arm();
  start_drain_round();
}

void SchedulerActor::start_drain_round() {
  const DrainProbePayload probe = drain_.begin_round();
  trace_event(TraceKind::kDrainRound, static_cast<std::int64_t>(probe.epoch),
              static_cast<std::int64_t>(drain_.prev_received()));
  for (ActorId join : joins_) {
    send(join, make_message(Tag::kDrainProbe, probe, kControlWireBytes));
  }
}

void SchedulerActor::handle_drain_ack(ActorId /*from*/,
                                      const DrainAckPayload& ack) {
  if (phase_ != Phase::kBuildDrain && phase_ != Phase::kReshuffleDrain &&
      phase_ != Phase::kProbeDrain) {
    return;  // round aborted by an expansion
  }
  switch (drain_.on_ack(ack, joins_.size(), expected_source_chunks())) {
    case DrainProtocol::Outcome::kStale:
    case DrainProtocol::Outcome::kPending:
      break;
    case DrainProtocol::Outcome::kRepoll:
      start_drain_round();
      break;
    case DrainProtocol::Outcome::kDrained:
      on_drained();
      break;
  }
}

void SchedulerActor::on_drained() {
  drain_.arm();
  switch (phase_) {
    case Phase::kBuildDrain:
      build_complete();
      break;
    case Phase::kReshuffleDrain:
      metrics_.t_reshuffle_end = Actor::now();
      start_probe();
      break;
    case Phase::kProbeDrain:
      metrics_.t_probe_end = Actor::now();
      phase_ = Phase::kReporting;
      reports_pending_ = static_cast<std::uint32_t>(joins_.size());
      for (ActorId join : joins_) {
        send(join, make_signal(Tag::kReportRequest));
      }
      break;
    default:
      EHJA_CHECK_MSG(false, "drained in unexpected phase");
  }
}

void SchedulerActor::build_complete() {
  metrics_.t_build_end = Actor::now();
  trace_event(TraceKind::kPhase, 0, 0, "build_complete");
  EHJA_INFO(name(), "build complete at t=", Actor::now(), "s with ",
            joins_.size(), " join nodes");
  if (policy_->wants_reshuffle()) {
    start_reshuffle();
  } else {
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

// -------------------------------------------------------- hybrid reshuffle

void SchedulerActor::start_reshuffle() {
  phase_ = Phase::kReshuffle;
  trace_event(TraceKind::kPhase, 0, 0, "reshuffle");
  reshuffle_sets_.clear();
  reshuffle_pending_replies_ = 0;
  const std::vector<ActorId>& spilled = policy_->spilled();
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto& entry = map_.entries()[i];
    if (entry.owners.size() < 2) continue;
    // A member that degraded to local spilling holds its partitions on
    // disk; its set cannot be reshuffled and keeps replication semantics
    // (probe broadcast) instead.
    const bool any_spilled = std::any_of(
        entry.owners.begin(), entry.owners.end(), [&spilled](ActorId owner) {
          return std::find(spilled.begin(), spilled.end(), owner) !=
                 spilled.end();
        });
    if (any_spilled) continue;
    ReshuffleSet set;
    set.members = entry.owners;
    reshuffle_sets_.emplace(i, std::move(set));
    HistogramRequestPayload req;
    req.set_id = i;
    req.bins = config_->reshuffle_bins;
    for (ActorId member : entry.owners) {
      send(member, make_message(Tag::kHistogramRequest, req,
                                kControlWireBytes));
      ++reshuffle_pending_replies_;
    }
  }
  EHJA_INFO(name(), "reshuffle: ", reshuffle_sets_.size(),
            " replica set(s)");
  if (reshuffle_pending_replies_ == 0) {
    // Every replicated set contained a spilled member: nothing to do.
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

void SchedulerActor::handle_histogram_reply(
    const HistogramReplyPayload& reply) {
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  auto it = reshuffle_sets_.find(reply.set_id);
  EHJA_CHECK(it != reshuffle_sets_.end());
  ReshuffleSet& set = it->second;
  if (!set.merged.has_value()) {
    set.merged = reply.histogram;
  } else {
    set.merged->merge(reply.histogram);
  }
  ++set.replies;
  EHJA_CHECK(set.replies <= set.members.size());
  EHJA_CHECK(reshuffle_pending_replies_ > 0);
  if (--reshuffle_pending_replies_ == 0) {
    dispatch_reshuffle_moves();
  }
}

void SchedulerActor::dispatch_reshuffle_moves() {
  // Rebuild the map wholesale: untouched entries stay, every replica set's
  // entry is replaced by its plan.
  std::vector<PartitionMap::Entry> entries;
  reshuffle_pending_done_ = 0;
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto it = reshuffle_sets_.find(i);
    if (it == reshuffle_sets_.end()) {
      entries.push_back(map_.entries()[i]);
      continue;
    }
    ReshuffleSet& set = it->second;
    EHJA_CHECK(set.replies == set.members.size());
    std::vector<PartitionMap::Entry> plan =
        plan_reshuffle(*set.merged, set.members);
    ReshuffleMovePayload move;
    move.plan = plan;
    const std::size_t wire = 32 + 24 * plan.size();
    for (ActorId member : set.members) {
      send(member, make_message(Tag::kReshuffleMove, move, wire));
      ++reshuffle_pending_done_;
    }
    for (auto& entry : plan) entries.push_back(std::move(entry));
  }
  map_ = PartitionMap::from_entries(std::move(entries));
  ++map_version_;
}

void SchedulerActor::handle_reshuffle_done() {
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  EHJA_CHECK(reshuffle_pending_done_ > 0);
  if (--reshuffle_pending_done_ > 0) return;
  phase_ = Phase::kReshuffleDrain;
  drain_.arm();
  start_drain_round();
}

// ------------------------------------------------------------------- probe

void SchedulerActor::start_probe() {
  phase_ = Phase::kProbe;
  trace_event(TraceKind::kPhase, 0, 0, "probe");
  for (ActorId source : sources_) {
    StartProbePayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartProbe, std::move(start), wire));
  }
  EHJA_INFO(name(), "probe phase started at t=", Actor::now(), "s (",
            map_.owner_slots(), " owner slots over ", map_.size(),
            " ranges)");
}

// -------------------------------------------------------------- completion

void SchedulerActor::handle_node_report(const NodeReportPayload& report) {
  EHJA_CHECK(phase_ == Phase::kReporting);
  metrics_.nodes.push_back(report.metrics);
  metrics_.join.matches += report.metrics.matches;
  metrics_.join.checksum += report.checksum;
  metrics_.build_tuples_total += report.metrics.build_tuples;
  metrics_.probe_tuples_total += report.metrics.probe_tuples;
  metrics_.extra_build_chunks += report.metrics.chunks_forwarded;
  EHJA_CHECK(reports_pending_ > 0);
  if (--reports_pending_ > 0) return;

  metrics_.t_complete = Actor::now();
  metrics_.final_join_nodes = static_cast<std::uint32_t>(joins_.size());
  metrics_.source_build_chunks = source_chunks_build_;
  metrics_.source_probe_chunks = source_chunks_probe_;
  // Conservation: every generated build tuple is stored exactly once.
  EHJA_CHECK_MSG(metrics_.build_tuples_total == source_tuples_build_,
                 "build tuples lost or duplicated");
  // Probe tuples may be duplicated (replication broadcast), never lost.
  EHJA_CHECK(metrics_.probe_tuples_total >= source_tuples_probe_);
  phase_ = Phase::kDone;
  trace_event(TraceKind::kPhase, 0, 0, "done");
  EHJA_INFO(name(), "done: ", metrics_.summary());
  rt().request_stop();
}

}  // namespace ehja
