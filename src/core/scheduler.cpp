#include "core/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "core/reshuffle.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

SchedulerActor::SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                               std::function<ActorId(NodeId)> spawn_join)
    : config_(std::move(config)), spawn_join_(std::move(spawn_join)) {}

void SchedulerActor::wire(std::vector<ActorId> sources,
                          std::vector<ActorId> initial_joins,
                          ResourcePool pool) {
  sources_ = std::move(sources);
  joins_ = std::move(initial_joins);
  pool_.emplace(std::move(pool));
  EHJA_CHECK(sources_.size() == config_->data_sources);
  EHJA_CHECK(joins_.size() == config_->initial_join_nodes);
}

void SchedulerActor::on_start() {
  EHJA_CHECK_MSG(pool_.has_value(), "scheduler not wired before run");
  metrics_.t_start = now();
  trace(TraceKind::kPhase, 0, 0, "build");
  metrics_.initial_join_nodes = config_->initial_join_nodes;

  if (config_->balanced_initial_partition) {
    // Sample the build distribution and cut the initial ranges to equal
    // *weight* instead of equal width (config.hpp).  Sampling is real work
    // on the front-end node.
    BinnedHistogram sampled(0, kPositionCount, config_->reshuffle_bins);
    SplitMix64 rng(config_->seed, /*stream=*/0xba1a);
    for (std::uint64_t i = 0; i < config_->partition_sample; ++i) {
      sampled.add(position_of(sample_key(config_->build_rel.dist, rng)));
    }
    charge(static_cast<double>(config_->partition_sample) *
           config_->cost.tuple_generate_sec);
    map_ = PartitionMap::from_entries(plan_reshuffle(sampled, joins_));
  } else {
    map_ = PartitionMap::initial(joins_);
  }
  if (config_->algorithm == Algorithm::kSplit) {
    // The Litwin pointer variant assumes equal-width level-0 buckets.
    EHJA_CHECK_MSG(config_->split_variant == SplitVariant::kRequesterMidpoint ||
                       !config_->balanced_initial_partition,
                   "linear-pointer split needs equal initial ranges");
    linear_.emplace(config_->initial_join_nodes);
  }

  // Hand every initial join node its bucket...
  for (std::size_t j = 0; j < joins_.size(); ++j) {
    JoinInitPayload init;
    init.role = JoinRole::kInitial;
    init.range = map_.entries()[j].range;
    init.source_count = config_->data_sources;
    send(joins_[j], make_message(Tag::kJoinInit, init, kControlWireBytes));
  }
  // ...and start the build phase at the sources.
  for (ActorId source : sources_) {
    StartBuildPayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartBuild, std::move(start), wire));
  }
  EHJA_INFO(name(), "start: ", config_->to_string());
}

void SchedulerActor::on_message(const Message& msg) {
  charge(config_->cost.control_handle_sec);
  switch (static_cast<Tag>(msg.tag)) {
    case Tag::kMemoryFull:
      handle_memory_full(msg.from, msg.as<MemoryFullPayload>());
      break;
    case Tag::kOpComplete:
      handle_op_complete(msg.as<OpCompletePayload>());
      break;
    case Tag::kSourceDone:
      handle_source_done(msg.as<SourceDonePayload>());
      break;
    case Tag::kDrainAck:
      handle_drain_ack(msg.from, msg.as<DrainAckPayload>());
      break;
    case Tag::kHistogramReply:
      handle_histogram_reply(msg.as<HistogramReplyPayload>());
      break;
    case Tag::kReshuffleDone:
      handle_reshuffle_done();
      break;
    case Tag::kNodeReport:
      handle_node_report(msg.as<NodeReportPayload>());
      break;
    default:
      EHJA_CHECK_MSG(false, "scheduler received unexpected tag");
  }
}

// ---------------------------------------------------------------- expansion

void SchedulerActor::handle_memory_full(ActorId from,
                                        const MemoryFullPayload& payload) {
  EHJA_CHECK_MSG(config_->algorithm != Algorithm::kOutOfCore,
                 "out-of-core nodes must spill, not expand");
  trace(TraceKind::kMemoryFull, from,
        static_cast<std::int64_t>(payload.footprint_bytes));
  EHJA_CHECK_MSG(phase_ == Phase::kBuild || phase_ == Phase::kBuildDrain,
                 "memory full outside the build phase");
  EHJA_DEBUG(name(), "memory full from join ", from, " (",
             payload.footprint_bytes, " > ", payload.budget_bytes, ")");
  if (pool_exhausted_) {
    send_switch_to_spill(from);
    return;
  }
  if (std::find(full_queue_.begin(), full_queue_.end(), from) ==
      full_queue_.end()) {
    full_queue_.push_back(from);
  }
  try_start_expansion();
  // The request may have been resolved without starting an op (pool
  // exhausted -> spill switch, or a stale requester dropped).  If sources
  // finished in the meantime, the build drain must be (re)started here --
  // nothing else will.
  maybe_start_build_drain();
}

void SchedulerActor::try_start_expansion() {
  if (op_.has_value() || full_queue_.empty()) return;
  if (phase_ != Phase::kBuild && phase_ != Phase::kBuildDrain) return;
  // An expansion invalidates an in-progress drain; it will be restarted
  // when the op completes.
  if (phase_ == Phase::kBuildDrain) {
    phase_ = Phase::kBuild;
    drain_prev_.reset();
  }
  const ActorId requester = full_queue_.front();
  full_queue_.pop_front();
  if (config_->algorithm == Algorithm::kSplit) {
    start_split(requester);
  } else {
    start_replication(requester);
  }
}

void SchedulerActor::send_switch_to_spill(ActorId requester) {
  metrics_.pool_exhausted = true;
  trace(TraceKind::kSpillSwitch, requester);
  spilled_.push_back(requester);
  send(requester, make_signal(Tag::kSwitchToSpill));
}

void SchedulerActor::start_split(ActorId requester) {
  if (config_->split_variant == SplitVariant::kRequesterMidpoint) {
    start_requester_split(requester);
    return;
  }
  if (!linear_->split_possible()) {
    // Position resolution exhausted at the split pointer; nothing sane to
    // split, degrade the requester to local spilling.
    pool_exhausted_ = true;
    send_switch_to_spill(requester);
    try_start_expansion();
    return;
  }
  const auto picked = pool_->acquire();
  if (!picked.has_value()) {
    pool_exhausted_ = true;
    send_switch_to_spill(requester);
    // Everyone still queued gets the same answer.
    while (!full_queue_.empty()) {
      send_switch_to_spill(full_queue_.front());
      full_queue_.pop_front();
    }
    return;
  }
  const ActorId fresh = spawn_join_(*picked);
  joins_.push_back(fresh);
  ++metrics_.expansions;
  trace(TraceKind::kExpansion, requester, fresh);

  const LinearHashMap::Split split = linear_->split_next();
  // Owner of the bucket at the split pointer -- not necessarily the
  // requester (classic linear hashing).
  const std::size_t entry_index = map_.index_for(split.kept.lo);
  EHJA_CHECK(map_.entries()[entry_index].range.lo == split.kept.lo);
  EHJA_CHECK(map_.entries()[entry_index].range.hi == split.moved.hi);
  const ActorId owner = map_.entries()[entry_index].active_owner();
  map_.split_entry(entry_index, split.moved.lo, fresh);

  const std::uint64_t op_id = next_op_id_++;
  op_ = OpInfo{now(), /*is_split=*/true, requester};

  JoinInitPayload init;
  init.role = JoinRole::kSplitChild;
  init.range = split.moved;
  init.source_count = config_->data_sources;
  init.op_id = op_id;
  send(fresh, make_message(Tag::kJoinInit, init, kControlWireBytes));

  SplitRequestPayload req;
  req.op_id = op_id;
  req.moved = split.moved;
  req.target = fresh;
  send(owner, make_message(Tag::kSplitRequest, req, kControlWireBytes));

  broadcast_map();
  EHJA_DEBUG(name(), "split op ", op_id, ": bucket of join ", owner,
             " -> join ", fresh, " at [", split.moved.lo, ",", split.moved.hi,
             ")");
}

void SchedulerActor::start_requester_split(ActorId requester) {
  // ss1 semantics: "partitions the hash table range assigned to the node,
  // on which memory is full, into two segments and assigns one of the
  // segments to a new node".
  std::size_t entry_index = map_.size();
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (map_.entries()[i].active_owner() == requester) {
      entry_index = i;
      break;
    }
  }
  if (entry_index == map_.size()) {
    // The requester lost active ownership while queued (cannot happen with
    // FIFO channels, but degrade gracefully rather than wedge the build).
    EHJA_WARN(name(), "dropping stale memory-full from join ", requester);
    try_start_expansion();
    return;
  }
  const PosRange range = map_.entries()[entry_index].range;
  if (range.width() < 2) {
    // Position resolution exhausted: this range cannot be subdivided.
    pool_exhausted_ = true;
    send_switch_to_spill(requester);
    try_start_expansion();
    return;
  }
  const auto picked = pool_->acquire();
  if (!picked.has_value()) {
    pool_exhausted_ = true;
    send_switch_to_spill(requester);
    while (!full_queue_.empty()) {
      send_switch_to_spill(full_queue_.front());
      full_queue_.pop_front();
    }
    return;
  }
  const ActorId fresh = spawn_join_(*picked);
  joins_.push_back(fresh);
  ++metrics_.expansions;
  trace(TraceKind::kExpansion, requester, fresh);

  const std::uint64_t mid = range.lo + range.width() / 2;
  map_.split_entry(entry_index, mid, fresh);

  const std::uint64_t op_id = next_op_id_++;
  op_ = OpInfo{now(), /*is_split=*/true, requester};

  JoinInitPayload init;
  init.role = JoinRole::kSplitChild;
  init.range = PosRange{mid, range.hi};
  init.source_count = config_->data_sources;
  init.op_id = op_id;
  send(fresh, make_message(Tag::kJoinInit, init, kControlWireBytes));

  SplitRequestPayload req;
  req.op_id = op_id;
  req.moved = PosRange{mid, range.hi};
  req.target = fresh;
  send(requester, make_message(Tag::kSplitRequest, req, kControlWireBytes));

  broadcast_map();
  EHJA_DEBUG(name(), "split op ", op_id, ": join ", requester,
             " halves its range at ", mid, " -> join ", fresh);
}

void SchedulerActor::start_replication(ActorId requester) {
  // The requester must be the active owner of exactly one range.
  std::size_t entry_index = map_.size();
  for (std::size_t i = 0; i < map_.size(); ++i) {
    if (map_.entries()[i].active_owner() == requester) {
      entry_index = i;
      break;
    }
  }
  if (entry_index == map_.size()) {
    // Stale request from a node that has since been frozen/replaced
    // (unreachable with FIFO channels; degrade gracefully regardless).
    EHJA_WARN(name(), "dropping stale memory-full from join ", requester);
    try_start_expansion();
    return;
  }

  const auto picked = pool_->acquire();
  if (!picked.has_value()) {
    pool_exhausted_ = true;
    send_switch_to_spill(requester);
    while (!full_queue_.empty()) {
      send_switch_to_spill(full_queue_.front());
      full_queue_.pop_front();
    }
    return;
  }
  const ActorId fresh = spawn_join_(*picked);
  joins_.push_back(fresh);
  ++metrics_.expansions;
  trace(TraceKind::kExpansion, requester, fresh);
  const PosRange range = map_.entries()[entry_index].range;
  map_.add_replica(entry_index, fresh);

  const std::uint64_t op_id = next_op_id_++;
  op_ = OpInfo{now(), /*is_split=*/false, requester};

  JoinInitPayload init;
  init.role = JoinRole::kReplica;
  init.range = range;
  init.source_count = config_->data_sources;
  init.op_id = op_id;
  send(fresh, make_message(Tag::kJoinInit, init, kControlWireBytes));

  HandoffStartPayload handoff;
  handoff.op_id = op_id;
  handoff.target = fresh;
  send(requester, make_message(Tag::kHandoffStart, handoff, kControlWireBytes));

  broadcast_map();
  EHJA_DEBUG(name(), "replication op ", op_id, ": join ", requester,
             " frozen, replica join ", fresh, " for [", range.lo, ",",
             range.hi, ")");
}

void SchedulerActor::handle_op_complete(const OpCompletePayload& done) {
  EHJA_CHECK(op_.has_value());
  const double duration = now() - op_->started;
  if (op_->is_split) {
    metrics_.split_time += duration;
    trace(TraceKind::kSplitOp, op_->requester,
          static_cast<std::int64_t>(done.tuples_received));
  } else {
    metrics_.expand_time += duration;
    trace(TraceKind::kHandoffOp, op_->requester,
          static_cast<std::int64_t>(done.tuples_received));
  }
  send(op_->requester, make_signal(Tag::kRelief));
  op_.reset();
  (void)done;
  try_start_expansion();
  maybe_start_build_drain();
}

void SchedulerActor::broadcast_map() {
  MapUpdatePayload update;
  update.version = ++map_version_;
  update.map = map_;
  const std::size_t wire = map_.wire_bytes();
  for (ActorId source : sources_) {
    send(source, make_message(Tag::kMapUpdate, update, wire));
  }
}

// ------------------------------------------------------------ phase change

void SchedulerActor::handle_source_done(const SourceDonePayload& done) {
  if (done.rel == config_->build_rel.tag) {
    ++sources_done_build_;
    source_chunks_build_ += done.chunks_sent;
    source_tuples_build_ += done.tuples_sent;
    maybe_start_build_drain();
  } else {
    ++sources_done_probe_;
    source_chunks_probe_ += done.chunks_sent;
    source_tuples_probe_ += done.tuples_sent;
    if (sources_done_probe_ == config_->data_sources) {
      EHJA_CHECK(phase_ == Phase::kProbe);
      phase_ = Phase::kProbeDrain;
      drain_prev_.reset();
      start_drain_round();
    }
  }
}

std::uint64_t SchedulerActor::expected_source_chunks() const {
  std::uint64_t expected = source_chunks_build_;
  if (phase_ == Phase::kProbeDrain) expected += source_chunks_probe_;
  return expected;
}

void SchedulerActor::maybe_start_build_drain() {
  if (phase_ != Phase::kBuild) return;
  if (sources_done_build_ != config_->data_sources) return;
  if (op_.has_value() || !full_queue_.empty()) return;
  phase_ = Phase::kBuildDrain;
  drain_prev_.reset();
  start_drain_round();
}

void SchedulerActor::start_drain_round() {
  ++drain_epoch_;
  trace(TraceKind::kDrainRound, static_cast<std::int64_t>(drain_epoch_),
        static_cast<std::int64_t>(drain_prev_ ? drain_prev_->first : 0));
  drain_acks_ = 0;
  drain_received_ = 0;
  drain_forwarded_ = 0;
  DrainProbePayload probe;
  probe.epoch = drain_epoch_;
  for (ActorId join : joins_) {
    send(join, make_message(Tag::kDrainProbe, probe, kControlWireBytes));
  }
}

void SchedulerActor::handle_drain_ack(ActorId /*from*/,
                                      const DrainAckPayload& ack) {
  if (ack.epoch != drain_epoch_) return;  // stale round
  if (phase_ != Phase::kBuildDrain && phase_ != Phase::kReshuffleDrain &&
      phase_ != Phase::kProbeDrain) {
    return;  // round aborted by an expansion
  }
  ++drain_acks_;
  drain_received_ += ack.data_chunks_received;
  drain_forwarded_ += ack.data_chunks_forwarded;
  if (drain_acks_ < joins_.size()) return;

  const auto totals = std::make_pair(drain_received_, drain_forwarded_);
  const bool balanced =
      drain_received_ == expected_source_chunks() + drain_forwarded_;
  const bool stable = drain_prev_.has_value() && *drain_prev_ == totals;
  drain_prev_ = totals;
  if (balanced && stable) {
    on_drained();
  } else {
    start_drain_round();
  }
}

void SchedulerActor::on_drained() {
  drain_prev_.reset();
  switch (phase_) {
    case Phase::kBuildDrain:
      build_complete();
      break;
    case Phase::kReshuffleDrain:
      metrics_.t_reshuffle_end = now();
      start_probe();
      break;
    case Phase::kProbeDrain:
      metrics_.t_probe_end = now();
      phase_ = Phase::kReporting;
      reports_pending_ = static_cast<std::uint32_t>(joins_.size());
      for (ActorId join : joins_) {
        send(join, make_signal(Tag::kReportRequest));
      }
      break;
    default:
      EHJA_CHECK_MSG(false, "drained in unexpected phase");
  }
}

void SchedulerActor::build_complete() {
  metrics_.t_build_end = now();
  trace(TraceKind::kPhase, 0, 0, "build_complete");
  EHJA_INFO(name(), "build complete at t=", now(), "s with ", joins_.size(),
            " join nodes");
  bool any_replicas = false;
  for (const auto& entry : map_.entries()) {
    any_replicas |= entry.owners.size() > 1;
  }
  if (config_->algorithm == Algorithm::kHybrid && any_replicas) {
    start_reshuffle();
  } else {
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

// -------------------------------------------------------- hybrid reshuffle

void SchedulerActor::start_reshuffle() {
  phase_ = Phase::kReshuffle;
  trace(TraceKind::kPhase, 0, 0, "reshuffle");
  reshuffle_sets_.clear();
  reshuffle_pending_replies_ = 0;
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto& entry = map_.entries()[i];
    if (entry.owners.size() < 2) continue;
    // A member that degraded to local spilling holds its partitions on
    // disk; its set cannot be reshuffled and keeps replication semantics
    // (probe broadcast) instead.
    const bool any_spilled = std::any_of(
        entry.owners.begin(), entry.owners.end(), [this](ActorId owner) {
          return std::find(spilled_.begin(), spilled_.end(), owner) !=
                 spilled_.end();
        });
    if (any_spilled) continue;
    ReshuffleSet set;
    set.members = entry.owners;
    reshuffle_sets_.emplace(i, std::move(set));
    HistogramRequestPayload req;
    req.set_id = i;
    req.bins = config_->reshuffle_bins;
    for (ActorId member : entry.owners) {
      send(member, make_message(Tag::kHistogramRequest, req,
                                kControlWireBytes));
      ++reshuffle_pending_replies_;
    }
  }
  EHJA_INFO(name(), "reshuffle: ", reshuffle_sets_.size(),
            " replica set(s)");
  if (reshuffle_pending_replies_ == 0) {
    // Every replicated set contained a spilled member: nothing to do.
    metrics_.t_reshuffle_end = metrics_.t_build_end;
    start_probe();
  }
}

void SchedulerActor::handle_histogram_reply(
    const HistogramReplyPayload& reply) {
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  auto it = reshuffle_sets_.find(reply.set_id);
  EHJA_CHECK(it != reshuffle_sets_.end());
  ReshuffleSet& set = it->second;
  if (!set.merged.has_value()) {
    set.merged = reply.histogram;
  } else {
    set.merged->merge(reply.histogram);
  }
  ++set.replies;
  EHJA_CHECK(set.replies <= set.members.size());
  EHJA_CHECK(reshuffle_pending_replies_ > 0);
  if (--reshuffle_pending_replies_ == 0) {
    dispatch_reshuffle_moves();
  }
}

void SchedulerActor::dispatch_reshuffle_moves() {
  // Rebuild the map wholesale: untouched entries stay, every replica set's
  // entry is replaced by its plan.
  std::vector<PartitionMap::Entry> entries;
  reshuffle_pending_done_ = 0;
  for (std::size_t i = 0; i < map_.size(); ++i) {
    const auto it = reshuffle_sets_.find(i);
    if (it == reshuffle_sets_.end()) {
      entries.push_back(map_.entries()[i]);
      continue;
    }
    ReshuffleSet& set = it->second;
    EHJA_CHECK(set.replies == set.members.size());
    std::vector<PartitionMap::Entry> plan =
        plan_reshuffle(*set.merged, set.members);
    ReshuffleMovePayload move;
    move.plan = plan;
    const std::size_t wire = 32 + 24 * plan.size();
    for (ActorId member : set.members) {
      send(member, make_message(Tag::kReshuffleMove, move, wire));
      ++reshuffle_pending_done_;
    }
    for (auto& entry : plan) entries.push_back(std::move(entry));
  }
  map_ = PartitionMap::from_entries(std::move(entries));
  ++map_version_;
}

void SchedulerActor::handle_reshuffle_done() {
  EHJA_CHECK(phase_ == Phase::kReshuffle);
  EHJA_CHECK(reshuffle_pending_done_ > 0);
  if (--reshuffle_pending_done_ > 0) return;
  phase_ = Phase::kReshuffleDrain;
  drain_prev_.reset();
  start_drain_round();
}

// ------------------------------------------------------------------- probe

void SchedulerActor::start_probe() {
  phase_ = Phase::kProbe;
  trace(TraceKind::kPhase, 0, 0, "probe");
  for (ActorId source : sources_) {
    StartProbePayload start;
    start.map = map_;
    const std::size_t wire = start.map.wire_bytes();
    send(source, make_message(Tag::kStartProbe, std::move(start), wire));
  }
  EHJA_INFO(name(), "probe phase started at t=", now(), "s (",
            map_.owner_slots(), " owner slots over ", map_.size(),
            " ranges)");
}

// -------------------------------------------------------------- completion

void SchedulerActor::handle_node_report(const NodeReportPayload& report) {
  EHJA_CHECK(phase_ == Phase::kReporting);
  metrics_.nodes.push_back(report.metrics);
  metrics_.join.matches += report.metrics.matches;
  metrics_.join.checksum += report.checksum;
  metrics_.build_tuples_total += report.metrics.build_tuples;
  metrics_.probe_tuples_total += report.metrics.probe_tuples;
  metrics_.extra_build_chunks += report.metrics.chunks_forwarded;
  EHJA_CHECK(reports_pending_ > 0);
  if (--reports_pending_ > 0) return;

  metrics_.t_complete = now();
  metrics_.final_join_nodes = static_cast<std::uint32_t>(joins_.size());
  metrics_.source_build_chunks = source_chunks_build_;
  metrics_.source_probe_chunks = source_chunks_probe_;
  // Conservation: every generated build tuple is stored exactly once.
  EHJA_CHECK_MSG(metrics_.build_tuples_total == source_tuples_build_,
                 "build tuples lost or duplicated");
  // Probe tuples may be duplicated (replication broadcast), never lost.
  EHJA_CHECK(metrics_.probe_tuples_total >= source_tuples_probe_);
  phase_ = Phase::kDone;
  trace(TraceKind::kPhase, 0, 0, "done");
  EHJA_INFO(name(), "done: ", metrics_.summary());
  rt().request_stop();
}

}  // namespace ehja
