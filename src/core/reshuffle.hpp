// Hybrid algorithm's reshuffling plan (paper ss4.2.3).
//
// Input: the global (merged) per-position entry histogram of one replica
// set's hash range, and the set's members.  Output: the range re-cut into
// one contiguous sub-range per member with near-equal entry counts, using
// the paper's greedy heuristic.  Pure function -- the scheduler computes it,
// every set member executes it.
#pragma once

#include <vector>

#include "hash/partition_map.hpp"
#include "util/histogram.hpp"

namespace ehja {

/// One entry per member, in member order, covering the histogram's range
/// with disjoint non-empty sub-ranges of near-equal total weight.
std::vector<PartitionMap::Entry> plan_reshuffle(
    const BinnedHistogram& merged, const std::vector<ActorId>& members);

}  // namespace ehja
