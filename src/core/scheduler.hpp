// Scheduler actor (paper ss4.1.1).
//
// Coordinates the whole join: holds the authoritative partition map and the
// lists of working / potential / full join nodes, serializes expansion
// operations (the split algorithm's *barrier split pointer* generalizes to
// "at most one expansion op in flight"), detects phase completion, runs the
// hybrid reshuffle, and aggregates the final per-node reports into
// RunMetrics.
//
// Phase machine:
//
//   kBuild --(all sources done, no ops pending)--> kBuildDrain
//   kBuildDrain --(counters stable, see below)--> [hybrid with replicas?]
//        yes: kReshuffle --> kReshuffleDrain --> kProbe
//        no:  kProbe
//   kProbe --(all sources done)--> kProbeDrain --> kReporting --> kDone
//
// Drain protocol.  Chunks can be in flight or be re-forwarded between nodes
// (stale-source routing), so "sources are done" does not mean "nodes have
// everything".  The scheduler polls every join node for its cumulative
// (data chunks received, data chunks forwarded) counters and declares a
// phase drained when
//     received == chunks sent by sources + forwarded by nodes
// and the totals are identical across two consecutive polls (Mattern-style
// counter termination detection -- a single matching poll can be fooled by
// a chunk counted at the receiver but not yet at its sender's poll).  An
// expansion op starting mid-drain aborts the drain; op completion retries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/resource_pool.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "hash/hash_family.hpp"
#include "hash/partition_map.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class SchedulerActor final : public Actor {
 public:
  /// `spawn_join` instantiates a fresh join process on a given node and
  /// returns its actor id (the driver wires it to the runtime).
  SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                 std::function<ActorId(NodeId)> spawn_join);

  /// Driver wiring before run(): source actors, the initial join actors
  /// (already spawned), and the pool of potential join nodes.
  void wire(std::vector<ActorId> sources, std::vector<ActorId> initial_joins,
            ResourcePool pool);

  void on_start() override;
  void on_message(const Message& msg) override;
  std::string name() const override { return "sched"; }

  const RunMetrics& metrics() const { return metrics_; }
  bool finished() const { return phase_ == Phase::kDone; }
  const PartitionMap& partition_map() const { return map_; }

 private:
  enum class Phase {
    kBuild,
    kBuildDrain,
    kReshuffle,
    kReshuffleDrain,
    kProbe,
    kProbeDrain,
    kReporting,
    kDone,
  };

  struct OpInfo {
    SimTime started = 0.0;
    bool is_split = false;
    ActorId requester = kInvalidActor;
  };

  void handle_memory_full(ActorId from, const MemoryFullPayload& payload);
  void try_start_expansion();
  void start_split(ActorId requester);
  void start_requester_split(ActorId requester);
  void start_replication(ActorId requester);
  void handle_op_complete(const OpCompletePayload& done);
  void handle_source_done(const SourceDonePayload& done);
  void maybe_start_build_drain();
  void start_drain_round();
  void handle_drain_ack(ActorId from, const DrainAckPayload& ack);
  void on_drained();
  void build_complete();
  void start_reshuffle();
  void handle_histogram_reply(const HistogramReplyPayload& reply);
  void dispatch_reshuffle_moves();
  void handle_reshuffle_done();
  void start_probe();
  void handle_node_report(const NodeReportPayload& report);
  void broadcast_map();
  void send_switch_to_spill(ActorId requester);
  std::uint64_t expected_source_chunks() const;
  void trace(TraceKind kind, std::int64_t a = 0, std::int64_t b = 0,
             std::string detail = {}) {
    if (config_->trace != nullptr) {
      config_->trace->emit(now(), kind, a, b, std::move(detail));
    }
  }

  std::shared_ptr<const EhjaConfig> config_;
  std::function<ActorId(NodeId)> spawn_join_;

  std::vector<ActorId> sources_;
  std::vector<ActorId> joins_;  // every join actor ever created
  std::optional<ResourcePool> pool_;
  bool pool_exhausted_ = false;
  /// Join actors told to spill locally; they cannot take part in a
  /// reshuffle (their partitions live on disk).
  std::vector<ActorId> spilled_;

  Phase phase_ = Phase::kBuild;
  PartitionMap map_;
  std::uint64_t map_version_ = 0;
  std::optional<LinearHashMap> linear_;  // split algorithm only

  // expansion serialization (the barrier)
  std::deque<ActorId> full_queue_;
  std::optional<OpInfo> op_;  // at most one in flight
  std::uint64_t next_op_id_ = 1;

  // source bookkeeping
  std::uint32_t sources_done_build_ = 0;
  std::uint32_t sources_done_probe_ = 0;
  std::uint64_t source_chunks_build_ = 0;
  std::uint64_t source_chunks_probe_ = 0;
  std::uint64_t source_tuples_build_ = 0;
  std::uint64_t source_tuples_probe_ = 0;

  // drain protocol
  std::uint64_t drain_epoch_ = 0;
  std::uint32_t drain_acks_ = 0;
  std::uint64_t drain_received_ = 0;
  std::uint64_t drain_forwarded_ = 0;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> drain_prev_;

  // hybrid reshuffle
  struct ReshuffleSet {
    std::vector<ActorId> members;
    std::optional<BinnedHistogram> merged;
    std::uint32_t replies = 0;
  };
  std::map<std::uint64_t, ReshuffleSet> reshuffle_sets_;  // key: entry index
  std::uint32_t reshuffle_pending_replies_ = 0;
  std::uint32_t reshuffle_pending_done_ = 0;

  // completion
  std::uint32_t reports_pending_ = 0;
  RunMetrics metrics_;
};

}  // namespace ehja
