// Scheduler actor (paper ss4.1.1).
//
// Coordinates the whole join as a *phase machine*: it holds the
// authoritative partition map, detects phase completion, runs the hybrid
// reshuffle, and aggregates the final per-node reports into RunMetrics.
// Everything algorithm-specific -- what to do on a kMemoryFull, node
// acquisition and spill degradation, partition map mutation -- lives in
// the ExpansionPolicy the scheduler constructs from the configured
// algorithm (core/expansion_policy.hpp); phase-drain detection lives in
// DrainProtocol (core/drain.hpp).  The scheduler wires messages to those
// two collaborators plus the reshuffle planner and otherwise only moves
// between phases:
//
//   kBuild --(all sources done, policy idle)--> kBuildDrain
//   kBuildDrain --(drain stable)--> [policy wants reshuffle?]
//        yes: kReshuffle --> kReshuffleDrain --> kProbe
//        no:  kProbe
//   kProbe --(all sources done)--> kProbeDrain --> kReporting --> kDone
//
// An expansion op starting mid-build-drain aborts the drain (the policy
// asks via ExpansionEnv::expansion_starting()); op completion retries.
//
// When recovery is enabled (EhjaConfig::recovery_enabled) the scheduler
// additionally runs a heartbeat failure detector off a self-timer
// (kHeartbeatTick / core/failure_detector.hpp); a declared death aborts
// whatever drain or reshuffle is in flight, moves the machine to
// Phase::kRecovery and hands control to the RecoveryManager
// (core/recovery.hpp), which drives fences, range resets and source replay
// through the same ExpansionEnv seam the policies use, then resumes the
// interrupted phase.  The detector disarms once reporting starts.
//
// Scheduler failover (FaultToleranceConfig::standby_scheduler).  A second
// SchedulerActor runs in Mode::kStandby: it holds no live protocol state of
// its own, it only (a) keeps the latest kSchedulerSnapshot the active
// coordinator checkpoints after every state transition and (b) watches the
// active's pings with its own failure detector.  When the active falls
// silent the standby *promotes*: it adopts the snapshot, broadcasts a
// kSchedulerHandoff (with a higher generation, so joins and sources retarget
// and a falsely-suspected active abdicates to Mode::kDeposed), waits for
// every source's handoff ack to rebuild source bookkeeping from local truth,
// and then runs a conservative full-coverage wipe through the existing
// recovery machinery -- the one sound answer to "which deliveries did my
// predecessor see?" being "assume none after the checkpoint".
//
// Data-source failover.  A dead source's deterministic TupleStream slice is
// reassigned: the scheduler recruits a pool node, spawns a replacement with
// the *same* source index (TupleStream is a pure function of seed and
// index), subtracts the dead stream's counted contributions, and runs a
// full-coverage wipe -- the dead stream's tuples are interleaved across all
// position ranges, so surviving sources replay their prefixes while the
// replacement re-emits the slice from the start as a normal counted stream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/resource_pool.hpp"
#include "core/config.hpp"
#include "core/drain.hpp"
#include "core/expansion_policy.hpp"
#include "core/failure_detector.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/recovery.hpp"
#include "hash/partition_map.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class SchedulerActor final : public Actor,
                             private ExpansionEnv,
                             private RecoveryHost {
 public:
  /// `spawn_join` instantiates a fresh join process on a given node and
  /// returns its actor id; `spawn_source` does the same for a replacement
  /// data source with a given source index (the driver wires both to the
  /// runtime).  `spawn_source` may be empty when source failover is off.
  SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                 std::function<ActorId(NodeId)> spawn_join,
                 std::function<ActorId(NodeId, std::uint32_t)> spawn_source =
                     {});

  /// Driver wiring before run(): source actors, the initial join actors
  /// (already spawned), and the pool of potential join nodes.  Constructs
  /// the expansion policy for the configured algorithm.  `source_nodes` /
  /// `join_nodes` override the config-derived placement (node_of_
  /// bookkeeping) when the caller placed the actors itself -- the serve
  /// layer packs many queries onto one shared fleet, so a query's actors
  /// do not live on config.source_node(i)/pool_node(j); empty means the
  /// classic single-query layout.
  void wire(std::vector<ActorId> sources, std::vector<ActorId> initial_joins,
            ResourcePool pool, std::vector<NodeId> source_nodes = {},
            std::vector<NodeId> join_nodes = {});

  /// Completion hook: when set, a finished run invokes it *instead of*
  /// stopping the runtime -- a serving coordinator hosts many concurrent
  /// schedulers and must outlive each one.  Called from the scheduler's
  /// message context; the callee must not destroy this actor re-entrantly
  /// (defer retirement to outside the delivery).
  void set_on_done(std::function<void()> on_done) {
    on_done_ = std::move(on_done);
  }

  /// Driver wiring for the *standby* instance: it only watches `active` and
  /// keeps its snapshots; all run state arrives via checkpoints.
  void wire_standby(ActorId active);
  /// Tell the active instance where its standby lives (checkpoint target).
  void set_standby(ActorId standby) { standby_ = standby; }

  void on_start() override;
  void on_message(const Message& msg) override;
  std::string name() const override {
    return mode_ == Mode::kStandby ? "standby" : "sched";
  }

  const RunMetrics& metrics() const { return metrics_; }
  bool finished() const { return phase_ == Phase::kDone; }
  const PartitionMap& partition_map() const { return map_; }

 private:
  enum class Phase {
    kBuild,
    kBuildDrain,
    kReshuffle,
    kReshuffleDrain,
    kProbe,
    kProbeDrain,
    kRecovery,  // node death declared; RecoveryManager drives the protocol
    kReporting,
    kDone,
  };

  // --- ExpansionEnv (the policy's and recovery's view of the scheduler) ---
  PartitionMap& map() override { return map_; }
  RunMetrics& metrics() override { return metrics_; }
  ActorId spawn_join(NodeId node) override;
  void send_to(ActorId to, Message msg) override;
  void broadcast_map() override;
  bool expansion_starting() override;
  std::uint64_t observed_build_tuples() const override;
  SimTime now() const override { return Actor::now(); }
  void trace(TraceKind kind, std::int64_t a, std::int64_t b) override {
    trace_event(kind, a, b);
  }
  const std::vector<ActorId>& join_actors() const override { return joins_; }
  const std::vector<ActorId>& source_actors() const override {
    return sources_;
  }
  bool node_alive(NodeId node) const override { return rt().node_alive(node); }

  // --- RecoveryHost (recovery's scheduler-side services) ---
  std::optional<NodeId> recruit_node() override {
    return policy_->acquire_node();
  }
  void start_settle_drain() override;
  void recovery_complete(bool probe_recovery) override;
  PosRange coverage_of(ActorId actor) const override;
  void start_replacement_source(ActorId source, RelTag rel,
                                std::uint64_t epoch) override;

  void handle_memory_full(ActorId from, const MemoryFullPayload& payload);
  void handle_op_complete(const OpCompletePayload& done);
  void handle_source_done(ActorId from, const SourceDonePayload& done);
  void handle_source_progress(ActorId from,
                              const SourceProgressPayload& progress);
  void maybe_start_build_drain();
  void start_drain_round();
  void handle_drain_ack(ActorId from, const DrainAckPayload& ack);
  void on_drained();
  void build_complete();
  void start_reshuffle();
  void handle_histogram_reply(const HistogramReplyPayload& reply);
  void dispatch_reshuffle_moves();
  void handle_reshuffle_done(const ReshuffleDonePayload& done);
  void start_probe();
  void handle_result_chunk(ActorId from, const ResultChunkPayload& payload);
  void handle_node_report(ActorId from, const NodeReportPayload& report);
  std::uint64_t expected_source_chunks() const;
  // --- failure detection and recovery ---
  void handle_heartbeat_tick();
  void handle_replay_done(ActorId from, const ReplayDonePayload& done);
  void declare_dead(ActorId dead, double silence_sec);
  /// Replace a dead data source: subtract its counted contributions, recruit
  /// a pool node, spawn a fresh stream for the same slice.  Returns the
  /// replacement's actor id.
  ActorId replace_source(ActorId dead);
  // --- scheduler failover ---
  /// Checkpoint the full coordination state to the standby (no-op without
  /// one).  Called after every externally visible state transition.
  void checkpoint();
  void on_standby_message(const Message& msg);
  /// The active fell silent for `silence_sec`: adopt the latest snapshot
  /// and take over the run.
  void promote(double silence_sec);
  /// All sources acked the handoff: rebuild source bookkeeping from the
  /// acks, replay stashed messages, and wipe-recover (or re-request
  /// reports when the checkpoint says the probe already drained).
  void finish_promotion();
  void handle_handoff_ack(ActorId from, const SchedulerHandoffAckPayload& ack);
  /// A handoff with a higher generation reached a live active: it was
  /// falsely suspected and must abdicate (split-brain guard).
  void handle_handoff_at_active(const Message& msg);
  /// Fold the current map's ownership into the per-actor coverage hulls
  /// (RecoveryHost::coverage_of); called at every map change.
  void absorb_coverage();
  /// Drain balance over live nodes only: source chunks addressed to dead
  /// nodes can never be received (recovery-enabled runs).
  std::uint64_t expected_live_chunks() const;
  void trace_event(TraceKind kind, std::int64_t a = 0, std::int64_t b = 0,
                   std::string detail = {}) {
    if (config_->trace != nullptr) {
      config_->trace->emit(Actor::now(), kind, a, b, std::move(detail));
    }
  }

  std::shared_ptr<const EhjaConfig> config_;
  std::function<ActorId(NodeId)> spawn_join_;
  std::function<ActorId(NodeId, std::uint32_t)> spawn_source_;

  std::vector<ActorId> sources_;
  std::vector<ActorId> joins_;  // every join actor ever created

  Phase phase_ = Phase::kBuild;
  PartitionMap map_;
  std::uint64_t map_version_ = 0;
  std::unique_ptr<ExpansionPolicy> policy_;  // set by wire()
  DrainProtocol drain_;

  // source bookkeeping
  std::uint32_t sources_done_build_ = 0;
  std::uint32_t sources_done_probe_ = 0;
  std::uint64_t source_chunks_build_ = 0;
  std::uint64_t source_chunks_probe_ = 0;
  std::uint64_t source_tuples_build_ = 0;
  std::uint64_t source_tuples_probe_ = 0;
  /// Cumulative build tuples per source, from kSourceProgress reports
  /// (kAdaptive only; the cost comparison's observed-rate input).
  std::map<ActorId, std::uint64_t> source_progress_;

  // hybrid reshuffle
  struct ReshuffleSet {
    std::vector<ActorId> members;
    std::optional<BinnedHistogram> merged;
    std::uint32_t replies = 0;
  };
  std::map<std::uint64_t, ReshuffleSet> reshuffle_sets_;  // key: entry index
  std::uint32_t reshuffle_pending_replies_ = 0;
  std::uint32_t reshuffle_pending_done_ = 0;
  /// Reshuffle attempt number; a recovery aborts and re-runs the
  /// reshuffle, and the stamp lets stragglers of the old attempt be
  /// dropped (stays 0 in fault-free runs).
  std::uint32_t reshuffle_round_ = 0;

  // failure detection and recovery (recovery_enabled() runs only)
  FailureDetector detector_;
  std::unique_ptr<RecoveryManager> recovery_;  // set by wire()
  /// Envelope of every range each join actor ever owned (over-approximate
  /// lost data on its death; see RecoveryHost::coverage_of).
  std::map<ActorId, PosRange> coverage_;
  /// Latest per-destination cumulative data-chunk counts per source (from
  /// kSourceDone / kReplayDone), for the live-nodes-only drain balance.
  std::map<ActorId, std::map<ActorId, std::uint64_t>> source_chunks_to_;
  /// Cluster node hosting each actor (false-positive detection: a declared
  /// death whose node is still alive was a detector mistake, not a crash).
  std::map<ActorId, NodeId> node_of_;
  std::function<void()> on_done_;
  /// What each source reported at its kSourceDone (per relation); a dead
  /// source's counted contributions are subtracted from the phase totals so
  /// its replacement can re-earn them.
  struct SourceRecord {
    bool done_build = false;
    bool done_probe = false;
    std::uint64_t build_chunks = 0;
    std::uint64_t probe_chunks = 0;
    std::uint64_t build_tuples = 0;
    std::uint64_t probe_tuples = 0;
  };
  std::map<ActorId, SourceRecord> source_records_;

  // --- scheduler failover (standby_scheduler runs only) ---
  enum class Mode {
    kActive,   // the coordinator of record
    kStandby,  // holds snapshots, watches the active, promotes on silence
    kDeposed,  // falsely suspected and superseded; stays silent forever
  };
  Mode mode_ = Mode::kActive;
  ActorId standby_ = kInvalidActor;  // active side: checkpoint target
  ActorId active_ = kInvalidActor;   // standby side: the watched coordinator
  std::uint64_t snapshot_generation_ = 0;  // active: checkpoints sent
  std::optional<SchedulerSnapshotPayload> snapshot_;  // standby: latest kept
  /// Generation of the handoff this instance last issued (promoted standby)
  /// or accepted defeat against (deposed active).  0 = never promoted.
  std::uint64_t handoff_generation_ = 0;
  bool promotion_pending_ = false;  // between promote() and the last ack
  bool promoted_probe_recovery_ = false;  // checkpointed kRecovery side
  std::set<ActorId> pending_handoff_acks_;
  std::map<ActorId, SchedulerHandoffAckPayload> handoff_acks_;
  /// Messages arriving mid-promotion are replayed after finish_promotion()
  /// so the ack-rebuilt bookkeeping cannot be clobbered.
  std::vector<Message> promotion_stash_;
  /// Messages processed by this instance (the kScheduler kill trigger).
  std::uint64_t messages_processed_ = 0;

  // completion
  std::uint32_t reports_pending_ = 0;
  /// Per-node captured output rows (capture_output runs only), accumulated
  /// from kResultChunk streams during kReporting, verified against each
  /// node's report, and flattened into metrics_.output_rows at completion.
  /// Wiped wholesale when a promoted scheduler re-requests reports.
  std::map<ActorId, std::vector<Tuple>> result_rows_;
  RunMetrics metrics_;
};

}  // namespace ehja
