// Scheduler actor (paper ss4.1.1).
//
// Coordinates the whole join as a *phase machine*: it holds the
// authoritative partition map, detects phase completion, runs the hybrid
// reshuffle, and aggregates the final per-node reports into RunMetrics.
// Everything algorithm-specific -- what to do on a kMemoryFull, node
// acquisition and spill degradation, partition map mutation -- lives in
// the ExpansionPolicy the scheduler constructs from the configured
// algorithm (core/expansion_policy.hpp); phase-drain detection lives in
// DrainProtocol (core/drain.hpp).  The scheduler wires messages to those
// two collaborators plus the reshuffle planner and otherwise only moves
// between phases:
//
//   kBuild --(all sources done, policy idle)--> kBuildDrain
//   kBuildDrain --(drain stable)--> [policy wants reshuffle?]
//        yes: kReshuffle --> kReshuffleDrain --> kProbe
//        no:  kProbe
//   kProbe --(all sources done)--> kProbeDrain --> kReporting --> kDone
//
// An expansion op starting mid-build-drain aborts the drain (the policy
// asks via ExpansionEnv::expansion_starting()); op completion retries.
//
// When recovery is enabled (EhjaConfig::recovery_enabled) the scheduler
// additionally runs a heartbeat failure detector off a self-timer
// (kHeartbeatTick / core/failure_detector.hpp); a declared death aborts
// whatever drain or reshuffle is in flight, moves the machine to
// Phase::kRecovery and hands control to the RecoveryManager
// (core/recovery.hpp), which drives fences, range resets and source replay
// through the same ExpansionEnv seam the policies use, then resumes the
// interrupted phase.  The detector disarms once reporting starts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/resource_pool.hpp"
#include "core/config.hpp"
#include "core/drain.hpp"
#include "core/expansion_policy.hpp"
#include "core/failure_detector.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/recovery.hpp"
#include "hash/partition_map.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class SchedulerActor final : public Actor,
                             private ExpansionEnv,
                             private RecoveryHost {
 public:
  /// `spawn_join` instantiates a fresh join process on a given node and
  /// returns its actor id (the driver wires it to the runtime).
  SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                 std::function<ActorId(NodeId)> spawn_join);

  /// Driver wiring before run(): source actors, the initial join actors
  /// (already spawned), and the pool of potential join nodes.  Constructs
  /// the expansion policy for the configured algorithm.
  void wire(std::vector<ActorId> sources, std::vector<ActorId> initial_joins,
            ResourcePool pool);

  void on_start() override;
  void on_message(const Message& msg) override;
  std::string name() const override { return "sched"; }

  const RunMetrics& metrics() const { return metrics_; }
  bool finished() const { return phase_ == Phase::kDone; }
  const PartitionMap& partition_map() const { return map_; }

 private:
  enum class Phase {
    kBuild,
    kBuildDrain,
    kReshuffle,
    kReshuffleDrain,
    kProbe,
    kProbeDrain,
    kRecovery,  // node death declared; RecoveryManager drives the protocol
    kReporting,
    kDone,
  };

  // --- ExpansionEnv (the policy's and recovery's view of the scheduler) ---
  PartitionMap& map() override { return map_; }
  RunMetrics& metrics() override { return metrics_; }
  ActorId spawn_join(NodeId node) override;
  void send_to(ActorId to, Message msg) override;
  void broadcast_map() override;
  bool expansion_starting() override;
  std::uint64_t observed_build_tuples() const override;
  SimTime now() const override { return Actor::now(); }
  void trace(TraceKind kind, std::int64_t a, std::int64_t b) override {
    trace_event(kind, a, b);
  }
  const std::vector<ActorId>& join_actors() const override { return joins_; }
  const std::vector<ActorId>& source_actors() const override {
    return sources_;
  }
  bool node_alive(NodeId node) const override { return rt().node_alive(node); }

  // --- RecoveryHost (recovery's scheduler-side services) ---
  std::optional<NodeId> recruit_node() override {
    return policy_->acquire_node();
  }
  void start_settle_drain() override;
  void recovery_complete(bool probe_recovery) override;
  PosRange coverage_of(ActorId actor) const override;

  void handle_memory_full(ActorId from, const MemoryFullPayload& payload);
  void handle_op_complete(const OpCompletePayload& done);
  void handle_source_done(ActorId from, const SourceDonePayload& done);
  void handle_source_progress(ActorId from,
                              const SourceProgressPayload& progress);
  void maybe_start_build_drain();
  void start_drain_round();
  void handle_drain_ack(ActorId from, const DrainAckPayload& ack);
  void on_drained();
  void build_complete();
  void start_reshuffle();
  void handle_histogram_reply(const HistogramReplyPayload& reply);
  void dispatch_reshuffle_moves();
  void handle_reshuffle_done(const ReshuffleDonePayload& done);
  void start_probe();
  void handle_node_report(const NodeReportPayload& report);
  std::uint64_t expected_source_chunks() const;
  // --- failure detection and recovery ---
  void handle_heartbeat_tick();
  void handle_replay_done(ActorId from, const ReplayDonePayload& done);
  void declare_dead(ActorId dead, double silence_sec);
  /// Fold the current map's ownership into the per-actor coverage hulls
  /// (RecoveryHost::coverage_of); called at every map change.
  void absorb_coverage();
  /// Drain balance over live nodes only: source chunks addressed to dead
  /// nodes can never be received (recovery-enabled runs).
  std::uint64_t expected_live_chunks() const;
  void trace_event(TraceKind kind, std::int64_t a = 0, std::int64_t b = 0,
                   std::string detail = {}) {
    if (config_->trace != nullptr) {
      config_->trace->emit(Actor::now(), kind, a, b, std::move(detail));
    }
  }

  std::shared_ptr<const EhjaConfig> config_;
  std::function<ActorId(NodeId)> spawn_join_;

  std::vector<ActorId> sources_;
  std::vector<ActorId> joins_;  // every join actor ever created

  Phase phase_ = Phase::kBuild;
  PartitionMap map_;
  std::uint64_t map_version_ = 0;
  std::unique_ptr<ExpansionPolicy> policy_;  // set by wire()
  DrainProtocol drain_;

  // source bookkeeping
  std::uint32_t sources_done_build_ = 0;
  std::uint32_t sources_done_probe_ = 0;
  std::uint64_t source_chunks_build_ = 0;
  std::uint64_t source_chunks_probe_ = 0;
  std::uint64_t source_tuples_build_ = 0;
  std::uint64_t source_tuples_probe_ = 0;
  /// Cumulative build tuples per source, from kSourceProgress reports
  /// (kAdaptive only; the cost comparison's observed-rate input).
  std::map<ActorId, std::uint64_t> source_progress_;

  // hybrid reshuffle
  struct ReshuffleSet {
    std::vector<ActorId> members;
    std::optional<BinnedHistogram> merged;
    std::uint32_t replies = 0;
  };
  std::map<std::uint64_t, ReshuffleSet> reshuffle_sets_;  // key: entry index
  std::uint32_t reshuffle_pending_replies_ = 0;
  std::uint32_t reshuffle_pending_done_ = 0;
  /// Reshuffle attempt number; a recovery aborts and re-runs the
  /// reshuffle, and the stamp lets stragglers of the old attempt be
  /// dropped (stays 0 in fault-free runs).
  std::uint32_t reshuffle_round_ = 0;

  // failure detection and recovery (recovery_enabled() runs only)
  FailureDetector detector_;
  std::unique_ptr<RecoveryManager> recovery_;  // set by wire()
  /// Envelope of every range each join actor ever owned (over-approximate
  /// lost data on its death; see RecoveryHost::coverage_of).
  std::map<ActorId, PosRange> coverage_;
  /// Latest per-destination cumulative data-chunk counts per source (from
  /// kSourceDone / kReplayDone), for the live-nodes-only drain balance.
  std::map<ActorId, std::map<ActorId, std::uint64_t>> source_chunks_to_;

  // completion
  std::uint32_t reports_pending_ = 0;
  RunMetrics metrics_;
};

}  // namespace ehja
