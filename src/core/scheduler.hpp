// Scheduler actor (paper ss4.1.1).
//
// Coordinates the whole join as a *phase machine*: it holds the
// authoritative partition map, detects phase completion, runs the hybrid
// reshuffle, and aggregates the final per-node reports into RunMetrics.
// Everything algorithm-specific -- what to do on a kMemoryFull, node
// acquisition and spill degradation, partition map mutation -- lives in
// the ExpansionPolicy the scheduler constructs from the configured
// algorithm (core/expansion_policy.hpp); phase-drain detection lives in
// DrainProtocol (core/drain.hpp).  The scheduler wires messages to those
// two collaborators plus the reshuffle planner and otherwise only moves
// between phases:
//
//   kBuild --(all sources done, policy idle)--> kBuildDrain
//   kBuildDrain --(drain stable)--> [policy wants reshuffle?]
//        yes: kReshuffle --> kReshuffleDrain --> kProbe
//        no:  kProbe
//   kProbe --(all sources done)--> kProbeDrain --> kReporting --> kDone
//
// An expansion op starting mid-build-drain aborts the drain (the policy
// asks via ExpansionEnv::expansion_starting()); op completion retries.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/resource_pool.hpp"
#include "core/config.hpp"
#include "core/drain.hpp"
#include "core/expansion_policy.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "hash/partition_map.hpp"
#include "runtime/actor.hpp"

namespace ehja {

class SchedulerActor final : public Actor, private ExpansionEnv {
 public:
  /// `spawn_join` instantiates a fresh join process on a given node and
  /// returns its actor id (the driver wires it to the runtime).
  SchedulerActor(std::shared_ptr<const EhjaConfig> config,
                 std::function<ActorId(NodeId)> spawn_join);

  /// Driver wiring before run(): source actors, the initial join actors
  /// (already spawned), and the pool of potential join nodes.  Constructs
  /// the expansion policy for the configured algorithm.
  void wire(std::vector<ActorId> sources, std::vector<ActorId> initial_joins,
            ResourcePool pool);

  void on_start() override;
  void on_message(const Message& msg) override;
  std::string name() const override { return "sched"; }

  const RunMetrics& metrics() const { return metrics_; }
  bool finished() const { return phase_ == Phase::kDone; }
  const PartitionMap& partition_map() const { return map_; }

 private:
  enum class Phase {
    kBuild,
    kBuildDrain,
    kReshuffle,
    kReshuffleDrain,
    kProbe,
    kProbeDrain,
    kReporting,
    kDone,
  };

  // --- ExpansionEnv (the policy's view of the scheduler) ---
  PartitionMap& map() override { return map_; }
  RunMetrics& metrics() override { return metrics_; }
  ActorId spawn_join(NodeId node) override;
  void send_to(ActorId to, Message msg) override;
  void broadcast_map() override;
  bool expansion_starting() override;
  std::uint64_t observed_build_tuples() const override;
  SimTime now() const override { return Actor::now(); }
  void trace(TraceKind kind, std::int64_t a, std::int64_t b) override {
    trace_event(kind, a, b);
  }

  void handle_memory_full(ActorId from, const MemoryFullPayload& payload);
  void handle_op_complete(const OpCompletePayload& done);
  void handle_source_done(ActorId from, const SourceDonePayload& done);
  void handle_source_progress(ActorId from,
                              const SourceProgressPayload& progress);
  void maybe_start_build_drain();
  void start_drain_round();
  void handle_drain_ack(ActorId from, const DrainAckPayload& ack);
  void on_drained();
  void build_complete();
  void start_reshuffle();
  void handle_histogram_reply(const HistogramReplyPayload& reply);
  void dispatch_reshuffle_moves();
  void handle_reshuffle_done();
  void start_probe();
  void handle_node_report(const NodeReportPayload& report);
  std::uint64_t expected_source_chunks() const;
  void trace_event(TraceKind kind, std::int64_t a = 0, std::int64_t b = 0,
                   std::string detail = {}) {
    if (config_->trace != nullptr) {
      config_->trace->emit(Actor::now(), kind, a, b, std::move(detail));
    }
  }

  std::shared_ptr<const EhjaConfig> config_;
  std::function<ActorId(NodeId)> spawn_join_;

  std::vector<ActorId> sources_;
  std::vector<ActorId> joins_;  // every join actor ever created

  Phase phase_ = Phase::kBuild;
  PartitionMap map_;
  std::uint64_t map_version_ = 0;
  std::unique_ptr<ExpansionPolicy> policy_;  // set by wire()
  DrainProtocol drain_;

  // source bookkeeping
  std::uint32_t sources_done_build_ = 0;
  std::uint32_t sources_done_probe_ = 0;
  std::uint64_t source_chunks_build_ = 0;
  std::uint64_t source_chunks_probe_ = 0;
  std::uint64_t source_tuples_build_ = 0;
  std::uint64_t source_tuples_probe_ = 0;
  /// Cumulative build tuples per source, from kSourceProgress reports
  /// (kAdaptive only; the cost comparison's observed-rate input).
  std::map<ActorId, std::uint64_t> source_progress_;

  // hybrid reshuffle
  struct ReshuffleSet {
    std::vector<ActorId> members;
    std::optional<BinnedHistogram> merged;
    std::uint32_t replies = 0;
  };
  std::map<std::uint64_t, ReshuffleSet> reshuffle_sets_;  // key: entry index
  std::uint32_t reshuffle_pending_replies_ = 0;
  std::uint32_t reshuffle_pending_done_ = 0;

  // completion
  std::uint32_t reports_pending_ = 0;
  RunMetrics metrics_;
};

}  // namespace ehja
