// Run configuration for the Expanding Hash-based Join Algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/resource_pool.hpp"
#include "hash/hash_family.hpp"
#include "hash/intra_mode.hpp"
#include "trace/trace.hpp"
#include "workload/generator.hpp"

namespace ehja {

/// The four algorithms of the paper's evaluation (ss5): the three EHJAs plus
/// the non-expanding out-of-core baseline -- and kAdaptive, an extension
/// answering ss6's "which strategy when" question per overflow: the
/// scheduler compares the cost model's estimate of a split's one-time
/// build migration against a replica's recurring probe broadcast and picks
/// the cheaper expansion each time (core/expansion_policy.hpp).
enum class Algorithm : std::uint8_t {
  kSplit,      // ss4.2.1, linear hashing across nodes
  kReplicate,  // ss4.2.2, replicate the overflowed range
  kHybrid,     // ss4.2.3, replicate then reshuffle
  kOutOfCore,  // baseline: spill to local disk, never expand
  kAdaptive,   // extension: cost-model split-vs-replicate per overflow
};

const char* algorithm_name(Algorithm algorithm);

/// Which bucket the split-based algorithm splits on overflow.  The paper
/// describes both: ss1 says the algorithm "partitions the hash table range
/// assigned to the node, on which memory is full", while ss4.2.1's Litwin
/// linear-hashing machinery splits the bucket at the *split pointer*
/// regardless of who overflowed.  Only the requester-directed variant
/// reproduces the paper's measured skew behaviour (repeated migration of
/// the hot range, Fig. 11's communication blow-up, Fig. 13's imbalance);
/// the pointer variant is kept for the ablation bench.
enum class SplitVariant : std::uint8_t {
  kRequesterMidpoint,  // split the overflowing node's range at its midpoint
  kLinearPointer,      // classic Litwin: split the bucket at the pointer
};

const char* split_variant_name(SplitVariant variant);

/// Which process a KillSpec targets.  Join kills take out a pool node,
/// source kills a data-source node (the deterministic TupleStream slice is
/// reassigned to a pool recruit), scheduler kills the coordinator node (the
/// standby scheduler promotes itself -- requires ft.standby_scheduler).
enum class KillRole : std::uint8_t {
  kJoin,       // a join pool node (index = pool_index)
  kSource,     // a data-source node (index = source index)
  kScheduler,  // the active scheduler's node (index ignored)
};

const char* kill_role_name(KillRole role);

/// One injected fail-stop crash.  Exactly one trigger must be set: a time
/// trigger (`at_time` >= 0, virtual seconds under SimRuntime, wall seconds
/// after run() under ThreadRuntime) or a progress trigger (`after_chunks` >
/// 0).  The progress trigger is role-specific so kill points are
/// deterministic on every runtime: a join dies as its K-th data chunk
/// arrives, a source dies as it is about to emit its K-th data chunk, and
/// the scheduler dies as it processes its K-th protocol message.
struct KillSpec {
  KillRole role = KillRole::kJoin;
  std::uint32_t pool_index = 0;   // pool index (kJoin) / source index (kSource)
  double at_time = -1.0;          // < 0 = disabled
  std::uint64_t after_chunks = 0; // 0 = disabled
};

/// Injected failures for one run.  Any single process of a run -- join
/// node, data source, or the scheduler itself -- may be killed.
struct FaultPlan {
  std::vector<KillSpec> kills;
  bool empty() const { return kills.empty(); }
};

/// Failure-detection flavour (core/failure_detector).
enum class DetectorKind : std::uint8_t {
  /// Fixed silence threshold: dead after heartbeat_timeout_sec of silence.
  kTimeout,
  /// Phi-accrual (Hayashibara et al.): per-node pong inter-arrival
  /// distributions produce a continuous suspicion level; a node is declared
  /// dead when phi exceeds ft.phi_threshold.  Fast on quiet links, and the
  /// threshold is raised while a recovery pass is active so busy rebuilders
  /// are not re-declared dead (the DESIGN.md §7 cascade).
  kPhiAccrual,
};

const char* detector_kind_name(DetectorKind kind);

/// Failure-detection knobs.  The heartbeat machinery (pings, pongs,
/// per-message bookkeeping bytes) only runs when recovery is enabled, so
/// fault-free runs keep bit-identical event timelines with older builds.
struct FaultToleranceConfig {
  /// Arm detection/recovery even with an empty FaultPlan (e.g. to measure
  /// heartbeat overhead, or when only network faults are injected).
  bool force_enabled = false;
  /// Scheduler ping cadence.
  double heartbeat_interval_sec = 0.5;
  /// Silence after which a join node is declared dead.  Must comfortably
  /// exceed worst-case ping+pong queueing delay: a timeout that fires on a
  /// merely-busy node is safe (stale traffic is fenced) but wasteful, and a
  /// node rebuilding a collapsed range during recovery is busy for a long
  /// time (the full paper workload re-inserts ~2.5M tuples = ~0.6s of CPU,
  /// more if it spills).  Declaring *that* node dead folds the recovery
  /// onto the next owner and can cascade through the whole pool, so the
  /// default is sized for the paper-scale workload; small test workloads
  /// override both knobs downward for tighter detection latency.  Under
  /// kPhiAccrual this is the hard silence cap (phi can only *accelerate*
  /// detection below it) and the fallback rule until enough samples exist.
  double heartbeat_timeout_sec = 5.0;
  /// Which failure detector the scheduler runs.
  DetectorKind detector = DetectorKind::kTimeout;
  /// kPhiAccrual: suspicion threshold.  phi = -log10 P(a pong this silent
  /// is still in flight), so 8 means a one-in-10^8 event.  Doubled while a
  /// recovery pass is rebuilding partitions (busy-rebuilder guard).
  double phi_threshold = 8.0;
  /// kPhiAccrual: sliding inter-arrival window (samples kept per watched
  /// actor).  Small windows adapt fast but overreact to one slow pong;
  /// must be >= 1 (validated -- a zero window would leave phi undefined).
  std::uint32_t phi_window = 32;
  /// Run a standby scheduler that mirrors the active scheduler's state via
  /// snapshot messages and promotes itself when the active one dies.  Off
  /// by default (adds one node and snapshot traffic to the timeline).
  /// Required for KillRole::kScheduler faults.
  bool standby_scheduler = false;
};

struct EhjaConfig {
  Algorithm algorithm = Algorithm::kHybrid;

  /// Initial working join nodes (paper sweeps 1..16; default 4).
  std::uint32_t initial_join_nodes = 4;
  /// Join-node pool size, initial nodes included (OSUMed: 24 compute nodes).
  std::uint32_t join_pool_nodes = 24;
  /// Data source processes, each on its own node.
  std::uint32_t data_sources = 4;
  /// Per-node hash-table memory budget.  80 MiB makes 16 nodes exactly
  /// sufficient for the paper's base 10 M x 100 B workload (DESIGN.md ss4).
  std::uint64_t node_hash_memory_bytes = 80 * kMiB;

  /// Relations.  build_rel is hashed (paper: usually the smaller); probe_rel
  /// streams against it.
  RelationSpec build_rel{RelTag::kR, 10'000'000, Schema{100},
                         DistributionSpec::Uniform(), nullptr};
  RelationSpec probe_rel{RelTag::kS, 10'000'000, Schema{100},
                         DistributionSpec::Uniform(), nullptr};

  /// Transport chunk capacity (paper: 10 000 tuples).
  std::uint32_t chunk_tuples = 10'000;
  /// Tuples a data source generates per scheduling quantum; bounds how stale
  /// a source's partition map can get.
  std::uint32_t generation_slice_tuples = 10'000;

  std::uint64_t seed = 20040607;  // HPDC'04 conference date

  /// How often a data source reports build-generation progress to the
  /// scheduler, in generation slices (kAdaptive only: the reports feed the
  /// observed-rate side of the cost comparison; the paper's algorithms run
  /// without them, and emitting them would perturb their event timing).
  std::uint32_t source_progress_slices = 8;

  /// Reshuffle histogram resolution (bins per replicated range).  The paper
  /// sums *per-position* entry counts ("each node counts the number of
  /// elements at each hash table position"), so the default is effectively
  /// one bin per position (BinnedHistogram clamps to the range width);
  /// coarser settings trade reshuffle-balance quality for histogram
  /// bandwidth -- under extreme skew a coarse bin can become an indivisible
  /// hot unit (see EXPERIMENTS.md).
  std::size_t reshuffle_bins = kPositionCount;
  /// Sub-partitions per node for out-of-core spilling.
  std::size_t spill_fanout = 16;

  NodePickPolicy pick_policy = NodePickPolicy::kLargestFreeMemory;
  SplitVariant split_variant = SplitVariant::kRequesterMidpoint;

  /// Worker threads *inside* each join process driving its partition table
  /// (DESIGN.md §11).  1 = the historical single-threaded data plane
  /// (scalar LocalHashTable, zero overhead); >1 fans each TupleBatch across
  /// an intra-node pool over a shared ConcurrentKeyIndex.  Join results are
  /// identical at any setting on every runtime.
  std::uint32_t intra_threads = 1;
  /// Build discipline for the shared table when intra_threads > 1.
  IntraMode intra_mode = IntraMode::kShared;

  /// Histogram-balanced initial partitioning (extension; the ss3 related
  /// work's frequency-based redistribution idea applied *up front*): the
  /// scheduler samples the build distribution and cuts the initial ranges
  /// with the greedy partitioner instead of equal widths, so skewed
  /// workloads start closer to balance and expand less.  The paper's own
  /// algorithms always start from equal ranges (the default).
  bool balanced_initial_partition = false;
  /// Sample size for the initial-partition histogram (the paper's intro
  /// notes sampling costs real work; it is charged to the scheduler node).
  std::uint64_t partition_sample = 100'000;

  /// Capture the join's output rows: every join node ships its matched
  /// (build_row_id, probe_row_id) pairs to the scheduler via kResultChunk
  /// ahead of its node report, and they land in RunMetrics::output_rows.
  /// The pipeline driver turns these into the next stage's build relation;
  /// one-shot runs leave it off (the checksum already proves the result).
  bool capture_output = false;
  /// Which pipeline stage this run executes (0-based; 0 also = standalone).
  /// Purely diagnostic on the execution path -- it tags traces, wire frames
  /// and error messages so a multi-stage failure names its stage.
  std::uint32_t pipeline_stage = 0;

  /// Optional run tracing (non-owning; must outlive the run).  When set,
  /// the scheduler and join processes emit phase transitions, expansions,
  /// memory samples and spill events -- see trace/trace.hpp.
  TraceSink* trace = nullptr;

  /// Hardware model knobs (ablation benches sweep these).
  LinkConfig link;
  CostModel cost;
  DiskConfig disk;

  /// Injected node failures and the detection knobs that go with them.
  FaultPlan faults;
  FaultToleranceConfig ft;

  /// Whether this run carries the failure-detection/recovery machinery
  /// (heartbeats, incarnation epochs, per-pair chunk accounting on the
  /// wire).  Off by default so fault-free runs reproduce the pre-recovery
  /// event timeline bit for bit.
  bool recovery_enabled() const {
    // A standby implies recovery: without heartbeats the active would never
    // ping it and the standby's own detector would falsely promote.
    return ft.force_enabled || ft.standby_scheduler || !faults.empty();
  }

  /// Schema of captured output rows: a join row carries both inputs'
  /// payloads side by side, so result chunks are costed at the combined
  /// width (capture_output runs only).
  Schema result_schema() const {
    return Schema{build_rel.schema.tuple_bytes + probe_rel.schema.tuple_bytes};
  }

  /// First kill spec targeting cluster node `node`, or nullptr.
  const KillSpec* kill_for_node(NodeId node) const;
  /// The cluster node a kill spec resolves to under the derived layout.
  NodeId kill_node_of(const KillSpec& kill) const;

  // --- derived layout: node 0 = scheduler/front-end, then sources, then
  // the join pool, then (optionally) the standby scheduler's node ---
  std::size_t total_nodes() const {
    return 1 + data_sources + join_pool_nodes +
           (ft.standby_scheduler ? 1 : 0);
  }
  NodeId scheduler_node() const { return 0; }
  NodeId source_node(std::uint32_t i) const {
    return static_cast<NodeId>(1 + i);
  }
  NodeId pool_node(std::uint32_t i) const {
    return static_cast<NodeId>(1 + data_sources + i);
  }
  /// Node hosting the standby scheduler (ft.standby_scheduler only).  On
  /// the socket runtime the driver overrides this to node 0: the
  /// coordinator process cannot be killed, so the standby shares it.
  NodeId standby_node() const {
    return static_cast<NodeId>(1 + data_sources + join_pool_nodes);
  }

  /// Sanity-check the configuration; aborts on nonsense (zero sources,
  /// initial nodes exceeding the pool, chunk of zero tuples, ...).
  void validate() const;

  /// Same checks as validate(), but returns the first problem as a
  /// human-readable message instead of aborting -- the front ends (CLI
  /// flags, the serve layer's client-submitted configs) turn this into a
  /// usage error / protocol reject rather than killing the process.
  /// nullopt means the configuration is sound.
  std::optional<std::string> validate_or_error() const;

  std::string to_string() const;
};

/// The ClusterSpec this configuration induces.
ClusterSpec make_cluster(const EhjaConfig& config);

}  // namespace ehja
