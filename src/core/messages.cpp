#include "core/messages.hpp"

// Message payloads are plain structs; this anchors the module.
