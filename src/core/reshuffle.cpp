#include "core/reshuffle.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/partition.hpp"

namespace ehja {

std::vector<PartitionMap::Entry> plan_reshuffle(
    const BinnedHistogram& merged, const std::vector<ActorId>& members) {
  EHJA_CHECK(!members.empty());
  const std::size_t k = members.size();
  EHJA_CHECK_MSG(merged.hi() - merged.lo() >= k,
                 "range narrower than the replica set");

  const PartitionResult parts =
      greedy_contiguous_partition(merged.weights(), k);

  // Bin cuts -> position boundaries.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(k + 1);
  bounds.push_back(merged.lo());
  for (std::size_t cut : parts.cuts) {
    bounds.push_back(cut >= merged.bin_count() ? merged.hi()
                                               : merged.bin_lo(cut));
  }
  bounds.push_back(merged.hi());

  // The greedy sweep can emit empty parts when one bin dominates; every
  // member must still own a non-empty range (LocalHashTable requires one),
  // so clamp each interior boundary into the window that keeps all bounds
  // strictly increasing: at least one position after its predecessor, and
  // early enough that every later member can still get one position.  The
  // weight distortion is at most one position per member.
  bounds.front() = merged.lo();
  bounds.back() = merged.hi();
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
    const std::uint64_t least = bounds[i - 1] + 1;
    const std::uint64_t most = merged.hi() - (k - i);
    bounds[i] = std::min(std::max(bounds[i], least), most);
  }
  EHJA_CHECK(std::is_sorted(bounds.begin(), bounds.end()));

  std::vector<PartitionMap::Entry> entries;
  entries.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    EHJA_CHECK(bounds[i] < bounds[i + 1]);
    entries.push_back(PartitionMap::Entry{PosRange{bounds[i], bounds[i + 1]},
                                          {members[i]}});
  }
  return entries;
}

}  // namespace ehja
