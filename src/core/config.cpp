#include "core/config.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace ehja {

const char* split_variant_name(SplitVariant variant) {
  switch (variant) {
    case SplitVariant::kRequesterMidpoint: return "requester-midpoint";
    case SplitVariant::kLinearPointer: return "linear-pointer";
  }
  return "?";
}

const char* kill_role_name(KillRole role) {
  switch (role) {
    case KillRole::kJoin: return "join";
    case KillRole::kSource: return "source";
    case KillRole::kScheduler: return "scheduler";
  }
  return "?";
}

const char* detector_kind_name(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kTimeout: return "timeout";
    case DetectorKind::kPhiAccrual: return "phi-accrual";
  }
  return "?";
}

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSplit: return "split";
    case Algorithm::kReplicate: return "replicated";
    case Algorithm::kHybrid: return "hybrid";
    case Algorithm::kOutOfCore: return "out-of-core";
    case Algorithm::kAdaptive: return "adaptive";
  }
  return "?";
}

void EhjaConfig::validate() const {
  EHJA_CHECK(initial_join_nodes >= 1);
  EHJA_CHECK_MSG(initial_join_nodes <= join_pool_nodes,
                 "initial join nodes exceed the pool");
  EHJA_CHECK(data_sources >= 1);
  EHJA_CHECK(chunk_tuples >= 1);
  EHJA_CHECK(generation_slice_tuples >= 1);
  EHJA_CHECK(source_progress_slices >= 1);
  EHJA_CHECK(build_rel.tuple_count >= 1);
  EHJA_CHECK(build_rel.schema.tuple_bytes >= 16);
  EHJA_CHECK(probe_rel.schema.tuple_bytes >= 16);
  EHJA_CHECK(node_hash_memory_bytes >= tuple_footprint(build_rel.schema));
  EHJA_CHECK(reshuffle_bins >= join_pool_nodes);
  EHJA_CHECK(spill_fanout >= 1);
  for (const KillSpec& kill : faults.kills) {
    switch (kill.role) {
      case KillRole::kJoin:
        EHJA_CHECK_MSG(kill.pool_index < join_pool_nodes,
                       "FaultPlan kill targets a node outside the join pool");
        break;
      case KillRole::kSource:
        EHJA_CHECK_MSG(kill.pool_index < data_sources,
                       "FaultPlan kill targets a nonexistent data source");
        break;
      case KillRole::kScheduler:
        EHJA_CHECK_MSG(ft.standby_scheduler,
                       "a scheduler kill needs ft.standby_scheduler (nobody "
                       "else can finish the run)");
        break;
    }
    const bool time_trigger = kill.at_time >= 0.0;
    const bool chunk_trigger = kill.after_chunks > 0;
    EHJA_CHECK_MSG(time_trigger != chunk_trigger,
                   "KillSpec needs exactly one of at_time / after_chunks");
  }
  if (recovery_enabled()) {
    EHJA_CHECK(ft.heartbeat_interval_sec > 0.0);
    EHJA_CHECK(ft.heartbeat_timeout_sec > ft.heartbeat_interval_sec);
    if (ft.detector == DetectorKind::kPhiAccrual) {
      EHJA_CHECK(ft.phi_threshold > 0.0);
    }
  }
  if (ft.standby_scheduler) {
    EHJA_CHECK_MSG(recovery_enabled(),
                   "a standby scheduler without recovery machinery is dead "
                   "weight; set ft.force_enabled or inject a fault");
  }
}

NodeId EhjaConfig::kill_node_of(const KillSpec& kill) const {
  switch (kill.role) {
    case KillRole::kJoin: return pool_node(kill.pool_index);
    case KillRole::kSource: return source_node(kill.pool_index);
    case KillRole::kScheduler: return scheduler_node();
  }
  return scheduler_node();
}

const KillSpec* EhjaConfig::kill_for_node(NodeId node) const {
  for (const KillSpec& kill : faults.kills) {
    if (kill_node_of(kill) == node) return &kill;
  }
  return nullptr;
}

std::string EhjaConfig::to_string() const {
  std::ostringstream os;
  os << algorithm_name(algorithm) << " J=" << initial_join_nodes
     << " pool=" << join_pool_nodes << " sources=" << data_sources
     << " |R|=" << build_rel.tuple_count << " |S|=" << probe_rel.tuple_count
     << " tuple=" << build_rel.schema.tuple_bytes << "B"
     << " mem=" << node_hash_memory_bytes / kMiB << "MiB"
     << " dist=" << build_rel.dist.to_string();
  if (recovery_enabled()) {
    os << " ft=on kills=" << faults.kills.size()
       << " detector=" << detector_kind_name(ft.detector);
    if (ft.standby_scheduler) os << " standby=on";
  }
  if (link.fault_drop_prob > 0.0 || link.fault_jitter_sec > 0.0) {
    os << " net-drop=" << link.fault_drop_prob
       << " net-jitter=" << link.fault_jitter_sec;
  }
  return os.str();
}

ClusterSpec make_cluster(const EhjaConfig& config) {
  config.validate();
  ClusterSpec spec = make_uniform_cluster(config.total_nodes(),
                                          config.node_hash_memory_bytes);
  spec.link = config.link;
  // Tie the network fault stream to the run seed so the same seed reproduces
  // the same jitter/drop pattern (no-op unless fault knobs are set).
  spec.link.fault_seed ^= config.seed;
  spec.cost = config.cost;
  spec.disk = config.disk;
  return spec;
}

}  // namespace ehja
