#include "core/config.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace ehja {

const char* split_variant_name(SplitVariant variant) {
  switch (variant) {
    case SplitVariant::kRequesterMidpoint: return "requester-midpoint";
    case SplitVariant::kLinearPointer: return "linear-pointer";
  }
  return "?";
}

const char* kill_role_name(KillRole role) {
  switch (role) {
    case KillRole::kJoin: return "join";
    case KillRole::kSource: return "source";
    case KillRole::kScheduler: return "scheduler";
  }
  return "?";
}

const char* detector_kind_name(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kTimeout: return "timeout";
    case DetectorKind::kPhiAccrual: return "phi-accrual";
  }
  return "?";
}

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSplit: return "split";
    case Algorithm::kReplicate: return "replicated";
    case Algorithm::kHybrid: return "hybrid";
    case Algorithm::kOutOfCore: return "out-of-core";
    case Algorithm::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<std::string> EhjaConfig::validate_or_error() const {
  if (initial_join_nodes < 1) return "initial join nodes must be >= 1";
  if (initial_join_nodes > join_pool_nodes) {
    return "initial join nodes exceed the pool";
  }
  if (data_sources < 1) return "data sources must be >= 1";
  if (chunk_tuples < 1) return "transport chunk must hold >= 1 tuple";
  if (generation_slice_tuples < 1) return "generation slice must be >= 1";
  if (source_progress_slices < 1) return "source progress cadence must be >= 1";
  if (build_rel.tuple_count < 1) return "build relation must hold >= 1 tuple";
  if (build_rel.schema.tuple_bytes < 16 || probe_rel.schema.tuple_bytes < 16) {
    return "tuples must be >= 16 bytes (id + key header)";
  }
  for (const RelationSpec* rel : {&build_rel, &probe_rel}) {
    if (!rel->data) continue;
    if (rel->data->rows.size() != rel->tuple_count) {
      return "materialized relation row count disagrees with tuple_count";
    }
    // A materialized relation rides inside the config's wire frame, whose
    // body is capped at 64 MiB (net/wire.hpp kMaxFrameBody).  Worst-case
    // varint encoding is 10 bytes per column; reject before a socket run
    // dies mid-handshake on an oversized frame.
    if (rel->data->rows.size() > (60u << 20) / 20) {
      return "materialized relation too large to ship in one config frame";
    }
  }
  if (node_hash_memory_bytes < tuple_footprint(build_rel.schema)) {
    return "per-node hash memory smaller than a single tuple footprint";
  }
  if (reshuffle_bins < join_pool_nodes) {
    return "reshuffle bins must cover the join pool (bins >= pool)";
  }
  if (spill_fanout < 1) return "spill fanout must be >= 1";
  if (intra_threads < 1) return "intra threads must be >= 1";
  if (intra_threads > 64) return "intra threads capped at 64 per process";
  for (const KillSpec& kill : faults.kills) {
    switch (kill.role) {
      case KillRole::kJoin:
        if (kill.pool_index >= join_pool_nodes) {
          return "FaultPlan kill targets a node outside the join pool";
        }
        break;
      case KillRole::kSource:
        if (kill.pool_index >= data_sources) {
          return "FaultPlan kill targets a nonexistent data source";
        }
        break;
      case KillRole::kScheduler:
        if (!ft.standby_scheduler) {
          return "a scheduler kill needs ft.standby_scheduler (nobody else "
                 "can finish the run)";
        }
        break;
    }
    const bool time_trigger = kill.at_time >= 0.0;
    const bool chunk_trigger = kill.after_chunks > 0;
    if (time_trigger == chunk_trigger) {
      return "KillSpec needs exactly one of at_time / after_chunks";
    }
  }
  // The phi knobs are checked whenever the phi detector is *selected*, not
  // only when recovery is armed: `--detector=phi --phi-window=0` must be a
  // usage error up front, not undefined behaviour the first time a fault
  // plan arms the detector.
  if (ft.detector == DetectorKind::kPhiAccrual) {
    if (ft.phi_threshold <= 0.0) {
      return "phi detector needs a positive suspicion threshold";
    }
    if (ft.phi_window < 1) {
      return "phi detector needs an inter-arrival window of >= 1 sample";
    }
  }
  if (recovery_enabled()) {
    if (ft.heartbeat_interval_sec <= 0.0) {
      return "heartbeat interval must be > 0";
    }
    if (ft.heartbeat_timeout_sec <= ft.heartbeat_interval_sec) {
      return "heartbeat timeout must exceed the heartbeat interval";
    }
  }
  if (ft.standby_scheduler && !recovery_enabled()) {
    return "a standby scheduler without recovery machinery is dead weight; "
           "set ft.force_enabled or inject a fault";
  }
  return std::nullopt;
}

void EhjaConfig::validate() const {
  if (const std::optional<std::string> err = validate_or_error()) {
    EHJA_CHECK_MSG(false, err->c_str());
  }
}

NodeId EhjaConfig::kill_node_of(const KillSpec& kill) const {
  switch (kill.role) {
    case KillRole::kJoin: return pool_node(kill.pool_index);
    case KillRole::kSource: return source_node(kill.pool_index);
    case KillRole::kScheduler: return scheduler_node();
  }
  return scheduler_node();
}

const KillSpec* EhjaConfig::kill_for_node(NodeId node) const {
  for (const KillSpec& kill : faults.kills) {
    if (kill_node_of(kill) == node) return &kill;
  }
  return nullptr;
}

std::string EhjaConfig::to_string() const {
  std::ostringstream os;
  os << algorithm_name(algorithm) << " J=" << initial_join_nodes
     << " pool=" << join_pool_nodes << " sources=" << data_sources
     << " |R|=" << build_rel.tuple_count << " |S|=" << probe_rel.tuple_count
     << " tuple=" << build_rel.schema.tuple_bytes << "B"
     << " mem=" << node_hash_memory_bytes / kMiB << "MiB"
     << " dist=" << build_rel.dist.to_string();
  if (intra_threads > 1) {
    os << " intra=" << intra_threads << "/" << intra_mode_name(intra_mode);
  }
  if (capture_output) os << " capture=on stage=" << pipeline_stage;
  if (recovery_enabled()) {
    os << " ft=on kills=" << faults.kills.size()
       << " detector=" << detector_kind_name(ft.detector);
    if (ft.standby_scheduler) os << " standby=on";
  }
  if (link.fault_drop_prob > 0.0 || link.fault_jitter_sec > 0.0) {
    os << " net-drop=" << link.fault_drop_prob
       << " net-jitter=" << link.fault_jitter_sec;
  }
  return os.str();
}

ClusterSpec make_cluster(const EhjaConfig& config) {
  config.validate();
  ClusterSpec spec = make_uniform_cluster(config.total_nodes(),
                                          config.node_hash_memory_bytes);
  spec.link = config.link;
  // Tie the network fault stream to the run seed so the same seed reproduces
  // the same jitter/drop pattern (no-op unless fault knobs are set).
  spec.link.fault_seed ^= config.seed;
  spec.cost = config.cost;
  spec.disk = config.disk;
  return spec;
}

}  // namespace ehja
