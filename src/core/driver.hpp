// One-call entry point: configure, wire, run, collect.
//
// This is the library's main public API.  Quickstart:
//
//   ehja::EhjaConfig config;
//   config.algorithm = ehja::Algorithm::kHybrid;
//   config.initial_join_nodes = 4;
//   config.build_rel.tuple_count = 10'000'000;
//   config.probe_rel.tuple_count = 10'000'000;
//   ehja::RunResult result = ehja::run_ehja(config);
//   std::cout << result.metrics.total_time() << " virtual seconds\n";
#pragma once

#include <optional>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/query_run.hpp"
#include "join/serial_join.hpp"

namespace ehja {

enum class RuntimeKind {
  kSim,     // deterministic discrete-event runtime (virtual time; figures)
  kThread,  // real threads (no timing model; protocol stress testing)
  kSocket,  // real processes over TCP (runtime/socket_runtime.hpp)
};

struct RunResult {
  RunMetrics metrics;
  RuntimeKind runtime = RuntimeKind::kSim;

  const JoinResult& join() const { return metrics.join; }
};

/// Knobs for callers that need more than the classic one-query layout (the
/// pipeline driver): an external expansion provider and/or an explicit
/// placement.  Default-constructed RunOptions reproduce run_ehja(config,
/// kind) exactly.
struct RunOptions {
  RuntimeKind kind = RuntimeKind::kSim;
  /// When set (both callbacks), the query's ResourcePool consults this
  /// provider for every expansion beyond placement.pool_nodes -- pair it
  /// with an empty pool_nodes list to route *all* expansion through it.
  PoolHooks pool_hooks;
  /// Override the config-derived placement (node ids must exist in the
  /// cluster make_cluster(config) induces).
  std::optional<QueryPlacement> placement;
};

/// Execute one distributed join per `config` and return its metrics.
RunResult run_ehja(const EhjaConfig& config,
                   RuntimeKind kind = RuntimeKind::kSim);

/// As above, with explicit pool hooks / placement.
RunResult run_ehja(const EhjaConfig& config, const RunOptions& options);

/// The serial oracle: materialize both relations exactly as the configured
/// data sources would generate them and join them with Algorithm 1.  Every
/// run_ehja() with the same config must produce an identical JoinResult.
JoinResult reference_join(const EhjaConfig& config);

}  // namespace ehja
