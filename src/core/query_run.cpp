#include "core/query_run.hpp"

#include <utility>

#include "core/data_source.hpp"
#include "core/join_process.hpp"
#include "core/scheduler.hpp"
#include "util/assert.hpp"

namespace ehja {

QueryPlacement QueryPlacement::from_config(const EhjaConfig& config,
                                           bool standby_on_scheduler_node) {
  QueryPlacement p;
  p.scheduler_node = config.scheduler_node();
  p.source_nodes.reserve(config.data_sources);
  for (std::uint32_t i = 0; i < config.data_sources; ++i) {
    p.source_nodes.push_back(config.source_node(i));
  }
  p.join_nodes.reserve(config.initial_join_nodes);
  for (std::uint32_t j = 0; j < config.initial_join_nodes; ++j) {
    p.join_nodes.push_back(config.pool_node(j));
  }
  p.pool_nodes.reserve(config.join_pool_nodes - config.initial_join_nodes);
  for (std::uint32_t j = config.initial_join_nodes;
       j < config.join_pool_nodes; ++j) {
    p.pool_nodes.push_back(config.pool_node(j));
  }
  if (config.ft.standby_scheduler) {
    p.standby_node = standby_on_scheduler_node ? config.scheduler_node()
                                               : config.standby_node();
  }
  return p;
}

QueryRun::QueryRun(Runtime& rt, std::shared_ptr<const EhjaConfig> config)
    : rt_(rt),
      config_(std::move(config)),
      scheduler_id_(std::make_shared<ActorId>(kInvalidActor)) {}

QueryRun::~QueryRun() = default;

ActorId QueryRun::record(ActorId id) {
  std::lock_guard<std::mutex> lock(spawned_mutex_);
  spawned_.push_back(id);
  return id;
}

std::vector<ActorId> QueryRun::spawned_actors() const {
  std::lock_guard<std::mutex> lock(spawned_mutex_);
  return spawned_;
}

void QueryRun::start(const QueryPlacement& placement) {
  EHJA_CHECK(!started_);
  started_ = true;
  EHJA_CHECK(placement.source_nodes.size() == config_->data_sources);
  EHJA_CHECK(placement.join_nodes.size() == config_->initial_join_nodes);

  Runtime* rt = &rt_;
  const auto cfg = config_;

  // The scheduler instantiates join processes on demand through this hook
  // ("a join process on node w is instantiated", paper ss4.1.1);
  // replacement data sources come through the sibling hook.  Each scheduler
  // instance (active and standby) gets closures bound to its own id cell,
  // so a recruit obeys whichever coordinator spawned it.  Everything the
  // hooks spawn lands in the retirement ledger.
  auto make_spawn_join = [this, rt, cfg](std::shared_ptr<ActorId> sched) {
    return [this, rt, cfg, sched](NodeId node) {
      return record(
          rt->spawn(node, std::make_unique<JoinProcessActor>(cfg, *sched)));
    };
  };
  auto make_spawn_source = [this, rt, cfg](std::shared_ptr<ActorId> sched) {
    return [this, rt, cfg, sched](NodeId node, std::uint32_t index) {
      return record(rt->spawn(
          node, std::make_unique<DataSourceActor>(cfg, index, *sched)));
    };
  };
  auto spawn_join = make_spawn_join(scheduler_id_);

  auto scheduler = std::make_unique<SchedulerActor>(
      cfg, spawn_join, make_spawn_source(scheduler_id_));
  scheduler_raw_ = scheduler.get();
  if (on_done_) scheduler_raw_->set_on_done(on_done_);
  *scheduler_id_ =
      record(rt->spawn(placement.scheduler_node, std::move(scheduler)));

  if (cfg->ft.standby_scheduler) {
    EHJA_CHECK(placement.standby_node.has_value());
    auto standby_id = std::make_shared<ActorId>(kInvalidActor);
    auto standby = std::make_unique<SchedulerActor>(
        cfg, make_spawn_join(standby_id), make_spawn_source(standby_id));
    standby_raw_ = standby.get();
    if (on_done_) standby_raw_->set_on_done(on_done_);
    *standby_id = record(rt->spawn(*placement.standby_node,
                                   std::move(standby)));
    standby_raw_->wire_standby(*scheduler_id_);
    scheduler_raw_->set_standby(*standby_id);
  }

  std::vector<ActorId> sources;
  sources.reserve(cfg->data_sources);
  for (std::uint32_t i = 0; i < cfg->data_sources; ++i) {
    sources.push_back(record(rt->spawn(
        placement.source_nodes[i],
        std::make_unique<DataSourceActor>(cfg, i, *scheduler_id_))));
  }

  std::vector<ActorId> initial_joins;
  initial_joins.reserve(cfg->initial_join_nodes);
  for (std::uint32_t j = 0; j < cfg->initial_join_nodes; ++j) {
    initial_joins.push_back(spawn_join(placement.join_nodes[j]));
  }

  ResourcePool pool(rt->cluster(), placement.pool_nodes, cfg->pick_policy);
  if (hooks_.acquire) pool.set_hooks(hooks_);

  scheduler_raw_->wire(std::move(sources), std::move(initial_joins),
                       std::move(pool), placement.source_nodes,
                       placement.join_nodes);
}

bool QueryRun::finished() const {
  if (scheduler_raw_ != nullptr && scheduler_raw_->finished()) return true;
  return standby_raw_ != nullptr && standby_raw_->finished();
}

RunMetrics QueryRun::collect_metrics() const {
  const SchedulerActor* finished =
      scheduler_raw_ != nullptr && scheduler_raw_->finished()
          ? scheduler_raw_
          : standby_raw_ != nullptr && standby_raw_->finished() ? standby_raw_
                                                                : nullptr;
  EHJA_CHECK_MSG(finished != nullptr,
                 "runtime stopped before the join completed");
  return finished->metrics();
}

}  // namespace ehja
