// Counter-termination drain protocol (scheduler side).
//
// Chunks can be in flight or be re-forwarded between nodes (stale-source
// routing), so "sources are done" does not mean "nodes have everything".
// The scheduler polls every join node for its cumulative (data chunks
// received, data chunks forwarded) counters and declares a phase drained
// when
//     received == chunks sent by sources + forwarded by nodes
// and the totals are identical across two consecutive polls (Mattern-style
// counter termination detection -- a single matching poll can be fooled by
// a chunk counted at the receiver but not yet at its sender's poll).
//
// This class is the pure state machine: rounds, epochs, ack accounting and
// the two-consecutive-poll stability rule.  The scheduler owns the wire
// side (broadcasting kDrainProbe, reacting to the outcome) and aborts the
// drain when an expansion op starts mid-drain; op completion re-arms it.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>

#include "core/messages.hpp"

namespace ehja {

class DrainProtocol {
 public:
  enum class Outcome {
    kStale,    // ack for an older epoch or an aborted round: ignore
    kPending,  // round still collecting acks
    kRepoll,   // round complete but not provably drained: poll again
    kDrained,  // two consecutive balanced, identical rounds: phase is over
  };

  /// Arm a fresh drain: forget the stability history.  Called at every
  /// phase transition into a drain and after an abort.
  void arm();

  /// Begin the next poll round; returns the probe to broadcast.  Requires
  /// an armed (non-aborted, non-finished) drain.
  DrainProbePayload begin_round();

  /// An expansion op invalidated the drain: outstanding acks of the
  /// current round become stale.  arm() + begin_round() restart it.
  void abort();

  /// Account one ack from join actor `from`.  `join_count` is the number of
  /// polled join actors, `expected_source_chunks` the cumulative data
  /// chunks the sources report having sent for the phases being drained.
  /// Acks from an older epoch, an aborted round, or a sender already
  /// counted this round (duplicate delivery) are rejected as kStale.
  Outcome on_ack(ActorId from, const DrainAckPayload& ack,
                 std::size_t join_count,
                 std::uint64_t expected_source_chunks);

  /// Monotonic over the whole run (stale-ack detection across drains).
  std::uint64_t epoch() const { return epoch_; }
  /// Raise the epoch floor at scheduler failover: the promoted scheduler
  /// must never issue a round epoch its predecessor already used, or a
  /// straggler ack could be credited to the wrong round.  Only raises.
  void restore_epoch(std::uint64_t epoch) {
    if (epoch > epoch_) epoch_ = epoch;
  }
  bool in_round() const { return in_round_; }
  /// Received-counter total of the previous round (trace/debugging).
  std::uint64_t prev_received() const {
    return prev_ ? prev_->first : 0;
  }

 private:
  std::uint64_t epoch_ = 0;
  bool in_round_ = false;
  std::set<ActorId> acked_;  // senders counted this round (dedupe)
  std::uint64_t received_ = 0;
  std::uint64_t forwarded_ = 0;
  /// (received, forwarded) totals of the previous completed round.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> prev_;
};

}  // namespace ehja
