// NodeTable: the join process's partition table with optional intra-node
// parallelism.
//
// A thin dispatcher in front of the two table implementations.  With
// intra_threads == 1 it holds the scalar LocalHashTable -- the historical
// single-threaded path, byte for byte, with zero added indirection on the
// hot loops.  With intra_threads > 1 it holds a ConcurrentKeyIndex plus an
// IntraPool and fans insert_batch / probe_batch out across the pool's lanes
// (DESIGN.md §11), in the build discipline picked by IntraMode.
//
// Determinism contract: probe results are per-lane BatchProbeResults summed
// in lane order; since every field is a commutative sum over rows, the
// aggregate equals the serial result exactly -- sim, thread and socket runs
// stay byte-identical to the serial oracle at any thread count.  Everything
// outside the two fan-out calls (extract_range, set_range, histogram,
// clear, scalar insert/probe) stays serial: those run in actor context with
// no parallel region in flight, which is precisely what lets the concurrent
// table do its capacity growth and index rebuilds with plain bookkeeping.
//
// Small batches skip the fan-out entirely (kMinRowsPerLane): waking the
// pool for a few hundred rows costs more than the rows do, and the tail
// chunks of a drain are exactly that shape.
//
// Lives in core/ (not hash/) because it composes hash/ with runtime/ --
// ehja_hash must stay linkable without the runtime layer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/concurrent_key_index.hpp"
#include "hash/intra_mode.hpp"
#include "hash/local_hash_table.hpp"
#include "runtime/intra_pool.hpp"

namespace ehja {

class NodeTable {
 public:
  using ProbeResult = LocalHashTable::ProbeResult;
  using BatchProbeResult = LocalHashTable::BatchProbeResult;

  /// Below this many rows per lane the fan-out is pure overhead and the
  /// batch goes through the serial path of whichever table is live.
  static constexpr std::size_t kMinRowsPerLane = 256;

  NodeTable(Schema schema, PosRange range, std::uint32_t intra_threads,
            IntraMode intra_mode)
      : mode_(intra_mode) {
    if (intra_threads <= 1) {
      scalar_.emplace(schema, range);
    } else {
      par_.emplace(schema, range);
      pool_.emplace(intra_threads);
    }
  }

  const PosRange& range() const {
    return scalar_ ? scalar_->range() : par_->range();
  }
  const Schema& schema() const {
    return scalar_ ? scalar_->schema() : par_->schema();
  }
  std::uint64_t tuple_count() const {
    return scalar_ ? scalar_->tuple_count() : par_->tuple_count();
  }
  std::uint64_t footprint_bytes() const {
    return scalar_ ? scalar_->footprint_bytes() : par_->footprint_bytes();
  }
  bool empty() const { return tuple_count() == 0; }

  void insert(const Tuple& t) {
    scalar_ ? scalar_->insert(t) : par_->insert(t);
  }

  void insert_batch(const TupleBatch& batch) {
    if (scalar_) {
      scalar_->insert_batch(batch);
      return;
    }
    const std::size_t n = batch.size();
    const unsigned lanes = pool_->threads();
    if (n < kMinRowsPerLane * lanes) {
      par_->insert_batch(batch);
      return;
    }
    if (mode_ == IntraMode::kMerge) {
      par_->begin_merge(batch, lanes);
      pool_->run([&](unsigned t) { par_->scatter_rows(batch, t, lanes); });
      pool_->run([&](unsigned t) { par_->merge_subrange(batch, t, lanes); });
      par_->finish_merge(batch);
    } else {
      par_->reserve_rows(n);
      pool_->run([&](unsigned t) {
        const auto [begin, end] = IntraPool::slice(n, lanes, t);
        par_->insert_rows(batch, begin, end);
      });
    }
  }

  ProbeResult probe(const Tuple& s, std::vector<Tuple>* sink = nullptr) {
    return scalar_ ? scalar_->probe(s, sink) : par_->probe(s, sink);
  }

  /// `sink`, when non-null, receives one Tuple{build_row_id, probe_row_id}
  /// per match.  The parallel path captures into per-lane vectors and
  /// concatenates them in lane order, so the appended run is deterministic
  /// for a given batch at any thread count (a row's matches stay in that
  /// row's lane and lanes cover rows in order).
  BatchProbeResult probe_batch(const TupleBatch& batch,
                               std::vector<Tuple>* sink = nullptr) {
    if (scalar_) return scalar_->probe_batch(batch, sink);
    const std::size_t n = batch.size();
    const unsigned lanes = pool_->threads();
    if (n < kMinRowsPerLane * lanes) return par_->probe_batch(batch, sink);
    if (!par_->empty()) par_->ensure_index();
    std::vector<BatchProbeResult> per_lane(lanes);
    std::vector<std::vector<Tuple>> lane_rows(sink ? lanes : 0);
    pool_->run([&](unsigned t) {
      const auto [begin, end] = IntraPool::slice(n, lanes, t);
      per_lane[t] = par_->probe_rows(batch, begin, end,
                                     sink ? &lane_rows[t] : nullptr);
    });
    BatchProbeResult agg;
    for (const BatchProbeResult& r : per_lane) {
      agg.probed += r.probed;
      agg.matches += r.matches;
      agg.comparisons += r.comparisons;
      agg.checksum_delta += r.checksum_delta;
    }
    if (sink) {
      for (const std::vector<Tuple>& rows : lane_rows) {
        sink->insert(sink->end(), rows.begin(), rows.end());
      }
    }
    return agg;
  }

  std::vector<Tuple> extract_range(const PosRange& sub) {
    return scalar_ ? scalar_->extract_range(sub) : par_->extract_range(sub);
  }

  void set_range(const PosRange& next) {
    scalar_ ? scalar_->set_range(next) : par_->set_range(next);
  }

  BinnedHistogram histogram(std::size_t bins) const {
    return scalar_ ? scalar_->histogram(bins) : par_->histogram(bins);
  }

  void clear() { scalar_ ? scalar_->clear() : par_->clear(); }

 private:
  IntraMode mode_;
  std::optional<LocalHashTable> scalar_;
  std::optional<ConcurrentKeyIndex> par_;
  std::optional<IntraPool> pool_;
};

}  // namespace ehja
