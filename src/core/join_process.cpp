#include "core/join_process.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

JoinProcessActor::JoinProcessActor(std::shared_ptr<const EhjaConfig> config,
                                   ActorId scheduler)
    : config_(std::move(config)), scheduler_(scheduler), disk_(config_->disk) {}

std::string JoinProcessActor::name() const {
  std::ostringstream os;
  os << "join[" << id() << "]";
  return os.str();
}

std::uint64_t JoinProcessActor::budget() const {
  // Standalone, the cluster is derived from this config and the two sides
  // are equal.  Serve mode: the cluster's nodes are whole warm workers
  // shared by many queries, and this query's share is its own configured
  // per-node budget (what admission charged for it) -- never the worker.
  return std::min(rt().cluster().node(node()).hash_memory_bytes,
                  config_->node_hash_memory_bytes);
}

std::uint64_t JoinProcessActor::build_tuples_held() const {
  std::uint64_t held = table_ ? table_->tuple_count() : 0;
  if (spiller_) held += spiller_->build_tuples();
  return held;
}

void JoinProcessActor::on_message(const Message& msg) {
  const Tag tag = static_cast<Tag>(msg.tag);
  // Scheduler-control tags are honoured only from the scheduler currently
  // obeyed.  A falsely-suspected coordinator (standby failover) keeps
  // running until its own handoff notice arrives; its stale control traffic
  // must not fork this node's state.  Data tags (kDataChunk, kForwardEnd)
  // flow between peers and sources and are exempt.
  // (kInvalidActor marks a harness-injected message; no live actor has it.)
  if (tag != Tag::kDataChunk && tag != Tag::kForwardEnd &&
      tag != Tag::kSchedulerHandoff && msg.from != scheduler_ &&
      msg.from != kInvalidActor) {
    EHJA_WARN(name(), "dropping control tag ", static_cast<int>(msg.tag),
              " from non-scheduler actor ", msg.from);
    return;
  }
  switch (tag) {
    case Tag::kJoinInit:
      charge(config_->cost.control_handle_sec);
      handle_init(msg.as<JoinInitPayload>());
      break;
    case Tag::kDataChunk:
      handle_chunk(msg.from, msg.as<ChunkPayload>());
      break;
    case Tag::kForwardEnd: {
      charge(config_->cost.control_handle_sec);
      const auto& end = msg.as<ForwardEndPayload>();
      if (end.op_id != 0) {
        OpCompletePayload done;
        done.op_id = end.op_id;
        done.tuples_received = build_tuples_held();
        send(scheduler_, make_message(Tag::kOpComplete, done,
                                      kControlWireBytes));
      }
      break;
    }
    case Tag::kSplitRequest:
      handle_split_request(msg.as<SplitRequestPayload>());
      break;
    case Tag::kHandoffStart:
      charge(config_->cost.control_handle_sec);
      handle_handoff(msg.as<HandoffStartPayload>());
      break;
    case Tag::kRelief:
      charge(config_->cost.control_handle_sec);
      memory_request_pending_ = false;
      break;
    case Tag::kSwitchToSpill:
      charge(config_->cost.control_handle_sec);
      enter_spill_mode();
      break;
    case Tag::kDrainProbe: {
      charge(config_->cost.control_handle_sec);
      DrainAckPayload ack;
      ack.epoch = msg.as<DrainProbePayload>().epoch;
      ack.data_chunks_received = chunks_received_;
      ack.data_chunks_forwarded = chunks_forwarded_;
      std::size_t wire = kControlWireBytes;
      if (config_->recovery_enabled()) {
        ack.received_from = received_from_;
        ack.forwarded_to = forwarded_to_;
        wire += 24 * (ack.received_from.size() + ack.forwarded_to.size());
      }
      send(scheduler_, make_message(Tag::kDrainAck, std::move(ack), wire));
      break;
    }
    case Tag::kPing:
      charge(config_->cost.control_handle_sec);
      send(scheduler_, make_signal(Tag::kPong));
      break;
    case Tag::kRecoveryFence:
      handle_fence(msg.as<RecoveryFencePayload>());
      break;
    case Tag::kRangeReset:
      handle_range_reset(msg.as<RangeResetPayload>());
      break;
    case Tag::kHistogramRequest:
      handle_histogram_request(msg.as<HistogramRequestPayload>());
      break;
    case Tag::kReshuffleMove:
      handle_reshuffle(msg.as<ReshuffleMovePayload>());
      break;
    case Tag::kReportRequest:
      handle_report_request();
      break;
    case Tag::kSchedulerHandoff:
      handle_scheduler_handoff(msg);
      break;
    default:
      EHJA_CHECK_MSG(false, "join process received unexpected tag");
  }
}

void JoinProcessActor::handle_init(const JoinInitPayload& init) {
  EHJA_CHECK_MSG(!table_ && !spiller_, "double init");
  role_ = init.role;
  range_ = init.range;
  if (config_->algorithm == Algorithm::kOutOfCore) {
    // The baseline never expands: on overflow it runs the basic GRACE
    // out-of-core join of ss2 (everything through the disk).
    spiller_.emplace(config_->build_rel.schema, range_, budget(),
                     config_->spill_fanout, disk_, config_->cost,
                     static_cast<std::uint64_t>(id()) + 1,
                     SpillPolicy::kEvictAll);
  } else {
    table_.emplace(config_->build_rel.schema, range_, config_->intra_threads,
                   config_->intra_mode);
  }
  EHJA_DEBUG(name(), "init role=", static_cast<int>(init.role), " range=[",
             range_.lo, ",", range_.hi, ")");
  // Replay anything that raced ahead of the init message.
  std::vector<std::pair<ActorId, ChunkPayload>> stashed;
  stashed.swap(pre_init_chunks_);
  for (const auto& [from, payload] : stashed) {
    handle_chunk(from, payload);
  }
}

void JoinProcessActor::note_overshoot() {
  if (!table_) return;
  const std::uint64_t footprint = table_->footprint_bytes();
  if (footprint > budget()) {
    max_overshoot_bytes_ =
        std::max(max_overshoot_bytes_, footprint - budget());
  }
}

void JoinProcessActor::after_insert_overflow_check() {
  note_overshoot();
  if (!table_ || table_->footprint_bytes() <= budget()) return;
  if (memory_request_pending_ || frozen_ || !expansion_enabled_) return;
  MemoryFullPayload full;
  full.footprint_bytes = table_->footprint_bytes();
  full.budget_bytes = budget();
  memory_request_pending_ = true;
  send(scheduler_, make_message(Tag::kMemoryFull, full, kControlWireBytes));
}

bool JoinProcessActor::fence_drops(std::uint64_t chunk_epoch,
                                   std::uint64_t pos) const {
  for (const RecoveryFencePayload& fence : fences_) {
    if (chunk_epoch >= fence.epoch) continue;
    for (const PosRange& r : fence.lost) {
      if (r.contains(pos)) return true;
    }
  }
  return false;
}

void JoinProcessActor::handle_chunk(ActorId from, const ChunkPayload& payload) {
  if (const KillSpec* kill = config_->kill_for_node(node());
      kill != nullptr && kill->role == KillRole::kJoin &&
      kill->after_chunks > 0 &&
      chunks_received_ + 1 == kill->after_chunks) {
    EHJA_WARN(name(), "fault injection: node ", node(), " dies on chunk ",
              kill->after_chunks);
    rt().kill_node(node());
    return;
  }
  if (!table_ && !spiller_) {
    // Raced ahead of kJoinInit (thread runtime); counted when replayed.
    pre_init_chunks_.emplace_back(from, payload);
    return;
  }
  ++chunks_received_;
  if (config_->recovery_enabled()) ++received_from_[from];
  const Chunk& chunk = payload.chunk;
  charge(static_cast<double>(chunk.size()) * config_->cost.tuple_pack_sec);
  if (fences_.empty()) {
    if (chunk.rel == config_->build_rel.tag) {
      handle_build_chunk(chunk, payload.epoch);
    } else {
      handle_probe_chunk(chunk);
    }
    return;
  }
  // Filter out tuples a recovery fence covers: they belong to ranges being
  // rebuilt, and the source replay re-delivers them under the new epoch.
  // The filter runs over the batch's precomputed position column.
  Chunk kept;
  kept.rel = chunk.rel;
  kept.batch.reserve(chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (fence_drops(payload.epoch, chunk.batch.position(i))) {
      ++fence_dropped_tuples_;
    } else {
      kept.batch.append_row(chunk.batch, i);
    }
  }
  if (retired_) {
    // A retired node owns no map entry; anything surviving the fences here
    // indicates a routing bug upstream, so keep it loud.
    EHJA_CHECK_MSG(kept.empty(),
                   "data tuple survived fences at a retired node");
    return;
  }
  if (kept.empty()) return;
  if (kept.rel == config_->build_rel.tag) {
    handle_build_chunk(kept, payload.epoch);
  } else {
    handle_probe_chunk(kept);
  }
}

void JoinProcessActor::handle_build_chunk(const Chunk& chunk,
                                          std::uint64_t epoch) {
  const Schema& schema = config_->build_rel.schema;
  if (frozen_) {
    // Paper ss4.2.2: a full node forwards arriving build data to the fresh
    // replica of its range.  The forward keeps the incoming chunk's epoch:
    // the tuples are the original sender's incarnation, not this node's.
    chunks_forwarded_ +=
        ship_batch(handoff_target_, chunk.batch, chunk.rel, schema, epoch);
    return;
  }

  // Partition pass over the batch's position column: tuples we own stay,
  // tuples given away in splits (stale-source routing) ship hop-by-hop.
  // The common case -- every position owned -- inserts the incoming batch
  // wholesale without copying a row.
  const PosRange owned = spiller_ ? spiller_->range() : table_->range();
  std::size_t owned_rows = 0;
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (owned.contains(chunk.batch.position(i))) ++owned_rows;
  }
  TupleBatch mine_rows;
  const TupleBatch* mine = &chunk.batch;
  if (owned_rows != chunk.size()) {
    mine_rows.reserve(owned_rows);
    std::map<ActorId, TupleBatch> foreign;
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const std::uint64_t pos = chunk.batch.position(i);
      if (owned.contains(pos)) {
        mine_rows.append_row(chunk.batch, i);
        continue;
      }
      ActorId target = kInvalidActor;
      for (const auto& [range, actor] : forward_table_) {
        if (range.contains(pos)) {
          target = actor;
          break;
        }
      }
      EHJA_CHECK_MSG(target != kInvalidActor,
                     "build tuple for a range this node never owned");
      foreign[target].append_row(chunk.batch, i);
    }
    for (auto& [target, rows] : foreign) {
      chunks_forwarded_ += ship_batch(target, rows, chunk.rel, schema, epoch);
    }
    mine = &mine_rows;
  }

  if (spiller_) {
    double seconds = 0.0;
    for (std::size_t i = 0; i < mine->size(); ++i) {
      seconds += spiller_->add_build(mine->tuple(i));
    }
    charge(seconds);
    return;
  }
  charge(static_cast<double>(mine->size()) * config_->cost.tuple_insert_sec);
  table_->insert_batch(*mine);
  after_insert_overflow_check();
  // Periodic memory sample for the trace (chunks 1, 5, 9, ...).
  if (config_->trace != nullptr && (chunks_received_ & 3u) == 1) {
    config_->trace->emit(now(), TraceKind::kMemSample, id(),
                         static_cast<std::int64_t>(table_->footprint_bytes()));
  }
}

void JoinProcessActor::handle_probe_chunk(const Chunk& chunk) {
  probe_tuples_ += chunk.size();
  if (spiller_) {
    double seconds = 0.0;
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      seconds +=
          spiller_->add_probe(chunk.batch.tuple(i), result_, capture_sink());
    }
    charge(seconds);
    return;
  }
  const auto agg = table_->probe_batch(chunk.batch, capture_sink());
  result_.matches += agg.matches;
  result_.checksum += agg.checksum_delta;
  charge(static_cast<double>(agg.probed) * config_->cost.tuple_probe_sec +
         static_cast<double>(agg.comparisons) *
             config_->cost.tuple_compare_sec +
         static_cast<double>(agg.matches) * config_->cost.match_emit_sec);
}

void JoinProcessActor::handle_split_request(const SplitRequestPayload& req) {
  charge(config_->cost.control_handle_sec);
  EHJA_CHECK_MSG(config_->algorithm == Algorithm::kSplit ||
                     config_->algorithm == Algorithm::kAdaptive,
                 "split request outside a splitting algorithm");
  EHJA_CHECK_MSG(!spiller_, "split request after switching to spill mode");
  EHJA_CHECK(req.moved.lo > range_.lo && req.moved.hi == range_.hi);

  std::vector<Tuple> moved = table_->extract_range(req.moved);
  range_ = PosRange{range_.lo, req.moved.lo};
  table_->set_range(range_);
  forward_table_.emplace_back(req.moved, req.target);

  chunks_forwarded_ += ship(req.target, std::move(moved),
                            config_->build_rel.tag,
                            config_->build_rel.schema, epoch_);
  ForwardEndPayload end;
  end.op_id = req.op_id;
  send(req.target, make_message(Tag::kForwardEnd, end, kControlWireBytes));
  note_overshoot();
  EHJA_DEBUG(name(), "split: kept [", range_.lo, ",", range_.hi, ")");
}

void JoinProcessActor::handle_handoff(const HandoffStartPayload& handoff) {
  EHJA_CHECK(config_->algorithm == Algorithm::kReplicate ||
             config_->algorithm == Algorithm::kHybrid ||
             config_->algorithm == Algorithm::kAdaptive);
  frozen_ = true;
  handoff_target_ = handoff.target;
  // In-flight and stale chunks are forwarded as they arrive (handle_build_
  // chunk); the op's data stream terminator can go out immediately.
  ForwardEndPayload end;
  end.op_id = handoff.op_id;
  send(handoff.target, make_message(Tag::kForwardEnd, end, kControlWireBytes));
}

void JoinProcessActor::handle_histogram_request(
    const HistogramRequestPayload& req) {
  EHJA_CHECK(table_.has_value());
  // Reshuffle begins: the build phase is fully drained, so a frozen replica
  // can resume accepting tuples (they now come from its own set); the
  // redistribution itself must not trigger further expansion.
  frozen_ = false;
  expansion_enabled_ = false;
  BinnedHistogram hist = table_->histogram(req.bins);
  charge(static_cast<double>(table_->range().width()) * 2e-9 +
         config_->cost.control_handle_sec);
  HistogramReplyPayload reply;
  reply.set_id = req.set_id;
  reply.round = req.round;
  reply.histogram = std::move(hist);
  const std::size_t wire = reply.histogram.wire_bytes();
  send(scheduler_, make_message(Tag::kHistogramReply, std::move(reply), wire));
}

void JoinProcessActor::handle_reshuffle(const ReshuffleMovePayload& move) {
  charge(config_->cost.control_handle_sec);
  EHJA_CHECK(table_.has_value());
  PosRange mine{0, 0};
  for (const auto& entry : move.plan) {
    EHJA_CHECK(entry.owners.size() == 1);
    if (entry.owners.front() == id()) {
      mine = entry.range;
      continue;
    }
    std::vector<Tuple> out = table_->extract_range(entry.range);
    if (!out.empty()) {
      chunks_forwarded_ += ship(entry.owners.front(), std::move(out),
                                config_->build_rel.tag,
                                config_->build_rel.schema, epoch_);
    }
  }
  EHJA_CHECK_MSG(!mine.empty(), "reshuffle plan omits this member");
  table_->set_range(mine);
  range_ = mine;
  ReshuffleDonePayload done;
  done.round = move.round;
  send(scheduler_,
       make_message(Tag::kReshuffleDone, done, kControlWireBytes));
  note_overshoot();
}

void JoinProcessActor::enter_spill_mode() {
  EHJA_CHECK_MSG(!spiller_, "already spilling");
  EHJA_CHECK(table_.has_value());
  spiller_.emplace(config_->build_rel.schema, range_, budget(),
                   config_->spill_fanout, disk_, config_->cost,
                   static_cast<std::uint64_t>(id()) + 1);
  // Re-home the current table contents through the spiller (evictions are
  // charged as real disk writes).
  std::vector<Tuple> all = table_->extract_range(range_);
  double seconds = 0.0;
  for (const Tuple& t : all) seconds += spiller_->add_build(t);
  charge(seconds);
  table_.reset();
  memory_request_pending_ = false;
  EHJA_INFO(name(), "pool exhausted: switched to out-of-core spilling");
}

std::uint64_t JoinProcessActor::ship(ActorId target, std::vector<Tuple> tuples,
                                     RelTag rel, const Schema& schema,
                                     std::uint64_t epoch) {
  if (tuples.empty()) return 0;
  return ship_batch(target, TupleBatch::from_tuples(tuples), rel, schema,
                    epoch);
}

std::uint64_t JoinProcessActor::ship_batch(ActorId target,
                                           const TupleBatch& batch, RelTag rel,
                                           const Schema& schema,
                                           std::uint64_t epoch) {
  EHJA_CHECK(target != kInvalidActor);
  if (batch.empty()) return 0;
  charge(static_cast<double>(batch.size()) * config_->cost.tuple_pack_sec);
  std::uint64_t chunks = 0;
  std::size_t offset = 0;
  // Bulk re-chunk: each outgoing chunk is a contiguous column slice.
  while (offset < batch.size()) {
    const std::size_t n =
        std::min<std::size_t>(config_->chunk_tuples, batch.size() - offset);
    ChunkPayload payload;
    payload.forwarded = true;
    payload.epoch = epoch;
    payload.chunk.rel = rel;
    payload.chunk.batch.reserve(n);
    payload.chunk.batch.append_range(batch, offset, offset + n);
    const std::size_t wire = chunk_wire_bytes(payload.chunk, schema);
    send(target, make_message(Tag::kDataChunk, std::move(payload), wire));
    offset += n;
    ++chunks;
  }
  if (config_->recovery_enabled()) forwarded_to_[target] += chunks;
  return chunks;
}

void JoinProcessActor::handle_fence(const RecoveryFencePayload& fence) {
  charge(config_->cost.control_handle_sec);
  epoch_ = std::max(epoch_, fence.epoch);
  fences_.push_back(fence);
}

void JoinProcessActor::handle_range_reset(const RangeResetPayload& reset) {
  charge(config_->cost.control_handle_sec);
  if (reset.epoch < epoch_) {
    // Per-pair FIFO means a same-scheduler reset can never regress; this is
    // a reset that raced a scheduler failover, superseded by the promoted
    // coordinator's own wipe.  Ack it (stale acks are ignored upstream) but
    // do not re-apply the surgery: the discard set belongs to an older
    // incarnation and would drop tuples the newer replay already delivered.
    EHJA_WARN(name(), "ignoring stale range reset epoch ", reset.epoch,
              " (current ", epoch_, ")");
    RangeResetAckPayload ack;
    ack.epoch = reset.epoch;
    send(scheduler_,
         make_message(Tag::kRangeResetAck, ack, kControlWireBytes));
    return;
  }
  epoch_ = std::max(epoch_, reset.epoch);
  std::uint64_t dropped = 0;
  if (reset.zero_probe_results) {
    // Probe-phase recovery recomputes the entry from scratch: matches
    // against the partial pre-crash table cannot be separated from the
    // matches the full replay will recompute.  Captured rows mirror the
    // checksum, so they are wiped together.
    result_ = JoinResult{};
    captured_.clear();
    probe_tuples_ = 0;
  }
  if (table_) {
    for (const PosRange& r : reset.discard) {
      const std::uint64_t lo = std::max(r.lo, table_->range().lo);
      const std::uint64_t hi = std::min(r.hi, table_->range().hi);
      if (lo >= hi) continue;
      dropped += table_->extract_range(PosRange{lo, hi}).size();
    }
    charge(static_cast<double>(dropped) * config_->cost.tuple_insert_sec);
    if (reset.new_range.has_value()) {
      range_ = *reset.new_range;
      table_->set_range(range_);
    }
  } else if (spiller_) {
    charge(rebuild_spiller(reset, dropped));
  }
  retired_ = retired_ || reset.retired;
  frozen_ = false;
  handoff_target_ = kInvalidActor;
  memory_request_pending_ = false;
  note_overshoot();
  EHJA_INFO(name(), "range reset epoch ", reset.epoch, ": dropped ", dropped,
            " build tuples", retired_ ? " (retired)" : "");
  RangeResetAckPayload ack;
  ack.epoch = reset.epoch;
  send(scheduler_,
       make_message(Tag::kRangeResetAck, ack, kControlWireBytes));
}

double JoinProcessActor::rebuild_spiller(const RangeResetPayload& reset,
                                         std::uint64_t& dropped) {
  std::vector<Tuple> build_keep;
  std::vector<Tuple> probe_keep;
  double seconds = spiller_->extract_all(build_keep, probe_keep);
  const auto in_discard = [&reset](const Tuple& t) {
    const std::uint64_t pos = position_of(t.key);
    for (const PosRange& r : reset.discard) {
      if (r.contains(pos)) return true;
    }
    return false;
  };
  const auto drop = [&](std::vector<Tuple>& tuples) {
    const auto keep_end =
        std::remove_if(tuples.begin(), tuples.end(), in_discard);
    dropped += static_cast<std::uint64_t>(tuples.end() - keep_end);
    tuples.erase(keep_end, tuples.end());
  };
  drop(build_keep);
  drop(probe_keep);
  if (reset.new_range.has_value()) range_ = *reset.new_range;
  // Rebuild under a fresh spill-file namespace; the survivors re-run the
  // dynamic hybrid-hash discipline (deferred probes of still-spilled
  // partitions re-join at finish() exactly once, as before the reset).
  ++spiller_generation_;
  const std::uint64_t ns =
      (static_cast<std::uint64_t>(id()) + 1) +
      (static_cast<std::uint64_t>(spiller_generation_) << 20);
  const SpillPolicy policy = config_->algorithm == Algorithm::kOutOfCore
                                 ? SpillPolicy::kEvictAll
                                 : SpillPolicy::kEvictLargest;
  spiller_.emplace(config_->build_rel.schema, range_, budget(),
                   config_->spill_fanout, disk_, config_->cost, ns, policy);
  for (const Tuple& t : build_keep) seconds += spiller_->add_build(t);
  for (const Tuple& t : probe_keep) {
    seconds += spiller_->add_probe(t, result_, capture_sink());
  }
  return seconds;
}

void JoinProcessActor::handle_scheduler_handoff(const Message& msg) {
  charge(config_->cost.control_handle_sec);
  const auto& handoff = msg.as<SchedulerHandoffPayload>();
  if (handoff.generation <= scheduler_generation_) {
    EHJA_WARN(name(), "ignoring stale scheduler handoff generation ",
              handoff.generation);
    return;
  }
  scheduler_generation_ = handoff.generation;
  scheduler_ = msg.from;
  epoch_ = std::max(epoch_, handoff.epoch);
  EHJA_INFO(name(), "obeying scheduler ", scheduler_, " (generation ",
            handoff.generation, ")");
}

void JoinProcessActor::handle_report_request() {
  if (reported_) {
    // A promoted scheduler cannot know whether this node's report reached
    // its predecessor, so kReportRequest is re-sent; answer from the stored
    // copy -- the spiller's finish pass already ran and must not run twice.
    // The captured-row stream is resent in full ahead of it (the first
    // chunk's flag resets the scheduler's accumulation, so no dedup state
    // is needed here).
    EHJA_INFO(name(), "re-sending node report");
    send_result_rows();
    send(scheduler_, make_message(Tag::kNodeReport, last_report_,
                                  kControlWireBytes));
    return;
  }
  reported_ = true;
  if (spiller_) {
    // Phase 3 of the out-of-core path: join the spilled partition pairs.
    charge(spiller_->finish(result_, capture_sink()));
  }
  send_result_rows();
  NodeReportPayload report;
  report.metrics.actor = id();
  report.metrics.node = node();
  report.metrics.build_tuples = build_tuples_held();
  report.metrics.probe_tuples = probe_tuples_;
  report.metrics.matches = result_.matches;
  report.metrics.chunks_received = chunks_received_;
  report.metrics.chunks_forwarded = chunks_forwarded_;
  report.metrics.max_overshoot_bytes = max_overshoot_bytes_;
  report.metrics.fence_dropped_tuples = fence_dropped_tuples_;
  if (spiller_) {
    report.metrics.spilled_build_tuples = spiller_->spilled_build_tuples();
    report.metrics.spilled_probe_tuples = spiller_->spilled_probe_tuples();
    report.metrics.spilled_partitions = spiller_->spilled_partitions();
  }
  report.checksum = result_.checksum;
  report.result_rows = captured_.size();
  last_report_ = report;
  send(scheduler_,
       make_message(Tag::kNodeReport, std::move(report), kControlWireBytes));
}

void JoinProcessActor::send_result_rows() {
  if (!config_->capture_output) return;
  // Per-pair FIFO guarantees every chunk lands before the kNodeReport that
  // follows on the same channel, so the scheduler never sees a report whose
  // row count the stream has not yet satisfied.
  const Schema wide = config_->result_schema();
  const std::uint64_t total = captured_.size();
  std::size_t offset = 0;
  bool first = true;
  while (offset < captured_.size() || first) {
    const std::size_t n = std::min<std::size_t>(
        config_->chunk_tuples, captured_.size() - offset);
    ResultChunkPayload payload;
    payload.first = first;
    payload.total = total;
    payload.chunk.rel = config_->build_rel.tag;
    payload.chunk.batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      payload.chunk.batch.push_back(captured_[offset + i]);
    }
    const std::size_t wire = chunk_wire_bytes(payload.chunk, wide);
    charge(static_cast<double>(n) * config_->cost.tuple_pack_sec);
    send(scheduler_,
         make_message(Tag::kResultChunk, std::move(payload), wire));
    offset += n;
    first = false;
  }
}

}  // namespace ehja
