#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "hash/hash_family.hpp"
#include "util/assert.hpp"

namespace ehja {

SkewEstimate estimate_skew(const DistributionSpec& dist,
                           std::uint64_t sample_size, std::uint64_t seed) {
  EHJA_CHECK(sample_size > 0);
  constexpr std::size_t kSlices = 64;
  std::vector<std::uint64_t> slice_counts(kSlices, 0);
  SplitMix64 rng(seed, /*stream=*/0x51a);
  for (std::uint64_t i = 0; i < sample_size; ++i) {
    const std::uint64_t pos = position_of(sample_key(dist, rng));
    ++slice_counts[static_cast<std::size_t>(pos * kSlices / kPositionCount)];
  }
  SkewEstimate estimate;
  estimate.sampled = sample_size;
  const std::uint64_t hottest =
      *std::max_element(slice_counts.begin(), slice_counts.end());
  estimate.hot_fraction =
      static_cast<double>(hottest) / static_cast<double>(sample_size);
  estimate.concentration = estimate.hot_fraction * kSlices;
  // 3-sigma binomial error on the hottest slice's fraction.
  const double p = estimate.hot_fraction;
  estimate.error_bound =
      3.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(sample_size));
  return estimate;
}

double ExpansionModel::split_overhead_sec() const {
  const double splits =
      static_cast<double>(final_buckets) - initial_buckets;
  return std::max(0.0, splits) * (bucket_bytes / 2.0) * sec_per_byte;
}

double ExpansionModel::reshuffle_overhead_sec() const {
  const double e = expansion_factor();
  if (e <= 1.0) return 0.0;
  return ((e - 1.0) / e) * bucket_bytes * initial_buckets * sec_per_byte;
}

ExpansionModel model_from_config(const EhjaConfig& config) {
  ExpansionModel model;
  model.initial_buckets = config.initial_join_nodes;
  const double build_footprint =
      static_cast<double>(config.build_rel.tuple_count) *
      static_cast<double>(tuple_footprint(config.build_rel.schema));
  model.bucket_bytes = build_footprint / config.initial_join_nodes;
  const double nodes_needed =
      build_footprint / static_cast<double>(config.node_hash_memory_bytes);
  model.final_buckets = static_cast<std::uint32_t>(std::min<double>(
      config.join_pool_nodes,
      std::max<double>(config.initial_join_nodes, std::ceil(nodes_needed))));
  model.sec_per_byte = 1.0 / config.link.bandwidth_bytes_per_sec;
  return model;
}

PlannerDecision choose_algorithm(const EhjaConfig& config,
                                 const PlannerInputs& inputs) {
  PlannerDecision decision;
  decision.model = model_from_config(config);
  decision.skew = inputs.skew_sample > 0
                      ? estimate_skew(config.build_rel.dist,
                                      inputs.skew_sample, config.seed)
                      : SkewEstimate{};

  std::ostringstream why;
  const bool larger_builds = inputs.build_tuples > inputs.probe_tuples;
  const bool no_overflow =
      decision.model.final_buckets <= decision.model.initial_buckets;

  if (no_overflow) {
    // Nothing will expand; every strategy degenerates to the same static
    // join, so take the one with zero extra machinery.
    decision.algorithm = Algorithm::kSplit;
    why << "table fits the initial allocation (E=1); no expansion expected";
  } else if (decision.skew.highly_skewed() || larger_builds) {
    // ss6: "the replication-based algorithm should be preferred ... if the
    // distribution of the join attribute values is highly skewed and/or
    // the larger relation has to be used to build the hash table".
    decision.algorithm = Algorithm::kReplicate;
    why << (larger_builds ? "larger relation builds the table"
                          : "high skew (concentration ")
        << (larger_builds ? std::string()
                          : std::to_string(decision.skew.concentration) + ")")
        << "; replication avoids migrating the build side";
  } else if (decision.model.split_overhead_sec() <
             decision.model.reshuffle_overhead_sec()) {
    decision.algorithm = Algorithm::kSplit;
    why << "modest expansion (E=" << decision.model.expansion_factor()
        << "); split migration is cheaper than a reshuffle";
  } else {
    // ss6: "the hybrid algorithm generally performs close to the better of
    // the two or is the best" -- the safe default.
    decision.algorithm = Algorithm::kHybrid;
    why << "large expansion factor (E=" << decision.model.expansion_factor()
        << "); hybrid caps per-tuple movement at one reshuffle hop";
  }
  decision.rationale = why.str();
  return decision;
}

}  // namespace ehja
