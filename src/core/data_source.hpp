// Data source actor (paper ss4.1.2).
//
// Generates its slice of relations R and S on the fly, keeps one buffer per
// join process, and flushes a buffer as a chunk when it fills.  Generation
// proceeds in slices via self-messages so scheduler broadcasts (new join
// node announcements) interleave with generation -- the paper's window in
// which sources keep sending to an already-full node is exactly the map
// staleness this models.
//
// Routing: a tuple goes to the *active* owner of its position's range
// during the build, and to *every* owner during the probe (the
// replication-based algorithm's probe broadcast).  Buffers are keyed by the
// destination actor, so a buffer partially filled before a map update still
// goes to the old owner, which forwards it -- matching the paper's pending-
// buffer semantics.
//
// Recovery (core/recovery.hpp): the source is the only authoritative copy
// of the data -- TupleStream is a pure function of (seed, slice) -- so a
// kReplayRequest regenerates the slice from the start and re-sends the
// tuples inside the lost ranges, routed by the current map and stamped with
// the new epoch.  The replay covers exactly the prefix already produced at
// the moment the request is processed (the full slice once the relation
// finished): later tuples flow through the normal stream, earlier ones were
// either delivered or are fence-dropped in flight.  Buffers are flushed
// under the old epoch *before* the epoch is adopted, so no tuple is ever
// stranded between the two incarnations.  `pause_after` holds the normal
// stream quiescent for the probe-phase settle drain.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "runtime/actor.hpp"
#include "workload/generator.hpp"

namespace ehja {

class DataSourceActor final : public Actor {
 public:
  DataSourceActor(std::shared_ptr<const EhjaConfig> config,
                  std::uint32_t source_index, ActorId scheduler);

  void on_message(const Message& msg) override;
  std::string name() const override;
  std::optional<RemoteSpawnSpec> remote_spawn_spec() const override {
    return RemoteSpawnSpec{RemoteSpawnSpec::Kind::kDataSource, source_index_,
                           scheduler_, config_};
  }

  std::uint64_t build_chunks_sent() const { return build_chunks_; }
  std::uint64_t probe_chunks_sent() const { return probe_chunks_; }

 private:
  enum class Phase { kIdle, kBuild, kProbe, kDone };

  /// One in-flight replay job; a folded recovery's new request overwrites it.
  struct ReplayJob {
    std::uint64_t epoch = 0;
    RelTag rel = RelTag::kR;
    std::vector<PosRange> ranges;
    std::optional<TupleStream> stream;  // fresh regeneration of the slice
    std::uint64_t cap = 0;              // tuples of the slice to re-examine
    std::uint64_t replayed = 0;         // tuples actually re-sent
  };

  void start_relation(RelTag rel, const PartitionMap& map);
  void handle_scheduler_handoff(const Message& msg);
  void generate_slice();
  void handle_replay(const ReplayRequestPayload& req);
  void replay_slice();
  /// Route a staged generation batch: one histogram pass over the position
  /// column (destination entry per row + per-entry counts, used to size the
  /// buffers), then an in-order scatter so chunk boundaries match the
  /// tuple-at-a-time semantics exactly.
  void route_batch(const TupleBatch& batch, RelTag rel, bool probe_fanout);
  void route_tuple(const Tuple& t, RelTag rel, bool probe_fanout);
  void buffer_tuple(ActorId to, const Tuple& t, RelTag rel);
  /// Append row `i` of `batch` to `to`'s buffer (no re-hashing).
  void buffer_row(ActorId to, const TupleBatch& batch, std::size_t i,
                  RelTag rel);
  void flush(ActorId to);
  void flush_all();
  /// Queue a kGenSlice self-message unless one is already outstanding.
  void defer_slice();
  const RelationSpec& active_spec() const;
  const RelationSpec& spec_of(RelTag rel) const;

  std::shared_ptr<const EhjaConfig> config_;
  std::uint32_t source_index_;
  ActorId scheduler_;

  Phase phase_ = Phase::kIdle;
  PartitionMap map_;
  std::uint64_t map_version_ = 0;
  std::optional<TupleStream> stream_;
  std::map<ActorId, Chunk> buffers_;
  /// Reused staging area for one generation slice (columnar; positions are
  /// hashed once here and reused by every later hop).
  TupleBatch stage_;
  /// Scratch of route_batch's histogram pass (reused across slices).
  std::vector<std::uint32_t> stage_entry_;
  std::vector<std::uint32_t> entry_counts_;

  std::uint64_t build_chunks_ = 0;
  std::uint64_t probe_chunks_ = 0;
  std::uint64_t tuples_sent_ = 0;
  /// Retained per-relation normal-stream totals (tuples_sent_ resets per
  /// relation; a promoted scheduler rebuilds its bookkeeping from these).
  std::uint64_t build_tuples_total_ = 0;
  std::uint64_t probe_tuples_total_ = 0;
  /// Bit 0: relation R stream finished; bit 1: relation S finished;
  /// bit 2: R stream started; bit 3: S stream started.  The started bits
  /// let a promoted scheduler spot a replacement whose kStartBuild died
  /// with the old coordinator (it must be re-started, not asked to replay).
  std::uint8_t done_mask_ = 0;
  /// Generation of the scheduler currently obeyed (0 = the original).
  std::uint64_t scheduler_generation_ = 0;
  /// Build slices since the last kSourceProgress report (kAdaptive only).
  std::uint32_t slices_since_report_ = 0;

  // --- recovery state (inert in fault-free runs) ---
  /// Incarnation epoch stamped on every flushed chunk (0 until a replay).
  std::uint64_t epoch_ = 0;
  std::optional<ReplayJob> replay_;
  /// Normal stream held quiescent (probe-recovery settle drain); released
  /// by the next replay request with pause_after == false.
  bool paused_ = false;
  /// A kGenSlice self-message is in flight (guards against doubling the
  /// generation cadence when a replay interleaves with normal generation).
  bool slice_pending_ = false;
  /// Cumulative data chunks per destination, normal + replay streams
  /// (maintained only when recovery is enabled; feeds the live-nodes-only
  /// drain balance via kSourceDone / kReplayDone).
  std::map<ActorId, std::uint64_t> chunks_to_;
};

}  // namespace ehja
