// Data source actor (paper ss4.1.2).
//
// Generates its slice of relations R and S on the fly, keeps one buffer per
// join process, and flushes a buffer as a chunk when it fills.  Generation
// proceeds in slices via self-messages so scheduler broadcasts (new join
// node announcements) interleave with generation -- the paper's window in
// which sources keep sending to an already-full node is exactly the map
// staleness this models.
//
// Routing: a tuple goes to the *active* owner of its position's range
// during the build, and to *every* owner during the probe (the
// replication-based algorithm's probe broadcast).  Buffers are keyed by the
// destination actor, so a buffer partially filled before a map update still
// goes to the old owner, which forwards it -- matching the paper's pending-
// buffer semantics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "runtime/actor.hpp"
#include "workload/generator.hpp"

namespace ehja {

class DataSourceActor final : public Actor {
 public:
  DataSourceActor(std::shared_ptr<const EhjaConfig> config,
                  std::uint32_t source_index, ActorId scheduler);

  void on_message(const Message& msg) override;
  std::string name() const override;

  std::uint64_t build_chunks_sent() const { return build_chunks_; }
  std::uint64_t probe_chunks_sent() const { return probe_chunks_; }

 private:
  enum class Phase { kIdle, kBuild, kProbe, kDone };

  void start_relation(RelTag rel, const PartitionMap& map);
  void generate_slice();
  void route(const Tuple& t, RelTag rel);
  void buffer_tuple(ActorId to, const Tuple& t, RelTag rel);
  void flush(ActorId to);
  void flush_all();
  const RelationSpec& active_spec() const;

  std::shared_ptr<const EhjaConfig> config_;
  std::uint32_t source_index_;
  ActorId scheduler_;

  Phase phase_ = Phase::kIdle;
  PartitionMap map_;
  std::uint64_t map_version_ = 0;
  std::optional<TupleStream> stream_;
  std::map<ActorId, Chunk> buffers_;

  std::uint64_t build_chunks_ = 0;
  std::uint64_t probe_chunks_ = 0;
  std::uint64_t tuples_sent_ = 0;
  /// Build slices since the last kSourceProgress report (kAdaptive only).
  std::uint32_t slices_since_report_ = 0;
};

}  // namespace ehja
