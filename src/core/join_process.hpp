// Join process actor (paper ss4.1.3).
//
// Builds and probes one contiguous slice of the hash table.  Behaviour on
// memory overflow depends on the configured algorithm:
//
//   split:      keeps inserting (tracking budget overshoot) and raises
//               `memory full`; the scheduler's split at the split pointer
//               may move a range away from *any* node.  When this node is
//               told to split (kSplitRequest) it migrates the upper half of
//               its range to the new node and remembers the giveaway in a
//               forward table, so chunks routed by stale sources are
//               re-routed hop by hop -- the mechanism behind the paper's
//               observation that extreme skew makes the split algorithm
//               "communicate the same tuple many times" (Fig. 11).
//
//   replicate / hybrid:  raises `memory full` once, is frozen by the
//               scheduler's kHandoffStart, and thereafter forwards every
//               arriving build chunk to the fresh replica; its own table is
//               kept for the probe phase.  Hybrid nodes are unfrozen when
//               the reshuffle begins (kHistogramRequest) and then exchange
//               sub-ranges per the scheduler's plan.
//
//   out-of-core: never expands; owns a HybridHashSpiller from the start and
//               degrades to local disk.  Any EHJA node also switches to the
//               spiller when the scheduler reports the pool exhausted.
//
// Under recovery-enabled runs (EhjaConfig::recovery_enabled) the actor
// additionally answers heartbeat pings, keeps per-peer chunk counters for
// the live-nodes-only drain balance, applies epoch fences (dropping stale
// tuples inside ranges being replayed; core/recovery.hpp has the protocol)
// and executes kRangeReset surgery: discard ranges, unfreeze, regrow or
// retire.  A node named in the run's FaultPlan kills its own cluster node
// as its K-th data chunk arrives (the deterministic build-phase trigger).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/node_table.hpp"
#include "join/grace_join.hpp"
#include "runtime/actor.hpp"
#include "storage/sim_disk.hpp"

namespace ehja {

class JoinProcessActor final : public Actor {
 public:
  JoinProcessActor(std::shared_ptr<const EhjaConfig> config, ActorId scheduler);

  void on_message(const Message& msg) override;
  std::string name() const override;
  std::optional<RemoteSpawnSpec> remote_spawn_spec() const override {
    return RemoteSpawnSpec{RemoteSpawnSpec::Kind::kJoinProcess, 0, scheduler_,
                           config_};
  }

  // --- post-run observability (driver/tests) ---
  const JoinResult& result() const { return result_; }
  std::uint64_t build_tuples_held() const;
  bool in_spill_mode() const { return spiller_.has_value(); }
  bool frozen() const { return frozen_; }
  const PosRange& range() const { return range_; }

 private:
  void handle_init(const JoinInitPayload& init);
  void handle_chunk(ActorId from, const ChunkPayload& payload);
  void handle_build_chunk(const Chunk& chunk, std::uint64_t epoch);
  void handle_probe_chunk(const Chunk& chunk);
  void handle_split_request(const SplitRequestPayload& req);
  void handle_handoff(const HandoffStartPayload& handoff);
  void handle_histogram_request(const HistogramRequestPayload& req);
  void handle_reshuffle(const ReshuffleMovePayload& move);
  void handle_report_request();
  /// Stream captured_ to the scheduler as kResultChunk frames (capture
  /// runs only); the first chunk is flagged so a re-requested report resets
  /// the scheduler's accumulation instead of double-counting.
  void send_result_rows();
  void handle_scheduler_handoff(const Message& msg);
  void handle_fence(const RecoveryFencePayload& fence);
  void handle_range_reset(const RangeResetPayload& reset);
  /// Discard `reset.discard` from the spiller (and regrow its range) by
  /// draining the survivors into a fresh spiller; returns seconds consumed.
  double rebuild_spiller(const RangeResetPayload& reset,
                         std::uint64_t& dropped);
  /// Whether a tuple at `pos` from a chunk stamped `chunk_epoch` falls
  /// behind an epoch fence (its range is being replayed; drop it).
  bool fence_drops(std::uint64_t chunk_epoch, std::uint64_t pos) const;
  void enter_spill_mode();
  void after_insert_overflow_check();
  /// Ship `tuples` to `target` as chunks stamped `epoch`; returns chunks
  /// sent.  Forwards of an incoming chunk preserve its epoch; shipments out
  /// of this node's own table carry the node's current epoch.
  std::uint64_t ship(ActorId target, std::vector<Tuple> tuples, RelTag rel,
                     const Schema& schema, std::uint64_t epoch);
  /// Batch form: re-chunks `batch` into contiguous column slices of at
  /// most chunk_tuples rows each (no per-tuple copies).
  std::uint64_t ship_batch(ActorId target, const TupleBatch& batch, RelTag rel,
                           const Schema& schema, std::uint64_t epoch);
  std::uint64_t budget() const;
  void note_overshoot();

  std::shared_ptr<const EhjaConfig> config_;
  ActorId scheduler_;
  SimDisk disk_;

  JoinRole role_ = JoinRole::kInitial;
  PosRange range_;
  /// Partition table; scalar at intra_threads == 1, intra-node parallel
  /// otherwise (core/node_table.hpp).
  std::optional<NodeTable> table_;
  std::optional<HybridHashSpiller> spiller_;

  bool frozen_ = false;
  /// Cleared when the reshuffle begins: redistribution may overshoot the
  /// budget but must not trigger further expansion (the paper's reshuffle
  /// does not recurse).
  bool expansion_enabled_ = true;
  /// Data chunks that arrived before kJoinInit (possible under the thread
  /// runtime's arbitrary delivery delays); replayed at init.
  std::vector<std::pair<ActorId, ChunkPayload>> pre_init_chunks_;
  ActorId handoff_target_ = kInvalidActor;
  /// Ranges this node gave away in splits (disjoint), for stale re-routing.
  std::vector<std::pair<PosRange, ActorId>> forward_table_;
  bool memory_request_pending_ = false;
  bool reported_ = false;
  /// The report as first computed; a promoted scheduler's duplicate
  /// kReportRequest gets this verbatim (the spiller finish pass is not
  /// idempotent, so it must run exactly once).
  NodeReportPayload last_report_;
  /// Generation of the scheduler currently obeyed (0 = the original).
  std::uint64_t scheduler_generation_ = 0;

  // --- recovery state (stays zero/empty in fault-free runs) ---
  /// Incarnation epoch: the highest epoch seen in a fence or reset.  Stamped
  /// on every chunk this node ships out of its own table.
  std::uint64_t epoch_ = 0;
  /// Every fence received; chunks from older epochs drop tuples inside a
  /// fence's lost ranges (re-delivered by source replay instead).
  std::vector<RecoveryFencePayload> fences_;
  /// This node's replica-set entry collapsed onto a surviving peer; it keeps
  /// answering control traffic but stores no further data.
  bool retired_ = false;
  /// Per-peer breakdowns of the chunk counters for the live-nodes-only
  /// drain balance (maintained only when recovery is enabled).
  std::map<ActorId, std::uint64_t> received_from_;
  std::map<ActorId, std::uint64_t> forwarded_to_;
  /// Bumped per spiller rebuild so rebuilt spill files get fresh stream ids.
  std::uint32_t spiller_generation_ = 0;

  // counters
  std::uint64_t chunks_received_ = 0;
  std::uint64_t chunks_forwarded_ = 0;
  std::uint64_t probe_tuples_ = 0;
  std::uint64_t max_overshoot_bytes_ = 0;
  std::uint64_t fence_dropped_tuples_ = 0;
  JoinResult result_;
  /// Output pairs captured alongside result_ (capture_output runs only):
  /// every checksum contribution appends exactly one row here, so the
  /// multiset always equals the counted result -- across spill-mode
  /// transitions, spiller rebuilds and probe-phase range resets.
  std::vector<Tuple> captured_;
  /// &captured_ when the run asked for output capture, else nullptr.
  std::vector<Tuple>* capture_sink() {
    return config_->capture_output ? &captured_ : nullptr;
  }
};

}  // namespace ehja
