// Expansion policy layer -- the per-algorithm half of the scheduler.
//
// The SchedulerActor (core/scheduler.hpp) is a phase machine; *what to do
// when a join node runs out of memory* is an algorithm decision, and every
// algorithm of the paper answers it differently:
//
//   split       migrate half of a bucket to a fresh node (ss4.2.1);
//   replicate   freeze the full node, replicate its range (ss4.2.2);
//   hybrid      replicate now, reshuffle the replica sets between the
//               build and probe phases (ss4.2.3);
//   out-of-core never expand -- nodes spill locally, so a memory-full
//               message is a protocol violation;
//   adaptive    (extension, the ss6 "which strategy when" question asked
//               *per overflow*): consult the cost model -- estimated
//               build-migration cost of a split vs. probe-broadcast cost
//               of a replica, from observed source rates and the current
//               partition map -- and pick the cheaper expansion each time.
//
// An ExpansionPolicy owns everything downstream of that decision: the
// overflow request queue, the single-op-in-flight barrier, node
// acquisition from the ResourcePool, degradation to local spilling when
// the pool (or the position resolution) is exhausted, and the partition
// map mutations of each expansion.  The scheduler funnels kMemoryFull and
// kOpComplete into the policy and otherwise only needs to know whether the
// policy is idle (the build-drain gate) and whether the final map calls
// for a reshuffle.
//
// Policies talk to the world exclusively through ExpansionEnv, so every
// pool-exhaustion and resolution-exhaustion edge is unit-testable against
// a fake environment (tests/test_expansion_policy.cpp) without standing up
// a full run.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/resource_pool.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "hash/hash_family.hpp"
#include "hash/partition_map.hpp"
#include "trace/trace.hpp"

namespace ehja {

/// Services the scheduler provides to an expansion policy.  Everything a
/// policy does to the outside world -- spawning a join process, sending
/// protocol messages, broadcasting the partition map -- goes through this
/// interface.
class ExpansionEnv {
 public:
  virtual ~ExpansionEnv() = default;

  /// The authoritative partition map (policies mutate it).
  virtual PartitionMap& map() = 0;
  /// Run metrics (expansions, pool_exhausted, op times, adaptive counts).
  virtual RunMetrics& metrics() = 0;
  /// Instantiate a fresh join process on `node`, register it with the
  /// scheduler's join list (the drain polls it), return its actor id.
  virtual ActorId spawn_join(NodeId node) = 0;
  /// Send a protocol message to a join actor.
  virtual void send_to(ActorId to, Message msg) = 0;
  /// Broadcast the (mutated) partition map to the data sources.
  virtual void broadcast_map() = 0;
  /// An expansion attempt is starting.  The scheduler aborts an in-flight
  /// build drain and returns whether expansion is currently legal (it is
  /// not outside the build phases).
  virtual bool expansion_starting() = 0;
  /// Build tuples the data sources report having generated so far (the
  /// adaptive policy's observed-rate input; 0 when nothing was reported).
  virtual std::uint64_t observed_build_tuples() const = 0;
  virtual SimTime now() const = 0;
  virtual void trace(TraceKind kind, std::int64_t a = 0,
                     std::int64_t b = 0) = 0;

  // --- recovery services (core/recovery.hpp drives expansion machinery
  // through the same seam) ---
  /// Live join actors, in spawn order (dead ones already pruned).
  virtual const std::vector<ActorId>& join_actors() const = 0;
  /// The data-source actors, in source-index order.
  virtual const std::vector<ActorId>& source_actors() const = 0;
  /// Fail-stop liveness of a cluster node (Runtime::node_alive).
  virtual bool node_alive(NodeId node) const = 0;
};

class ExpansionPolicy {
 public:
  /// The only algorithm dispatch in the system: EhjaConfig::algorithm to
  /// concrete policy.
  static std::unique_ptr<ExpansionPolicy> make(
      std::shared_ptr<const EhjaConfig> config, ExpansionEnv& env,
      ResourcePool pool);

  virtual ~ExpansionPolicy() = default;

  /// A join node reported memory full (build phase only).
  virtual void on_memory_full(ActorId requester,
                              const MemoryFullPayload& payload);

  /// The in-flight expansion op finished: credit its duration, relieve the
  /// requester, start the next queued expansion.
  void on_op_complete(const OpCompletePayload& done);

  /// No op in flight and no requester queued -- the scheduler's gate for
  /// entering the build drain.
  bool idle() const { return !op_.has_value() && full_queue_.empty(); }

  /// Does the build-complete partition map call for a reshuffle phase?
  virtual bool wants_reshuffle() const { return false; }

  /// Join actors degraded to local spilling; their partitions live on
  /// disk, so they cannot take part in a reshuffle.
  const std::vector<ActorId>& spilled() const { return spilled_; }

  bool pool_exhausted() const { return pool_exhausted_; }

  /// Unclaimed pool nodes (scheduler-failover snapshot input).  A copy:
  /// the pool is thread-safe now and hands out value snapshots.
  std::vector<NodeId> free_pool_nodes() const { return pool_.free_nodes(); }
  /// Seed the spilled list at scheduler promotion: the members already
  /// received kSwitchToSpill from the predecessor, so nothing is re-sent.
  void adopt_spilled(std::vector<ActorId> spilled) {
    spilled_ = std::move(spilled);
  }

  // --- recovery hooks -------------------------------------------------
  /// Acquire a pool node, skipping nodes that have since died (a dead pool
  /// node is silently consumed).  Used by the recovery manager to recruit
  /// replacement nodes; does not touch the overflow queue.
  std::optional<NodeId> acquire_node();
  /// `dead` was declared failed: purge it from the overflow queue and the
  /// spilled list, and abandon the in-flight op if it involves the dead
  /// actor (its kOpComplete will never arrive; the survivor's state is
  /// rebuilt by recovery).  Does not start new ops -- the scheduler calls
  /// kick() once recovery finishes.
  void on_actor_dead(ActorId dead);
  /// Restart queued expansions after recovery resumes the build.
  void kick() { try_start_expansion(); }
  /// Degrade `requester` to local spilling unconditionally (probe-phase
  /// recovery with no memory headroom for the rebuilt range).
  void force_spill(ActorId requester) { send_switch_to_spill(requester); }

  ExpansionPolicy(std::shared_ptr<const EhjaConfig> config, ExpansionEnv& env,
                  ResourcePool pool);

 protected:
  /// Start the expansion operation for `requester` (the policy decision
  /// point).  Implementations either begin an op, or degrade the requester
  /// and continue with the queue.
  virtual void start_expansion(ActorId requester) = 0;

  /// Pop the queue and dispatch to start_expansion while no op is in
  /// flight (the barrier: at most one expansion op at a time).
  void try_start_expansion();

  // --- shared expansion primitives -------------------------------------

  /// Tell `requester` to degrade to local disk spilling.
  void send_switch_to_spill(ActorId requester);
  /// Resolution exhausted for `requester`: mark the pool done, degrade the
  /// requester, and continue with the rest of the queue.
  void degrade_requester(ActorId requester);
  /// `requester` is no longer an active owner (cannot happen with FIFO
  /// channels): drop the stale request, continue with the queue.
  void drop_stale(ActorId requester);
  /// Acquire a pool node; on exhaustion degrade the requester and flush
  /// every queued requester to spilling.
  std::optional<NodeId> acquire_or_spill_all(ActorId requester);
  /// Spawn the recruited join process and record the expansion.
  ActorId spawn_recruit(ActorId requester, NodeId node);
  /// Index of the map entry actively owned by `actor`; map().size() if
  /// none.
  std::size_t entry_owned_by(ActorId actor) const;

  /// Split `entry_index` at `mid`: the upper half migrates to the already
  /// recruited `fresh` node; `split_request_to` (the entry's active owner)
  /// ships it.
  void launch_split(ActorId requester, ActorId fresh, std::size_t entry_index,
                    std::uint64_t mid, ActorId split_request_to);
  /// Replicate the range of `entry_index` on the already recruited `fresh`
  /// node: `requester` freezes and hands off its pending chunks.
  void launch_replica(ActorId requester, ActorId fresh,
                      std::size_t entry_index);

  const EhjaConfig& config() const { return *config_; }
  ExpansionEnv& env() const { return env_; }

 private:
  struct OpInfo {
    SimTime started = 0.0;
    bool is_split = false;
    ActorId requester = kInvalidActor;
    ActorId fresh = kInvalidActor;
    std::uint64_t op_id = 0;
  };

  std::uint64_t begin_op(ActorId requester, bool is_split);

  std::shared_ptr<const EhjaConfig> config_;
  ExpansionEnv& env_;
  ResourcePool pool_;
  bool pool_exhausted_ = false;
  std::vector<ActorId> spilled_;

  // expansion serialization (the barrier)
  std::deque<ActorId> full_queue_;
  std::optional<OpInfo> op_;  // at most one in flight
  std::uint64_t next_op_id_ = 1;
};

/// ss4.2.1: linear hashing across nodes.  Owns the LinearHashMap of the
/// kLinearPointer variant; the default kRequesterMidpoint variant halves
/// the overflowing node's own range.
class SplitPolicy final : public ExpansionPolicy {
 public:
  /// `positions` sizes the linear-hash position space; tests shrink it to
  /// reach resolution exhaustion (production uses kPositionCount).
  SplitPolicy(std::shared_ptr<const EhjaConfig> config, ExpansionEnv& env,
              ResourcePool pool, std::uint64_t positions = kPositionCount);

 protected:
  void start_expansion(ActorId requester) override;

 private:
  void start_pointer_split(ActorId requester);
  void start_requester_split(ActorId requester);

  std::optional<LinearHashMap> linear_;  // kLinearPointer variant only
};

/// ss4.2.2: replicate the overflowed range on a fresh node.
class ReplicatePolicy : public ExpansionPolicy {
 public:
  using ExpansionPolicy::ExpansionPolicy;

 protected:
  void start_expansion(ActorId requester) override;
};

/// ss4.2.3: replicate during the build, then reshuffle the replica sets.
/// Expansion behaviour is exactly the replication policy's; the difference
/// is the post-build reshuffle request.
class HybridPolicy final : public ReplicatePolicy {
 public:
  using ReplicatePolicy::ReplicatePolicy;

  bool wants_reshuffle() const override;
};

/// Baseline: nodes spill to local disk and never expand, so a memory-full
/// message is a protocol violation.
class OutOfCorePolicy final : public ExpansionPolicy {
 public:
  using ExpansionPolicy::ExpansionPolicy;

  void on_memory_full(ActorId requester,
                      const MemoryFullPayload& payload) override;

 protected:
  void start_expansion(ActorId requester) override;
};

/// Extension: pick split or replicate *per overflow* by comparing the cost
/// model's estimate of the one-time build-migration cost of a split with
/// the recurring probe-broadcast cost of a replica (cluster/cost_model).
/// Ranges that already carry replicas keep replicating (a replica set pins
/// its range: the frozen members hold tuples of the full range, so the map
/// cannot subdivide it), as do ranges too narrow to split.
class AdaptivePolicy final : public ExpansionPolicy {
 public:
  using ExpansionPolicy::ExpansionPolicy;

 protected:
  void start_expansion(ActorId requester) override;

 private:
  bool prefer_split(const PosRange& range,
                    const MemoryFullPayload& payload) const;

  /// Footprint of the most recent overflow report per requester (the
  /// decision input; keyed by actor, refreshed on every kMemoryFull).
  void on_memory_full(ActorId requester,
                      const MemoryFullPayload& payload) override;
  std::vector<std::pair<ActorId, MemoryFullPayload>> last_report_;
};

}  // namespace ehja
