// Materialized multi-way join pipelines -- the paper's ss6 future work.
//
// A multi-join plan  ((R1 |><| R2) |><| R3) |><| ...  evaluated left-deep:
// each stage's join output becomes the *build* relation of the next stage.
// The defining property (and the reason the paper cares): the build size of
// stage k+1 is the output cardinality of stage k, which is unknowable when
// the query starts -- exactly the situation the Expanding Hash-based Join
// Algorithms were designed for.  Each stage therefore starts on a small
// initial node set and expands on demand.
//
// Unlike the earlier modeled pipeline (which only carried cardinalities
// forward), stages here hand over *concrete rows*: a stage runs with
// EhjaConfig::capture_output so its join nodes stream their matched
// (build_row_id, probe_row_id) pairs back to the scheduler, the driver
// canonicalizes and re-keys them (link_stage_output below), and the result
// rides into the next stage's config as a MaterializedRelation.  Data
// sources replay slices of that shared row vector through the ordinary
// TupleStream machinery, so deterministic replay -- and with it recovery,
// source reassignment and partition rebuild -- works mid-pipeline exactly
// as it does for generated relations.
//
// Expansion across stages negotiates against one shared node budget
// (plan.join_pool_nodes): every stage's initial nodes and every expansion
// grant come out of the same ledger through the admission-control PoolHooks
// path, a stage returns all its nodes when it drains, and a request beyond
// the budget is a counted denial (the scheduler's pool-exhausted handling
// takes over, e.g. spilling).
//
// Every pipeline execution is verified against serial_multi_join(), the
// tuple-by-tuple oracle below: same plan, same seeds, byte-identical final
// rows on every runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"

namespace ehja {

struct PipelineStage {
  /// The new relation this stage probes with (the build side is the
  /// previous stage's output; for stage 0 it is `first_build` below).
  RelationSpec probe;
  Algorithm algorithm = Algorithm::kHybrid;
  /// Nodes this stage claims from the shared budget before it starts.
  std::uint32_t initial_join_nodes = 2;
  /// Key distribution of this stage's output rows when they become the
  /// next stage's build input.  The derived key is a function of the
  /// *build-side* row id, so all matches of one build row carry the same
  /// next-stage key -- the foreign-key carry-through that makes
  /// TPC-H-shaped chains (lineitem |><| orders |><| customer) meaningful.
  /// Ignored on the final stage.
  DistributionSpec link_dist = DistributionSpec::SmallDomain(1 << 20);
  /// Failures injected while this stage runs (stage-local pool indices).
  FaultPlan faults;
};

struct PipelinePlan {
  /// Build relation of the first stage.
  RelationSpec first_build;
  /// Tuple size of intermediate results (join output rows are wider than
  /// either input; default: both inputs' payloads side by side).
  std::uint32_t intermediate_tuple_bytes = 200;
  std::vector<PipelineStage> stages;

  /// Shared cluster parameters applied to every stage.  join_pool_nodes is
  /// the *global* node budget all stages draw from.
  std::uint32_t join_pool_nodes = 24;
  std::uint32_t data_sources = 4;
  std::uint64_t node_hash_memory_bytes = 80 * kMiB;
  std::uint64_t seed = 1;
  /// Transport chunk capacity for every stage.
  std::uint32_t chunk_tuples = 10'000;
  /// Intra-node worker threads per join process, every stage.
  std::uint32_t intra_threads = 1;
  /// Failure-detection knobs, applied to every stage (recovery arms itself
  /// per stage when that stage's FaultPlan is non-empty, as usual).
  FaultToleranceConfig ft;

  /// First problem with the plan as a human-readable message, or nullopt.
  /// Rejects (at least): an empty stage list, a stage with zero
  /// initial_join_nodes, a stage budget exceeding the global pool, and any
  /// per-stage EhjaConfig rejection.
  std::optional<std::string> validate_or_error() const;
  /// Abort-on-nonsense variant of validate_or_error().
  void validate() const;

  /// The EhjaConfig stage `k` runs with, before the build side's
  /// materialized rows are attached (tests use this to cross-check seeds
  /// and per-stage layout; run_pipeline builds the same config).
  EhjaConfig stage_config(std::size_t k) const;
  /// Per-stage deterministic seed family (stage configs and the oracle
  /// draw probe relations from the same streams).
  std::uint64_t stage_seed(std::size_t k) const {
    return seed + 0x1000 * (static_cast<std::uint64_t>(k) + 1);
  }
  /// Seed of the key-rederivation stream linking stage k to stage k+1.
  std::uint64_t link_seed(std::size_t k) const {
    return seed ^ (0x9E3779B97F4A7C15ull + 0x5851F42D4C957F2Dull *
                                               (static_cast<std::uint64_t>(k) + 1));
  }
};

/// One executed (or short-circuited) stage.
struct StageResult {
  RunResult run;
  /// False when an upstream stage produced zero rows and this stage was
  /// short-circuited (its contribution is exactly zero matches).
  bool executed = false;
  /// Rows this stage handed to the next stage (== run.join().matches when
  /// executed).
  std::uint64_t output_rows = 0;
  /// JoinResult::checksum of this stage's output.
  std::uint64_t output_checksum = 0;
  /// source_checksum stamped on this stage's materialized build input
  /// (0 for stage 0, whose build side is generated).  Invariant:
  /// stages[k].output_checksum == stages[k+1].build_input_checksum.
  std::uint64_t build_input_checksum = 0;
  /// Expansion requests the shared budget denied during this stage.
  std::uint32_t denied_expansions = 0;
  /// Peak nodes this stage held from the shared budget (initial + grants).
  std::uint32_t peak_join_nodes = 0;
};

struct PipelineResult {
  std::vector<StageResult> stages;
  /// Sum of stage total times (stages run back to back; overlapping them
  /// is still future work, as in the paper's ss6).
  double total_time = 0.0;
  /// Peak concurrent node usage against the shared budget, across stages.
  /// Never exceeds plan.join_pool_nodes -- the ledger enforces it.
  std::uint32_t peak_join_nodes = 0;
  /// Total expansion denials across stages.
  std::uint32_t denied_expansions = 0;
  /// The final stage's result (matches + order-independent checksum).
  JoinResult final;
  /// The final stage's output pairs in canonical order (sorted by the
  /// derived (id, key) of link_stage_output's transform applied with an
  /// identity link: here, sorted (build_row_id, probe_row_id)).  Compared
  /// byte-identically against serial_multi_join().
  std::vector<Tuple> final_rows;
};

/// Execute the plan stage by stage on the chosen runtime.  Aborts
/// (EHJA_CHECK) on an invalid plan -- call plan.validate_or_error() first
/// when the plan is untrusted input.
PipelineResult run_pipeline(const PipelinePlan& plan,
                            RuntimeKind kind = RuntimeKind::kSim);

/// The multi-way oracle: evaluate the whole chain serially, materializing
/// every intermediate tuple-by-tuple with serial_hash_join_capture and the
/// same link transform the distributed driver uses.  Every run_pipeline()
/// of the same plan must match it byte-identically.
struct MultiJoinResult {
  /// Per-stage (matches, checksum); short-circuited stages report zeros.
  std::vector<JoinResult> stage_results;
  JoinResult final;
  std::vector<Tuple> final_rows;  // canonical order (see PipelineResult)
};
MultiJoinResult serial_multi_join(const PipelinePlan& plan);

/// The stage hand-off transform, shared verbatim by run_pipeline and
/// serial_multi_join: each captured pair Tuple{r_id, s_id} becomes a build
/// row with id' = match_signature(r_id, s_id) (provenance-unique) and
/// key' = sample_key(link_dist, SplitMix64(link_seed, r_id)) (constant per
/// build row -- FK carry-through), and rows are sorted by (id, key) so the
/// result is independent of capture order.  `checksum` (the producing
/// stage's JoinResult::checksum) is stamped as source_checksum.
std::shared_ptr<const MaterializedRelation> link_stage_output(
    std::vector<Tuple> pairs, std::uint64_t checksum,
    const DistributionSpec& link_dist, std::uint64_t link_seed);

}  // namespace ehja
