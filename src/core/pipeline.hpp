// Multi-way join pipelines -- the paper's ss6 future work.
//
// A multi-join plan  ((R1 |><| R2) |><| R3) |><| ...  evaluated left-deep:
// each stage's join output becomes the *build* relation of the next stage.
// The defining property (and the reason the paper cares): the build size of
// stage k+1 is the output cardinality of stage k, which is unknowable when
// the query starts -- exactly the situation the Expanding Hash-based Join
// Algorithms were designed for.  Each stage therefore starts on a small
// initial node set and expands on demand.
//
// Modeling note: the intermediate result is not materialized as concrete
// tuples across stages (its payload never influences any measured
// quantity); the next stage's build relation is synthesized with the
// measured cardinality, the configured intermediate schema, and a fresh
// deterministic key stream.  This preserves sizes, distributions and all
// expansion dynamics, which is what the pipeline experiments study.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"

namespace ehja {

struct PipelineStage {
  /// The new relation this stage probes with (the build side is the
  /// previous stage's output; for stage 0 it is `first_build` below).
  RelationSpec probe;
  Algorithm algorithm = Algorithm::kHybrid;
  std::uint32_t initial_join_nodes = 2;
};

struct PipelinePlan {
  /// Build relation of the first stage.
  RelationSpec first_build;
  /// Distribution used to synthesize intermediate build keys.
  DistributionSpec intermediate_dist = DistributionSpec::SmallDomain(1 << 20);
  /// Tuple size of intermediate results (join output rows are wider than
  /// either input; default: both inputs' payloads side by side).
  std::uint32_t intermediate_tuple_bytes = 200;
  std::vector<PipelineStage> stages;

  /// Shared cluster parameters applied to every stage.
  std::uint32_t join_pool_nodes = 24;
  std::uint32_t data_sources = 4;
  std::uint64_t node_hash_memory_bytes = 80 * kMiB;
  std::uint64_t seed = 1;
};

struct PipelineResult {
  std::vector<RunResult> stages;
  /// Sum of stage total times (stages run back to back; the paper's ss6
  /// notes keeping intermediate results in memory would allow overlap --
  /// that optimization is future work here too).
  double total_time = 0.0;
  /// Peak join-node count across stages.
  std::uint32_t peak_join_nodes = 0;
  /// Output cardinality of the final stage.
  std::uint64_t final_matches = 0;
};

/// Execute the plan stage by stage.  Aborts (EHJA_CHECK) on an empty plan.
PipelineResult run_pipeline(const PipelinePlan& plan,
                            RuntimeKind kind = RuntimeKind::kSim);

}  // namespace ehja
