#include "core/pipeline.hpp"

#include <algorithm>
#include <functional>
#include <mutex>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "workload/generator.hpp"

namespace ehja {

namespace {

bool canonical_less(const Tuple& a, const Tuple& b) {
  return a.id != b.id ? a.id < b.id : a.key < b.key;
}

/// The shared node ledger all stages draw from.  Slots are join-pool
/// indices [0, capacity); a stage's initial nodes and every expansion grant
/// come out of the same free list, lowest slot first (deterministic
/// placement), and a request against an empty list is a counted denial.
/// Thread-safe: PoolHooks fire from the scheduler's thread under
/// ThreadRuntime.
class StageBudget {
 public:
  explicit StageBudget(std::uint32_t capacity) : capacity_(capacity) {
    reset_free_locked();
  }

  std::optional<std::uint32_t> acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) {
      ++denied_;
      return std::nullopt;
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    ++in_use_;
    peak_ = std::max(peak_, in_use_);
    stage_peak_ = std::max(stage_peak_, in_use_);
    return slot;
  }

  void release(std::uint32_t slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    EHJA_CHECK_MSG(in_use_ > 0, "budget release without a matching acquire");
    --in_use_;
    free_.push_back(slot);
    // Keep the lowest slot on top so re-acquisition order stays
    // deterministic even after mid-stage releases (aborted expansions).
    std::sort(free_.begin(), free_.end(), std::greater<std::uint32_t>());
  }

  /// Stage drained: every node comes home, whatever path loaned it out.
  void release_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    in_use_ = 0;
    reset_free_locked();
  }

  /// Peak in-use count since the last call (and since construction).
  std::uint32_t take_stage_peak() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t peak = stage_peak_;
    stage_peak_ = in_use_;
    return peak;
  }

  std::uint32_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }
  std::uint32_t denied() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return denied_;
  }

 private:
  void reset_free_locked() {
    free_.clear();
    free_.reserve(capacity_);
    for (std::uint32_t j = capacity_; j > 0; --j) free_.push_back(j - 1);
  }

  const std::uint32_t capacity_;
  mutable std::mutex mutex_;
  std::vector<std::uint32_t> free_;  // sorted descending; back() = lowest
  std::uint32_t in_use_ = 0;
  std::uint32_t peak_ = 0;
  std::uint32_t stage_peak_ = 0;
  std::uint32_t denied_ = 0;
};

}  // namespace

std::shared_ptr<const MaterializedRelation> link_stage_output(
    std::vector<Tuple> pairs, std::uint64_t checksum,
    const DistributionSpec& link_dist, std::uint64_t link_seed) {
  auto out = std::make_shared<MaterializedRelation>();
  out->source_checksum = checksum;
  out->rows.reserve(pairs.size());
  for (const Tuple& pair : pairs) {
    // pair = {build_row_id, probe_row_id}.  The derived key is a function
    // of the build row id alone, so every match of one build row lands on
    // the same next-stage key (FK carry-through); the derived id is the
    // pair's signature, unique with overwhelming probability.
    SplitMix64 rng(link_seed, pair.id);
    out->rows.push_back(
        Tuple{match_signature(pair.id, pair.key), sample_key(link_dist, rng)});
  }
  // Canonical order: the captured multiset arrives in per-node report
  // order, which differs across runtimes; sorting makes the hand-off (and
  // with it every downstream row id) byte-identical everywhere.
  std::sort(out->rows.begin(), out->rows.end(), canonical_less);
  return out;
}

std::optional<std::string> PipelinePlan::validate_or_error() const {
  if (stages.empty()) return "pipeline plan has no stages";
  for (std::size_t k = 0; k < stages.size(); ++k) {
    std::ostringstream prefix;
    prefix << "stage " << k << ": ";
    if (stages[k].initial_join_nodes == 0) {
      return prefix.str() + "initial_join_nodes must be >= 1";
    }
    if (stages[k].initial_join_nodes > join_pool_nodes) {
      return prefix.str() + "stage budget exceeds the shared join pool";
    }
    EhjaConfig config = stage_config(k);
    if (k > 0) {
      // The build side's cardinality is a runtime quantity (the previous
      // stage's output); validate the rest of the stage with a 1-tuple
      // stand-in.
      config.build_rel.tuple_count = 1;
    }
    if (const std::optional<std::string> err = config.validate_or_error()) {
      return prefix.str() + *err;
    }
  }
  return std::nullopt;
}

void PipelinePlan::validate() const {
  if (const std::optional<std::string> err = validate_or_error()) {
    EHJA_CHECK_MSG(false, err->c_str());
  }
}

EhjaConfig PipelinePlan::stage_config(std::size_t k) const {
  EHJA_CHECK(k < stages.size());
  const PipelineStage& stage = stages[k];
  EhjaConfig config;
  config.algorithm = stage.algorithm;
  config.initial_join_nodes = stage.initial_join_nodes;
  config.join_pool_nodes = join_pool_nodes;
  config.data_sources = data_sources;
  config.node_hash_memory_bytes = node_hash_memory_bytes;
  config.chunk_tuples = chunk_tuples;
  config.intra_threads = intra_threads;
  if (k == 0) {
    config.build_rel = first_build;
  } else {
    config.build_rel = RelationSpec{RelTag::kR, 0,
                                    Schema{intermediate_tuple_bytes},
                                    stages[k - 1].link_dist, nullptr};
  }
  config.build_rel.tag = RelTag::kR;
  config.probe_rel = stage.probe;
  config.probe_rel.tag = RelTag::kS;
  // Each stage draws from its own deterministic stream family.
  config.seed = stage_seed(k);
  config.capture_output = true;
  config.pipeline_stage = static_cast<std::uint32_t>(k);
  config.faults = stage.faults;
  config.ft = ft;
  return config;
}

PipelineResult run_pipeline(const PipelinePlan& plan, RuntimeKind kind) {
  plan.validate();
  PipelineResult result;
  StageBudget budget(plan.join_pool_nodes);
  std::shared_ptr<const MaterializedRelation> build_data;  // null at stage 0
  bool dead = false;  // an upstream stage produced zero rows

  for (std::size_t k = 0; k < plan.stages.size(); ++k) {
    const bool last = k + 1 == plan.stages.size();
    StageResult sr;
    if (dead) {
      // An empty build side joins with anything to the empty result; the
      // distributed machinery insists on >= 1 build tuple, so the stage is
      // decided without running it (the oracle mirrors this).
      sr.build_input_checksum = build_data ? build_data->source_checksum : 0;
      result.stages.push_back(std::move(sr));
      continue;
    }

    EhjaConfig config = plan.stage_config(k);
    if (k > 0) {
      config.build_rel.tuple_count = build_data->rows.size();
      config.build_rel.data = build_data;
      sr.build_input_checksum = build_data->source_checksum;
    }
    config.validate();

    // Claim the stage's initial nodes from the shared ledger, then route
    // every further expansion through it via the admission hooks (the
    // per-query pool starts empty, so ResourcePool::acquire consults the
    // hook each time).
    std::vector<std::uint32_t> initial_slots;
    initial_slots.reserve(config.initial_join_nodes);
    for (std::uint32_t j = 0; j < config.initial_join_nodes; ++j) {
      const std::optional<std::uint32_t> slot = budget.acquire();
      EHJA_CHECK_MSG(slot.has_value(),
                     "shared budget cannot cover a stage's initial nodes");
      initial_slots.push_back(*slot);
    }

    QueryPlacement placement = QueryPlacement::from_config(
        config, /*standby_on_scheduler_node=*/kind == RuntimeKind::kSocket);
    placement.join_nodes.clear();
    for (const std::uint32_t slot : initial_slots) {
      placement.join_nodes.push_back(config.pool_node(slot));
    }
    placement.pool_nodes.clear();

    const NodeId pool_base = config.pool_node(0);
    RunOptions options;
    options.kind = kind;
    options.placement = std::move(placement);
    options.pool_hooks.acquire = [&budget,
                                  pool_base]() -> std::optional<NodeId> {
      const std::optional<std::uint32_t> slot = budget.acquire();
      if (!slot) return std::nullopt;
      return static_cast<NodeId>(pool_base + *slot);
    };
    options.pool_hooks.release = [&budget, pool_base](NodeId node) {
      budget.release(static_cast<std::uint32_t>(node - pool_base));
    };

    const std::uint32_t denied_before = budget.denied();
    RunResult run = run_ehja(config, options);
    // Stage drained: every node -- initial claim and expansion grants --
    // returns to the shared pool for the next stage.
    budget.release_all();

    sr.executed = true;
    sr.denied_expansions = budget.denied() - denied_before;
    sr.peak_join_nodes = budget.take_stage_peak();
    sr.output_rows = run.metrics.output_rows.size();
    sr.output_checksum = run.join().checksum;
    result.total_time += run.metrics.total_time();

    std::vector<Tuple> pairs = std::move(run.metrics.output_rows);
    run.metrics.output_rows.clear();
    EHJA_INFO("pipeline", "stage ", k, ": |build|=",
              config.build_rel.tuple_count,
              " |probe|=", config.probe_rel.tuple_count, " -> ", pairs.size(),
              " rows in ", run.metrics.total_time(), "s on ",
              run.metrics.final_join_nodes, " nodes (peak ",
              sr.peak_join_nodes, ", denied ", sr.denied_expansions, ")");

    if (last) {
      result.final = run.join();
      std::sort(pairs.begin(), pairs.end(), canonical_less);
      result.final_rows = std::move(pairs);
    } else {
      build_data = link_stage_output(std::move(pairs), run.join().checksum,
                                     plan.stages[k].link_dist,
                                     plan.link_seed(k));
      if (build_data->rows.empty()) dead = true;
    }
    sr.run = std::move(run);
    result.stages.push_back(std::move(sr));
  }

  result.peak_join_nodes = budget.peak();
  result.denied_expansions = budget.denied();
  return result;
}

MultiJoinResult serial_multi_join(const PipelinePlan& plan) {
  plan.validate();
  MultiJoinResult result;
  std::shared_ptr<const MaterializedRelation> build_data;
  bool dead = false;

  for (std::size_t k = 0; k < plan.stages.size(); ++k) {
    const bool last = k + 1 == plan.stages.size();
    if (dead) {
      result.stage_results.push_back(JoinResult{});
      continue;
    }

    Relation build;
    if (k == 0) {
      RelationSpec spec = plan.first_build;
      spec.tag = RelTag::kR;
      build = materialize(spec, plan.stage_seed(0), plan.data_sources);
    } else {
      build = Relation(RelTag::kR, Schema{plan.intermediate_tuple_bytes});
      build.reserve(build_data->rows.size());
      for (const Tuple& t : build_data->rows) build.add(t);
    }
    RelationSpec probe_spec = plan.stages[k].probe;
    probe_spec.tag = RelTag::kS;
    const Relation probe =
        materialize(probe_spec, plan.stage_seed(k), plan.data_sources);

    std::vector<Tuple> pairs;
    const JoinResult jr = serial_hash_join_capture(build, probe, pairs);
    result.stage_results.push_back(jr);

    if (last) {
      result.final = jr;
      std::sort(pairs.begin(), pairs.end(), canonical_less);
      result.final_rows = std::move(pairs);
    } else {
      build_data =
          link_stage_output(std::move(pairs), jr.checksum,
                            plan.stages[k].link_dist, plan.link_seed(k));
      if (build_data->rows.empty()) dead = true;
    }
  }
  return result;
}

}  // namespace ehja
