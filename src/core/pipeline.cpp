#include "core/pipeline.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace ehja {

PipelineResult run_pipeline(const PipelinePlan& plan, RuntimeKind kind) {
  EHJA_CHECK_MSG(!plan.stages.empty(), "pipeline needs at least one stage");
  PipelineResult result;
  RelationSpec build = plan.first_build;

  for (std::size_t k = 0; k < plan.stages.size(); ++k) {
    const PipelineStage& stage = plan.stages[k];
    EhjaConfig config;
    config.algorithm = stage.algorithm;
    config.initial_join_nodes = stage.initial_join_nodes;
    config.join_pool_nodes = plan.join_pool_nodes;
    config.data_sources = plan.data_sources;
    config.node_hash_memory_bytes = plan.node_hash_memory_bytes;
    config.build_rel = build;
    config.build_rel.tag = RelTag::kR;
    config.probe_rel = stage.probe;
    config.probe_rel.tag = RelTag::kS;
    // Each stage draws from its own deterministic stream family.
    config.seed = plan.seed + 0x1000 * (k + 1);

    RunResult run = run_ehja(config, kind);
    result.total_time += run.metrics.total_time();
    result.peak_join_nodes =
        std::max(result.peak_join_nodes, run.metrics.final_join_nodes);
    result.final_matches = run.join().matches;
    EHJA_INFO("pipeline", "stage ", k, ": |build|=", build.tuple_count,
              " |probe|=", config.probe_rel.tuple_count, " -> ",
              run.join().matches, " rows in ", run.metrics.total_time(),
              "s on ", run.metrics.final_join_nodes, " nodes");

    // The stage's output streams into the next stage's build side; only its
    // cardinality and schema carry over (see header).
    build.tuple_count = std::max<std::uint64_t>(run.join().matches, 1);
    build.schema = Schema{plan.intermediate_tuple_bytes};
    build.dist = plan.intermediate_dist;
    result.stages.push_back(std::move(run));
  }
  return result;
}

}  // namespace ehja
