// Versioned binary wire format for the socket runtime.
//
// Everything that crosses a process boundary in the socket runtime goes
// through this module: the actor messages of core/messages.hpp (including
// the recovery/epoch/fence vocabulary), the EhjaConfig handed to workers in
// the connection handshake, and the control frames of the runtime itself
// (hello/spawn/announce/shutdown; socket_runtime.cpp defines their bodies
// with the same Writer/Reader primitives).
//
// Layering:
//   * Primitives -- explicit little-endian fixed-width integers, LEB128
//     varints, zigzag-folded signed varints, bit-cast doubles.  Nothing is
//     ever written through a struct overlay, so the format is independent of
//     host endianness and padding.
//   * Payload codecs -- one encode/decode overload pair per payload struct
//     and per composite (PosRange, PartitionMap, Chunk, BinnedHistogram,
//     NodeMetrics, EhjaConfig).
//   * Message codec -- encode_message/decode_message switch on Tag and
//     carry (tag, from, wire_bytes, payload), reconstructing the exact
//     std::any payload type that Message::as<T>() expects.
//   * Frame layer -- a 16-byte header (magic, version, kind, length) plus a
//     CRC32 over the body.  try_parse_frame() consumes a byte stream
//     incrementally, so a TCP receive buffer can be fed as-is.
//
// Robustness contract: decoding is total.  Truncated, bit-flipped or
// adversarial input makes decode functions return false (or
// FrameStatus::kError) -- never undefined behaviour, never an unbounded
// allocation, never an EHJA_CHECK abort.  Every length read from the wire is
// validated against the bytes actually remaining before anything is
// allocated.  tests/test_wire.cpp fuzzes exactly this contract under ASan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "net/wire_format.hpp"
#include "runtime/message.hpp"

namespace ehja::wire {

/// Wire protocol version; bumped on any incompatible layout change.  A
/// version mismatch is a decode error (mixed-build clusters must fail the
/// handshake, not misinterpret frames).  v2: chunk bodies switched from
/// row-interleaved to columnar encoding (ids column, then keys column).
/// v3: scheduler-failover vocabulary (snapshot/handoff/ack), incarnation
/// epochs on kStartBuild/kStartProbe, kill-spec roles and detector fields
/// in the config handshake.
/// v4: serving layer -- phi_window in the config handshake, client-facing
/// frame kinds (submit/accept/reject/result/status/cancel), per-query
/// config shipping (kQueryConfig) and actor retirement (kRetire) on the
/// fleet links.
/// v5: intra-node parallelism knobs (intra_threads, intra_mode) in the
/// config handshake.
/// v6: materialized pipelines -- stage-tagged configs (pipeline_stage,
/// capture_output), relation specs optionally carrying concrete rows
/// (columnar, checksum-stamped) so a stage's captured output ships to
/// workers inside the config frame, and the kResultChunk message streaming
/// captured output rows back to the scheduler.
inline constexpr std::uint8_t kWireVersion = 6;

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) over `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

// --- primitives ---

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128 unsigned varint (1..10 bytes).
  void varint(std::uint64_t v);
  /// Zigzag-folded signed varint (small magnitudes stay small).
  void zigzag(std::int64_t v);
  /// IEEE-754 double, bit-cast and stored little-endian.
  void f64(double v);
  void bytes(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader with a latched failure flag: every accessor
/// returns a zero value once the stream has under-run or a varint was
/// malformed, and ok() reports the verdict.  Callers check ok() at structure
/// boundaries (and *must* check it before trusting any length/count).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::int64_t zigzag();
  double f64();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// Mark the stream corrupt (decoders call this on semantic violations).
  void fail() { ok_ = false; }

  /// True when `count` items of at least `min_item_bytes` each could still
  /// be present; otherwise latches failure.  Guards every vector/map
  /// allocation against a corrupt length demanding gigabytes.
  bool can_hold(std::uint64_t count, std::size_t min_item_bytes);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- composite codecs (shared building blocks) ---

void encode(Writer& w, const PosRange& v);
bool decode(Reader& r, PosRange& v);
void encode(Writer& w, const Chunk& v);
bool decode(Reader& r, Chunk& v);
void encode(Writer& w, const PartitionMap& v);
bool decode(Reader& r, PartitionMap& v);  // validates map invariants
void encode(Writer& w, const BinnedHistogram& v);
bool decode(Reader& r, BinnedHistogram& v);
void encode(Writer& w, const NodeMetrics& v);
bool decode(Reader& r, NodeMetrics& v);

// --- payload codecs, one pair per struct in core/messages.hpp ---

void encode(Writer& w, const JoinInitPayload& v);
bool decode(Reader& r, JoinInitPayload& v);
void encode(Writer& w, const StartBuildPayload& v);
bool decode(Reader& r, StartBuildPayload& v);
void encode(Writer& w, const ChunkPayload& v);
bool decode(Reader& r, ChunkPayload& v);
void encode(Writer& w, const ForwardEndPayload& v);
bool decode(Reader& r, ForwardEndPayload& v);
void encode(Writer& w, const MemoryFullPayload& v);
bool decode(Reader& r, MemoryFullPayload& v);
void encode(Writer& w, const SplitRequestPayload& v);
bool decode(Reader& r, SplitRequestPayload& v);
void encode(Writer& w, const HandoffStartPayload& v);
bool decode(Reader& r, HandoffStartPayload& v);
void encode(Writer& w, const OpCompletePayload& v);
bool decode(Reader& r, OpCompletePayload& v);
void encode(Writer& w, const MapUpdatePayload& v);
bool decode(Reader& r, MapUpdatePayload& v);
void encode(Writer& w, const SourceDonePayload& v);
bool decode(Reader& r, SourceDonePayload& v);
void encode(Writer& w, const SourceProgressPayload& v);
bool decode(Reader& r, SourceProgressPayload& v);
void encode(Writer& w, const DrainProbePayload& v);
bool decode(Reader& r, DrainProbePayload& v);
void encode(Writer& w, const DrainAckPayload& v);
bool decode(Reader& r, DrainAckPayload& v);
void encode(Writer& w, const StartProbePayload& v);
bool decode(Reader& r, StartProbePayload& v);
void encode(Writer& w, const HistogramRequestPayload& v);
bool decode(Reader& r, HistogramRequestPayload& v);
void encode(Writer& w, const HistogramReplyPayload& v);
bool decode(Reader& r, HistogramReplyPayload& v);
void encode(Writer& w, const ReshuffleMovePayload& v);
bool decode(Reader& r, ReshuffleMovePayload& v);
void encode(Writer& w, const ReshuffleDonePayload& v);
bool decode(Reader& r, ReshuffleDonePayload& v);
void encode(Writer& w, const NodeReportPayload& v);
bool decode(Reader& r, NodeReportPayload& v);
void encode(Writer& w, const ResultChunkPayload& v);
bool decode(Reader& r, ResultChunkPayload& v);
void encode(Writer& w, const RecoveryFencePayload& v);
bool decode(Reader& r, RecoveryFencePayload& v);
void encode(Writer& w, const RangeResetPayload& v);
bool decode(Reader& r, RangeResetPayload& v);
void encode(Writer& w, const RangeResetAckPayload& v);
bool decode(Reader& r, RangeResetAckPayload& v);
void encode(Writer& w, const ReplayRequestPayload& v);
bool decode(Reader& r, ReplayRequestPayload& v);
void encode(Writer& w, const ReplayDonePayload& v);
bool decode(Reader& r, ReplayDonePayload& v);
void encode(Writer& w, const SchedulerSnapshotPayload& v);
bool decode(Reader& r, SchedulerSnapshotPayload& v);
void encode(Writer& w, const SchedulerHandoffPayload& v);
bool decode(Reader& r, SchedulerHandoffPayload& v);
void encode(Writer& w, const SchedulerHandoffAckPayload& v);
bool decode(Reader& r, SchedulerHandoffAckPayload& v);

// --- message codec ---

/// True when `tag` names a message of the protocol vocabulary.
bool known_tag(int tag);
/// True when messages with `tag` carry a payload (signals carry none).
bool tag_has_payload(Tag tag);

/// Serialize (tag, from, wire_bytes, payload).  Aborts on a tag/payload
/// combination the protocol never produces -- that is a local protocol bug,
/// not wire corruption.
void encode_message(const Message& msg, Writer& w);
/// Reconstruct a Message, including the exact std::any payload type for its
/// tag; false on any corruption (unknown tag, payload/signal mismatch,
/// truncation, invariant-violating composite).
bool decode_message(Reader& r, Message& out);

// --- config codec (worker handshake) ---

/// Everything a worker needs to reconstruct the run: all EhjaConfig fields
/// except the trace sink (tracing stays coordinator-side; workers get
/// nullptr).
void encode_config(const EhjaConfig& config, Writer& w);
bool decode_config(Reader& r, EhjaConfig& config);

// --- frame layer ---

enum class FrameKind : std::uint8_t {
  kHello = 1,     // worker -> coordinator: node, listen port, incarnation
  kWelcome = 2,   // coordinator -> worker: wire version check + EhjaConfig
  kPeers = 3,     // coordinator -> worker: worker mesh table
  kPeerHello = 4, // worker -> worker: first frame on a mesh connection
  kReady = 5,     // worker -> coordinator: mesh established
  kSpawn = 6,     // coordinator -> worker: instantiate an actor
  kAnnounce = 7,  // coordinator -> worker: actor id -> node routes
  kActorMsg = 8,  // any -> any: one Message between actors
  kNodeDead = 9,  // coordinator -> worker: fail-stop notice
  kShutdown = 10, // coordinator -> worker: clean exit
  // v4 fleet extensions (serve mode; coordinator <-> warm workers).
  kQueryConfig = 11,  // coordinator -> worker: per-query EhjaConfig + id
  kRetire = 12,       // coordinator -> worker: forget a finished actor
  // v4 client-facing kinds (ehja_client <-> ehja_serve).  These share the
  // frame layer (magic/version/CRC) with the fleet protocol but carry
  // serve/serve_wire.hpp payloads.
  kClientHello = 13,    // client -> server: protocol handshake
  kServerHello = 14,    // server -> client: accepted, server limits
  kSubmitQuery = 15,    // client -> server: tenant, priority, join spec
  kQueryAccepted = 16,  // server -> client: query id, queue position
  kQueryRejected = 17,  // server -> client: reason + retry-after hint
  kQueryResult = 18,    // server -> client: metrics + result digest
  kQueryStatusReq = 19, // client -> server: poll one query
  kQueryStatus = 20,    // server -> client: queued/running/... snapshot
  kCancelQuery = 21,    // client -> server: abandon a queued query
  kShutdownNotice = 22, // server -> client: draining, resubmit elsewhere
};

/// Highest FrameKind value this build understands; try_parse_frame rejects
/// kinds above this so a frame from a *newer* build is a clean decode error
/// (and the serve layer answers kQueryRejected) instead of an abort.
inline constexpr std::uint8_t kMaxFrameKind =
    static_cast<std::uint8_t>(FrameKind::kShutdownNotice);

/// Frame header: magic u32 | version u8 | kind u8 | reserved u16 |
/// body_len u32 | crc32(body) u32 -- 16 bytes, all little-endian.
/// (kFrameHeaderBytes lives in net/wire_format.hpp so relation/chunk.hpp
/// can model transport overhead without depending on the codec.)
inline constexpr std::uint32_t kFrameMagic = 0x454A4857;  // "WHJE" LE
/// Upper bound on one frame body; a corrupt length past this is an error,
/// not an allocation (biggest legitimate frame: a data chunk, ~2 MB).
inline constexpr std::uint32_t kMaxFrameBody = 64u << 20;

struct Frame {
  FrameKind kind = FrameKind::kHello;
  std::vector<std::uint8_t> body;
};

/// Append a complete frame (header + body) to `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameKind kind,
                  const std::vector<std::uint8_t>& body);

enum class FrameStatus {
  kNeedMore,  // prefix of a valid frame; feed more bytes
  kFrame,     // one frame extracted; `consumed` bytes were used
  kError,     // corrupt stream (bad magic/version/kind/length/CRC)
};

/// Try to extract one frame from the front of [data, data+size).  On
/// kFrame, `consumed` is the total bytes to drop from the stream and `out`
/// holds the frame.  On kError, `error` (if non-null) describes the
/// corruption; the stream is unrecoverable (TCP guarantees ordering, so a
/// bad header means a framing bug or corruption, not a resync point).
FrameStatus try_parse_frame(const std::uint8_t* data, std::size_t size,
                            std::size_t& consumed, Frame& out,
                            std::string* error = nullptr);

}  // namespace ehja::wire
