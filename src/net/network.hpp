// Switched-Ethernet network model.
//
// Models the paper's cluster interconnect: each node has one NIC with
// independent transmit and receive sides; the switch is non-blocking (a
// shared-bus topology option models hub Ethernet for the ss6 future-work
// study).  Default bandwidth is gigabit-class goodput -- the paper states
// 100 Mb/s, but its reported times are impossible at that rate; see
// util/units.hpp and EXPERIMENTS.md ss Calibration.  A message transfer reserves
// the sender's TX side and the receiver's RX side for `bytes / bandwidth`
// seconds starting when both are free and the payload is ready, then arrives
// `latency` seconds later.  This captures the two effects that matter for
// the paper's results: per-node bandwidth limits (build/probe are
// communication-bound) and incast serialization at a receiver (many sources
// feeding one join node).
//
// Transfers planned from the same sender in nondecreasing ready-time order
// arrive in order at any given receiver (per-pair FIFO), a property the join
// protocol's end-of-stream markers rely on and that the tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace ehja {

using NodeId = std::int32_t;

/// Fabric model.  The paper's cluster is switched (non-blocking between
/// disjoint node pairs); the shared-bus option models hub/repeater Ethernet
/// where every transfer serializes on one medium -- the "different network
/// configurations" the paper's ss6 defers to future work, exercised by
/// bench_ablation_sensitivity.
enum class Topology : std::uint8_t { kSwitched, kSharedBus };

struct LinkConfig {
  Topology topology = Topology::kSwitched;
  /// Payload bandwidth of one NIC direction, bytes/second.  Calibrated to
  /// gigabit-class goodput (see util/units.hpp on why the paper's stated
  /// 100 Mb/s cannot reproduce its own numbers).
  double bandwidth_bytes_per_sec = 110e6;
  /// One-way message latency (propagation + stack), seconds.
  double latency_sec = 80e-6;
  /// Fixed per-message framing overhead added to the payload size.
  double per_message_overhead_bytes = 64.0;
  /// Cost of a node sending to itself (memcpy through loopback), seconds
  /// per byte; latency does not apply.
  double loopback_sec_per_byte = 1.0 / 400e6;
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::vector<std::uint64_t> tx_bytes;  // per node
  std::vector<std::uint64_t> rx_bytes;  // per node
};

class NetworkModel {
 public:
  NetworkModel(std::size_t node_count, LinkConfig config);

  struct Delivery {
    /// When the sender's TX side finished serializing the message.  A
    /// blocking (synchronous) send returns control to the sender here --
    /// the natural flow control that keeps a fast producer from running
    /// arbitrarily far ahead of its NIC.
    SimTime tx_done = 0.0;
    /// When the message is fully received at the destination.
    SimTime arrival = 0.0;
  };

  /// Plan a transfer of `bytes` payload from `src` to `dst`, ready to leave
  /// at `ready`.  Reserves NIC time on both ends.
  Delivery plan(NodeId src, NodeId dst, std::size_t bytes, SimTime ready);

  /// Convenience wrapper returning just the arrival time.
  SimTime transfer(NodeId src, NodeId dst, std::size_t bytes, SimTime ready) {
    return plan(src, dst, bytes, ready).arrival;
  }

  /// Earliest time `src`'s TX side is free (used by tests and by actors that
  /// model synchronous sends).
  SimTime tx_free(NodeId node) const;
  SimTime rx_free(NodeId node) const;

  /// Consumer-paced receive: a 2004 node doing synchronous CPU/disk work
  /// does not drain its TCP receive buffers, so while a handler runs the
  /// node's RX side stays occupied and senders block (via plan()'s rx
  /// reservation).  The runtime calls this after each handler.
  void stall_rx(NodeId node, SimTime until);

  std::size_t node_count() const { return tx_free_.size(); }
  const LinkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  LinkConfig config_;
  std::vector<SimTime> tx_free_;
  std::vector<SimTime> rx_free_;
  SimTime bus_free_ = 0.0;  // shared-bus topology only
  NetworkStats stats_;
};

}  // namespace ehja
