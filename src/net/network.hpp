// Switched-Ethernet network model.
//
// Models the paper's cluster interconnect: each node has one NIC with
// independent transmit and receive sides; the switch is non-blocking (a
// shared-bus topology option models hub Ethernet for the ss6 future-work
// study).  Default bandwidth is gigabit-class goodput -- the paper states
// 100 Mb/s, but its reported times are impossible at that rate; see
// util/units.hpp and EXPERIMENTS.md ss Calibration.  A message transfer reserves
// the sender's TX side and the receiver's RX side for `bytes / bandwidth`
// seconds starting when both are free and the payload is ready, then arrives
// `latency` seconds later.  This captures the two effects that matter for
// the paper's results: per-node bandwidth limits (build/probe are
// communication-bound) and incast serialization at a receiver (many sources
// feeding one join node).
//
// Transfers planned from the same sender in nondecreasing ready-time order
// arrive in order at any given receiver (per-pair FIFO), a property the join
// protocol's end-of-stream markers rely on and that the tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ehja {

using NodeId = std::int32_t;

/// Fabric model.  The paper's cluster is switched (non-blocking between
/// disjoint node pairs); the shared-bus option models hub/repeater Ethernet
/// where every transfer serializes on one medium -- the "different network
/// configurations" the paper's ss6 defers to future work, exercised by
/// bench_ablation_sensitivity.
enum class Topology : std::uint8_t { kSwitched, kSharedBus };

struct LinkConfig {
  Topology topology = Topology::kSwitched;
  /// Payload bandwidth of one NIC direction, bytes/second.  Calibrated to
  /// gigabit-class goodput (see util/units.hpp on why the paper's stated
  /// 100 Mb/s cannot reproduce its own numbers).
  double bandwidth_bytes_per_sec = 110e6;
  /// One-way message latency (propagation + stack), seconds.
  double latency_sec = 80e-6;
  /// Fixed per-message framing overhead added to the payload size.
  double per_message_overhead_bytes = 64.0;
  /// Cost of a node sending to itself (memcpy through loopback), seconds
  /// per byte; latency does not apply.
  double loopback_sec_per_byte = 1.0 / 400e6;

  /// --- fault injection (both default off; when off, plan() consumes no
  /// randomness and the model stays bit-identical to the fault-free one) ---
  /// Uniform extra delivery delay in [0, fault_jitter_sec) per message.
  double fault_jitter_sec = 0.0;
  /// Per-message probability that the first transmission is lost and the
  /// message is *redelivered* after fault_rto_sec (modelling TCP
  /// retransmission, not actual loss: live-node messages always arrive, so
  /// the join protocol's invariants survive -- only timing degrades).  Note
  /// that jitter/redelivery break the per-pair FIFO guarantee documented
  /// above; the recovery protocol's epoch fences are what make the system
  /// tolerate that.
  double fault_drop_prob = 0.0;
  /// Retransmission timeout charged per lost transmission.
  double fault_rto_sec = 2e-3;
  /// Seed for the fault RNG (the driver XORs in the run seed).
  std::uint64_t fault_seed = 0x600dcafe;
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t retransmits = 0;  // injected drop-and-redeliver events
  std::vector<std::uint64_t> tx_bytes;  // per node
  std::vector<std::uint64_t> rx_bytes;  // per node
};

class NetworkModel {
 public:
  NetworkModel(std::size_t node_count, LinkConfig config);

  struct Delivery {
    /// When the sender's TX side finished serializing the message.  A
    /// blocking (synchronous) send returns control to the sender here --
    /// the natural flow control that keeps a fast producer from running
    /// arbitrarily far ahead of its NIC.
    SimTime tx_done = 0.0;
    /// When the message is fully received at the destination.
    SimTime arrival = 0.0;
  };

  /// Plan a transfer of `bytes` payload from `src` to `dst`, ready to leave
  /// at `ready`.  Reserves NIC time on both ends.
  Delivery plan(NodeId src, NodeId dst, std::size_t bytes, SimTime ready);

  /// Convenience wrapper returning just the arrival time.
  SimTime transfer(NodeId src, NodeId dst, std::size_t bytes, SimTime ready) {
    return plan(src, dst, bytes, ready).arrival;
  }

  /// Earliest time `src`'s TX side is free (used by tests and by actors that
  /// model synchronous sends).
  SimTime tx_free(NodeId node) const;
  SimTime rx_free(NodeId node) const;

  /// Consumer-paced receive: a 2004 node doing synchronous CPU/disk work
  /// does not drain its TCP receive buffers, so while a handler runs the
  /// node's RX side stays occupied and senders block (via plan()'s rx
  /// reservation).  The runtime calls this after each handler.
  void stall_rx(NodeId node, SimTime until);

  std::size_t node_count() const { return tx_free_.size(); }
  const LinkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  /// Extra delivery delay (jitter + retransmissions) for one message.
  /// Consumes RNG draws only when the corresponding knob is enabled.
  SimTime fault_delay();

  LinkConfig config_;
  std::vector<SimTime> tx_free_;
  std::vector<SimTime> rx_free_;
  SimTime bus_free_ = 0.0;  // shared-bus topology only
  NetworkStats stats_;
  SplitMix64 fault_rng_;
};

}  // namespace ehja
