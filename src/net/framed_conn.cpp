#include "net/framed_conn.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "util/assert.hpp"

namespace ehja::netio {

namespace {
using Clock = std::chrono::steady_clock;
}

Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  EHJA_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  EHJA_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int make_listener(std::uint16_t& port_out, std::uint16_t requested_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EHJA_CHECK_MSG(fd >= 0, "socket() failed");
  if (requested_port != 0) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(requested_port);
  EHJA_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind(127.0.0.1) failed");
  EHJA_CHECK_MSG(::listen(fd, 128) == 0, "listen() failed");
  socklen_t len = sizeof(addr);
  EHJA_CHECK_MSG(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname() failed");
  port_out = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

int try_connect_loopback(std::uint16_t port, int attempts) {
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EHJA_CHECK_MSG(fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) return fd;
    const int err = errno;
    ::close(fd);
    if (err != ECONNREFUSED || attempt >= attempts) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int connect_loopback(std::uint16_t port) {
  const int fd = try_connect_loopback(port);
  EHJA_CHECK_MSG(fd >= 0, "connect(127.0.0.1) failed");
  return fd;
}

void read_available(Conn& c) {
  if (!c.usable()) return;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.in.insert(c.in.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;
      continue;
    }
    if (n == 0) {
      c.eof = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    c.broken = true;
    return;
  }
}

void flush_out(Conn& c) {
  if (!c.usable()) return;
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    c.broken = true;  // peer died; its data is lost (fail-stop semantics)
    return;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  } else if (c.out_off > (1u << 20)) {
    c.out.erase(c.out.begin(),
                c.out.begin() + static_cast<std::ptrdiff_t>(c.out_off));
    c.out_off = 0;
  }
}

void queue_frame(Conn& c, wire::FrameKind kind,
                 const std::vector<std::uint8_t>& body) {
  if (!c.usable()) return;
  wire::append_frame(c.out, kind, body);
}

bool next_frame(Conn& c, wire::Frame& f) {
  std::size_t consumed = 0;
  std::string err;
  const wire::FrameStatus st =
      wire::try_parse_frame(c.in.data(), c.in.size(), consumed, f, &err);
  if (st == wire::FrameStatus::kNeedMore) return false;
  EHJA_CHECK_MSG(st == wire::FrameStatus::kFrame,
                 ("corrupt frame: " + err).c_str());
  c.in.erase(c.in.begin(),
             c.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  return true;
}

FrameResult try_next_frame(Conn& c, wire::Frame& f, std::string* error) {
  std::size_t consumed = 0;
  const wire::FrameStatus st =
      wire::try_parse_frame(c.in.data(), c.in.size(), consumed, f, error);
  if (st == wire::FrameStatus::kNeedMore) return FrameResult::kNone;
  if (st == wire::FrameStatus::kError) {
    c.broken = true;  // the stream is unrecoverable past a corrupt header
    return FrameResult::kError;
  }
  c.in.erase(c.in.begin(),
             c.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  return FrameResult::kFrame;
}

wire::Frame must_recv_frame(Conn& c, double timeout_sec, const char* what) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
  wire::Frame f;
  for (;;) {
    if (next_frame(c, f)) return f;
    EHJA_CHECK_MSG(!c.eof && !c.broken,
                   (std::string("connection lost waiting for ") + what)
                       .c_str());
    EHJA_CHECK_MSG(Clock::now() < deadline,
                   (std::string("handshake timeout waiting for ") + what)
                       .c_str());
    pollfd p{c.fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0 && errno != EINTR) c.broken = true;
    if (pr > 0) read_available(c);
  }
}

void must_flush(Conn& c, double timeout_sec, const char* what) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
  while (c.wants_write()) {
    flush_out(c);
    if (!c.wants_write()) break;
    EHJA_CHECK_MSG(!c.broken,
                   (std::string("connection lost while sending ") + what)
                       .c_str());
    EHJA_CHECK_MSG(Clock::now() < deadline,
                   (std::string("handshake timeout sending ") + what)
                       .c_str());
    pollfd p{c.fd, POLLOUT, 0};
    ::poll(&p, 1, 100);
  }
}

std::unique_ptr<Conn> adopt_fd(int fd) {
  set_nonblocking(fd);
  set_nodelay(fd);
  auto c = std::make_unique<Conn>();
  c->fd = fd;
  return c;
}

}  // namespace ehja::netio
