#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ehja {

NetworkModel::NetworkModel(std::size_t node_count, LinkConfig config)
    : config_(config), fault_rng_(config.fault_seed) {
  EHJA_CHECK(node_count > 0);
  EHJA_CHECK(config_.bandwidth_bytes_per_sec > 0);
  tx_free_.assign(node_count, 0.0);
  rx_free_.assign(node_count, 0.0);
  stats_.tx_bytes.assign(node_count, 0);
  stats_.rx_bytes.assign(node_count, 0);
}

NetworkModel::Delivery NetworkModel::plan(NodeId src, NodeId dst,
                                          std::size_t bytes, SimTime ready) {
  EHJA_CHECK(src >= 0 && static_cast<std::size_t>(src) < tx_free_.size());
  EHJA_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < rx_free_.size());
  ++stats_.messages;
  stats_.bytes += bytes;
  stats_.tx_bytes[static_cast<std::size_t>(src)] += bytes;
  stats_.rx_bytes[static_cast<std::size_t>(dst)] += bytes;

  if (src == dst) {
    // Loopback: no NIC reservation, just a copy cost.
    const SimTime done =
        ready + static_cast<double>(bytes) * config_.loopback_sec_per_byte;
    return Delivery{done, done};
  }

  const double wire_bytes =
      static_cast<double>(bytes) + config_.per_message_overhead_bytes;
  const double duration = wire_bytes / config_.bandwidth_bytes_per_sec;
  SimTime& tx = tx_free_[static_cast<std::size_t>(src)];
  SimTime& rx = rx_free_[static_cast<std::size_t>(dst)];
  SimTime start = std::max({ready, tx, rx});
  if (config_.topology == Topology::kSharedBus) {
    // One collision domain: every transfer serializes on the medium.
    start = std::max(start, bus_free_);
  }
  const SimTime end = start + duration;
  tx = end;
  rx = end;
  if (config_.topology == Topology::kSharedBus) bus_free_ = end;
  return Delivery{end, end + config_.latency_sec + fault_delay()};
}

SimTime NetworkModel::fault_delay() {
  SimTime extra = 0.0;
  if (config_.fault_jitter_sec > 0.0) {
    extra += fault_rng_.next_double() * config_.fault_jitter_sec;
  }
  if (config_.fault_drop_prob > 0.0) {
    // Drop-with-redelivery: each lost transmission costs one RTO (plus its
    // own jitter); the payload always arrives eventually.  Cap the geometric
    // tail so a drop probability of ~1 cannot livelock planning.
    int lost = 0;
    while (lost < 16 && fault_rng_.next_double() < config_.fault_drop_prob) {
      ++lost;
      extra += config_.fault_rto_sec;
      if (config_.fault_jitter_sec > 0.0) {
        extra += fault_rng_.next_double() * config_.fault_jitter_sec;
      }
    }
    stats_.retransmits += static_cast<std::uint64_t>(lost);
  }
  return extra;
}

SimTime NetworkModel::tx_free(NodeId node) const {
  return tx_free_[static_cast<std::size_t>(node)];
}

SimTime NetworkModel::rx_free(NodeId node) const {
  return rx_free_[static_cast<std::size_t>(node)];
}

void NetworkModel::stall_rx(NodeId node, SimTime until) {
  SimTime& rx = rx_free_[static_cast<std::size_t>(node)];
  rx = std::max(rx, until);
}

}  // namespace ehja
