#include "net/wire.hpp"

#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "util/assert.hpp"

namespace ehja::wire {

// --- CRC32 ---

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const Crc32Table table;
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- Writer ---

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::zigzag(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::bytes(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

// --- Reader ---

std::uint8_t Reader::u8() {
  if (!ok_ || size_ - pos_ < 1) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!ok_ || size_ - pos_ < 2) {
    ok_ = false;
    return 0;
  }
  std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!ok_ || size_ - pos_ < 4) {
    ok_ = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!ok_ || size_ - pos_ < 8) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (!ok_ || pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    const std::uint8_t byte = data_[pos_++];
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (shift == 63 && (byte & 0xFE)) {
      ok_ = false;
      return 0;
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
  }
  ok_ = false;
  return 0;
}

std::int64_t Reader::zigzag() {
  const std::uint64_t v = varint();
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::can_hold(std::uint64_t count, std::size_t min_item_bytes) {
  if (!ok_) return false;
  EHJA_CHECK(min_item_bytes >= 1);
  if (count > remaining() / min_item_bytes) {
    ok_ = false;
    return false;
  }
  return true;
}

// --- decode helpers ---

namespace {

/// Read a byte that must be 0 or 1 (strict: round-trips are exact and flips
/// are decode errors, not silent coercions).
bool read_bool(Reader& r, bool& out) {
  const std::uint8_t v = r.u8();
  if (v > 1) r.fail();
  out = v == 1;
  return r.ok();
}

/// Read a u8 enum discriminant that must be <= max_value.
template <typename E>
bool read_enum(Reader& r, E& out, std::uint8_t max_value) {
  const std::uint8_t v = r.u8();
  if (v > max_value) r.fail();
  out = static_cast<E>(v);
  return r.ok();
}

/// Read a zigzag value that must fit an ActorId / NodeId (int32).
bool read_id(Reader& r, std::int32_t& out) {
  const std::int64_t v = r.zigzag();
  if (v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max()) {
    r.fail();
  }
  out = static_cast<std::int32_t>(v);
  return r.ok();
}

bool read_u32(Reader& r, std::uint32_t& out) {
  const std::uint64_t v = r.varint();
  if (v > std::numeric_limits<std::uint32_t>::max()) r.fail();
  out = static_cast<std::uint32_t>(v);
  return r.ok();
}

void encode_owners(Writer& w, const std::vector<ActorId>& owners) {
  w.varint(owners.size());
  for (ActorId owner : owners) w.zigzag(owner);
}

bool decode_owners(Reader& r, std::vector<ActorId>& owners) {
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 1)) return false;
  owners.clear();
  owners.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ActorId id = kInvalidActor;
    if (!read_id(r, id)) return false;
    owners.push_back(id);
  }
  return r.ok();
}

void encode_entry(Writer& w, const PartitionMap::Entry& e) {
  encode(w, e.range);
  encode_owners(w, e.owners);
}

bool decode_entry(Reader& r, PartitionMap::Entry& e) {
  return decode(r, e.range) && decode_owners(r, e.owners);
}

void encode_ranges(Writer& w, const std::vector<PosRange>& ranges) {
  w.varint(ranges.size());
  for (const PosRange& range : ranges) encode(w, range);
}

bool decode_ranges(Reader& r, std::vector<PosRange>& ranges) {
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 2)) return false;
  ranges.clear();
  ranges.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    PosRange range;
    if (!decode(r, range)) return false;
    ranges.push_back(range);
  }
  return r.ok();
}

void encode_chunk_map(Writer& w, const std::map<ActorId, std::uint64_t>& m) {
  w.varint(m.size());
  for (const auto& [id, count] : m) {
    w.zigzag(id);
    w.varint(count);
  }
}

bool decode_chunk_map(Reader& r, std::map<ActorId, std::uint64_t>& m) {
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 2)) return false;
  m.clear();
  ActorId prev = kInvalidActor;
  for (std::uint64_t i = 0; i < count; ++i) {
    ActorId id = kInvalidActor;
    if (!read_id(r, id)) return false;
    // std::map iterates in key order, so a valid encoding is strictly
    // increasing; anything else is corruption.
    if (i > 0 && id <= prev) {
      r.fail();
      return false;
    }
    prev = id;
    const std::uint64_t value = r.varint();
    if (!r.ok()) return false;
    m.emplace(id, value);
  }
  return true;
}

}  // namespace

// --- composite codecs ---

void encode(Writer& w, const PosRange& v) {
  w.varint(v.lo);
  w.varint(v.hi);
}

bool decode(Reader& r, PosRange& v) {
  v.lo = r.varint();
  v.hi = r.varint();
  return r.ok();
}

// Chunks are encoded columnar (all row ids, then all join attributes) so
// the codec streams each column of the batch sequentially; the derived
// position column is recomputed on decode rather than shipped.
void encode(Writer& w, const Chunk& v) {
  w.u8(static_cast<std::uint8_t>(v.rel));
  const std::size_t n = v.batch.size();
  w.varint(n);
  for (std::size_t i = 0; i < n; ++i) w.varint(v.batch.id(i));
  for (std::size_t i = 0; i < n; ++i) w.varint(v.batch.key(i));
}

bool decode(Reader& r, Chunk& v) {
  if (!read_enum(r, v.rel, 1)) return false;
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 2)) return false;
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ids.push_back(r.varint());
    if (!r.ok()) return false;
  }
  v.batch.clear();
  v.batch.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key = r.varint();
    if (!r.ok()) return false;
    v.batch.append(ids[static_cast<std::size_t>(i)], key);
  }
  return true;
}

void encode(Writer& w, const PartitionMap& v) {
  w.varint(v.positions());
  w.varint(v.size());
  for (const PartitionMap::Entry& e : v.entries()) encode_entry(w, e);
}

bool decode(Reader& r, PartitionMap& v) {
  const std::uint64_t positions = r.varint();
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 4)) return false;
  std::vector<PartitionMap::Entry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    PartitionMap::Entry e;
    if (!decode_entry(r, e)) return false;
    entries.push_back(std::move(e));
  }
  // Re-validate PartitionMap::check()'s invariants here, where a violation
  // is a decode error rather than the abort from_entries() would raise.
  if (entries.empty() || entries.front().range.lo != 0 ||
      entries.back().range.hi != positions) {
    r.fail();
    return false;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].range.empty() || entries[i].owners.empty() ||
        (i + 1 < entries.size() &&
         entries[i].range.hi != entries[i + 1].range.lo)) {
      r.fail();
      return false;
    }
  }
  v = PartitionMap::from_entries(std::move(entries), positions);
  return true;
}

void encode(Writer& w, const BinnedHistogram& v) {
  w.varint(v.lo());
  w.varint(v.hi());
  w.varint(v.bin_count());
  for (std::size_t i = 0; i < v.bin_count(); ++i) w.varint(v.bin_weight(i));
}

bool decode(Reader& r, BinnedHistogram& v) {
  const std::uint64_t lo = r.varint();
  const std::uint64_t hi = r.varint();
  const std::uint64_t bins = r.varint();
  if (!r.ok()) return false;
  if (bins == 0) {
    // Only a default-constructed (never-initialized) histogram has no bins.
    if (lo != 0 || hi != 0) {
      r.fail();
      return false;
    }
    v = BinnedHistogram{};
    return true;
  }
  // The constructor clamps bins to the range width, so a legitimate encoding
  // always satisfies bins <= hi - lo; reconstructing with the encoded count
  // then reproduces the exact geometry (width = span / bins).
  if (hi <= lo || bins > hi - lo || !r.can_hold(bins, 1)) {
    r.fail();
    return false;
  }
  v = BinnedHistogram(lo, hi, static_cast<std::size_t>(bins));
  for (std::uint64_t i = 0; i < bins; ++i) {
    const std::uint64_t weight = r.varint();
    if (!r.ok()) return false;
    if (weight > 0) v.add(v.bin_lo(static_cast<std::size_t>(i)), weight);
  }
  return true;
}

void encode(Writer& w, const NodeMetrics& v) {
  w.zigzag(v.actor);
  w.zigzag(v.node);
  w.varint(v.build_tuples);
  w.varint(v.probe_tuples);
  w.varint(v.matches);
  w.varint(v.chunks_received);
  w.varint(v.chunks_forwarded);
  w.varint(v.max_overshoot_bytes);
  w.varint(v.spilled_build_tuples);
  w.varint(v.spilled_probe_tuples);
  w.varint(v.spilled_partitions);
  w.varint(v.fence_dropped_tuples);
}

bool decode(Reader& r, NodeMetrics& v) {
  if (!read_id(r, v.actor) || !read_id(r, v.node)) return false;
  v.build_tuples = r.varint();
  v.probe_tuples = r.varint();
  v.matches = r.varint();
  v.chunks_received = r.varint();
  v.chunks_forwarded = r.varint();
  v.max_overshoot_bytes = r.varint();
  v.spilled_build_tuples = r.varint();
  v.spilled_probe_tuples = r.varint();
  v.spilled_partitions = r.varint();
  v.fence_dropped_tuples = r.varint();
  return r.ok();
}

// --- payload codecs ---

void encode(Writer& w, const JoinInitPayload& v) {
  w.u8(static_cast<std::uint8_t>(v.role));
  encode(w, v.range);
  w.varint(v.source_count);
  w.varint(v.op_id);
}

bool decode(Reader& r, JoinInitPayload& v) {
  if (!read_enum(r, v.role, 2) || !decode(r, v.range)) return false;
  if (!read_u32(r, v.source_count)) return false;
  v.op_id = r.varint();
  return r.ok();
}

void encode(Writer& w, const StartBuildPayload& v) {
  encode(w, v.map);
  w.varint(v.epoch);
}

bool decode(Reader& r, StartBuildPayload& v) {
  if (!decode(r, v.map)) return false;
  v.epoch = r.varint();
  return r.ok();
}

void encode(Writer& w, const ChunkPayload& v) {
  encode(w, v.chunk);
  w.u8(v.forwarded ? 1 : 0);
  w.varint(v.epoch);
}

bool decode(Reader& r, ChunkPayload& v) {
  if (!decode(r, v.chunk) || !read_bool(r, v.forwarded)) return false;
  v.epoch = r.varint();
  return r.ok();
}

void encode(Writer& w, const ForwardEndPayload& v) { w.varint(v.op_id); }

bool decode(Reader& r, ForwardEndPayload& v) {
  v.op_id = r.varint();
  return r.ok();
}

void encode(Writer& w, const MemoryFullPayload& v) {
  w.varint(v.footprint_bytes);
  w.varint(v.budget_bytes);
}

bool decode(Reader& r, MemoryFullPayload& v) {
  v.footprint_bytes = r.varint();
  v.budget_bytes = r.varint();
  return r.ok();
}

void encode(Writer& w, const SplitRequestPayload& v) {
  w.varint(v.op_id);
  encode(w, v.moved);
  w.zigzag(v.target);
}

bool decode(Reader& r, SplitRequestPayload& v) {
  v.op_id = r.varint();
  return decode(r, v.moved) && read_id(r, v.target);
}

void encode(Writer& w, const HandoffStartPayload& v) {
  w.varint(v.op_id);
  w.zigzag(v.target);
}

bool decode(Reader& r, HandoffStartPayload& v) {
  v.op_id = r.varint();
  return read_id(r, v.target);
}

void encode(Writer& w, const OpCompletePayload& v) {
  w.varint(v.op_id);
  w.varint(v.tuples_received);
}

bool decode(Reader& r, OpCompletePayload& v) {
  v.op_id = r.varint();
  v.tuples_received = r.varint();
  return r.ok();
}

void encode(Writer& w, const MapUpdatePayload& v) {
  w.varint(v.version);
  encode(w, v.map);
}

bool decode(Reader& r, MapUpdatePayload& v) {
  v.version = r.varint();
  return decode(r, v.map);
}

void encode(Writer& w, const SourceDonePayload& v) {
  w.u8(static_cast<std::uint8_t>(v.rel));
  w.varint(v.chunks_sent);
  w.varint(v.tuples_sent);
  encode_chunk_map(w, v.chunks_to);
}

bool decode(Reader& r, SourceDonePayload& v) {
  if (!read_enum(r, v.rel, 1)) return false;
  v.chunks_sent = r.varint();
  v.tuples_sent = r.varint();
  return decode_chunk_map(r, v.chunks_to);
}

void encode(Writer& w, const SourceProgressPayload& v) {
  w.u8(static_cast<std::uint8_t>(v.rel));
  w.varint(v.tuples_sent);
}

bool decode(Reader& r, SourceProgressPayload& v) {
  if (!read_enum(r, v.rel, 1)) return false;
  v.tuples_sent = r.varint();
  return r.ok();
}

void encode(Writer& w, const DrainProbePayload& v) { w.varint(v.epoch); }

bool decode(Reader& r, DrainProbePayload& v) {
  v.epoch = r.varint();
  return r.ok();
}

void encode(Writer& w, const DrainAckPayload& v) {
  w.varint(v.epoch);
  w.varint(v.data_chunks_received);
  w.varint(v.data_chunks_forwarded);
  encode_chunk_map(w, v.received_from);
  encode_chunk_map(w, v.forwarded_to);
}

bool decode(Reader& r, DrainAckPayload& v) {
  v.epoch = r.varint();
  v.data_chunks_received = r.varint();
  v.data_chunks_forwarded = r.varint();
  return decode_chunk_map(r, v.received_from) &&
         decode_chunk_map(r, v.forwarded_to);
}

void encode(Writer& w, const StartProbePayload& v) {
  encode(w, v.map);
  w.varint(v.epoch);
}

bool decode(Reader& r, StartProbePayload& v) {
  if (!decode(r, v.map)) return false;
  v.epoch = r.varint();
  return r.ok();
}

void encode(Writer& w, const HistogramRequestPayload& v) {
  w.varint(v.set_id);
  w.varint(v.bins);
  w.varint(v.round);
}

bool decode(Reader& r, HistogramRequestPayload& v) {
  v.set_id = r.varint();
  const std::uint64_t bins = r.varint();
  if (bins > std::numeric_limits<std::size_t>::max()) r.fail();
  v.bins = static_cast<std::size_t>(bins);
  return read_u32(r, v.round);
}

void encode(Writer& w, const HistogramReplyPayload& v) {
  w.varint(v.set_id);
  encode(w, v.histogram);
  w.varint(v.round);
}

bool decode(Reader& r, HistogramReplyPayload& v) {
  v.set_id = r.varint();
  return decode(r, v.histogram) && read_u32(r, v.round);
}

void encode(Writer& w, const ReshuffleMovePayload& v) {
  // The plan is a re-cut of one replica set's range: valid entries need not
  // start at position 0, so this is a raw entry list, not a PartitionMap.
  w.varint(v.plan.size());
  for (const PartitionMap::Entry& e : v.plan) encode_entry(w, e);
  w.varint(v.round);
}

bool decode(Reader& r, ReshuffleMovePayload& v) {
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 4)) return false;
  v.plan.clear();
  v.plan.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    PartitionMap::Entry e;
    if (!decode_entry(r, e)) return false;
    v.plan.push_back(std::move(e));
  }
  return read_u32(r, v.round);
}

void encode(Writer& w, const ReshuffleDonePayload& v) { w.varint(v.round); }

bool decode(Reader& r, ReshuffleDonePayload& v) {
  return read_u32(r, v.round);
}

void encode(Writer& w, const NodeReportPayload& v) {
  encode(w, v.metrics);
  w.u64(v.checksum);
  w.varint(v.result_rows);
}

bool decode(Reader& r, NodeReportPayload& v) {
  if (!decode(r, v.metrics)) return false;
  v.checksum = r.u64();
  v.result_rows = r.varint();
  return r.ok();
}

void encode(Writer& w, const ResultChunkPayload& v) {
  encode(w, v.chunk);
  w.u8(v.first ? 1 : 0);
  w.varint(v.total);
}

bool decode(Reader& r, ResultChunkPayload& v) {
  if (!decode(r, v.chunk)) return false;
  if (!read_bool(r, v.first)) return false;
  v.total = r.varint();
  return r.ok();
}

void encode(Writer& w, const RecoveryFencePayload& v) {
  w.varint(v.epoch);
  encode_ranges(w, v.lost);
}

bool decode(Reader& r, RecoveryFencePayload& v) {
  v.epoch = r.varint();
  return decode_ranges(r, v.lost);
}

void encode(Writer& w, const RangeResetPayload& v) {
  w.varint(v.epoch);
  encode_ranges(w, v.discard);
  w.u8(v.zero_probe_results ? 1 : 0);
  w.u8(v.new_range.has_value() ? 1 : 0);
  if (v.new_range) encode(w, *v.new_range);
  w.u8(v.retired ? 1 : 0);
}

bool decode(Reader& r, RangeResetPayload& v) {
  v.epoch = r.varint();
  if (!decode_ranges(r, v.discard) || !read_bool(r, v.zero_probe_results)) {
    return false;
  }
  bool has_range = false;
  if (!read_bool(r, has_range)) return false;
  if (has_range) {
    PosRange range;
    if (!decode(r, range)) return false;
    v.new_range = range;
  } else {
    v.new_range.reset();
  }
  return read_bool(r, v.retired);
}

void encode(Writer& w, const RangeResetAckPayload& v) { w.varint(v.epoch); }

bool decode(Reader& r, RangeResetAckPayload& v) {
  v.epoch = r.varint();
  return r.ok();
}

void encode(Writer& w, const ReplayRequestPayload& v) {
  w.varint(v.epoch);
  w.u8(static_cast<std::uint8_t>(v.rel));
  encode_ranges(w, v.ranges);
  w.u8(v.pause_after ? 1 : 0);
}

bool decode(Reader& r, ReplayRequestPayload& v) {
  v.epoch = r.varint();
  return read_enum(r, v.rel, 1) && decode_ranges(r, v.ranges) &&
         read_bool(r, v.pause_after);
}

void encode(Writer& w, const ReplayDonePayload& v) {
  w.varint(v.epoch);
  w.u8(static_cast<std::uint8_t>(v.rel));
  w.varint(v.tuples_replayed);
  encode_chunk_map(w, v.chunks_to);
  w.varint(v.chunks_sent_total);
}

bool decode(Reader& r, ReplayDonePayload& v) {
  v.epoch = r.varint();
  if (!read_enum(r, v.rel, 1)) return false;
  v.tuples_replayed = r.varint();
  if (!decode_chunk_map(r, v.chunks_to)) return false;
  v.chunks_sent_total = r.varint();
  return r.ok();
}

namespace {

/// Nested per-source per-destination chunk accounting (snapshot only).
void encode_chunks_to(
    Writer& w, const std::map<ActorId, std::map<ActorId, std::uint64_t>>& m) {
  w.varint(m.size());
  for (const auto& [source, dests] : m) {
    w.zigzag(source);
    encode_chunk_map(w, dests);
  }
}

bool decode_chunks_to(
    Reader& r, std::map<ActorId, std::map<ActorId, std::uint64_t>>& m) {
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 2)) return false;
  m.clear();
  ActorId prev = kInvalidActor;
  for (std::uint64_t i = 0; i < count; ++i) {
    ActorId id = kInvalidActor;
    if (!read_id(r, id)) return false;
    if (i > 0 && id <= prev) {
      r.fail();
      return false;
    }
    prev = id;
    std::map<ActorId, std::uint64_t> dests;
    if (!decode_chunk_map(r, dests)) return false;
    m.emplace(id, std::move(dests));
  }
  return true;
}

/// The snapshot's metrics are the scheduler-accrued scalars only; the nodes
/// vector and the join result are deliberately not carried (the promoted
/// scheduler re-collects them with the final reports).
void encode_run_metrics(Writer& w, const RunMetrics& v) {
  w.f64(v.t_start);
  w.f64(v.t_build_end);
  w.f64(v.t_reshuffle_end);
  w.f64(v.t_probe_end);
  w.f64(v.t_complete);
  w.f64(v.split_time);
  w.f64(v.expand_time);
  w.varint(v.initial_join_nodes);
  w.varint(v.expansions);
  w.varint(v.final_join_nodes);
  w.u8(v.pool_exhausted ? 1 : 0);
  w.varint(v.adaptive_splits);
  w.varint(v.adaptive_replicas);
  w.varint(v.source_build_chunks);
  w.varint(v.source_probe_chunks);
  w.varint(v.extra_build_chunks);
  w.varint(v.failures_injected);
  w.varint(v.failures_detected);
  w.f64(v.detection_latency_total);
  w.f64(v.detection_latency_max);
  w.varint(v.false_positive_deaths);
  w.varint(v.join_failures);
  w.varint(v.source_failures);
  w.varint(v.scheduler_failovers);
  w.varint(v.recoveries);
  w.f64(v.recovery_time_total);
  w.varint(v.replayed_build_tuples);
  w.varint(v.replayed_probe_tuples);
  w.varint(v.build_tuples_total);
  w.varint(v.probe_tuples_total);
}

bool decode_run_metrics(Reader& r, RunMetrics& v) {
  v = RunMetrics{};
  v.t_start = r.f64();
  v.t_build_end = r.f64();
  v.t_reshuffle_end = r.f64();
  v.t_probe_end = r.f64();
  v.t_complete = r.f64();
  v.split_time = r.f64();
  v.expand_time = r.f64();
  if (!read_u32(r, v.initial_join_nodes) || !read_u32(r, v.expansions) ||
      !read_u32(r, v.final_join_nodes) || !read_bool(r, v.pool_exhausted) ||
      !read_u32(r, v.adaptive_splits) || !read_u32(r, v.adaptive_replicas)) {
    return false;
  }
  v.source_build_chunks = r.varint();
  v.source_probe_chunks = r.varint();
  v.extra_build_chunks = r.varint();
  if (!read_u32(r, v.failures_injected) || !read_u32(r, v.failures_detected)) {
    return false;
  }
  v.detection_latency_total = r.f64();
  v.detection_latency_max = r.f64();
  if (!read_u32(r, v.false_positive_deaths) ||
      !read_u32(r, v.join_failures) || !read_u32(r, v.source_failures) ||
      !read_u32(r, v.scheduler_failovers) || !read_u32(r, v.recoveries)) {
    return false;
  }
  v.recovery_time_total = r.f64();
  v.replayed_build_tuples = r.varint();
  v.replayed_probe_tuples = r.varint();
  v.build_tuples_total = r.varint();
  v.probe_tuples_total = r.varint();
  return r.ok();
}

}  // namespace

void encode(Writer& w, const SchedulerSnapshotPayload& v) {
  w.varint(v.generation);
  w.u8(v.phase);
  w.u8(v.probe_recovery ? 1 : 0);
  w.varint(v.epoch);
  w.varint(v.map_version);
  encode(w, v.map);
  encode_owners(w, v.joins);
  encode_owners(w, v.sources);
  encode_owners(w, v.dead);
  encode_owners(w, v.spilled);
  encode_owners(w, v.pool_free);  // NodeId shares ActorId's representation
  w.varint(v.reshuffle_round);
  w.varint(v.drain_epoch);
  encode_chunks_to(w, v.source_chunks_to);
  encode_run_metrics(w, v.metrics);
}

bool decode(Reader& r, SchedulerSnapshotPayload& v) {
  v.generation = r.varint();
  // Phase discriminants: kBuild..kDone (9 values).
  const std::uint8_t phase = r.u8();
  if (phase > 8) {
    r.fail();
    return false;
  }
  v.phase = phase;
  if (!read_bool(r, v.probe_recovery)) return false;
  v.epoch = r.varint();
  v.map_version = r.varint();
  if (!decode(r, v.map)) return false;
  if (!decode_owners(r, v.joins) || !decode_owners(r, v.sources) ||
      !decode_owners(r, v.dead) || !decode_owners(r, v.spilled) ||
      !decode_owners(r, v.pool_free)) {
    return false;
  }
  if (!read_u32(r, v.reshuffle_round)) return false;
  v.drain_epoch = r.varint();
  return decode_chunks_to(r, v.source_chunks_to) &&
         decode_run_metrics(r, v.metrics);
}

void encode(Writer& w, const SchedulerHandoffPayload& v) {
  w.varint(v.generation);
  w.varint(v.epoch);
}

bool decode(Reader& r, SchedulerHandoffPayload& v) {
  v.generation = r.varint();
  v.epoch = r.varint();
  return r.ok();
}

void encode(Writer& w, const SchedulerHandoffAckPayload& v) {
  w.varint(v.generation);
  w.u8(v.done_mask);
  w.varint(v.build_tuples);
  w.varint(v.probe_tuples);
  w.varint(v.build_chunks);
  w.varint(v.probe_chunks);
  encode_chunk_map(w, v.chunks_to);
}

bool decode(Reader& r, SchedulerHandoffAckPayload& v) {
  v.generation = r.varint();
  const std::uint8_t mask = r.u8();
  if (mask > 15) {  // bits 0/1: R/S done; bits 2/3: R/S stream started
    r.fail();
    return false;
  }
  v.done_mask = mask;
  v.build_tuples = r.varint();
  v.probe_tuples = r.varint();
  v.build_chunks = r.varint();
  v.probe_chunks = r.varint();
  return decode_chunk_map(r, v.chunks_to);
}

// --- message codec ---

bool known_tag(int tag) {
  switch (static_cast<Tag>(tag)) {
    case Tag::kJoinInit:
    case Tag::kStartBuild:
    case Tag::kGenSlice:
    case Tag::kDataChunk:
    case Tag::kForwardEnd:
    case Tag::kMemoryFull:
    case Tag::kSplitRequest:
    case Tag::kHandoffStart:
    case Tag::kOpComplete:
    case Tag::kRelief:
    case Tag::kSwitchToSpill:
    case Tag::kMapUpdate:
    case Tag::kSourceDone:
    case Tag::kDrainProbe:
    case Tag::kDrainAck:
    case Tag::kBuildComplete:
    case Tag::kStartProbe:
    case Tag::kSourceProgress:
    case Tag::kHistogramRequest:
    case Tag::kHistogramReply:
    case Tag::kReshuffleMove:
    case Tag::kReshuffleDone:
    case Tag::kReportRequest:
    case Tag::kNodeReport:
    case Tag::kResultChunk:
    case Tag::kPing:
    case Tag::kPong:
    case Tag::kHeartbeatTick:
    case Tag::kRecoveryFence:
    case Tag::kRangeReset:
    case Tag::kRangeResetAck:
    case Tag::kReplayRequest:
    case Tag::kReplayDone:
    case Tag::kSchedulerSnapshot:
    case Tag::kSchedulerHandoff:
    case Tag::kSchedulerHandoffAck:
      return true;
  }
  return false;
}

bool tag_has_payload(Tag tag) {
  switch (tag) {
    case Tag::kGenSlice:
    case Tag::kRelief:
    case Tag::kSwitchToSpill:
    case Tag::kBuildComplete:
    case Tag::kReportRequest:
    case Tag::kPing:
    case Tag::kPong:
    case Tag::kHeartbeatTick:
      return false;
    default:
      return true;
  }
}

void encode_message(const Message& msg, Writer& w) {
  EHJA_CHECK_MSG(known_tag(msg.tag), "encoding message with unknown tag");
  const Tag tag = static_cast<Tag>(msg.tag);
  EHJA_CHECK_MSG(msg.has_payload() == tag_has_payload(tag),
                 "message payload presence does not match its tag");
  w.zigzag(msg.tag);
  w.zigzag(msg.from);
  w.varint(msg.wire_bytes);
  switch (tag) {
    case Tag::kJoinInit:
      encode(w, msg.as<JoinInitPayload>());
      break;
    case Tag::kStartBuild:
      encode(w, msg.as<StartBuildPayload>());
      break;
    case Tag::kDataChunk:
      encode(w, msg.as<ChunkPayload>());
      break;
    case Tag::kForwardEnd:
      encode(w, msg.as<ForwardEndPayload>());
      break;
    case Tag::kMemoryFull:
      encode(w, msg.as<MemoryFullPayload>());
      break;
    case Tag::kSplitRequest:
      encode(w, msg.as<SplitRequestPayload>());
      break;
    case Tag::kHandoffStart:
      encode(w, msg.as<HandoffStartPayload>());
      break;
    case Tag::kOpComplete:
      encode(w, msg.as<OpCompletePayload>());
      break;
    case Tag::kMapUpdate:
      encode(w, msg.as<MapUpdatePayload>());
      break;
    case Tag::kSourceDone:
      encode(w, msg.as<SourceDonePayload>());
      break;
    case Tag::kDrainProbe:
      encode(w, msg.as<DrainProbePayload>());
      break;
    case Tag::kDrainAck:
      encode(w, msg.as<DrainAckPayload>());
      break;
    case Tag::kStartProbe:
      encode(w, msg.as<StartProbePayload>());
      break;
    case Tag::kSourceProgress:
      encode(w, msg.as<SourceProgressPayload>());
      break;
    case Tag::kHistogramRequest:
      encode(w, msg.as<HistogramRequestPayload>());
      break;
    case Tag::kHistogramReply:
      encode(w, msg.as<HistogramReplyPayload>());
      break;
    case Tag::kReshuffleMove:
      encode(w, msg.as<ReshuffleMovePayload>());
      break;
    case Tag::kReshuffleDone:
      encode(w, msg.as<ReshuffleDonePayload>());
      break;
    case Tag::kNodeReport:
      encode(w, msg.as<NodeReportPayload>());
      break;
    case Tag::kResultChunk:
      encode(w, msg.as<ResultChunkPayload>());
      break;
    case Tag::kRecoveryFence:
      encode(w, msg.as<RecoveryFencePayload>());
      break;
    case Tag::kRangeReset:
      encode(w, msg.as<RangeResetPayload>());
      break;
    case Tag::kRangeResetAck:
      encode(w, msg.as<RangeResetAckPayload>());
      break;
    case Tag::kReplayRequest:
      encode(w, msg.as<ReplayRequestPayload>());
      break;
    case Tag::kReplayDone:
      encode(w, msg.as<ReplayDonePayload>());
      break;
    case Tag::kSchedulerSnapshot:
      encode(w, msg.as<SchedulerSnapshotPayload>());
      break;
    case Tag::kSchedulerHandoff:
      encode(w, msg.as<SchedulerHandoffPayload>());
      break;
    case Tag::kSchedulerHandoffAck:
      encode(w, msg.as<SchedulerHandoffAckPayload>());
      break;
    case Tag::kGenSlice:
    case Tag::kRelief:
    case Tag::kSwitchToSpill:
    case Tag::kBuildComplete:
    case Tag::kReportRequest:
    case Tag::kPing:
    case Tag::kPong:
    case Tag::kHeartbeatTick:
      break;  // signals carry no payload
  }
}

namespace {

/// Decode a payload of type T and wrap it into a Message.
template <typename T>
bool decode_payload_message(Reader& r, Tag tag, std::size_t wire_bytes,
                            Message& out) {
  T payload;
  if (!decode(r, payload)) return false;
  out = make_message(tag, std::move(payload), wire_bytes);
  return true;
}

}  // namespace

bool decode_message(Reader& r, Message& out) {
  const std::int64_t raw_tag = r.zigzag();
  if (!r.ok() || raw_tag < std::numeric_limits<int>::min() ||
      raw_tag > std::numeric_limits<int>::max() ||
      !known_tag(static_cast<int>(raw_tag))) {
    r.fail();
    return false;
  }
  const Tag tag = static_cast<Tag>(raw_tag);
  ActorId from = kInvalidActor;
  if (!read_id(r, from)) return false;
  const std::uint64_t wire_bytes = r.varint();
  if (!r.ok() || wire_bytes > std::numeric_limits<std::size_t>::max()) {
    r.fail();
    return false;
  }
  const std::size_t bytes = static_cast<std::size_t>(wire_bytes);
  bool decoded = false;
  switch (tag) {
    case Tag::kJoinInit:
      decoded = decode_payload_message<JoinInitPayload>(r, tag, bytes, out);
      break;
    case Tag::kStartBuild:
      decoded = decode_payload_message<StartBuildPayload>(r, tag, bytes, out);
      break;
    case Tag::kDataChunk:
      decoded = decode_payload_message<ChunkPayload>(r, tag, bytes, out);
      break;
    case Tag::kForwardEnd:
      decoded = decode_payload_message<ForwardEndPayload>(r, tag, bytes, out);
      break;
    case Tag::kMemoryFull:
      decoded = decode_payload_message<MemoryFullPayload>(r, tag, bytes, out);
      break;
    case Tag::kSplitRequest:
      decoded =
          decode_payload_message<SplitRequestPayload>(r, tag, bytes, out);
      break;
    case Tag::kHandoffStart:
      decoded =
          decode_payload_message<HandoffStartPayload>(r, tag, bytes, out);
      break;
    case Tag::kOpComplete:
      decoded = decode_payload_message<OpCompletePayload>(r, tag, bytes, out);
      break;
    case Tag::kMapUpdate:
      decoded = decode_payload_message<MapUpdatePayload>(r, tag, bytes, out);
      break;
    case Tag::kSourceDone:
      decoded = decode_payload_message<SourceDonePayload>(r, tag, bytes, out);
      break;
    case Tag::kDrainProbe:
      decoded = decode_payload_message<DrainProbePayload>(r, tag, bytes, out);
      break;
    case Tag::kDrainAck:
      decoded = decode_payload_message<DrainAckPayload>(r, tag, bytes, out);
      break;
    case Tag::kStartProbe:
      decoded = decode_payload_message<StartProbePayload>(r, tag, bytes, out);
      break;
    case Tag::kSourceProgress:
      decoded =
          decode_payload_message<SourceProgressPayload>(r, tag, bytes, out);
      break;
    case Tag::kHistogramRequest:
      decoded =
          decode_payload_message<HistogramRequestPayload>(r, tag, bytes, out);
      break;
    case Tag::kHistogramReply:
      decoded =
          decode_payload_message<HistogramReplyPayload>(r, tag, bytes, out);
      break;
    case Tag::kReshuffleMove:
      decoded =
          decode_payload_message<ReshuffleMovePayload>(r, tag, bytes, out);
      break;
    case Tag::kReshuffleDone:
      decoded =
          decode_payload_message<ReshuffleDonePayload>(r, tag, bytes, out);
      break;
    case Tag::kNodeReport:
      decoded = decode_payload_message<NodeReportPayload>(r, tag, bytes, out);
      break;
    case Tag::kResultChunk:
      decoded = decode_payload_message<ResultChunkPayload>(r, tag, bytes, out);
      break;
    case Tag::kRecoveryFence:
      decoded =
          decode_payload_message<RecoveryFencePayload>(r, tag, bytes, out);
      break;
    case Tag::kRangeReset:
      decoded = decode_payload_message<RangeResetPayload>(r, tag, bytes, out);
      break;
    case Tag::kRangeResetAck:
      decoded =
          decode_payload_message<RangeResetAckPayload>(r, tag, bytes, out);
      break;
    case Tag::kReplayRequest:
      decoded =
          decode_payload_message<ReplayRequestPayload>(r, tag, bytes, out);
      break;
    case Tag::kReplayDone:
      decoded = decode_payload_message<ReplayDonePayload>(r, tag, bytes, out);
      break;
    case Tag::kSchedulerSnapshot:
      decoded =
          decode_payload_message<SchedulerSnapshotPayload>(r, tag, bytes, out);
      break;
    case Tag::kSchedulerHandoff:
      decoded =
          decode_payload_message<SchedulerHandoffPayload>(r, tag, bytes, out);
      break;
    case Tag::kSchedulerHandoffAck:
      decoded = decode_payload_message<SchedulerHandoffAckPayload>(r, tag,
                                                                  bytes, out);
      break;
    case Tag::kGenSlice:
    case Tag::kRelief:
    case Tag::kSwitchToSpill:
    case Tag::kBuildComplete:
    case Tag::kReportRequest:
    case Tag::kPing:
    case Tag::kPong:
    case Tag::kHeartbeatTick:
      out = make_signal(tag, bytes);
      decoded = true;
      break;
  }
  if (!decoded) return false;
  out.from = from;
  return r.ok();
}

// --- config codec ---

namespace {

void encode_dist(Writer& w, const DistributionSpec& v) {
  w.u8(static_cast<std::uint8_t>(v.kind));
  w.f64(v.mean);
  w.f64(v.sigma);
  w.f64(v.zipf_s);
  w.varint(v.domain);
}

bool decode_dist(Reader& r, DistributionSpec& v) {
  if (!read_enum(r, v.kind, 3)) return false;
  v.mean = r.f64();
  v.sigma = r.f64();
  v.zipf_s = r.f64();
  v.domain = r.varint();
  return r.ok();
}

void encode_relation(Writer& w, const RelationSpec& v) {
  w.u8(static_cast<std::uint8_t>(v.tag));
  w.varint(v.tuple_count);
  w.varint(v.schema.tuple_bytes);
  encode_dist(w, v.dist);
  // v6: materialized backing rows (pipeline intermediates) ride inside the
  // relation spec, columnar (ids then keys) with the source checksum.
  w.u8(v.data ? 1 : 0);
  if (v.data) {
    w.u64(v.data->source_checksum);
    for (const Tuple& t : v.data->rows) w.varint(t.id);
    for (const Tuple& t : v.data->rows) w.varint(t.key);
  }
}

bool decode_relation(Reader& r, RelationSpec& v) {
  if (!read_enum(r, v.tag, 1)) return false;
  v.tuple_count = r.varint();
  if (!read_u32(r, v.schema.tuple_bytes)) return false;
  // Schema::payload_bytes() asserts tuple_bytes >= 16; enforce it here so a
  // corrupt config is a decode error, not a later abort.
  if (v.schema.tuple_bytes < 16) {
    r.fail();
    return false;
  }
  if (!decode_dist(r, v.dist)) return false;
  bool has_data = false;
  if (!read_bool(r, has_data)) return false;
  if (!has_data) {
    v.data.reset();
    return true;
  }
  if (!r.can_hold(v.tuple_count, 2)) return false;
  auto data = std::make_shared<MaterializedRelation>();
  data->source_checksum = r.u64();
  data->rows.resize(static_cast<std::size_t>(v.tuple_count));
  for (Tuple& t : data->rows) t.id = r.varint();
  for (Tuple& t : data->rows) t.key = r.varint();
  if (!r.ok()) return false;
  v.data = std::move(data);
  return true;
}

void encode_link(Writer& w, const LinkConfig& v) {
  w.u8(static_cast<std::uint8_t>(v.topology));
  w.f64(v.bandwidth_bytes_per_sec);
  w.f64(v.latency_sec);
  w.f64(v.per_message_overhead_bytes);
  w.f64(v.loopback_sec_per_byte);
  w.f64(v.fault_jitter_sec);
  w.f64(v.fault_drop_prob);
  w.f64(v.fault_rto_sec);
  w.u64(v.fault_seed);
}

bool decode_link(Reader& r, LinkConfig& v) {
  if (!read_enum(r, v.topology, 1)) return false;
  v.bandwidth_bytes_per_sec = r.f64();
  v.latency_sec = r.f64();
  v.per_message_overhead_bytes = r.f64();
  v.loopback_sec_per_byte = r.f64();
  v.fault_jitter_sec = r.f64();
  v.fault_drop_prob = r.f64();
  v.fault_rto_sec = r.f64();
  v.fault_seed = r.u64();
  return r.ok();
}

void encode_cost(Writer& w, const CostModel& v) {
  w.f64(v.tuple_generate_sec);
  w.f64(v.tuple_insert_sec);
  w.f64(v.tuple_probe_sec);
  w.f64(v.tuple_compare_sec);
  w.f64(v.match_emit_sec);
  w.f64(v.tuple_pack_sec);
  w.f64(v.control_handle_sec);
  w.f64(v.cpu_scale);
}

bool decode_cost(Reader& r, CostModel& v) {
  v.tuple_generate_sec = r.f64();
  v.tuple_insert_sec = r.f64();
  v.tuple_probe_sec = r.f64();
  v.tuple_compare_sec = r.f64();
  v.match_emit_sec = r.f64();
  v.tuple_pack_sec = r.f64();
  v.control_handle_sec = r.f64();
  v.cpu_scale = r.f64();
  return r.ok();
}

void encode_disk(Writer& w, const DiskConfig& v) {
  w.f64(v.write_bytes_per_sec);
  w.f64(v.read_bytes_per_sec);
  w.f64(v.seek_sec);
  w.varint(v.io_buffer_bytes);
}

bool decode_disk(Reader& r, DiskConfig& v) {
  v.write_bytes_per_sec = r.f64();
  v.read_bytes_per_sec = r.f64();
  v.seek_sec = r.f64();
  const std::uint64_t buffer = r.varint();
  if (buffer > std::numeric_limits<std::size_t>::max()) r.fail();
  v.io_buffer_bytes = static_cast<std::size_t>(buffer);
  return r.ok();
}

void encode_faults(Writer& w, const FaultPlan& v) {
  w.varint(v.kills.size());
  for (const KillSpec& kill : v.kills) {
    w.u8(static_cast<std::uint8_t>(kill.role));
    w.varint(kill.pool_index);
    w.f64(kill.at_time);
    w.varint(kill.after_chunks);
  }
}

bool decode_faults(Reader& r, FaultPlan& v) {
  const std::uint64_t count = r.varint();
  if (!r.can_hold(count, 11)) return false;
  v.kills.clear();
  v.kills.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    KillSpec kill;
    if (!read_enum(r, kill.role, 2)) return false;
    if (!read_u32(r, kill.pool_index)) return false;
    kill.at_time = r.f64();
    kill.after_chunks = r.varint();
    if (!r.ok()) return false;
    v.kills.push_back(kill);
  }
  return true;
}

}  // namespace

void encode_config(const EhjaConfig& config, Writer& w) {
  w.u8(static_cast<std::uint8_t>(config.algorithm));
  w.varint(config.initial_join_nodes);
  w.varint(config.join_pool_nodes);
  w.varint(config.data_sources);
  w.varint(config.node_hash_memory_bytes);
  encode_relation(w, config.build_rel);
  encode_relation(w, config.probe_rel);
  w.varint(config.chunk_tuples);
  w.varint(config.generation_slice_tuples);
  w.u64(config.seed);
  w.varint(config.source_progress_slices);
  w.varint(config.reshuffle_bins);
  w.varint(config.spill_fanout);
  w.u8(static_cast<std::uint8_t>(config.pick_policy));
  w.u8(static_cast<std::uint8_t>(config.split_variant));
  w.u8(config.balanced_initial_partition ? 1 : 0);
  w.varint(config.partition_sample);
  // config.trace is deliberately not serialized: tracing is a
  // coordinator-side concern and the sink pointer is meaningless in another
  // process.
  encode_link(w, config.link);
  encode_cost(w, config.cost);
  encode_disk(w, config.disk);
  encode_faults(w, config.faults);
  w.u8(config.ft.force_enabled ? 1 : 0);
  w.f64(config.ft.heartbeat_interval_sec);
  w.f64(config.ft.heartbeat_timeout_sec);
  w.u8(static_cast<std::uint8_t>(config.ft.detector));
  w.f64(config.ft.phi_threshold);
  w.varint(config.ft.phi_window);
  w.u8(config.ft.standby_scheduler ? 1 : 0);
  w.varint(config.intra_threads);
  w.u8(static_cast<std::uint8_t>(config.intra_mode));
  w.u8(config.capture_output ? 1 : 0);
  w.varint(config.pipeline_stage);
}

bool decode_config(Reader& r, EhjaConfig& config) {
  if (!read_enum(r, config.algorithm, 4)) return false;
  if (!read_u32(r, config.initial_join_nodes) ||
      !read_u32(r, config.join_pool_nodes) ||
      !read_u32(r, config.data_sources)) {
    return false;
  }
  config.node_hash_memory_bytes = r.varint();
  if (!decode_relation(r, config.build_rel) ||
      !decode_relation(r, config.probe_rel)) {
    return false;
  }
  if (!read_u32(r, config.chunk_tuples) ||
      !read_u32(r, config.generation_slice_tuples)) {
    return false;
  }
  config.seed = r.u64();
  if (!read_u32(r, config.source_progress_slices)) return false;
  const std::uint64_t bins = r.varint();
  const std::uint64_t fanout = r.varint();
  if (!r.ok() || bins > std::numeric_limits<std::size_t>::max() ||
      fanout > std::numeric_limits<std::size_t>::max()) {
    r.fail();
    return false;
  }
  config.reshuffle_bins = static_cast<std::size_t>(bins);
  config.spill_fanout = static_cast<std::size_t>(fanout);
  if (!read_enum(r, config.pick_policy, 2) ||
      !read_enum(r, config.split_variant, 1) ||
      !read_bool(r, config.balanced_initial_partition)) {
    return false;
  }
  config.partition_sample = r.varint();
  config.trace = nullptr;
  if (!decode_link(r, config.link) || !decode_cost(r, config.cost) ||
      !decode_disk(r, config.disk) || !decode_faults(r, config.faults)) {
    return false;
  }
  if (!read_bool(r, config.ft.force_enabled)) return false;
  config.ft.heartbeat_interval_sec = r.f64();
  config.ft.heartbeat_timeout_sec = r.f64();
  if (!read_enum(r, config.ft.detector, 1)) return false;
  config.ft.phi_threshold = r.f64();
  if (!read_u32(r, config.ft.phi_window)) return false;
  if (!read_bool(r, config.ft.standby_scheduler)) return false;
  if (!read_u32(r, config.intra_threads)) return false;
  if (!read_enum(r, config.intra_mode, 1)) return false;
  if (!read_bool(r, config.capture_output)) return false;
  return read_u32(r, config.pipeline_stage);
}

// --- frame layer ---

void append_frame(std::vector<std::uint8_t>& out, FrameKind kind,
                  const std::vector<std::uint8_t>& body) {
  EHJA_CHECK_MSG(body.size() <= kMaxFrameBody, "frame body exceeds cap");
  Writer header;
  header.u32(kFrameMagic);
  header.u8(kWireVersion);
  header.u8(static_cast<std::uint8_t>(kind));
  header.u16(0);  // reserved
  header.u32(static_cast<std::uint32_t>(body.size()));
  header.u32(crc32(body.data(), body.size()));
  EHJA_CHECK(header.size() == kFrameHeaderBytes);
  out.insert(out.end(), header.data().begin(), header.data().end());
  out.insert(out.end(), body.begin(), body.end());
}

FrameStatus try_parse_frame(const std::uint8_t* data, std::size_t size,
                            std::size_t& consumed, Frame& out,
                            std::string* error) {
  consumed = 0;
  if (size < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  Reader header(data, kFrameHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t kind = header.u8();
  header.u16();  // reserved
  const std::uint32_t body_len = header.u32();
  const std::uint32_t crc = header.u32();
  if (magic != kFrameMagic) {
    if (error) *error = "bad frame magic";
    return FrameStatus::kError;
  }
  if (version != kWireVersion) {
    // Distinguish "peer is newer" from garbage: the serve layer turns the
    // former into a polite reject, and both are clean errors, never aborts.
    if (error) {
      *error = version > kWireVersion ? "wire version newer than supported"
                                      : "wire version mismatch";
    }
    return FrameStatus::kError;
  }
  if (kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      kind > kMaxFrameKind) {
    if (error) *error = "unknown frame kind";
    return FrameStatus::kError;
  }
  if (body_len > kMaxFrameBody) {
    if (error) *error = "frame body exceeds cap";
    return FrameStatus::kError;
  }
  if (size < kFrameHeaderBytes + body_len) return FrameStatus::kNeedMore;
  const std::uint8_t* body = data + kFrameHeaderBytes;
  if (crc32(body, body_len) != crc) {
    if (error) *error = "frame CRC mismatch";
    return FrameStatus::kError;
  }
  out.kind = static_cast<FrameKind>(kind);
  out.body.assign(body, body + body_len);
  consumed = kFrameHeaderBytes + body_len;
  return FrameStatus::kFrame;
}

}  // namespace ehja::wire
