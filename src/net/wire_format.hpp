// Wire-format size constants, split out of net/wire.hpp so that lower
// layers (relation/chunk.hpp models per-chunk transport overhead) can agree
// with the socket runtime's actual framing without depending on the codec.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ehja::wire {

/// Frame header: magic u32 | version u8 | kind u8 | reserved u16 |
/// body_len u32 | crc32(body) u32 -- 16 bytes, all little-endian.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Modeled per-chunk envelope beyond the frame header: the message header
/// (tag + from + wire_bytes varints) plus the chunk body header (relation
/// tag, tuple count, forwarded flag, epoch).  A generous varint bound, kept
/// constant so chunk wire costs stay a pure function of tuple count.
inline constexpr std::size_t kChunkEnvelopeBytes = 16;

}  // namespace ehja::wire
