// Non-blocking framed TCP connections over loopback.
//
// Extracted from runtime/socket_runtime.cpp so the serving layer
// (src/serve/) can reuse the exact same plumbing for its client-facing
// links: one Conn per peer, reads accumulating in `in` until
// wire::try_parse_frame can cut whole frames, writes queuing in `out` and
// draining whenever the socket is writable -- a slow peer never stalls the
// event loop.
//
// Two frame-extraction flavours with different trust models:
//
//   next_frame()      aborts on corruption.  Correct for intra-cluster
//                     links (coordinator <-> worker): both ends are the
//                     same build over loopback TCP, so a bad frame is a
//                     framing *bug*.
//
//   try_next_frame()  total.  Correct for client-facing links: a client
//                     may be a newer build (higher wire version), a
//                     different tool, or garbage; the server must reject
//                     the connection, not die.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "net/wire.hpp"

namespace ehja::netio {

/// One TCP connection to a peer process.  The per-direction frame sequence
/// numbers carry the per-pair FIFO proof: every kActorMsg frame is stamped
/// with next_send_seq and the receiver fifo_accept()s it against
/// next_recv_seq.  (Client-facing links do not use the sequence fields.)
struct Conn {
  int fd = -1;
  NodeId peer = -1;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  std::uint64_t next_send_seq = 0;
  std::uint64_t next_recv_seq = 0;
  bool eof = false;
  bool broken = false;

  bool usable() const { return fd >= 0 && !broken; }
  bool wants_write() const { return usable() && out.size() > out_off; }

  ~Conn();
};

void set_nonblocking(int fd);
void set_nodelay(int fd);

/// Loopback listener; returns the fd (non-blocking) and the chosen port.
/// `requested_port` 0 picks an ephemeral port (the cluster-internal mode);
/// a fixed port is for the serve front end's published endpoint.
int make_listener(std::uint16_t& port_out, std::uint16_t requested_port = 0);

/// Blocking connect to 127.0.0.1:port with a short ECONNREFUSED retry
/// window (peers bring their listeners up concurrently); aborts on failure.
int connect_loopback(std::uint16_t port);

/// Like connect_loopback but returns -1 instead of aborting -- clients
/// probing a server that may not be up yet.
int try_connect_loopback(std::uint16_t port, int attempts = 250);

/// Drain everything currently readable into c.in.  Returns with c.eof /
/// c.broken set on EOF or a hard error; both mean the peer process is gone
/// (fail-stop), never a protocol decision point.
void read_available(Conn& c);

/// Push queued bytes out until the socket would block.
void flush_out(Conn& c);

void queue_frame(Conn& c, wire::FrameKind kind,
                 const std::vector<std::uint8_t>& body);

/// Cut one complete frame off the front of c.in.  A corrupt stream aborts
/// (trusted intra-cluster links only; see file comment).
bool next_frame(Conn& c, wire::Frame& f);

enum class FrameResult {
  kNone,   // no complete frame buffered yet
  kFrame,  // one frame extracted
  kError,  // corrupt/foreign stream; drop the connection
};

/// Total version of next_frame for untrusted (client-facing) links: never
/// aborts, reports corruption as kError with `error` describing it.
FrameResult try_next_frame(Conn& c, wire::Frame& f,
                           std::string* error = nullptr);

/// Block (via poll) until one frame arrives on `c`; handshake-only.
wire::Frame must_recv_frame(Conn& c, double timeout_sec, const char* what);

/// Block until c.out is fully on the wire; handshake-only.
void must_flush(Conn& c, double timeout_sec, const char* what);

std::unique_ptr<Conn> adopt_fd(int fd);

}  // namespace ehja::netio
