#include "workload/distribution.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace ehja {

DistributionSpec DistributionSpec::Uniform() {
  DistributionSpec spec;
  spec.kind = DistKind::kUniform;
  return spec;
}

DistributionSpec DistributionSpec::Gaussian(double mean, double sigma) {
  DistributionSpec spec;
  spec.kind = DistKind::kGaussian;
  spec.mean = mean;
  spec.sigma = sigma;
  return spec;
}

DistributionSpec DistributionSpec::Zipf(double s, std::uint64_t domain) {
  DistributionSpec spec;
  spec.kind = DistKind::kZipf;
  spec.zipf_s = s;
  spec.domain = domain;
  return spec;
}

DistributionSpec DistributionSpec::SmallDomain(std::uint64_t domain) {
  DistributionSpec spec;
  spec.kind = DistKind::kSmallDomain;
  spec.domain = domain;
  return spec;
}

std::string DistributionSpec::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case DistKind::kUniform:
      os << "uniform";
      break;
    case DistKind::kGaussian:
      os << "gaussian(mean=" << mean << ", sigma=" << sigma << ")";
      break;
    case DistKind::kZipf:
      os << "zipf(s=" << zipf_s << ", domain=" << domain << ")";
      break;
    case DistKind::kSmallDomain:
      os << "small_domain(" << domain << ")";
      break;
  }
  return os.str();
}

std::uint64_t key_from_unit(double v) {
  EHJA_CHECK(v >= 0.0 && v < 1.0);
  // 53 mantissa bits shifted to the top of the key; the low 11 bits are
  // zero, which is irrelevant because bucket/position mapping uses the high
  // bits (hash/hash_family.hpp).
  return static_cast<std::uint64_t>(v * 0x1.0p53) << 11;
}

namespace {

std::uint64_t sample_gaussian(const DistributionSpec& spec, SplitMix64& rng) {
  // Rejection-resample values falling outside [0,1); with the paper's
  // parameters (mean 0.5, sigma <= 1e-3) rejection is essentially never hit.
  for (;;) {
    const double v = spec.mean + spec.sigma * rng.next_gaussian();
    if (v >= 0.0 && v < 1.0) return key_from_unit(v);
  }
}

std::uint64_t sample_zipf(const DistributionSpec& spec, SplitMix64& rng) {
  // Devroye's rejection method for bounded Zipf(s) over ranks 1..n.
  const double s = spec.zipf_s;
  const double n = static_cast<double>(spec.domain);
  std::uint64_t rank = 0;
  if (s == 1.0) {
    // Harmonic case: invert the integral approximation.
    const double hn = std::log(n) + 1.0;
    for (;;) {
      const double u = rng.next_double() * hn;
      const double x = std::exp(u) - 1.0;  // cumulative ~ log(1+x)
      rank = static_cast<std::uint64_t>(x) + 1;
      if (rank >= 1 && rank <= spec.domain) break;
    }
  } else {
    const double t = std::pow(n, 1.0 - s);
    for (;;) {
      const double u = rng.next_double();
      const double x =
          std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));  // inverse CDF of
      rank = static_cast<std::uint64_t>(x);                // the continuous
      if (rank >= 1 && rank <= spec.domain) break;         // envelope
    }
  }
  // Scatter ranks through the key space so Zipf models *value* skew
  // (duplicated hot values) rather than the Gaussian's *range* skew.
  return SplitMix64::mix(rank);
}

std::uint64_t sample_small_domain(const DistributionSpec& spec,
                                  SplitMix64& rng) {
  EHJA_CHECK(spec.domain > 0);
  const std::uint64_t value = rng.next_below(spec.domain);
  // Evenly spaced exact keys: preserves uniform bucket spread while forcing
  // key collisions between R and S.
  const std::uint64_t stride = UINT64_MAX / spec.domain;
  return value * stride;
}

}  // namespace

std::uint64_t sample_key(const DistributionSpec& spec, SplitMix64& rng) {
  switch (spec.kind) {
    case DistKind::kUniform:
      return rng.next_u64();
    case DistKind::kGaussian:
      return sample_gaussian(spec, rng);
    case DistKind::kZipf:
      return sample_zipf(spec, rng);
    case DistKind::kSmallDomain:
      return sample_small_domain(spec, rng);
  }
  EHJA_CHECK_MSG(false, "unreachable: bad DistKind");
  return 0;
}

}  // namespace ehja
