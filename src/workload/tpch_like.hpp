// A TPC-H-shaped pipeline workload: lineitem |><| orders |><| customer.
//
// The classic left-deep order-priority chain, scaled down from SF1's
// 6M : 1.5M : 150k rows but keeping the cardinality ratios (each order has
// ~4 lineitems, each customer ~10 orders) and the foreign-key structure:
//
//   stage 0: build = orders   (key = orderkey, ~unique over the domain)
//            probe = lineitem (key = orderkey FK, 4x fan-in)
//   stage 1: build = stage-0 output re-keyed to custkey via link_dist
//            probe = customer (key = custkey, ~unique)
//
// The skew knob shifts the FK distributions to Zipf -- a few hot orders
// own most lineitems and a few hot customers own most orders, the
// workload shape that actually stresses expansion -- while skew = 0 keeps
// everything small-domain uniform.
#pragma once

#include <cstdint>

#include "core/pipeline.hpp"

namespace ehja {

struct TpchLikeOptions {
  /// Row-count multiplier over the base 20k orders / 80k lineitem /
  /// 2k customer shape.
  double scale = 1.0;
  /// 0 = uniform FKs; > 0 = Zipf(s = skew) hot orders and hot customers.
  double skew = 0.0;
  /// Shared node budget and per-stage initial claims.
  std::uint32_t join_pool_nodes = 16;
  std::uint32_t initial_join_nodes = 2;
  std::uint32_t data_sources = 2;
  /// Per-node memory; sized so the base scale forces some expansion.
  std::uint64_t node_hash_memory_bytes = 0;  // 0 = derive from scale
  std::uint64_t seed = 20040607;
  Algorithm algorithm = Algorithm::kHybrid;
};

/// Build the two-stage plan described above.
PipelinePlan tpch_like_plan(const TpchLikeOptions& options = {});

}  // namespace ehja
