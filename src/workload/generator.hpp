// Deterministic streaming relation generation.
//
// The paper generates relations "on-the-fly on multiple nodes as the join
// operation progressed", simulating streams from a distributed database.
// Each data source owns a contiguous slice of the row-id space and an
// independent RNG stream derived from (master seed, relation, source index),
// so the multiset of generated tuples is identical no matter how many
// sources there are or how their emission interleaves -- which is exactly
// what lets the tests compare a distributed run against the serial
// reference join.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "relation/relation.hpp"
#include "util/rng.hpp"
#include "workload/distribution.hpp"

namespace ehja {

/// Concrete rows backing a relation, used when the relation is not sampled
/// from a distribution but *captured* -- e.g. a pipeline stage's join output
/// becoming the next stage's build input.  Rows are indexed by tuple id
/// (rows[i].id == i is NOT required; the id column carries provenance), and
/// every TupleStream slice reads the same immutable vector, so deterministic
/// replay -- and with it source reassignment and partition rebuild -- works
/// exactly as it does for generated relations.
struct MaterializedRelation {
  std::vector<Tuple> rows;
  /// Order-independent checksum of the producing join (JoinResult::checksum
  /// of the stage that emitted these rows); lets consumers assert the
  /// hand-off lost nothing.
  std::uint64_t source_checksum = 0;
};

struct RelationSpec {
  RelTag tag = RelTag::kR;
  std::uint64_t tuple_count = 0;
  Schema schema;
  DistributionSpec dist;
  /// When set, streams replay rows[begin..end) instead of sampling `dist`.
  /// Shared (not owned) so configs can be copied freely and shipped once.
  std::shared_ptr<const MaterializedRelation> data;
};

/// One data source's deterministic slice of a relation.
class TupleStream {
 public:
  TupleStream(const RelationSpec& spec, std::uint64_t seed,
              std::uint32_t source_index, std::uint32_t source_count);

  /// Emit the next tuple; false when this source's slice is exhausted.
  bool next(Tuple& out);

  std::uint64_t produced() const { return next_id_ - begin_id_; }
  std::uint64_t remaining() const { return end_id_ - next_id_; }
  std::uint64_t slice_size() const { return end_id_ - begin_id_; }

 private:
  DistributionSpec dist_;
  SplitMix64 rng_;
  std::shared_ptr<const MaterializedRelation> data_;
  std::uint64_t begin_id_ = 0;
  std::uint64_t end_id_ = 0;
  std::uint64_t next_id_ = 0;
};

/// RNG stream id for (relation, source); exposed so tests can assert stream
/// independence.
std::uint64_t stream_id(RelTag tag, std::uint32_t source_index);

/// Materialize a whole relation exactly as `source_count` streaming sources
/// would produce it (concatenated in source order).
Relation materialize(const RelationSpec& spec, std::uint64_t seed,
                     std::uint32_t source_count);

}  // namespace ehja
