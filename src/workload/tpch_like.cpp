#include "workload/tpch_like.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace ehja {

namespace {

std::uint64_t scaled(double scale, std::uint64_t base) {
  const double v = scale * static_cast<double>(base);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(v)));
}

}  // namespace

PipelinePlan tpch_like_plan(const TpchLikeOptions& options) {
  // SF1 ratios: lineitem : orders : customer = 6M : 1.5M : 150k = 40 : 10 : 1.
  const std::uint64_t orders = scaled(options.scale, 20'000);
  const std::uint64_t lineitem = scaled(options.scale, 80'000);
  const std::uint64_t customer = scaled(options.scale, 2'000);

  // Zipf keys live in a scattered key space (mix(rank)) disjoint from
  // SmallDomain's evenly-strided one, so a skewed FK side forces the PK
  // side into near-uniform Zipf (s ~ 0) over the same domain: the key
  // *values* still collide, only the FK multiplicities are skewed.
  const bool skewed = options.skew > 0.0;
  const DistributionSpec orderkey_pk =
      skewed ? DistributionSpec::Zipf(0.05, orders)
             : DistributionSpec::SmallDomain(orders);
  const DistributionSpec orderkey_fk =
      skewed ? DistributionSpec::Zipf(options.skew, orders) : orderkey_pk;
  const DistributionSpec custkey_pk =
      skewed ? DistributionSpec::Zipf(0.05, customer)
             : DistributionSpec::SmallDomain(customer);
  const DistributionSpec custkey_fk =
      skewed ? DistributionSpec::Zipf(options.skew, customer) : custkey_pk;

  PipelinePlan plan;
  plan.first_build =
      RelationSpec{RelTag::kR, orders, Schema{100}, orderkey_pk, nullptr};
  plan.intermediate_tuple_bytes = 200;
  plan.join_pool_nodes = options.join_pool_nodes;
  plan.data_sources = options.data_sources;
  plan.seed = options.seed;
  // Sized so the base shape fills a node's table a few times over: stages
  // must expand (the whole point of the chain) without thrashing.
  plan.node_hash_memory_bytes =
      options.node_hash_memory_bytes != 0
          ? options.node_hash_memory_bytes
          : std::max<std::uint64_t>(
                64 * kKiB,
                scaled(options.scale, 6'000) * tuple_footprint(Schema{200}));

  PipelineStage stage0;
  stage0.probe =
      RelationSpec{RelTag::kS, lineitem, Schema{100}, orderkey_fk, nullptr};
  stage0.algorithm = options.algorithm;
  stage0.initial_join_nodes = options.initial_join_nodes;
  // Stage-0 output rows (order |><| lineitem) carry the order's custkey.
  stage0.link_dist = custkey_fk;
  plan.stages.push_back(stage0);

  PipelineStage stage1;
  stage1.probe =
      RelationSpec{RelTag::kS, customer, Schema{100}, custkey_pk, nullptr};
  stage1.algorithm = options.algorithm;
  stage1.initial_join_nodes = options.initial_join_nodes;
  plan.stages.push_back(stage1);

  return plan;
}

}  // namespace ehja
