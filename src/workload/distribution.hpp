// Join-attribute distributions.
//
// The paper generates join attributes from Uniform or Gaussian(mean, sigma)
// distributions over a normalized value range; Gaussian with small sigma
// models *range skew* (all hot values adjacent in the key space), which is
// what stresses the bucket-overflow machinery.  We add Zipf (value skew:
// heavy duplication of scattered hot values) and a small-domain distribution
// (guaranteed duplicate keys, used by correctness tests to force non-empty
// join output).
//
// Keys are 64-bit; a normalized value v in [0, 1) maps to the key space by
// scaling, so the *shape* of the distribution is preserved across the hash
// table's position space (see hash/hash_family.hpp for why that matters).
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace ehja {

enum class DistKind : std::uint8_t {
  kUniform,      // uniform over the full key space
  kGaussian,     // clipped Gaussian(mean, sigma) over [0,1) scaled up
  kZipf,         // Zipf(s) over `domain` values scattered through key space
  kSmallDomain,  // uniform over `domain` evenly spaced exact values
};

struct DistributionSpec {
  DistKind kind = DistKind::kUniform;
  /// Gaussian parameters on the normalized [0,1) value range.  The paper's
  /// skew experiments use mean 0.5 with sigma 1e-3 and 1e-4.
  double mean = 0.5;
  double sigma = 1e-3;
  /// Zipf skew parameter (s > 0) and value-domain size; also the domain for
  /// kSmallDomain.
  double zipf_s = 1.0;
  std::uint64_t domain = 1u << 20;

  static DistributionSpec Uniform();
  static DistributionSpec Gaussian(double mean, double sigma);
  static DistributionSpec Zipf(double s, std::uint64_t domain);
  static DistributionSpec SmallDomain(std::uint64_t domain);

  std::string to_string() const;
};

/// Map a normalized value in [0,1) to a 64-bit key, preserving order.
std::uint64_t key_from_unit(double v);

/// Draw one join-attribute key.
std::uint64_t sample_key(const DistributionSpec& spec, SplitMix64& rng);

}  // namespace ehja
