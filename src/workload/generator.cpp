#include "workload/generator.hpp"

#include "util/assert.hpp"

namespace ehja {

std::uint64_t stream_id(RelTag tag, std::uint32_t source_index) {
  return (static_cast<std::uint64_t>(tag) << 32) | source_index;
}

TupleStream::TupleStream(const RelationSpec& spec, std::uint64_t seed,
                         std::uint32_t source_index,
                         std::uint32_t source_count)
    : dist_(spec.dist),
      rng_(seed, stream_id(spec.tag, source_index)),
      data_(spec.data) {
  EHJA_CHECK(source_count > 0);
  EHJA_CHECK(source_index < source_count);
  if (data_) EHJA_CHECK(data_->rows.size() == spec.tuple_count);
  begin_id_ = spec.tuple_count * source_index / source_count;
  end_id_ = spec.tuple_count * (source_index + 1) / source_count;
  next_id_ = begin_id_;
}

bool TupleStream::next(Tuple& out) {
  if (next_id_ >= end_id_) return false;
  if (data_) {
    // Materialized replay: the slice arithmetic above partitions the row
    // vector exactly as it partitions the id space, so any source count --
    // including a post-failure reassignment to a different count -- replays
    // the identical multiset.
    out = data_->rows[next_id_++];
    return true;
  }
  out.id = next_id_++;
  out.key = sample_key(dist_, rng_);
  return true;
}

Relation materialize(const RelationSpec& spec, std::uint64_t seed,
                     std::uint32_t source_count) {
  Relation rel(spec.tag, spec.schema);
  rel.reserve(spec.tuple_count);
  for (std::uint32_t s = 0; s < source_count; ++s) {
    TupleStream stream(spec, seed, s, source_count);
    Tuple t;
    while (stream.next(t)) rel.add(t);
  }
  EHJA_CHECK(rel.size() == spec.tuple_count);
  return rel;
}

}  // namespace ehja
