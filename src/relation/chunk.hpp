// Chunked tuple transport.
//
// Data sources batch tuples into fixed-capacity chunks before sending them
// to join processes (paper: "per chunk = 10000 tuples").  Figures 4 and 11
// measure communication volume in these chunks.
#pragma once

#include <cstddef>
#include <vector>

#include "relation/tuple.hpp"

namespace ehja {

struct Chunk {
  RelTag rel = RelTag::kR;
  std::vector<Tuple> tuples;

  std::size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }

  /// On-wire size: a small header plus the full (payload-included) tuple
  /// encoding.
  std::size_t wire_bytes(const Schema& schema) const {
    return 64 + tuples.size() * schema.tuple_bytes;
  }
};

/// Number of transport chunks that `tuples` tuples occupy, rounding up --
/// the unit of Figures 4 and 11.
inline std::uint64_t chunks_for(std::uint64_t tuples,
                                std::uint64_t tuples_per_chunk) {
  return (tuples + tuples_per_chunk - 1) / tuples_per_chunk;
}

}  // namespace ehja
