// Chunked tuple transport.
//
// Data sources batch tuples into fixed-capacity chunks before sending them
// to join processes (paper: "per chunk = 10000 tuples").  Figures 4 and 11
// measure communication volume in these chunks.  A chunk is a columnar
// TupleBatch plus the relation tag; every hop (source routing, join-process
// partitioning, wire codec) streams the batch's columns rather than
// re-materializing rows.
#pragma once

#include <cstddef>

#include "net/wire_format.hpp"
#include "relation/tuple.hpp"
#include "relation/tuple_batch.hpp"
#include "util/math.hpp"

namespace ehja {

struct Chunk {
  RelTag rel = RelTag::kR;
  TupleBatch batch;

  std::size_t size() const { return batch.size(); }
  bool empty() const { return batch.empty(); }

  /// On-wire size: the socket runtime's frame header plus the modeled
  /// message/chunk envelope plus the full (payload-included) tuple
  /// encoding.  Derived from the actual net/wire framing constants so the
  /// simulated byte counts agree with what the socket runtime ships.
  std::size_t wire_bytes(const Schema& schema) const {
    return wire::kFrameHeaderBytes + wire::kChunkEnvelopeBytes +
           batch.size() * schema.tuple_bytes;
  }
};

/// Number of transport chunks that `tuples` tuples occupy, rounding up --
/// the unit of Figures 4 and 11.
inline std::uint64_t chunks_for(std::uint64_t tuples,
                                std::uint64_t tuples_per_chunk) {
  return ceil_div(tuples, tuples_per_chunk);
}

}  // namespace ehja
