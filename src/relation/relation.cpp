#include "relation/relation.hpp"

namespace ehja {

void Relation::append(const Chunk& chunk) {
  tuples_.insert(tuples_.end(), chunk.tuples.begin(), chunk.tuples.end());
}

}  // namespace ehja
