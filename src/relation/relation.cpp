#include "relation/relation.hpp"

namespace ehja {

void Relation::append(const Chunk& chunk) {
  tuples_.reserve(tuples_.size() + chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    tuples_.push_back(chunk.batch.tuple(i));
  }
}

}  // namespace ehja
