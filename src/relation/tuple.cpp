#include "relation/tuple.hpp"

// Header-only; anchors the module.
