// Tuple and schema types.
//
// The paper's synthetic schema: a 64-bit index, a 64-bit join attribute, and
// an n-byte data payload (ss5, "Data Generation").  The payload's *content*
// never affects any measured quantity, so only the index and join attribute
// are materialized; the payload contributes to every memory- and
// network-cost computation through Schema::tuple_bytes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ehja {

/// Which relation a tuple/chunk belongs to.
enum class RelTag : std::uint8_t { kR = 0, kS = 1 };

inline const char* rel_name(RelTag tag) { return tag == RelTag::kR ? "R" : "S"; }

struct Tuple {
  std::uint64_t id = 0;   // unique row index
  std::uint64_t key = 0;  // join attribute

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

struct Schema {
  /// Full on-wire / in-table size of one tuple: 8 B index + 8 B join
  /// attribute + payload.  The paper's default is 100 B.
  std::uint32_t tuple_bytes = 100;

  std::uint32_t payload_bytes() const {
    EHJA_CHECK(tuple_bytes >= 16);
    return tuple_bytes - 16;
  }
};

/// Hash-table bookkeeping overhead per stored tuple (chain pointer + length
/// field in a 2004-era implementation); part of the memory footprint.
inline constexpr std::uint32_t kHashEntryOverheadBytes = 24;

/// Bytes one tuple occupies in a node's hash table.
inline std::uint64_t tuple_footprint(const Schema& schema) {
  return schema.tuple_bytes + kHashEntryOverheadBytes;
}

/// Order-independent signature of one (r, s) output pair.  Join results are
/// compared across algorithms/runtimes as (cardinality, sum of signatures):
/// addition is commutative, so any production order yields the same value,
/// and the mixed signature makes compensating errors astronomically
/// unlikely.
inline std::uint64_t match_signature(std::uint64_t r_id, std::uint64_t s_id) {
  return SplitMix64::mix(r_id * 0x9e3779b97f4a7c15ull ^
                         (s_id + 0x632be59bd9b4e019ull));
}

}  // namespace ehja
