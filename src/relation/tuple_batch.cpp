#include "relation/tuple_batch.hpp"

namespace ehja {

TupleBatch TupleBatch::from_tuples(const std::vector<Tuple>& tuples) {
  TupleBatch batch;
  batch.reserve(tuples.size());
  for (const Tuple& t : tuples) batch.append(t.id, t.key);
  return batch;
}

void TupleBatch::reserve(std::size_t n) {
  ids_.reserve(n);
  keys_.reserve(n);
  positions_.reserve(n);
}

void TupleBatch::clear() {
  ids_.clear();
  keys_.clear();
  positions_.clear();
}

void TupleBatch::append_range(const TupleBatch& src, std::size_t begin,
                              std::size_t end) {
  ids_.insert(ids_.end(), src.ids_.begin() + begin, src.ids_.begin() + end);
  keys_.insert(keys_.end(), src.keys_.begin() + begin,
               src.keys_.begin() + end);
  positions_.insert(positions_.end(), src.positions_.begin() + begin,
                    src.positions_.begin() + end);
}

std::vector<Tuple> TupleBatch::to_tuples() const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(tuple(i));
  return out;
}

}  // namespace ehja
