#include "relation/chunk.hpp"

// Header-only; anchors the module.
