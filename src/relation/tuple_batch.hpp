// Columnar tuple batch: the unit of the data plane.
//
// A batch stores the paper's synthetic tuples decomposed into parallel
// columns -- row ids, join attributes, and a precomputed hash-position
// column -- so that the hot paths (partitioning at the sources, bulk
// build/probe at the join processes, the wire codec) stream over contiguous
// arrays instead of chasing an array-of-structs one tuple at a time.  The
// position column is the "hash column": position_of(key) is evaluated once,
// where the tuple is materialized, and every later consumer (routing,
// fences, forward tables, hash-table build) reads it instead of re-hashing.
//
// The schema's payload-size column is degenerate -- every tuple of a
// relation carries the same payload_bytes() -- so it is represented by the
// Schema rather than per-row storage; payload bytes still flow through all
// footprint and wire-cost computations.
//
// Builder API: append()/push_back() grow all columns in lockstep;
// append_row()/append_range() copy rows across batches without re-hashing.
// Iterator API: begin()/end() yield materialized Tuple values for code that
// wants row-at-a-time access (tests, the serial reference join).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/hash_family.hpp"
#include "relation/tuple.hpp"

namespace ehja {

class TupleBatch {
 public:
  TupleBatch() = default;

  static TupleBatch from_tuples(const std::vector<Tuple>& tuples);

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void reserve(std::size_t n);
  void clear();

  /// Append one tuple, computing its hash position.
  void append(std::uint64_t id, std::uint64_t key) {
    ids_.push_back(id);
    keys_.push_back(key);
    positions_.push_back(static_cast<std::uint32_t>(position_of(key)));
  }
  void push_back(const Tuple& t) { append(t.id, t.key); }

  /// Copy row `i` of `src` without re-hashing.
  void append_row(const TupleBatch& src, std::size_t i) {
    ids_.push_back(src.ids_[i]);
    keys_.push_back(src.keys_[i]);
    positions_.push_back(src.positions_[i]);
  }

  /// Bulk-copy rows [begin, end) of `src` (column memcpy, no re-hashing).
  void append_range(const TupleBatch& src, std::size_t begin, std::size_t end);

  std::uint64_t id(std::size_t i) const { return ids_[i]; }
  std::uint64_t key(std::size_t i) const { return keys_[i]; }
  /// Precomputed position_of(key(i)).
  std::uint64_t position(std::size_t i) const { return positions_[i]; }
  Tuple tuple(std::size_t i) const { return Tuple{ids_[i], keys_[i]}; }

  const std::vector<std::uint64_t>& ids() const { return ids_; }
  const std::vector<std::uint64_t>& keys() const { return keys_; }
  const std::vector<std::uint32_t>& positions() const { return positions_; }

  std::vector<Tuple> to_tuples() const;

  /// Row-at-a-time view materializing Tuple values.
  class const_iterator {
   public:
    const_iterator(const TupleBatch* batch, std::size_t i)
        : batch_(batch), i_(i) {}
    Tuple operator*() const { return batch_->tuple(i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator&,
                           const const_iterator&) = default;

   private:
    const TupleBatch* batch_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  /// Row-wise equality (positions are derived, hence not compared twice).
  friend bool operator==(const TupleBatch& a, const TupleBatch& b) {
    return a.ids_ == b.ids_ && a.keys_ == b.keys_;
  }

 private:
  std::vector<std::uint64_t> ids_;
  std::vector<std::uint64_t> keys_;
  // Positions fit in 32 bits (kPositionBits <= 32 by construction); the
  // narrower column halves the bytes the partition passes stream.
  std::vector<std::uint32_t> positions_;
};

static_assert(kPositionBits <= 32, "position column is stored as uint32");

}  // namespace ehja
