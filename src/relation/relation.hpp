// An in-memory relation, used by the serial reference join and the tests.
// The distributed algorithms never materialize whole relations; they stream
// chunks from the data sources.
#pragma once

#include <cstdint>
#include <vector>

#include "relation/chunk.hpp"
#include "relation/tuple.hpp"

namespace ehja {

class Relation {
 public:
  Relation() = default;
  Relation(RelTag tag, Schema schema) : tag_(tag), schema_(schema) {}

  RelTag tag() const { return tag_; }
  const Schema& schema() const { return schema_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  void reserve(std::size_t n) { tuples_.reserve(n); }
  void add(Tuple t) { tuples_.push_back(t); }
  void append(const Chunk& chunk);

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& operator[](std::size_t i) const { return tuples_[i]; }

  /// Total bytes this relation occupies on the wire / on disk.
  std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(tuples_.size()) * schema_.tuple_bytes;
  }

 private:
  RelTag tag_ = RelTag::kR;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace ehja
