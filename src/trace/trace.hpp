// Run tracing: a time-stamped event log plus per-node time series.
//
// The scheduler and join processes emit trace points (phase transitions,
// expansions, memory samples, spills); benches and the CLI can dump the
// trace as CSV to study *when* things happened, not just aggregate totals.
// Tracing is opt-in (a TraceSink pointer in the config); when absent the
// emit calls are a branch and return.
//
// Thread-safety: SimRuntime is single-threaded; ThreadRuntime emits from
// many actor threads, so the sink serializes with a mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ehja {

enum class TraceKind : std::uint8_t {
  kPhase,       // scheduler phase transition; detail = phase name
  kExpansion,   // new join node recruited; a = requester, b = fresh actor
  kMemoryFull,  // a = actor, b = footprint bytes
  kSplitOp,     // a = parent actor, b = moved tuples
  kHandoffOp,   // a = frozen actor, b = replica actor
  kReshuffle,   // a = set id, b = members
  kSpillSwitch, // a = actor
  kMemSample,   // a = actor, b = footprint bytes
  kDrainRound,  // a = epoch, b = received total
  kAdaptiveChoice,  // a = actor, b = 1 split / 0 replicate
  kFailureDetected,  // a = dead actor, b = silence in microseconds
  kRecoveryStart,    // a = recovery epoch, b = dead actors so far
  kRecoveryDone,     // a = recovery epoch, b = duration in microseconds
  kReplay,           // a = source actor, b = tuples replayed
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  SimTime time = 0.0;
  TraceKind kind = TraceKind::kPhase;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::string detail;
};

class TraceSink {
 public:
  void emit(SimTime time, TraceKind kind, std::int64_t a = 0,
            std::int64_t b = 0, std::string detail = {});

  /// Snapshot of everything recorded so far.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;

  /// Events of one kind, in emission order.
  std::vector<TraceEvent> of_kind(TraceKind kind) const;

  /// CSV: time,kind,a,b,detail
  void write_csv(std::ostream& os) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace ehja
