#include "trace/trace.hpp"

namespace ehja {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPhase: return "phase";
    case TraceKind::kExpansion: return "expansion";
    case TraceKind::kMemoryFull: return "memory_full";
    case TraceKind::kSplitOp: return "split_op";
    case TraceKind::kHandoffOp: return "handoff_op";
    case TraceKind::kReshuffle: return "reshuffle";
    case TraceKind::kSpillSwitch: return "spill_switch";
    case TraceKind::kMemSample: return "mem_sample";
    case TraceKind::kDrainRound: return "drain_round";
    case TraceKind::kAdaptiveChoice: return "adaptive_choice";
    case TraceKind::kFailureDetected: return "failure_detected";
    case TraceKind::kRecoveryStart: return "recovery_start";
    case TraceKind::kRecoveryDone: return "recovery_done";
    case TraceKind::kReplay: return "replay";
  }
  return "?";
}

void TraceSink::emit(SimTime time, TraceKind kind, std::int64_t a,
                     std::int64_t b, std::string detail) {
  std::scoped_lock lock(mutex_);
  events_.push_back(TraceEvent{time, kind, a, b, std::move(detail)});
}

std::vector<TraceEvent> TraceSink::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t TraceSink::size() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceSink::of_kind(TraceKind kind) const {
  std::scoped_lock lock(mutex_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

void TraceSink::write_csv(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  os << "time,kind,a,b,detail\n";
  for (const TraceEvent& e : events_) {
    os << e.time << ',' << trace_kind_name(e.kind) << ',' << e.a << ','
       << e.b << ',' << e.detail << '\n';
  }
}

void TraceSink::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
}

}  // namespace ehja
