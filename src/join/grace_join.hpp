// Dynamic hybrid-hash / GRACE out-of-core join machinery.
//
// HybridHashSpiller manages one node's position range when the hash table
// cannot be guaranteed to fit: the range is pre-cut into `fanout` equal
// sub-partitions; tuples build in memory until the budget is exceeded, then
// whole sub-partitions are evicted to simulated disk, largest first.  Build
// tuples for spilled sub-partitions go straight to their R spill file, probe
// tuples likewise to the S spill file; in-memory sub-partitions are probed
// immediately (the classic dynamic hybrid-hash discipline).  finish() joins
// each spilled (R_k, S_k) pair, multi-pass when R_k alone exceeds the
// budget (each extra pass rescans S_k, which is what makes the OOC baseline
// collapse at small initial node counts -- paper Fig. 2).
//
// All methods return the virtual seconds consumed (CPU per the cost model +
// disk per SimDisk); the caller charges them to its node.  This component
// serves two masters: the paper's "Out of Core" baseline algorithm, and any
// EHJA node that must degrade gracefully once the potential-node pool is
// exhausted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cost_model.hpp"
#include "hash/local_hash_table.hpp"
#include "join/serial_join.hpp"
#include "storage/sim_disk.hpp"
#include "storage/spill_file.hpp"

namespace ehja {

/// What to do when the build side exceeds the budget.
enum class SpillPolicy {
  /// Evict one sub-partition at a time, largest first, and keep probing the
  /// rest in memory (dynamic hybrid hash).  Used when an EHJA node degrades
  /// after pool exhaustion.
  kEvictLargest,
  /// First overflow sends *everything* to disk -- the basic GRACE
  /// out-of-core join of the paper's ss2, which is what its "Out of Core"
  /// baseline runs: all of R and all of S stream through the disk before
  /// any bucket pair is joined.
  kEvictAll,
};

class HybridHashSpiller {
 public:
  HybridHashSpiller(Schema schema, PosRange range,
                    std::uint64_t memory_budget_bytes, std::size_t fanout,
                    SimDisk& disk, const CostModel& cost,
                    std::uint64_t stream_namespace,
                    SpillPolicy policy = SpillPolicy::kEvictLargest);

  /// Route one build-relation tuple; may trigger sub-partition eviction.
  double add_build(const Tuple& t);

  /// Route one probe-relation tuple; in-memory partitions are probed into
  /// `acc` immediately, spilled ones are deferred to finish().  A non-null
  /// `sink` receives one Tuple{build_row_id, probe_row_id} per match --
  /// matches emitted here and in finish() together mirror `acc` exactly,
  /// whichever side of a spill transition each match lands on.
  double add_probe(const Tuple& t, JoinResult& acc,
                   std::vector<Tuple>* sink = nullptr);

  /// Join all spilled (R_k, S_k) pairs into `acc`.  Call once, after both
  /// streams end.
  double finish(JoinResult& acc, std::vector<Tuple>* sink = nullptr);

  /// Drain every build tuple (in memory and on disk) and every deferred
  /// spilled probe tuple, leaving the spiller empty; returns the seconds
  /// consumed (disk scans of the spilled partitions).  The recovery
  /// range-reset uses this to rebuild a node's state minus the discarded
  /// ranges; the caller re-adds the survivors to a fresh spiller.
  double extract_all(std::vector<Tuple>& build_out,
                     std::vector<Tuple>& probe_out);

  // --- observability ---
  std::uint64_t build_tuples() const { return build_tuples_; }
  std::uint64_t spilled_build_tuples() const;
  std::uint64_t spilled_probe_tuples() const;
  std::size_t spilled_partitions() const;
  std::uint64_t memory_footprint() const { return table_.footprint_bytes(); }
  const PosRange& range() const { return table_.range(); }
  bool any_spilled() const { return spilled_partitions() > 0; }

 private:
  struct Partition {
    PosRange range;
    bool spilled = false;
    std::uint64_t mem_tuples = 0;  // build tuples currently in memory
    std::unique_ptr<SpillFile> r_file;
    std::unique_ptr<SpillFile> s_file;
    std::vector<Tuple> r_tuples;  // "disk contents"
    std::vector<Tuple> s_tuples;
  };

  std::size_t partition_of(std::uint64_t pos) const;
  double evict_largest();
  double evict(std::size_t victim);
  double join_partition(Partition& part, JoinResult& acc,
                        std::vector<Tuple>* sink);

  Schema schema_;
  std::uint64_t budget_;
  SpillPolicy policy_;
  const CostModel* cost_;
  SimDisk* disk_;
  LocalHashTable table_;
  std::vector<Partition> partitions_;
  std::uint64_t build_tuples_ = 0;
  bool finished_ = false;
};

/// Serial one-node GRACE-style join with full cost accounting; the
/// standalone building block the unit tests exercise and examples use.
struct GraceOutcome {
  JoinResult result;
  double seconds = 0.0;
  std::uint64_t spilled_build_tuples = 0;
  std::uint64_t spilled_probe_tuples = 0;
};

GraceOutcome grace_join(const Relation& build, const Relation& probe,
                        std::uint64_t memory_budget_bytes, std::size_t fanout,
                        SimDisk& disk, const CostModel& cost);

}  // namespace ehja
