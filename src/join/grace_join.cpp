#include "join/grace_join.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace ehja {

namespace {

std::uint64_t part_boundary(const PosRange& range, std::size_t k,
                            std::size_t fanout) {
  return range.lo + range.width() * k / fanout;
}

}  // namespace

HybridHashSpiller::HybridHashSpiller(Schema schema, PosRange range,
                                     std::uint64_t memory_budget_bytes,
                                     std::size_t fanout, SimDisk& disk,
                                     const CostModel& cost,
                                     std::uint64_t stream_namespace,
                                     SpillPolicy policy)
    : schema_(schema),
      budget_(memory_budget_bytes),
      policy_(policy),
      cost_(&cost),
      disk_(&disk),
      table_(schema, range) {
  EHJA_CHECK(fanout >= 1);
  EHJA_CHECK_MSG(budget_ >= tuple_footprint(schema),
                 "budget below a single tuple's footprint");
  const std::size_t parts =
      static_cast<std::size_t>(std::min<std::uint64_t>(fanout, range.width()));
  partitions_.reserve(parts);
  for (std::size_t k = 0; k < parts; ++k) {
    Partition part;
    part.range = PosRange{part_boundary(range, k, parts),
                          part_boundary(range, k + 1, parts)};
    const std::uint64_t base = (stream_namespace << 6) | (k << 1);
    part.r_file = std::make_unique<SpillFile>(disk, base);
    part.s_file = std::make_unique<SpillFile>(disk, base | 1);
    partitions_.push_back(std::move(part));
  }
}

std::size_t HybridHashSpiller::partition_of(std::uint64_t pos) const {
  const PosRange& range = table_.range();
  EHJA_CHECK(range.contains(pos));
  std::size_t k = static_cast<std::size_t>((pos - range.lo) *
                                           partitions_.size() / range.width());
  k = std::min(k, partitions_.size() - 1);
  // Integer rounding can land one partition off; fix up locally.
  while (pos < partitions_[k].range.lo) --k;
  while (pos >= partitions_[k].range.hi) ++k;
  return k;
}

double HybridHashSpiller::add_build(const Tuple& t) {
  EHJA_CHECK(!finished_);
  ++build_tuples_;
  const std::uint64_t pos = position_of(t.key);
  Partition& part = partitions_[partition_of(pos)];
  if (part.spilled) {
    part.r_tuples.push_back(t);
    part.r_file->note_records(1);
    return cost_->tuple_pack_sec + part.r_file->append(schema_.tuple_bytes);
  }
  table_.insert(t);
  ++part.mem_tuples;
  double seconds = cost_->tuple_insert_sec;
  if (table_.footprint_bytes() > budget_ &&
      policy_ == SpillPolicy::kEvictAll) {
    // Basic GRACE: the first overflow sends every partition to disk; from
    // here on the whole join streams through the disk.
    for (std::size_t k = 0; k < partitions_.size(); ++k) {
      if (!partitions_[k].spilled) seconds += evict(k);
    }
    return seconds;
  }
  while (table_.footprint_bytes() > budget_) {
    seconds += evict_largest();
  }
  return seconds;
}

double HybridHashSpiller::evict_largest() {
  std::size_t victim = partitions_.size();
  for (std::size_t k = 0; k < partitions_.size(); ++k) {
    if (partitions_[k].spilled) continue;
    if (victim == partitions_.size() ||
        partitions_[k].mem_tuples > partitions_[victim].mem_tuples) {
      victim = k;
    }
  }
  EHJA_CHECK_MSG(victim < partitions_.size(),
                 "over budget with every partition already spilled");
  return evict(victim);
}

double HybridHashSpiller::evict(std::size_t victim) {
  Partition& part = partitions_[victim];
  part.spilled = true;
  std::vector<Tuple> evicted = table_.extract_range(part.range);
  EHJA_CHECK(evicted.size() == part.mem_tuples);
  part.mem_tuples = 0;
  double seconds =
      static_cast<double>(evicted.size()) * cost_->tuple_pack_sec;
  seconds += part.r_file->append(evicted.size() * schema_.tuple_bytes);
  part.r_file->note_records(evicted.size());
  if (part.r_tuples.empty()) {
    part.r_tuples = std::move(evicted);
  } else {
    part.r_tuples.insert(part.r_tuples.end(), evicted.begin(), evicted.end());
  }
  return seconds;
}

double HybridHashSpiller::add_probe(const Tuple& t, JoinResult& acc,
                                    std::vector<Tuple>* sink) {
  EHJA_CHECK(!finished_);
  const std::uint64_t pos = position_of(t.key);
  Partition& part = partitions_[partition_of(pos)];
  if (part.spilled) {
    part.s_tuples.push_back(t);
    part.s_file->note_records(1);
    return cost_->tuple_pack_sec + part.s_file->append(schema_.tuple_bytes);
  }
  const auto probe = table_.probe(t, sink);
  acc.matches += probe.matches;
  acc.checksum += probe.checksum_delta;
  return cost_->tuple_probe_sec +
         static_cast<double>(probe.comparisons) * cost_->tuple_compare_sec +
         static_cast<double>(probe.matches) * cost_->match_emit_sec;
}

double HybridHashSpiller::join_partition(Partition& part, JoinResult& acc,
                                         std::vector<Tuple>* sink) {
  double seconds = part.r_file->flush() + part.s_file->flush();
  if (part.r_tuples.empty() || part.s_tuples.empty()) {
    // Still pay the scan of whichever side has data (the 2004 code would
    // read the partition to discover it matches nothing).
    seconds += part.r_file->scan_all();
    seconds += part.s_file->scan_all();
    return seconds;
  }
  const std::uint64_t r_footprint =
      part.r_tuples.size() * tuple_footprint(schema_);
  const std::size_t passes =
      static_cast<std::size_t>(ceil_div(r_footprint, budget_));
  const std::size_t n = part.r_tuples.size();
  for (std::size_t f = 0; f < passes; ++f) {
    const std::size_t begin = n * f / passes;
    const std::size_t end = n * (f + 1) / passes;
    // Read this R fragment and build an in-memory table over it.
    seconds += part.r_file->scan((end - begin) * schema_.tuple_bytes);
    seconds += static_cast<double>(end - begin) * cost_->tuple_insert_sec;
    std::unordered_multimap<std::uint64_t, std::uint64_t> fragment;
    fragment.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      fragment.emplace(part.r_tuples[i].key, part.r_tuples[i].id);
    }
    // Each pass rescans the full S partition -- the multi-pass penalty.
    seconds += part.s_file->scan(part.s_tuples.size() * schema_.tuple_bytes);
    for (const Tuple& s : part.s_tuples) {
      seconds += cost_->tuple_probe_sec;
      auto [lo, hi] = fragment.equal_range(s.key);
      for (auto it = lo; it != hi; ++it) {
        seconds += cost_->tuple_compare_sec + cost_->match_emit_sec;
        ++acc.matches;
        acc.checksum += match_signature(it->second, s.id);
        if (sink) sink->push_back(Tuple{it->second, s.id});
      }
    }
  }
  return seconds;
}

double HybridHashSpiller::finish(JoinResult& acc, std::vector<Tuple>* sink) {
  EHJA_CHECK(!finished_);
  finished_ = true;
  double seconds = 0.0;
  for (Partition& part : partitions_) {
    if (!part.spilled) continue;
    seconds += join_partition(part, acc, sink);
  }
  return seconds;
}

double HybridHashSpiller::extract_all(std::vector<Tuple>& build_out,
                                      std::vector<Tuple>& probe_out) {
  EHJA_CHECK(!finished_);
  double seconds = 0.0;
  for (Partition& part : partitions_) {
    if (part.mem_tuples > 0) {
      std::vector<Tuple> mem = table_.extract_range(part.range);
      EHJA_CHECK(mem.size() == part.mem_tuples);
      part.mem_tuples = 0;
      build_out.insert(build_out.end(), mem.begin(), mem.end());
    }
    if (part.spilled) {
      seconds += part.r_file->flush() + part.s_file->flush();
      seconds += part.r_file->scan_all() + part.s_file->scan_all();
      build_out.insert(build_out.end(), part.r_tuples.begin(),
                       part.r_tuples.end());
      probe_out.insert(probe_out.end(), part.s_tuples.begin(),
                       part.s_tuples.end());
      part.r_tuples.clear();
      part.s_tuples.clear();
      part.spilled = false;
    }
  }
  build_tuples_ = 0;
  return seconds;
}

std::uint64_t HybridHashSpiller::spilled_build_tuples() const {
  std::uint64_t n = 0;
  for (const Partition& p : partitions_) n += p.r_tuples.size();
  return n;
}

std::uint64_t HybridHashSpiller::spilled_probe_tuples() const {
  std::uint64_t n = 0;
  for (const Partition& p : partitions_) n += p.s_tuples.size();
  return n;
}

std::size_t HybridHashSpiller::spilled_partitions() const {
  std::size_t n = 0;
  for (const Partition& p : partitions_) n += p.spilled ? 1 : 0;
  return n;
}

GraceOutcome grace_join(const Relation& build, const Relation& probe,
                        std::uint64_t memory_budget_bytes, std::size_t fanout,
                        SimDisk& disk, const CostModel& cost) {
  HybridHashSpiller spiller(build.schema(), PosRange{0, kPositionCount},
                            memory_budget_bytes, fanout, disk, cost,
                            /*stream_namespace=*/1);
  GraceOutcome outcome;
  for (const Tuple& r : build.tuples()) {
    outcome.seconds += spiller.add_build(r);
  }
  for (const Tuple& s : probe.tuples()) {
    outcome.seconds += spiller.add_probe(s, outcome.result);
  }
  outcome.seconds += spiller.finish(outcome.result);
  outcome.spilled_build_tuples = spiller.spilled_build_tuples();
  outcome.spilled_probe_tuples = spiller.spilled_probe_tuples();
  return outcome;
}

}  // namespace ehja
