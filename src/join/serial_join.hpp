// Serial in-core hash join -- the paper's Algorithm 1.
//
// Deliberately implemented with a plain std::unordered_multimap rather than
// LocalHashTable: it is the independent oracle the integration tests compare
// every distributed run against, so sharing code with the system under test
// would weaken the check.
#pragma once

#include <cstdint>
#include <vector>

#include "relation/relation.hpp"

namespace ehja {

struct JoinResult {
  std::uint64_t matches = 0;
  /// Sum of match_signature() over all output pairs (order independent).
  std::uint64_t checksum = 0;

  friend bool operator==(const JoinResult&, const JoinResult&) = default;
};

/// Build a hash table over `build`, probe it with `probe` (Algorithm 1).
JoinResult serial_hash_join(const Relation& build, const Relation& probe);

/// Same join, but also emit each output pair as Tuple{build_row_id,
/// probe_row_id} into `out` (one append per counted match).  The multi-way
/// oracle uses this to materialize stage outputs tuple-by-tuple.
JoinResult serial_hash_join_capture(const Relation& build,
                                    const Relation& probe,
                                    std::vector<Tuple>& out);

}  // namespace ehja
