#include "join/serial_join.hpp"

#include <unordered_map>

namespace ehja {

JoinResult serial_hash_join(const Relation& build, const Relation& probe) {
  std::unordered_multimap<std::uint64_t, std::uint64_t> table;
  table.reserve(build.size());
  for (const Tuple& r : build.tuples()) {
    table.emplace(r.key, r.id);
  }
  JoinResult result;
  for (const Tuple& s : probe.tuples()) {
    auto [lo, hi] = table.equal_range(s.key);
    for (auto it = lo; it != hi; ++it) {
      ++result.matches;
      result.checksum += match_signature(it->second, s.id);
    }
  }
  return result;
}

JoinResult serial_hash_join_capture(const Relation& build,
                                    const Relation& probe,
                                    std::vector<Tuple>& out) {
  std::unordered_multimap<std::uint64_t, std::uint64_t> table;
  table.reserve(build.size());
  for (const Tuple& r : build.tuples()) {
    table.emplace(r.key, r.id);
  }
  JoinResult result;
  for (const Tuple& s : probe.tuples()) {
    auto [lo, hi] = table.equal_range(s.key);
    for (auto it = lo; it != hi; ++it) {
      ++result.matches;
      result.checksum += match_signature(it->second, s.id);
      out.push_back(Tuple{it->second, s.id});
    }
  }
  return result;
}

}  // namespace ehja
