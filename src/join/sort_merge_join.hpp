// Serial sort-merge equi-join -- a second, structurally independent oracle.
//
// The integration tests compare every distributed run against
// serial_hash_join(); this sort-merge implementation shares no code or data
// structure with any hash-based path, so agreement between the two oracles
// rules out a common-mode bug in the reference itself.  (Li, Gao &
// Snodgrass's sort-merge work is the paper's ss3 point of comparison for
// skew handling.)
#pragma once

#include "join/serial_join.hpp"
#include "relation/relation.hpp"

namespace ehja {

/// Join `build` and `probe` on the key attribute by sorting both sides and
/// merging; duplicate keys produce the full cross product, exactly like the
/// hash-based joins.
JoinResult sort_merge_join(const Relation& build, const Relation& probe);

}  // namespace ehja
