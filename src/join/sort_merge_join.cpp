#include "join/sort_merge_join.hpp"

#include <algorithm>
#include <vector>

namespace ehja {

JoinResult sort_merge_join(const Relation& build, const Relation& probe) {
  std::vector<Tuple> r = build.tuples();
  std::vector<Tuple> s = probe.tuples();
  const auto by_key = [](const Tuple& a, const Tuple& b) {
    return a.key < b.key;
  };
  std::sort(r.begin(), r.end(), by_key);
  std::sort(s.begin(), s.end(), by_key);

  JoinResult result;
  std::size_t i = 0, j = 0;
  while (i < r.size() && j < s.size()) {
    if (r[i].key < s[j].key) {
      ++i;
    } else if (s[j].key < r[i].key) {
      ++j;
    } else {
      // Equal-key run on both sides: emit the cross product.
      const std::uint64_t key = r[i].key;
      std::size_t i_end = i;
      while (i_end < r.size() && r[i_end].key == key) ++i_end;
      std::size_t j_end = j;
      while (j_end < s.size() && s[j_end].key == key) ++j_end;
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          ++result.matches;
          result.checksum += match_signature(r[a].id, s[b].id);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return result;
}

}  // namespace ehja
