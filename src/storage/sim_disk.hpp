// Local-disk time model.
//
// The out-of-core baseline (and any EHJA node that exhausts the potential
// node pool) spills hash-table partitions to the node's local disk.  The
// actual tuples stay in host memory (SpillFile below); SimDisk only accounts
// virtual time: sequential bandwidth plus a seek charge whenever the disk
// head switches between streams -- the pattern that makes interleaved
// partition writes expensive on 2004 IDE disks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cluster/cost_model.hpp"

namespace ehja {

class SimDisk {
 public:
  explicit SimDisk(DiskConfig config) : config_(config) {}

  /// Time to append `bytes` to stream `stream_id`.  Charges a seek when the
  /// previous operation touched a different stream.
  double write_cost(std::uint64_t stream_id, std::size_t bytes);

  /// Time to read `bytes` sequentially from stream `stream_id`.
  double read_cost(std::uint64_t stream_id, std::size_t bytes);

  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t seeks() const { return seeks_; }
  const DiskConfig& config() const { return config_; }

 private:
  double switch_cost(std::uint64_t stream_id);

  DiskConfig config_;
  std::uint64_t last_stream_ = UINT64_MAX;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t seeks_ = 0;
};

}  // namespace ehja
