#include "storage/sim_disk.hpp"

namespace ehja {

double SimDisk::switch_cost(std::uint64_t stream_id) {
  if (stream_id == last_stream_) return 0.0;
  last_stream_ = stream_id;
  ++seeks_;
  return config_.seek_sec;
}

double SimDisk::write_cost(std::uint64_t stream_id, std::size_t bytes) {
  bytes_written_ += bytes;
  return switch_cost(stream_id) +
         static_cast<double>(bytes) / config_.write_bytes_per_sec;
}

double SimDisk::read_cost(std::uint64_t stream_id, std::size_t bytes) {
  bytes_read_ += bytes;
  return switch_cost(stream_id) +
         static_cast<double>(bytes) / config_.read_bytes_per_sec;
}

}  // namespace ehja
