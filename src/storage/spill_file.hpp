// A spill partition: byte/record accounting plus buffered-write cost hooks.
//
// Records themselves are held by the caller (the simulated "disk contents"
// live in host memory); SpillFile tracks the accounted on-disk size and
// translates appends/scans into SimDisk time, buffering appends so that a
// seek is charged once per flushed buffer rather than once per record --
// matching how the 2004 implementation would batch partition writes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "storage/sim_disk.hpp"

namespace ehja {

class SpillFile {
 public:
  SpillFile(SimDisk& disk, std::uint64_t stream_id)
      : disk_(&disk), stream_id_(stream_id) {}

  /// Account `bytes` appended; returns the virtual time consumed now (zero
  /// while the write buffer absorbs the append).
  double append(std::size_t bytes);

  /// Flush any buffered bytes; returns the time consumed.
  double flush();

  /// Time to scan the whole file sequentially from the start (flushes
  /// first); adds the flush cost.
  double scan_all();

  /// Time to scan an arbitrary `bytes`-sized slice (for multi-pass joins).
  double scan(std::size_t bytes);

  std::uint64_t bytes() const { return total_bytes_; }
  std::uint64_t records() const { return records_; }
  void note_records(std::uint64_t n) { records_ += n; }

 private:
  SimDisk* disk_;
  std::uint64_t stream_id_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t records_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace ehja
