#include "storage/spill_file.hpp"

namespace ehja {

double SpillFile::append(std::size_t bytes) {
  total_bytes_ += bytes;
  buffered_ += bytes;
  double cost = 0.0;
  const std::size_t cap = disk_->config().io_buffer_bytes;
  while (buffered_ >= cap) {
    cost += disk_->write_cost(stream_id_, cap);
    buffered_ -= cap;
  }
  return cost;
}

double SpillFile::flush() {
  if (buffered_ == 0) return 0.0;
  const double cost = disk_->write_cost(stream_id_, buffered_);
  buffered_ = 0;
  return cost;
}

double SpillFile::scan_all() {
  double cost = flush();
  cost += disk_->read_cost(stream_id_, total_bytes_);
  return cost;
}

double SpillFile::scan(std::size_t bytes) {
  return disk_->read_cost(stream_id_, bytes);
}

}  // namespace ehja
