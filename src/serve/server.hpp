// ehja_serve: a long-lived multi-tenant join service.
//
// One coordinator process owns a warm worker fleet (SocketRuntime: the
// workers are forked once, at startup, and survive across queries) and a
// TCP front door.  Clients connect, submit join configurations, and get
// results back; the AdmissionController arbitrates the fleet across
// tenants.  Many queries run concurrently: each is a core/query_run.hpp
// QueryRun -- its own scheduler actor on the coordinator node, its own
// sources and join processes packed onto the shared workers, its own
// metrics -- multiplexed onto the one runtime.
//
// Threading.  Everything happens on the runtime thread: client sockets are
// folded into the fleet's poll loop via SocketRuntime::watch_fd, and all
// admission / finalization work runs in the runtime's idle hook
// (service_tick).  A query's completion callback only records the id;
// finalization -- metrics collection, the result frame, actor retirement --
// is deferred to the next tick, because tearing a scheduler down from
// inside its own handler would be use-after-free.
//
// Shutdown.  begin_shutdown() (SIGTERM in tools/ehja_serve.cpp) stops
// admission, bounces the queued backlog with kDraining, notifies every
// client, lets in-flight queries drain until a deadline, then stops the
// runtime; run() returns and the fleet is torn down.  Exit is 0 -- drain-
// by-deadline is a normal way for a server to die.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/query_run.hpp"
#include "net/framed_conn.hpp"
#include "runtime/socket_runtime.hpp"
#include "serve/admission.hpp"
#include "serve/serve_wire.hpp"

namespace ehja::serve {

struct ServeOptions {
  /// Client-facing TCP port; 0 picks an ephemeral one (see port()).
  std::uint16_t requested_port = 0;
  /// Warm worker processes (>= 2; fleet NodeIds 1..fleet_workers).
  std::uint32_t fleet_workers = 4;
  /// Memory each worker parcels out to the query processes placed on it.
  std::uint64_t worker_memory_bytes = 256 * kMiB;
  /// Admission queue bound; beyond it submissions bounce with retry-after.
  std::size_t max_queue = 64;
  /// How long begin_shutdown waits for in-flight queries before stopping.
  double drain_deadline_sec = 30.0;
  std::vector<TenantSpec> tenants;
};

class JoinService {
 public:
  explicit JoinService(ServeOptions opts);
  ~JoinService();

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// The bound client-facing port (== requested_port unless that was 0).
  std::uint16_t port() const { return port_; }

  /// Serve until shutdown completes.  Runs the fleet event loop on the
  /// calling thread.
  void run();

  /// Begin the drain (idempotent).  Safe from the runtime thread; signal
  /// handlers should instead set the flag given to set_shutdown_flag.
  void begin_shutdown();

  /// Async-signal-safe shutdown path: the service polls `flag` every tick
  /// and calls begin_shutdown() when it goes true.
  void set_shutdown_flag(const std::atomic<bool>* flag) {
    shutdown_flag_ = flag;
  }

  // --- observability (tests and the tools' exit summaries) ---
  std::uint64_t queries_completed() const { return queries_completed_; }
  std::uint64_t queries_rejected() const { return queries_rejected_; }
  AdmissionController& admission() { return admission_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct ClientConn {
    std::unique_ptr<netio::Conn> conn;
    std::string tenant;
    bool hello_done = false;
    bool drop = false;         // close once the out buffer drains
    bool broken_reply = false; // framing error: send one farewell reject
  };
  struct QueuedQuery {
    std::uint64_t client_id = 0;
    std::uint64_t client_seq = 0;
    std::shared_ptr<const EhjaConfig> config;
    Clock::time_point submitted;
  };
  struct ActiveQuery {
    std::uint64_t client_id = 0;
    std::string tenant;
    std::shared_ptr<const EhjaConfig> config;
    std::unique_ptr<QueryRun> run;
    Clock::time_point submitted;
    Clock::time_point started;
  };

  static EhjaConfig fleet_config(const ServeOptions& opts);

  void on_listener_event();
  void on_client_event(std::uint64_t client_id);
  void dispatch(std::uint64_t client_id, const wire::Frame& f);
  void handle_submit(std::uint64_t client_id, const wire::Frame& f);
  void handle_status(std::uint64_t client_id, const wire::Frame& f);
  void handle_cancel(std::uint64_t client_id, const wire::Frame& f);
  void send_reject(std::uint64_t client_id, std::uint64_t client_seq,
                   RejectCode reason, std::uint32_t retry_after_ms,
                   std::string message);
  template <typename Payload>
  void send_payload(std::uint64_t client_id, wire::FrameKind kind,
                    const Payload& payload);
  QueryState state_of(QueryId id, std::uint32_t& queue_position) const;

  /// The once-per-loop-iteration service work (registered as the runtime's
  /// idle hook): finalize completed queries, admit from the queue, flush
  /// and reap client connections, advance the drain.
  void service_tick();
  void pump_admission();
  void start_query(Admitted adm);
  void finalize_query(QueryId id);
  void drop_client(std::uint64_t client_id);
  void record_finished(QueryId id, QueryState state);

  ServeOptions opts_;
  EhjaConfig fleet_config_;
  AdmissionController admission_;
  std::unique_ptr<SocketRuntime> rt_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<std::uint64_t, ClientConn> clients_;
  std::map<int, std::uint64_t> fd_to_client_;
  std::uint64_t next_client_id_ = 1;

  std::map<QueryId, QueuedQuery> queued_;
  std::map<QueryId, ActiveQuery> running_;
  /// Filled by the queries' on_done callbacks (runtime thread); drained by
  /// service_tick.  Never finalized inside the callback -- see file comment.
  std::vector<QueryId> completed_;
  QueryId next_query_id_ = 1;

  /// Terminal states of recently finished queries for status replies,
  /// bounded FIFO so a long-lived server cannot grow without bound.
  std::map<QueryId, QueryState> finished_;
  std::deque<QueryId> finished_order_;

  const std::atomic<bool>* shutdown_flag_ = nullptr;
  bool draining_ = false;
  Clock::time_point drain_deadline_;

  std::uint64_t queries_completed_ = 0;
  std::uint64_t queries_rejected_ = 0;
};

}  // namespace ehja::serve
