// Blocking client for ehja_serve (the library behind tools/ehja_client.cpp
// and bench/bench_serve.cpp).
//
// One ServeClient wraps one TCP connection with a completed hello; a
// connection may carry many in-flight queries (client_seq correlates
// submits with their accept/reject, query_id names everything after).
// All calls are blocking with deadlines -- this is deliberately the
// simplest possible protocol driver, so the tests exercise the *server's*
// concurrency, not the client's.
//
// replay_workload() is the fan-out harness: N worker threads, each with
// its own connection, pushing a shared list of queries through the server
// as fast as admission allows (queue-full rejects are retried after the
// server's hint), measuring per-query latency and optionally checking
// every result against the serial oracle.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "net/framed_conn.hpp"
#include "serve/serve_wire.hpp"

namespace ehja::serve {

struct SubmitReply {
  bool accepted = false;
  std::uint64_t query_id = 0;
  std::uint32_t queue_position = 0;
  // Rejection details:
  RejectCode reason = RejectCode::kBadFrame;
  std::uint32_t retry_after_ms = 0;
  std::string message;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Dial 127.0.0.1:port and run the hello handshake.  False (with *error
  /// filled) on connect failure, protocol garbage, or an unknown tenant.
  bool connect(std::uint16_t port, const std::string& tenant,
               std::string* error = nullptr);
  void close();
  bool connected() const;

  /// Submit one query; blocks until the matching accept/reject arrives.
  /// nullopt on connection loss or deadline.
  std::optional<SubmitReply> submit(const EhjaConfig& config,
                                    double timeout_sec = 30.0);

  /// Submit, retrying transient queue-full rejections after the server's
  /// retry hint, up to `max_retries` times.
  std::optional<SubmitReply> submit_with_retry(const EhjaConfig& config,
                                               int max_retries = 200,
                                               double timeout_sec = 30.0);

  /// Block until the result of `query_id` arrives (results for other
  /// queries received meanwhile are buffered for their own waiters).
  std::optional<QueryResultPayload> wait_result(std::uint64_t query_id,
                                                double timeout_sec = 120.0);

  std::optional<QueryStatusPayload> status(std::uint64_t query_id,
                                           double timeout_sec = 30.0);
  /// Returns the server's status reply to the cancel (kCancelled if the
  /// queued query was dropped; its actual state otherwise).
  std::optional<QueryStatusPayload> cancel(std::uint64_t query_id,
                                           double timeout_sec = 30.0);

  /// The server announced it is draining (seen on any receive path).
  bool shutdown_noticed() const { return shutdown_noticed_; }
  bool server_draining() const { return hello_.draining; }

 private:
  bool send_frame(wire::FrameKind kind, const std::vector<std::uint8_t>& body);
  /// Pump the socket until deadline or `stop` says a frame we wanted
  /// arrived.  Returns false on connection loss / framing error / timeout.
  template <typename Stop>
  bool pump_until(double timeout_sec, Stop stop);
  void handle(const wire::Frame& f);

  std::unique_ptr<netio::Conn> conn_;
  ServerHelloPayload hello_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, SubmitReply> submit_replies_;    // by client_seq
  std::map<std::uint64_t, QueryResultPayload> results_;    // by query_id
  std::map<std::uint64_t, QueryStatusPayload> statuses_;   // latest, by id
  bool shutdown_noticed_ = false;
};

/// One query of a replay workload.
struct WorkloadQuery {
  std::string tenant;
  EhjaConfig config;
};

struct ReplayStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  /// Terminal rejections (never-admittable, draining, ...); transient
  /// queue-full rejections are retried, not counted here.
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t retries = 0;          // queue-full bounces absorbed
  std::uint64_t verify_failures = 0;  // oracle mismatches (verify mode)
  std::uint64_t errors = 0;           // connection losses / timeouts
  double wall_sec = 0.0;
  std::vector<double> latency_ms;     // per completed query, submit->result

  double qps() const {
    return wall_sec > 0 ? static_cast<double>(completed) / wall_sec : 0.0;
  }
  /// q in [0,1]; nearest-rank percentile of latency_ms.
  double latency_percentile_ms(double q) const;
};

/// Drive `queries` through the server at `concurrency` connections (one
/// thread each; query i goes to thread i % concurrency).  With `verify`,
/// every result is compared against reference_join(config) -- mismatches
/// count in verify_failures.
ReplayStats replay_workload(std::uint16_t port,
                            const std::vector<WorkloadQuery>& queries,
                            int concurrency, bool verify,
                            int max_retries = 200);

}  // namespace ehja::serve
