#include "serve/admission.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ehja::serve {

AdmissionController::AdmissionController(std::vector<NodeId> fleet_nodes,
                                         std::uint64_t node_capacity_bytes,
                                         std::size_t max_queue)
    : fleet_nodes_(std::move(fleet_nodes)),
      node_capacity_(node_capacity_bytes),
      max_queue_(max_queue) {
  EHJA_CHECK_MSG(!fleet_nodes_.empty(), "admission needs at least one node");
  EHJA_CHECK_MSG(node_capacity_ > 0, "fleet nodes need nonzero capacity");
  for (const NodeId n : fleet_nodes_) {
    EHJA_CHECK_MSG(free_bytes_.emplace(n, node_capacity_).second,
                   "duplicate fleet node");
  }
}

void AdmissionController::add_tenant(TenantSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  EHJA_CHECK_MSG(!spec.name.empty(), "tenant needs a name");
  const std::string name = spec.name;
  EHJA_CHECK_MSG(
      tenants_.emplace(name, TenantState{std::move(spec), 0, 0}).second,
      "duplicate tenant");
}

bool AdmissionController::has_tenant(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.count(name) != 0;
}

bool AdmissionController::fits_tenant_locked(const TenantState& t,
                                             std::uint32_t slots,
                                             std::uint64_t bytes) const {
  return t.slots_in_use + slots <= t.spec.max_slots &&
         t.memory_in_use + bytes <= t.spec.max_memory_bytes;
}

NodeId AdmissionController::take_node_locked(std::uint64_t bytes) {
  NodeId best = -1;
  std::uint64_t best_free = 0;
  for (const auto& [node, free] : free_bytes_) {
    if (free >= bytes && free > best_free) {
      best = node;
      best_free = free;
    }
  }
  if (best >= 0) free_bytes_[best] -= bytes;
  return best;
}

std::optional<SlotPlacement> AdmissionController::try_place_locked(
    TenantState& t, const QueryDemand& demand) {
  if (!fits_tenant_locked(t, demand.slots(), demand.memory_bytes())) {
    return std::nullopt;
  }
  SlotPlacement placement;
  // Place joins first (the big charges): the largest-free-bytes policy then
  // spreads them before sources fill in the gaps.
  std::vector<std::pair<NodeId, std::uint64_t>> taken;  // rollback ledger
  auto roll_back = [&] {
    for (const auto& [node, bytes] : taken) free_bytes_[node] += bytes;
  };
  for (std::uint32_t j = 0; j < demand.join_nodes; ++j) {
    const NodeId node = take_node_locked(demand.join_memory_bytes);
    if (node < 0) {
      roll_back();
      return std::nullopt;
    }
    taken.emplace_back(node, demand.join_memory_bytes);
    placement.join_nodes.push_back(node);
  }
  for (std::uint32_t i = 0; i < demand.sources; ++i) {
    const NodeId node = take_node_locked(kSourceMemoryCharge);
    if (node < 0) {
      roll_back();
      return std::nullopt;
    }
    taken.emplace_back(node, kSourceMemoryCharge);
    placement.source_nodes.push_back(node);
  }
  t.slots_in_use += demand.slots();
  t.memory_in_use += demand.memory_bytes();
  return placement;
}

SubmitOutcome AdmissionController::submit(QueryId id, const std::string& tenant,
                                          const QueryDemand& demand) {
  std::lock_guard<std::mutex> lock(mutex_);
  SubmitOutcome out;
  if (draining_) {
    out.reason = AdmitReject::kDraining;
    out.message = "server is draining; resubmit elsewhere";
    return out;
  }
  const auto tit = tenants_.find(tenant);
  if (tit == tenants_.end()) {
    out.reason = AdmitReject::kUnknownTenant;
    out.message = "unknown tenant '" + tenant + "'";
    return out;
  }
  if (demand.sources < 1 || demand.join_nodes < 1) {
    out.reason = AdmitReject::kNeverAdmittable;
    out.message = "a query needs at least one source and one join node";
    return out;
  }
  // Never-admittable: would not fit even with the tenant idle and the fleet
  // empty.  Rejected outright -- queueing it would wedge the line forever.
  const TenantSpec& spec = tit->second.spec;
  if (demand.slots() > spec.max_slots ||
      demand.memory_bytes() > spec.max_memory_bytes) {
    out.reason = AdmitReject::kNeverAdmittable;
    out.message = "demand exceeds the tenant budget";
    return out;
  }
  if (demand.join_memory_bytes > node_capacity_ ||
      demand.slots() >
          fleet_nodes_.size() * (node_capacity_ / kSourceMemoryCharge)) {
    out.reason = AdmitReject::kNeverAdmittable;
    out.message = "demand exceeds the fleet";
    return out;
  }
  if (queue_.size() >= max_queue_) {
    out.reason = AdmitReject::kQueueFull;
    // Scale the hint with the backlog: a deep queue drains slowly.
    out.retry_after_ms =
        50 + static_cast<std::uint32_t>(25 * running_.size());
    out.message = "admission queue full";
    return out;
  }

  Waiting w;
  w.id = id;
  w.tenant = tenant;
  w.demand = demand;
  w.priority = spec.priority;
  w.seq = next_seq_++;
  const auto pos = std::upper_bound(queue_.begin(), queue_.end(), w, before);
  const auto inserted = queue_.insert(pos, std::move(w));
  out.accepted = true;
  out.queue_position =
      static_cast<std::uint32_t>(inserted - queue_.begin()) + 1;
  return out;
}

std::optional<Admitted> AdmissionController::take_ready() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Skip-blocked backfill: the first entry (in priority order) whose tenant
  // budget and fleet placement both fit right now.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    TenantState& t = tenants_.at(it->tenant);
    auto placement = try_place_locked(t, it->demand);
    if (!placement.has_value()) continue;
    Admitted adm;
    adm.id = it->id;
    adm.tenant = it->tenant;
    adm.placement = std::move(*placement);
    Running run;
    run.tenant = it->tenant;
    run.demand = it->demand;
    run.placement = adm.placement;
    EHJA_CHECK_MSG(running_.emplace(it->id, std::move(run)).second,
                   "query admitted twice");
    queue_.erase(it);
    return adm;
  }
  return std::nullopt;
}

void AdmissionController::on_complete(QueryId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = running_.find(id);
  EHJA_CHECK_MSG(it != running_.end(), "completion for a query not running");
  Running& run = it->second;
  TenantState& t = tenants_.at(run.tenant);
  for (const NodeId node : run.placement.join_nodes) {
    free_bytes_[node] += run.demand.join_memory_bytes;
  }
  for (const NodeId node : run.placement.source_nodes) {
    free_bytes_[node] += kSourceMemoryCharge;
  }
  for (const NodeId node : run.expansions) {
    free_bytes_[node] += run.demand.join_memory_bytes;
    EHJA_CHECK(t.slots_in_use >= 1);
    t.slots_in_use -= 1;
    t.memory_in_use -= run.demand.join_memory_bytes;
  }
  EHJA_CHECK(t.slots_in_use >= run.demand.slots());
  EHJA_CHECK(t.memory_in_use >= run.demand.memory_bytes());
  t.slots_in_use -= run.demand.slots();
  t.memory_in_use -= run.demand.memory_bytes();
  running_.erase(it);
}

std::optional<NodeId> AdmissionController::grant_expansion(QueryId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = running_.find(id);
  EHJA_CHECK_MSG(it != running_.end(), "expansion for a query not running");
  Running& run = it->second;
  TenantState& t = tenants_.at(run.tenant);
  if (!fits_tenant_locked(t, 1, run.demand.join_memory_bytes)) {
    return std::nullopt;  // over budget: the query degrades to spilling
  }
  const NodeId node = take_node_locked(run.demand.join_memory_bytes);
  if (node < 0) return std::nullopt;  // fleet is full right now
  t.slots_in_use += 1;
  t.memory_in_use += run.demand.join_memory_bytes;
  run.expansions.push_back(node);
  return node;
}

void AdmissionController::release_expansion(QueryId id, NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = running_.find(id);
  EHJA_CHECK_MSG(it != running_.end(), "release for a query not running");
  Running& run = it->second;
  const auto eit =
      std::find(run.expansions.begin(), run.expansions.end(), node);
  EHJA_CHECK_MSG(eit != run.expansions.end(),
                 "released a node this query was never granted");
  run.expansions.erase(eit);
  TenantState& t = tenants_.at(run.tenant);
  free_bytes_[node] += run.demand.join_memory_bytes;
  EHJA_CHECK(t.slots_in_use >= 1);
  t.slots_in_use -= 1;
  t.memory_in_use -= run.demand.join_memory_bytes;
}

bool AdmissionController::cancel_queued(QueryId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void AdmissionController::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::optional<std::uint32_t> AdmissionController::queue_position(
    QueryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].id == id) return static_cast<std::uint32_t>(i) + 1;
  }
  return std::nullopt;
}

bool AdmissionController::is_running(QueryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_.count(id) != 0;
}

std::size_t AdmissionController::queued_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t AdmissionController::running_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_.size();
}

std::uint32_t AdmissionController::tenant_slots_in_use(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? 0 : it->second.slots_in_use;
}

std::uint64_t AdmissionController::tenant_memory_in_use(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? 0 : it->second.memory_in_use;
}

std::uint64_t AdmissionController::fleet_free_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [node, free] : free_bytes_) total += free;
  return total;
}

}  // namespace ehja::serve
