#include "serve/client.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/driver.hpp"

namespace ehja::serve {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

ServeClient::~ServeClient() { close(); }

void ServeClient::close() { conn_.reset(); }

bool ServeClient::connected() const {
  return conn_ != nullptr && conn_->usable() && !conn_->eof;
}

bool ServeClient::connect(std::uint16_t port, const std::string& tenant,
                          std::string* error) {
  const int fd = netio::try_connect_loopback(port);
  if (fd < 0) {
    if (error != nullptr) *error = "connect to 127.0.0.1 failed";
    return false;
  }
  conn_ = netio::adopt_fd(fd);

  ClientHelloPayload hello;
  hello.tenant = tenant;
  wire::Writer w;
  encode(w, hello);
  if (!send_frame(wire::FrameKind::kClientHello, w.data())) {
    if (error != nullptr) *error = "connection lost during hello";
    close();
    return false;
  }
  bool got_hello = false;
  const bool ok = pump_until(10.0, [&] {
    if (hello_.ok || !hello_.message.empty()) got_hello = true;
    return got_hello;
  });
  if (!ok || !hello_.ok) {
    if (error != nullptr) {
      *error = hello_.message.empty() ? "no hello reply" : hello_.message;
    }
    close();
    return false;
  }
  return true;
}

bool ServeClient::send_frame(wire::FrameKind kind,
                             const std::vector<std::uint8_t>& body) {
  if (!connected()) return false;
  netio::queue_frame(*conn_, kind, body);
  netio::flush_out(*conn_);
  return conn_->usable();
}

void ServeClient::handle(const wire::Frame& f) {
  wire::Reader r(f.body);
  switch (f.kind) {
    case wire::FrameKind::kServerHello: {
      ServerHelloPayload hello;
      if (decode_payload(r, hello)) {
        hello_ = hello;
        if (hello_.message.empty()) hello_.message = hello_.ok ? "" : "denied";
      }
      return;
    }
    case wire::FrameKind::kQueryAccepted: {
      QueryAcceptedPayload acc;
      if (!decode_payload(r, acc)) return;
      SubmitReply reply;
      reply.accepted = true;
      reply.query_id = acc.query_id;
      reply.queue_position = acc.queue_position;
      submit_replies_[acc.client_seq] = std::move(reply);
      return;
    }
    case wire::FrameKind::kQueryRejected: {
      QueryRejectedPayload rej;
      if (!decode_payload(r, rej)) return;
      SubmitReply reply;
      reply.accepted = false;
      reply.reason = rej.reason;
      reply.retry_after_ms = rej.retry_after_ms;
      reply.message = rej.message;
      submit_replies_[rej.client_seq] = std::move(reply);
      return;
    }
    case wire::FrameKind::kQueryResult: {
      QueryResultPayload result;
      if (decode_payload(r, result)) results_[result.query_id] = result;
      return;
    }
    case wire::FrameKind::kQueryStatus: {
      QueryStatusPayload status;
      if (decode_payload(r, status)) statuses_[status.query_id] = status;
      return;
    }
    case wire::FrameKind::kShutdownNotice:
      shutdown_noticed_ = true;
      return;
    default:
      return;  // not addressed to a client; ignore
  }
}

template <typename Stop>
bool ServeClient::pump_until(double timeout_sec, Stop stop) {
  if (conn_ == nullptr) return false;
  const Clock::time_point start = Clock::now();
  wire::Frame f;
  while (true) {
    if (stop()) return true;
    if (!conn_->usable() || conn_->eof) return false;
    // Drain whatever is already buffered before blocking.
    const netio::FrameResult res = netio::try_next_frame(*conn_, f);
    if (res == netio::FrameResult::kError) return false;
    if (res == netio::FrameResult::kFrame) {
      handle(f);
      continue;
    }
    const double left = timeout_sec - seconds_since(start);
    if (left <= 0) return false;
    pollfd pfd{conn_->fd, POLLIN, 0};
    if (conn_->wants_write()) pfd.events |= POLLOUT;
    const int timeout_ms =
        std::max(1, static_cast<int>(std::min(left * 1000.0, 100.0)));
    ::poll(&pfd, 1, timeout_ms);
    if (pfd.revents & POLLOUT) netio::flush_out(*conn_);
    if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) {
      netio::read_available(*conn_);
    }
  }
}

std::optional<SubmitReply> ServeClient::submit(const EhjaConfig& config,
                                               double timeout_sec) {
  const std::uint64_t seq = next_seq_++;
  SubmitQueryPayload payload;
  payload.client_seq = seq;
  payload.config = config;
  wire::Writer w;
  encode(w, payload);
  if (!send_frame(wire::FrameKind::kSubmitQuery, w.data())) {
    return std::nullopt;
  }
  const bool got = pump_until(
      timeout_sec, [&] { return submit_replies_.count(seq) != 0; });
  if (!got) return std::nullopt;
  SubmitReply reply = std::move(submit_replies_.at(seq));
  submit_replies_.erase(seq);
  return reply;
}

std::optional<SubmitReply> ServeClient::submit_with_retry(
    const EhjaConfig& config, int max_retries, double timeout_sec) {
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    auto reply = submit(config, timeout_sec);
    if (!reply.has_value()) return std::nullopt;
    if (reply->accepted || reply->reason != RejectCode::kQueueFull) {
      return reply;
    }
    const std::uint32_t wait_ms =
        reply->retry_after_ms > 0 ? reply->retry_after_ms : 50;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
  return std::nullopt;
}

std::optional<QueryResultPayload> ServeClient::wait_result(
    std::uint64_t query_id, double timeout_sec) {
  const bool got = pump_until(
      timeout_sec, [&] { return results_.count(query_id) != 0; });
  if (!got) return std::nullopt;
  QueryResultPayload result = results_.at(query_id);
  results_.erase(query_id);
  return result;
}

std::optional<QueryStatusPayload> ServeClient::status(std::uint64_t query_id,
                                                      double timeout_sec) {
  QueryStatusReqPayload req;
  req.query_id = query_id;
  wire::Writer w;
  encode(w, req);
  statuses_.erase(query_id);
  if (!send_frame(wire::FrameKind::kQueryStatusReq, w.data())) {
    return std::nullopt;
  }
  const bool got = pump_until(
      timeout_sec, [&] { return statuses_.count(query_id) != 0; });
  if (!got) return std::nullopt;
  return statuses_.at(query_id);
}

std::optional<QueryStatusPayload> ServeClient::cancel(std::uint64_t query_id,
                                                      double timeout_sec) {
  CancelQueryPayload req;
  req.query_id = query_id;
  wire::Writer w;
  encode(w, req);
  statuses_.erase(query_id);
  if (!send_frame(wire::FrameKind::kCancelQuery, w.data())) {
    return std::nullopt;
  }
  const bool got = pump_until(
      timeout_sec, [&] { return statuses_.count(query_id) != 0; });
  if (!got) return std::nullopt;
  return statuses_.at(query_id);
}

// --- workload replay ------------------------------------------------------

double ReplayStats::latency_percentile_ms(double q) const {
  if (latency_ms.empty()) return 0.0;
  std::vector<double> sorted = latency_ms;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx =
      static_cast<std::size_t>(std::lround(std::max(0.0, rank)));
  return sorted[std::min(idx, sorted.size() - 1)];
}

ReplayStats replay_workload(std::uint16_t port,
                            const std::vector<WorkloadQuery>& queries,
                            int concurrency, bool verify, int max_retries) {
  concurrency = std::max(1, concurrency);
  std::vector<ReplayStats> per_thread(
      static_cast<std::size_t>(concurrency));
  const Clock::time_point start = Clock::now();

  auto worker = [&](int t) {
    ReplayStats& stats = per_thread[static_cast<std::size_t>(t)];
    // One connection per distinct tenant this thread serves.
    std::map<std::string, std::unique_ptr<ServeClient>> conns;
    auto client_for = [&](const std::string& tenant) -> ServeClient* {
      auto it = conns.find(tenant);
      if (it == conns.end()) {
        auto client = std::make_unique<ServeClient>();
        if (!client->connect(port, tenant)) return nullptr;
        it = conns.emplace(tenant, std::move(client)).first;
      }
      return it->second.get();
    };

    for (std::size_t i = static_cast<std::size_t>(t); i < queries.size();
         i += static_cast<std::size_t>(concurrency)) {
      const WorkloadQuery& q = queries[i];
      ServeClient* client = client_for(q.tenant);
      if (client == nullptr) {
        ++stats.errors;
        continue;
      }
      ++stats.submitted;
      const Clock::time_point submit_at = Clock::now();
      auto reply = client->submit_with_retry(q.config, max_retries);
      if (!reply.has_value()) {
        ++stats.errors;
        conns.erase(q.tenant);  // reconnect next time
        continue;
      }
      if (!reply->accepted) {
        ++stats.rejected;
        continue;
      }
      ++stats.accepted;
      auto result = client->wait_result(reply->query_id);
      if (!result.has_value()) {
        ++stats.errors;
        conns.erase(q.tenant);
        continue;
      }
      ++stats.completed;
      stats.latency_ms.push_back(seconds_since(submit_at) * 1000.0);
      if (verify) {
        const JoinResult oracle = reference_join(q.config);
        if (oracle.matches != result->matches ||
            oracle.checksum != result->checksum) {
          ++stats.verify_failures;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(concurrency));
  for (int t = 0; t < concurrency; ++t) threads.emplace_back(worker, t);
  for (std::thread& th : threads) th.join();

  ReplayStats total;
  for (const ReplayStats& s : per_thread) {
    total.submitted += s.submitted;
    total.accepted += s.accepted;
    total.rejected += s.rejected;
    total.completed += s.completed;
    total.retries += s.retries;
    total.verify_failures += s.verify_failures;
    total.errors += s.errors;
    total.latency_ms.insert(total.latency_ms.end(), s.latency_ms.begin(),
                            s.latency_ms.end());
  }
  total.wall_sec = seconds_since(start);
  return total;
}

}  // namespace ehja::serve
