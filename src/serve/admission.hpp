// Admission control for the serving layer (the cross-query half of the
// paper's "additional resources" question).
//
// A single join run asks its ResourcePool for one more node when a join
// process overflows (ss4.1.1).  A *serving* fleet runs many such queries at
// once over one warm worker pool, so "is there a node to spare" becomes an
// arbitration problem: which tenant, which query, charged against whose
// budget.  This controller owns that arbitration.  It is pure bookkeeping --
// no sockets, no actors -- so tests/test_admission.cpp can drive it
// exhaustively.
//
// Model.  The fleet is a set of worker nodes, each with a memory capacity.
// A query demands a set of process slots: one per data source (charged
// kSourceMemoryCharge) and one per initial join process (charged the
// query's per-node hash-memory budget).  Placement is the paper's policy
// applied across queries: every slot goes to the fleet node with the most
// free bytes.  Tenants carry budgets (concurrent slots, concurrent bytes)
// and a priority; waiting queries are served priority-descending and
// FIFO within a priority, with skip-blocked backfill: a query that does
// not currently fit (its tenant is over budget, or the fleet is tight)
// never blocks a later query that does.  Budgets, not the queue order,
// are the starvation guard -- an over-budget tenant waits on *its own*
// completions while everyone else flows.
//
// Expansion requests (ResourcePool hooks of a running query) come back
// here: grant_expansion charges one more slot against the tenant and the
// fleet and may deny -- the scheduler already treats a denied acquire as
// "pool exhausted" and falls back to spilling, so denial is a quality
// degradation, never a wrong answer.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "util/units.hpp"

namespace ehja::serve {

using QueryId = std::uint64_t;

/// Memory charged per data-source slot.  Sources hold one outgoing buffer
/// per join node plus a generation slice -- small next to any real hash
/// table, but not free.
inline constexpr std::uint64_t kSourceMemoryCharge = 1 * kMiB;

struct TenantSpec {
  std::string name;
  /// Highest number of fleet process slots (sources + joins + expansion
  /// recruits) this tenant may hold concurrently, across all its queries.
  std::uint32_t max_slots = 8;
  /// Concurrent memory charge cap across all the tenant's queries.
  std::uint64_t max_memory_bytes = 512 * kMiB;
  /// Larger runs first; FIFO within equal priorities.
  std::uint32_t priority = 0;
};

/// What one query wants from the fleet, derived from its EhjaConfig.
struct QueryDemand {
  std::uint32_t sources = 1;
  std::uint32_t join_nodes = 1;
  /// Per-join-node memory budget (EhjaConfig::node_hash_memory_bytes).
  std::uint64_t join_memory_bytes = 1 * kMiB;

  std::uint32_t slots() const { return sources + join_nodes; }
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(sources) * kSourceMemoryCharge +
           static_cast<std::uint64_t>(join_nodes) * join_memory_bytes;
  }
};

/// Fleet nodes assigned to one admitted query's initial processes.
struct SlotPlacement {
  std::vector<NodeId> source_nodes;
  std::vector<NodeId> join_nodes;
};

enum class AdmitReject : std::uint8_t {
  kQueueFull = 0,       // transient: retry after the hint
  kNeverAdmittable = 1, // exceeds the tenant budget / fleet even when idle
  kUnknownTenant = 2,
  kDraining = 3,        // shutdown in progress; resubmit elsewhere
};

struct SubmitOutcome {
  bool accepted = false;
  std::uint32_t queue_position = 0;  // 1-based, when accepted
  AdmitReject reason = AdmitReject::kQueueFull;
  /// Transient rejections carry a retry hint (> 0); permanent ones 0.
  std::uint32_t retry_after_ms = 0;
  std::string message;
};

struct Admitted {
  QueryId id = 0;
  std::string tenant;
  SlotPlacement placement;
};

class AdmissionController {
 public:
  /// `fleet_nodes` are the worker NodeIds available for query processes
  /// (the serving coordinator's node is never offered); each has
  /// `node_capacity_bytes` of memory to parcel out.  `max_queue` bounds the
  /// waiting line -- beyond it submissions bounce with a retry hint
  /// (backpressure instead of unbounded buffering).
  AdmissionController(std::vector<NodeId> fleet_nodes,
                      std::uint64_t node_capacity_bytes, std::size_t max_queue);

  void add_tenant(TenantSpec spec);
  bool has_tenant(const std::string& name) const;

  /// Enqueue (or reject) one query.  Accepted queries wait until
  /// take_ready() hands them out.
  SubmitOutcome submit(QueryId id, const std::string& tenant,
                       const QueryDemand& demand);

  /// Highest-priority waiting query that fits right now, with its slots
  /// charged and placed; nullopt when nothing admittable.  Call in a loop.
  std::optional<Admitted> take_ready();

  /// Release everything a finished (admitted) query held, including any
  /// expansion grants not individually released.
  void on_complete(QueryId id);

  /// One more join-node slot for a *running* query, the serve-mode backing
  /// of ResourcePool::acquire.  Denied (nullopt) when the tenant budget or
  /// the fleet has no room -- the caller's scheduler degrades to spilling.
  std::optional<NodeId> grant_expansion(QueryId id);
  /// Return an expansion grant early (aborted expansion).
  void release_expansion(QueryId id, NodeId node);

  /// Drop a waiting query; false if it is not queued (unknown or already
  /// running -- running queries cannot be cancelled, they drain).
  bool cancel_queued(QueryId id);

  /// Stop accepting: every later submit is rejected kDraining.  Queued and
  /// running queries are unaffected (the server decides how to drain them).
  void begin_drain();
  bool draining() const;

  // --- introspection (status replies and tests) ---
  std::optional<std::uint32_t> queue_position(QueryId id) const;  // 1-based
  bool is_running(QueryId id) const;
  std::size_t queued_count() const;
  std::size_t running_count() const;
  std::uint32_t tenant_slots_in_use(const std::string& name) const;
  std::uint64_t tenant_memory_in_use(const std::string& name) const;
  std::uint64_t fleet_free_bytes() const;

 private:
  struct Waiting {
    QueryId id = 0;
    std::string tenant;
    QueryDemand demand;
    std::uint32_t priority = 0;
    std::uint64_t seq = 0;
  };
  struct Running {
    std::string tenant;
    QueryDemand demand;
    SlotPlacement placement;
    std::vector<NodeId> expansions;
  };
  struct TenantState {
    TenantSpec spec;
    std::uint32_t slots_in_use = 0;
    std::uint64_t memory_in_use = 0;
  };

  /// Waiting-queue order: priority descending, then submission order.
  static bool before(const Waiting& a, const Waiting& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  }

  bool fits_tenant_locked(const TenantState& t, std::uint32_t slots,
                          std::uint64_t bytes) const;
  /// Charge + place one query's demand, or change nothing and return
  /// nullopt.  Caller holds the lock.
  std::optional<SlotPlacement> try_place_locked(TenantState& t,
                                                const QueryDemand& demand);
  /// Fleet node with the most free bytes that still fits `bytes`, charged;
  /// -1 when none fits.  Caller holds the lock.
  NodeId take_node_locked(std::uint64_t bytes);

  mutable std::mutex mutex_;
  std::vector<NodeId> fleet_nodes_;
  std::uint64_t node_capacity_ = 0;
  std::size_t max_queue_ = 0;
  std::map<NodeId, std::uint64_t> free_bytes_;
  std::map<std::string, TenantState> tenants_;
  std::deque<Waiting> queue_;  // kept sorted per before()
  std::map<QueryId, Running> running_;
  std::uint64_t next_seq_ = 0;
  bool draining_ = false;
};

}  // namespace ehja::serve
