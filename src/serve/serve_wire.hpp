// Client-facing protocol payloads for ehja_serve (wire v4).
//
// These ride the same frame layer as the fleet protocol (net/wire.hpp:
// magic, version, kind, CRC32) but cross a *trust boundary*: the peer may
// be a newer build, a different tool, or garbage.  Every decoder here is
// total -- truncation, bad lengths and unknown enum values return false,
// never abort -- and the server pairs them with netio::try_next_frame so a
// hostile byte stream costs one connection, not the process.
//
// Conversation shape (client side in serve/client.hpp):
//
//   client  kClientHello   {tenant}
//   server  kServerHello   {ok, draining, message}
//   client  kSubmitQuery   {client_seq, EhjaConfig}
//   server  kQueryAccepted {client_seq, query_id, queue_position}
//        |  kQueryRejected {client_seq, reason, retry_after_ms, message}
//   server  kQueryResult   {query_id, matches, checksum, ...}   (when done)
//   client  kQueryStatusReq / kCancelQuery;  server kQueryStatus
//   server  kShutdownNotice {message}                           (draining)
//
// client_seq correlates a submit with its accept/reject on a connection
// carrying many in-flight queries; query_id is the server-global name used
// everywhere after acceptance.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "net/wire.hpp"
#include "serve/admission.hpp"

namespace ehja::serve {

/// Why a query (or frame) bounced; superset of AdmitReject with the
/// protocol-level causes the controller never sees.
enum class RejectCode : std::uint8_t {
  kQueueFull = 0,
  kNeverAdmittable = 1,
  kUnknownTenant = 2,
  kDraining = 3,
  kBadConfig = 4,   // EhjaConfig::validate_or_error failed
  kBadFrame = 5,    // undecodable payload, unknown kind, newer version
  kNoHello = 6,     // submit before the hello handshake
};

RejectCode reject_code(AdmitReject reason);
const char* reject_code_name(RejectCode code);

enum class QueryState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kCancelled = 3,
  kUnknown = 4,
};

struct ClientHelloPayload {
  std::string tenant;
};

struct ServerHelloPayload {
  bool ok = false;        // tenant recognised
  bool draining = false;  // shutdown in progress; submits will bounce
  std::string message;
};

struct SubmitQueryPayload {
  std::uint64_t client_seq = 0;
  EhjaConfig config;
};

struct QueryAcceptedPayload {
  std::uint64_t client_seq = 0;
  std::uint64_t query_id = 0;
  std::uint32_t queue_position = 0;  // 1-based
};

struct QueryRejectedPayload {
  std::uint64_t client_seq = 0;  // 0 when the submit was undecodable
  RejectCode reason = RejectCode::kBadFrame;
  std::uint32_t retry_after_ms = 0;  // > 0: transient, try again
  std::string message;
};

/// The completed join, summarized.  matches/checksum are the JoinResult the
/// client compares against its serial oracle (byte-identical results are
/// the acceptance bar for the whole serving layer).
struct QueryResultPayload {
  std::uint64_t query_id = 0;
  std::uint64_t matches = 0;
  std::uint64_t checksum = 0;
  std::uint64_t build_tuples = 0;
  std::uint64_t probe_tuples = 0;
  std::uint32_t expansions = 0;
  double queue_sec = 0.0;  // accepted -> admitted
  double run_sec = 0.0;    // admitted -> complete
};

struct QueryStatusReqPayload {
  std::uint64_t query_id = 0;
};

struct QueryStatusPayload {
  std::uint64_t query_id = 0;
  QueryState state = QueryState::kUnknown;
  std::uint32_t queue_position = 0;  // kQueued only
};

struct CancelQueryPayload {
  std::uint64_t query_id = 0;
};

struct ShutdownNoticePayload {
  std::string message;
};

// Codecs: encode into a Writer, total decode from a Reader.  Decoders
// verify they consumed the body exactly (r.ok() && r.remaining() == 0 is
// the caller's contract here, folded in for convenience).

void encode(wire::Writer& w, const ClientHelloPayload& v);
bool decode_payload(wire::Reader& r, ClientHelloPayload& v);
void encode(wire::Writer& w, const ServerHelloPayload& v);
bool decode_payload(wire::Reader& r, ServerHelloPayload& v);
void encode(wire::Writer& w, const SubmitQueryPayload& v);
bool decode_payload(wire::Reader& r, SubmitQueryPayload& v);
void encode(wire::Writer& w, const QueryAcceptedPayload& v);
bool decode_payload(wire::Reader& r, QueryAcceptedPayload& v);
void encode(wire::Writer& w, const QueryRejectedPayload& v);
bool decode_payload(wire::Reader& r, QueryRejectedPayload& v);
void encode(wire::Writer& w, const QueryResultPayload& v);
bool decode_payload(wire::Reader& r, QueryResultPayload& v);
void encode(wire::Writer& w, const QueryStatusReqPayload& v);
bool decode_payload(wire::Reader& r, QueryStatusReqPayload& v);
void encode(wire::Writer& w, const QueryStatusPayload& v);
bool decode_payload(wire::Reader& r, QueryStatusPayload& v);
void encode(wire::Writer& w, const CancelQueryPayload& v);
bool decode_payload(wire::Reader& r, CancelQueryPayload& v);
void encode(wire::Writer& w, const ShutdownNoticePayload& v);
bool decode_payload(wire::Reader& r, ShutdownNoticePayload& v);

/// Length-prefixed UTF-8-agnostic byte string (varint length + bytes),
/// capped at 64 KiB so a corrupt length cannot demand gigabytes.
void put_string(wire::Writer& w, const std::string& s);
bool get_string(wire::Reader& r, std::string& s);

}  // namespace ehja::serve
