#include "serve/serve_wire.hpp"

namespace ehja::serve {

namespace {

constexpr std::size_t kMaxString = 64 * 1024;

bool get_bool(wire::Reader& r, bool& v) {
  const std::uint8_t b = r.u8();
  if (!r.ok() || b > 1) {
    r.fail();
    return false;
  }
  v = b != 0;
  return true;
}

bool done(wire::Reader& r) { return r.ok() && r.remaining() == 0; }

}  // namespace

RejectCode reject_code(AdmitReject reason) {
  switch (reason) {
    case AdmitReject::kQueueFull:
      return RejectCode::kQueueFull;
    case AdmitReject::kNeverAdmittable:
      return RejectCode::kNeverAdmittable;
    case AdmitReject::kUnknownTenant:
      return RejectCode::kUnknownTenant;
    case AdmitReject::kDraining:
      return RejectCode::kDraining;
  }
  return RejectCode::kBadFrame;
}

const char* reject_code_name(RejectCode code) {
  switch (code) {
    case RejectCode::kQueueFull:
      return "queue-full";
    case RejectCode::kNeverAdmittable:
      return "never-admittable";
    case RejectCode::kUnknownTenant:
      return "unknown-tenant";
    case RejectCode::kDraining:
      return "draining";
    case RejectCode::kBadConfig:
      return "bad-config";
    case RejectCode::kBadFrame:
      return "bad-frame";
    case RejectCode::kNoHello:
      return "no-hello";
  }
  return "?";
}

void put_string(wire::Writer& w, const std::string& s) {
  const std::size_t n = s.size() < kMaxString ? s.size() : kMaxString;
  w.varint(n);
  w.bytes(reinterpret_cast<const std::uint8_t*>(s.data()), n);
}

bool get_string(wire::Reader& r, std::string& s) {
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > kMaxString || !r.can_hold(n, 1)) {
    r.fail();
    return false;
  }
  s.clear();
  s.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(r.u8()));
  }
  return r.ok();
}

void encode(wire::Writer& w, const ClientHelloPayload& v) {
  put_string(w, v.tenant);
}

bool decode_payload(wire::Reader& r, ClientHelloPayload& v) {
  return get_string(r, v.tenant) && done(r);
}

void encode(wire::Writer& w, const ServerHelloPayload& v) {
  w.u8(v.ok ? 1 : 0);
  w.u8(v.draining ? 1 : 0);
  put_string(w, v.message);
}

bool decode_payload(wire::Reader& r, ServerHelloPayload& v) {
  return get_bool(r, v.ok) && get_bool(r, v.draining) &&
         get_string(r, v.message) && done(r);
}

void encode(wire::Writer& w, const SubmitQueryPayload& v) {
  w.varint(v.client_seq);
  wire::encode_config(v.config, w);
}

bool decode_payload(wire::Reader& r, SubmitQueryPayload& v) {
  v.client_seq = r.varint();
  if (!r.ok()) return false;
  return wire::decode_config(r, v.config) && done(r);
}

void encode(wire::Writer& w, const QueryAcceptedPayload& v) {
  w.varint(v.client_seq);
  w.varint(v.query_id);
  w.varint(v.queue_position);
}

bool decode_payload(wire::Reader& r, QueryAcceptedPayload& v) {
  v.client_seq = r.varint();
  v.query_id = r.varint();
  v.queue_position = static_cast<std::uint32_t>(r.varint());
  return done(r);
}

void encode(wire::Writer& w, const QueryRejectedPayload& v) {
  w.varint(v.client_seq);
  w.u8(static_cast<std::uint8_t>(v.reason));
  w.varint(v.retry_after_ms);
  put_string(w, v.message);
}

bool decode_payload(wire::Reader& r, QueryRejectedPayload& v) {
  v.client_seq = r.varint();
  const std::uint8_t reason = r.u8();
  if (!r.ok() || reason > static_cast<std::uint8_t>(RejectCode::kNoHello)) {
    r.fail();
    return false;
  }
  v.reason = static_cast<RejectCode>(reason);
  v.retry_after_ms = static_cast<std::uint32_t>(r.varint());
  return get_string(r, v.message) && done(r);
}

void encode(wire::Writer& w, const QueryResultPayload& v) {
  w.varint(v.query_id);
  w.varint(v.matches);
  w.u64(v.checksum);
  w.varint(v.build_tuples);
  w.varint(v.probe_tuples);
  w.varint(v.expansions);
  w.f64(v.queue_sec);
  w.f64(v.run_sec);
}

bool decode_payload(wire::Reader& r, QueryResultPayload& v) {
  v.query_id = r.varint();
  v.matches = r.varint();
  v.checksum = r.u64();
  v.build_tuples = r.varint();
  v.probe_tuples = r.varint();
  v.expansions = static_cast<std::uint32_t>(r.varint());
  v.queue_sec = r.f64();
  v.run_sec = r.f64();
  return done(r);
}

void encode(wire::Writer& w, const QueryStatusReqPayload& v) {
  w.varint(v.query_id);
}

bool decode_payload(wire::Reader& r, QueryStatusReqPayload& v) {
  v.query_id = r.varint();
  return done(r);
}

void encode(wire::Writer& w, const QueryStatusPayload& v) {
  w.varint(v.query_id);
  w.u8(static_cast<std::uint8_t>(v.state));
  w.varint(v.queue_position);
}

bool decode_payload(wire::Reader& r, QueryStatusPayload& v) {
  v.query_id = r.varint();
  const std::uint8_t state = r.u8();
  if (!r.ok() || state > static_cast<std::uint8_t>(QueryState::kUnknown)) {
    r.fail();
    return false;
  }
  v.state = static_cast<QueryState>(state);
  v.queue_position = static_cast<std::uint32_t>(r.varint());
  return done(r);
}

void encode(wire::Writer& w, const CancelQueryPayload& v) {
  w.varint(v.query_id);
}

bool decode_payload(wire::Reader& r, CancelQueryPayload& v) {
  v.query_id = r.varint();
  return done(r);
}

void encode(wire::Writer& w, const ShutdownNoticePayload& v) {
  put_string(w, v.message);
}

bool decode_payload(wire::Reader& r, ShutdownNoticePayload& v) {
  return get_string(r, v.message) && done(r);
}

}  // namespace ehja::serve
