#include "serve/server.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/assert.hpp"

namespace ehja::serve {

namespace {

constexpr std::size_t kFinishedCap = 65536;

/// A client's config describes *what to join*, not *where*: placement is
/// the admission controller's call, faults and tracing are server-side
/// concerns, and a standby scheduler per query would put a second
/// coordinator on the serving node.  Strip everything operational.
void sanitize(EhjaConfig& config) {
  config.trace = nullptr;
  config.faults.kills.clear();
  config.ft.force_enabled = false;
  config.ft.standby_scheduler = false;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

EhjaConfig JoinService::fleet_config(const ServeOptions& opts) {
  // The fleet trick: a SocketRuntime's process layout is derived from an
  // EhjaConfig's node numbering, so a minimal config whose total_nodes() is
  // 1 + fleet_workers gives us node 0 (this process) plus one warm worker
  // per fleet node.  No query actors are ever placed by *this* config; it
  // exists to shape the cluster and ride the handshake.
  EhjaConfig fleet;
  fleet.data_sources = 1;
  fleet.initial_join_nodes = 1;
  fleet.join_pool_nodes = opts.fleet_workers - 1;
  fleet.node_hash_memory_bytes = opts.worker_memory_bytes;
  fleet.trace = nullptr;
  return fleet;
}

JoinService::JoinService(ServeOptions opts)
    : opts_(std::move(opts)),
      fleet_config_(fleet_config(opts_)),
      admission_(
          [&] {
            std::vector<NodeId> nodes;
            for (std::uint32_t n = 1; n <= opts_.fleet_workers; ++n) {
              nodes.push_back(static_cast<NodeId>(n));
            }
            return nodes;
          }(),
          opts_.worker_memory_bytes, opts_.max_queue) {
  EHJA_CHECK_MSG(opts_.fleet_workers >= 2,
                 "the serve fleet needs at least two workers");
  EHJA_CHECK_MSG(!opts_.tenants.empty(), "the serve layer needs tenants");
  for (const TenantSpec& t : opts_.tenants) admission_.add_tenant(t);

  rt_ = std::make_unique<SocketRuntime>(make_cluster(fleet_config_),
                                        fleet_config_);
  listen_fd_ = netio::make_listener(port_, opts_.requested_port);
  rt_->watch_fd(listen_fd_, [this] { on_listener_event(); });
  rt_->set_idle_hook([this] { service_tick(); });
}

JoinService::~JoinService() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void JoinService::run() {
  rt_->run();
  // The runtime loop is done (drain complete or deadline).  Close the front
  // door before the fleet teardown in ~SocketRuntime.
  rt_->unwatch_fd(listen_fd_);
  for (auto& [id, client] : clients_) {
    if (client.conn) rt_->unwatch_fd(client.conn->fd);
  }
  clients_.clear();
  fd_to_client_.clear();
}

// --- client connection plumbing -------------------------------------------

void JoinService::on_listener_event() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays up
    }
    netio::set_nonblocking(fd);
    netio::set_nodelay(fd);
    const std::uint64_t client_id = next_client_id_++;
    ClientConn client;
    client.conn = netio::adopt_fd(fd);
    clients_.emplace(client_id, std::move(client));
    fd_to_client_[fd] = client_id;
    rt_->watch_fd(fd, [this, client_id] { on_client_event(client_id); });
  }
}

void JoinService::drop_client(std::uint64_t client_id) {
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  if (it->second.conn) {
    rt_->unwatch_fd(it->second.conn->fd);
    fd_to_client_.erase(it->second.conn->fd);
  }
  clients_.erase(it);  // ~Conn closes the fd
}

void JoinService::on_client_event(std::uint64_t client_id) {
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  ClientConn& client = it->second;
  netio::read_available(*client.conn);
  wire::Frame f;
  std::string error;
  while (client.conn->usable() && !client.drop) {
    const netio::FrameResult res =
        netio::try_next_frame(*client.conn, f, &error);
    if (res == netio::FrameResult::kNone) break;
    if (res == netio::FrameResult::kError) {
      // Unknown kind, newer wire version, bad CRC, oversized body: tell the
      // client why (best effort) and cut the connection.  The stream cannot
      // be resynchronized after a framing error.
      client.broken_reply = true;
      break;
    }
    dispatch(client_id, f);
    if (clients_.count(client_id) == 0) return;  // dispatch dropped us
  }
  if (client.broken_reply) {
    client.conn->broken = false;  // allow one farewell frame
    send_reject(client_id, 0, RejectCode::kBadFrame, 0, error);
    ++queries_rejected_;
    client.drop = true;
  }
  netio::flush_out(*client.conn);
  if (client.conn->eof || client.conn->broken ||
      (client.drop && !client.conn->wants_write())) {
    drop_client(client_id);
  }
}

template <typename Payload>
void JoinService::send_payload(std::uint64_t client_id, wire::FrameKind kind,
                               const Payload& payload) {
  const auto it = clients_.find(client_id);
  if (it == clients_.end() || !it->second.conn->usable()) return;
  wire::Writer w;
  encode(w, payload);
  netio::queue_frame(*it->second.conn, kind, w.data());
  netio::flush_out(*it->second.conn);
}

void JoinService::send_reject(std::uint64_t client_id, std::uint64_t client_seq,
                              RejectCode reason, std::uint32_t retry_after_ms,
                              std::string message) {
  QueryRejectedPayload rej;
  rej.client_seq = client_seq;
  rej.reason = reason;
  rej.retry_after_ms = retry_after_ms;
  rej.message = std::move(message);
  send_payload(client_id, wire::FrameKind::kQueryRejected, rej);
}

// --- protocol dispatch ----------------------------------------------------

void JoinService::dispatch(std::uint64_t client_id, const wire::Frame& f) {
  ClientConn& client = clients_.at(client_id);
  switch (f.kind) {
    case wire::FrameKind::kClientHello: {
      ClientHelloPayload hello;
      wire::Reader r(f.body);
      if (!decode_payload(r, hello)) {
        send_reject(client_id, 0, RejectCode::kBadFrame, 0, "corrupt hello");
        client.drop = true;
        return;
      }
      ServerHelloPayload reply;
      reply.ok = admission_.has_tenant(hello.tenant);
      reply.draining = draining_;
      if (reply.ok) {
        client.tenant = hello.tenant;
        client.hello_done = true;
      } else {
        reply.message = "unknown tenant '" + hello.tenant + "'";
      }
      send_payload(client_id, wire::FrameKind::kServerHello, reply);
      return;
    }
    case wire::FrameKind::kSubmitQuery:
      handle_submit(client_id, f);
      return;
    case wire::FrameKind::kQueryStatusReq:
      handle_status(client_id, f);
      return;
    case wire::FrameKind::kCancelQuery:
      handle_cancel(client_id, f);
      return;
    default:
      // A kind this build knows but never expects from a client (fleet
      // frames, server->client kinds).  Reject, keep the connection: the
      // stream itself is still well-framed.
      send_reject(client_id, 0, RejectCode::kBadFrame, 0,
                  "unexpected frame kind from client");
      ++queries_rejected_;
      return;
  }
}

void JoinService::handle_submit(std::uint64_t client_id, const wire::Frame& f) {
  ClientConn& client = clients_.at(client_id);
  SubmitQueryPayload submit;
  wire::Reader r(f.body);
  if (!decode_payload(r, submit)) {
    ++queries_rejected_;
    send_reject(client_id, 0, RejectCode::kBadFrame, 0, "corrupt submit");
    return;
  }
  if (!client.hello_done) {
    ++queries_rejected_;
    send_reject(client_id, submit.client_seq, RejectCode::kNoHello, 0,
                "submit before hello");
    return;
  }
  if (draining_) {
    ++queries_rejected_;
    send_reject(client_id, submit.client_seq, RejectCode::kDraining, 0,
                "server is draining");
    return;
  }
  sanitize(submit.config);
  if (const auto err = submit.config.validate_or_error()) {
    ++queries_rejected_;
    send_reject(client_id, submit.client_seq, RejectCode::kBadConfig, 0, *err);
    return;
  }

  QueryDemand demand;
  demand.sources = submit.config.data_sources;
  demand.join_nodes = submit.config.initial_join_nodes;
  demand.join_memory_bytes = submit.config.node_hash_memory_bytes;

  const QueryId id = next_query_id_++;
  const SubmitOutcome outcome = admission_.submit(id, client.tenant, demand);
  if (!outcome.accepted) {
    ++queries_rejected_;
    send_reject(client_id, submit.client_seq, reject_code(outcome.reason),
                outcome.retry_after_ms, outcome.message);
    return;
  }

  QueuedQuery q;
  q.client_id = client_id;
  q.client_seq = submit.client_seq;
  q.config = std::make_shared<const EhjaConfig>(std::move(submit.config));
  q.submitted = Clock::now();
  queued_.emplace(id, std::move(q));

  QueryAcceptedPayload acc;
  acc.client_seq = submit.client_seq;
  acc.query_id = id;
  acc.queue_position = outcome.queue_position;
  send_payload(client_id, wire::FrameKind::kQueryAccepted, acc);

  // Admit immediately if the fleet has room -- no reason to wait for the
  // next idle tick.
  pump_admission();
}

QueryState JoinService::state_of(QueryId id,
                                 std::uint32_t& queue_position) const {
  queue_position = 0;
  if (queued_.count(id) != 0) {
    if (const auto pos = admission_.queue_position(id)) queue_position = *pos;
    return QueryState::kQueued;
  }
  if (running_.count(id) != 0) return QueryState::kRunning;
  const auto fit = finished_.find(id);
  if (fit != finished_.end()) return fit->second;
  return QueryState::kUnknown;
}

void JoinService::handle_status(std::uint64_t client_id, const wire::Frame& f) {
  QueryStatusReqPayload req;
  wire::Reader r(f.body);
  if (!decode_payload(r, req)) {
    send_reject(client_id, 0, RejectCode::kBadFrame, 0, "corrupt status");
    return;
  }
  QueryStatusPayload reply;
  reply.query_id = req.query_id;
  reply.state = state_of(req.query_id, reply.queue_position);
  send_payload(client_id, wire::FrameKind::kQueryStatus, reply);
}

void JoinService::handle_cancel(std::uint64_t client_id, const wire::Frame& f) {
  CancelQueryPayload req;
  wire::Reader r(f.body);
  if (!decode_payload(r, req)) {
    send_reject(client_id, 0, RejectCode::kBadFrame, 0, "corrupt cancel");
    return;
  }
  QueryStatusPayload reply;
  reply.query_id = req.query_id;
  if (queued_.count(req.query_id) != 0 &&
      admission_.cancel_queued(req.query_id)) {
    queued_.erase(req.query_id);
    record_finished(req.query_id, QueryState::kCancelled);
    reply.state = QueryState::kCancelled;
  } else {
    // Running queries drain (cancelling mid-protocol would orphan worker
    // state); done/unknown report as such.
    reply.state = state_of(req.query_id, reply.queue_position);
  }
  send_payload(client_id, wire::FrameKind::kQueryStatus, reply);
}

// --- query lifecycle ------------------------------------------------------

void JoinService::pump_admission() {
  while (auto adm = admission_.take_ready()) start_query(std::move(*adm));
}

void JoinService::start_query(Admitted adm) {
  const auto qit = queued_.find(adm.id);
  EHJA_CHECK_MSG(qit != queued_.end(), "admitted query not in queued set");
  ActiveQuery active;
  active.client_id = qit->second.client_id;
  active.tenant = adm.tenant;
  active.config = qit->second.config;
  active.submitted = qit->second.submitted;
  active.started = Clock::now();
  queued_.erase(qit);

  const QueryId id = adm.id;
  active.run = std::make_unique<QueryRun>(*rt_, active.config);
  active.run->set_on_done([this, id] { completed_.push_back(id); });
  active.run->set_pool_hooks(PoolHooks{
      [this, id]() -> std::optional<NodeId> {
        return admission_.grant_expansion(id);
      },
      [this, id](NodeId node) { admission_.release_expansion(id, node); }});

  QueryPlacement placement;
  placement.scheduler_node = 0;  // every query's scheduler lives here
  placement.source_nodes = adm.placement.source_nodes;
  placement.join_nodes = adm.placement.join_nodes;
  // pool_nodes stays empty: expansion goes through the admission hooks.

  ActiveQuery& slot =
      running_.emplace(id, std::move(active)).first->second;
  slot.run->start(placement);
}

void JoinService::finalize_query(QueryId id) {
  const auto it = running_.find(id);
  EHJA_CHECK_MSG(it != running_.end(), "finalize for a query not running");
  ActiveQuery& q = it->second;
  const RunMetrics metrics = q.run->collect_metrics();

  QueryResultPayload result;
  result.query_id = id;
  result.matches = metrics.join.matches;
  result.checksum = metrics.join.checksum;
  result.build_tuples = metrics.build_tuples_total;
  result.probe_tuples = metrics.probe_tuples_total;
  result.expansions = metrics.expansions;
  result.queue_sec = seconds_between(q.submitted, q.started);
  result.run_sec = seconds_between(q.started, Clock::now());
  send_payload(q.client_id, wire::FrameKind::kQueryResult, result);

  // Forget the query's actors fleet-wide; without this a long-lived server
  // leaks every scheduler, source and join process it ever ran.
  for (const ActorId actor : q.run->spawned_actors()) {
    rt_->retire_actor(actor);
  }
  admission_.on_complete(id);
  record_finished(id, QueryState::kDone);
  running_.erase(it);
  ++queries_completed_;
}

void JoinService::record_finished(QueryId id, QueryState state) {
  if (finished_.emplace(id, state).second) {
    finished_order_.push_back(id);
    while (finished_order_.size() > kFinishedCap) {
      finished_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
  }
}

// --- the per-iteration service work ---------------------------------------

void JoinService::service_tick() {
  if (shutdown_flag_ != nullptr && shutdown_flag_->load() && !draining_) {
    begin_shutdown();
  }

  if (!completed_.empty()) {
    std::vector<QueryId> done;
    done.swap(completed_);
    for (const QueryId id : done) finalize_query(id);
  }

  if (!draining_) {
    pump_admission();
  } else if (running_.empty() || Clock::now() >= drain_deadline_) {
    rt_->request_stop();
  }

  // Flush laggard client buffers and reap dead connections.  Collect ids
  // first: drop_client mutates clients_.
  std::vector<std::uint64_t> dead;
  for (auto& [id, client] : clients_) {
    if (client.conn->wants_write()) netio::flush_out(*client.conn);
    if (client.conn->eof || client.conn->broken ||
        (client.drop && !client.conn->wants_write())) {
      dead.push_back(id);
    }
  }
  for (const std::uint64_t id : dead) drop_client(id);
}

void JoinService::begin_shutdown() {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts_.drain_deadline_sec));
  admission_.begin_drain();

  // Bounce the queued backlog -- it will never be admitted now.
  for (auto& [id, q] : queued_) {
    EHJA_CHECK(admission_.cancel_queued(id));
    send_reject(q.client_id, q.client_seq, RejectCode::kDraining, 0,
                "server is draining");
    record_finished(id, QueryState::kCancelled);
  }
  queued_.clear();

  ShutdownNoticePayload notice;
  notice.message = "server draining; in-flight queries will complete";
  for (auto& [id, client] : clients_) {
    (void)client;
    send_payload(id, wire::FrameKind::kShutdownNotice, notice);
  }
}

}  // namespace ehja::serve
