// ehja_serve -- long-lived multi-tenant join service (serve/server.hpp).
//
//   ehja_serve [options]
//     --port=N              client-facing TCP port      (default 0: ephemeral,
//                           printed on stdout as "listening on port N")
//     --fleet-workers=N     warm worker processes       (default 4, min 2)
//     --worker-memory-mib=N per-worker memory budget    (default 256)
//     --max-queue=N         admission queue bound       (default 64)
//     --drain-deadline=SEC  shutdown drain deadline     (default 30)
//     --tenant=NAME:PRIORITY:MAX_SLOTS:MAX_MEMORY_MIB   (repeatable; at least
//                           one required; e.g. --tenant=alpha:1:8:512)
//     --quiet / --verbose   log level
//
// SIGTERM / SIGINT begin a graceful drain: no new queries are admitted, the
// queued backlog is bounced with kDraining, in-flight queries finish (up to
// the deadline), then the process exits 0.
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/socket_runtime.hpp"
#include "serve/server.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace {

using namespace ehja;

std::atomic<bool> g_shutdown{false};

void on_signal(int /*sig*/) { g_shutdown.store(true); }

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "ehja_serve: %s (see the header of tools/ehja_serve.cpp)\n",
               message.c_str());
  std::exit(2);
}

bool match_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

// "NAME:PRIORITY:MAX_SLOTS:MAX_MEMORY_MIB"
serve::TenantSpec parse_tenant(const std::string& spec) {
  serve::TenantSpec tenant;
  std::size_t start = 0;
  std::vector<std::string> parts;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() != 4 || parts[0].empty()) {
    usage_error("--tenant needs NAME:PRIORITY:MAX_SLOTS:MAX_MEMORY_MIB");
  }
  tenant.name = parts[0];
  tenant.priority = static_cast<std::uint32_t>(std::atoi(parts[1].c_str()));
  tenant.max_slots = static_cast<std::uint32_t>(std::atoi(parts[2].c_str()));
  tenant.max_memory_bytes =
      std::strtoull(parts[3].c_str(), nullptr, 10) * kMiB;
  if (tenant.max_slots == 0) usage_error("--tenant MAX_SLOTS must be >= 1");
  if (tenant.max_memory_bytes == 0) {
    usage_error("--tenant MAX_MEMORY_MIB must be >= 1");
  }
  return tenant;
}

}  // namespace

int main(int argc, char** argv) {
  // The fleet's worker processes are re-executions of this binary.
  if (const auto worker_exit = maybe_run_socket_worker(argc, argv)) {
    return *worker_exit;
  }

  serve::ServeOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (match_flag(argv[i], "--port", &value)) {
      opts.requested_port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (match_flag(argv[i], "--fleet-workers", &value)) {
      opts.fleet_workers = static_cast<std::uint32_t>(std::atoi(value.c_str()));
      if (opts.fleet_workers < 2) usage_error("--fleet-workers must be >= 2");
    } else if (match_flag(argv[i], "--worker-memory-mib", &value)) {
      opts.worker_memory_bytes =
          std::strtoull(value.c_str(), nullptr, 10) * kMiB;
      if (opts.worker_memory_bytes == 0) {
        usage_error("--worker-memory-mib must be >= 1");
      }
    } else if (match_flag(argv[i], "--max-queue", &value)) {
      opts.max_queue = static_cast<std::size_t>(std::atoi(value.c_str()));
      if (opts.max_queue == 0) usage_error("--max-queue must be >= 1");
    } else if (match_flag(argv[i], "--drain-deadline", &value)) {
      opts.drain_deadline_sec = std::atof(value.c_str());
      if (opts.drain_deadline_sec <= 0.0) {
        usage_error("--drain-deadline must be > 0");
      }
    } else if (match_flag(argv[i], "--tenant", &value)) {
      opts.tenants.push_back(parse_tenant(value));
    } else if (match_flag(argv[i], "--quiet", &value)) {
      set_log_level(LogLevel::kError);
    } else if (match_flag(argv[i], "--verbose", &value)) {
      set_log_level(LogLevel::kInfo);
    } else {
      usage_error(std::string("unknown option ") + argv[i]);
    }
  }
  if (opts.tenants.empty()) {
    usage_error("at least one --tenant is required");
  }

  ::signal(SIGTERM, on_signal);
  ::signal(SIGINT, on_signal);

  serve::JoinService service(std::move(opts));
  service.set_shutdown_flag(&g_shutdown);
  std::printf("listening on port %u\n", service.port());
  std::fflush(stdout);

  service.run();

  std::printf("drained: %llu queries completed, %llu rejected\n",
              static_cast<unsigned long long>(service.queries_completed()),
              static_cast<unsigned long long>(service.queries_rejected()));
  return 0;
}
