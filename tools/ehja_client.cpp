// ehja_client -- workload replayer for ehja_serve.
//
//   ehja_client --port=N [options]
//     --port=N            server port (required)
//     --workload=FILE     workload file (see format below); without it a
//                         synthetic workload is generated from:
//     --queries=N           number of synthetic queries     (default 64)
//     --tenant=NAME         tenant for synthetic queries    (default alpha)
//     --build=N --probe=N   synthetic relation sizes        (default 20000)
//     --concurrency=N     client connections / threads      (default 8)
//     --verify            compare every result to the serial oracle
//     --retries=N         max queue-full retries per query  (default 200)
//
// Workload file: one query per line, '#' comments.  Fields are
// space-separated key=value pairs; unknown keys are an error.
//
//   tenant=alpha build=20000 probe=20000 joins=1 sources=1 mem-kib=256
//       seed=7 algorithm=hybrid pool=2 chunk=1000       (one line per query)
//
// Exit status: 0 when every accepted query completed (and verified, with
// --verify); 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "util/units.hpp"

namespace {

using namespace ehja;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "ehja_client: %s (see the header of tools/ehja_client.cpp)\n",
               message.c_str());
  std::exit(2);
}

bool match_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

/// A small-join config template: every knob a serve client may reasonably
/// set, defaulted for a sub-second query.
EhjaConfig small_query_config() {
  EhjaConfig config;
  config.data_sources = 1;
  config.initial_join_nodes = 1;
  config.join_pool_nodes = 2;
  config.node_hash_memory_bytes = 256 * kKiB;
  config.build_rel.tuple_count = 20'000;
  config.probe_rel.tuple_count = 20'000;
  config.chunk_tuples = 1'000;
  config.generation_slice_tuples = 1'000;
  return config;
}

serve::WorkloadQuery parse_workload_line(const std::string& line, int lineno) {
  serve::WorkloadQuery q;
  q.tenant = "alpha";
  q.config = small_query_config();
  std::istringstream in(line);
  std::string field;
  while (in >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
      usage_error("workload line " + std::to_string(lineno) +
                  ": field '" + field + "' is not key=value");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "tenant") {
      q.tenant = value;
    } else if (key == "build") {
      q.config.build_rel.tuple_count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "probe") {
      q.config.probe_rel.tuple_count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "joins") {
      q.config.initial_join_nodes =
          static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (key == "sources") {
      q.config.data_sources =
          static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (key == "pool") {
      q.config.join_pool_nodes =
          static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (key == "mem-kib") {
      q.config.node_hash_memory_bytes =
          std::strtoull(value.c_str(), nullptr, 10) * kKiB;
    } else if (key == "seed") {
      q.config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "chunk") {
      q.config.chunk_tuples =
          static_cast<std::uint32_t>(std::atoi(value.c_str()));
      q.config.generation_slice_tuples = q.config.chunk_tuples;
    } else if (key == "algorithm") {
      if (value == "split") q.config.algorithm = Algorithm::kSplit;
      else if (value == "replicated") q.config.algorithm = Algorithm::kReplicate;
      else if (value == "hybrid") q.config.algorithm = Algorithm::kHybrid;
      else if (value == "ooc") q.config.algorithm = Algorithm::kOutOfCore;
      else if (value == "adaptive") q.config.algorithm = Algorithm::kAdaptive;
      else usage_error("workload line " + std::to_string(lineno) +
                       ": unknown algorithm " + value);
    } else {
      usage_error("workload line " + std::to_string(lineno) +
                  ": unknown key " + key);
    }
  }
  if (q.config.join_pool_nodes < q.config.initial_join_nodes) {
    q.config.join_pool_nodes = q.config.initial_join_nodes;
  }
  return q;
}

std::vector<serve::WorkloadQuery> load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage_error("cannot open workload file " + path);
  std::vector<serve::WorkloadQuery> queries;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    queries.push_back(parse_workload_line(line, lineno));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string workload_path;
  std::string tenant = "alpha";
  int queries_n = 64;
  int concurrency = 8;
  int retries = 200;
  bool verify = false;
  std::uint64_t build = 20'000;
  std::uint64_t probe = 20'000;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (match_flag(argv[i], "--port", &value)) {
      port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (match_flag(argv[i], "--workload", &value)) {
      workload_path = value;
    } else if (match_flag(argv[i], "--queries", &value)) {
      queries_n = std::atoi(value.c_str());
    } else if (match_flag(argv[i], "--tenant", &value)) {
      tenant = value;
    } else if (match_flag(argv[i], "--build", &value)) {
      build = std::strtoull(value.c_str(), nullptr, 10);
    } else if (match_flag(argv[i], "--probe", &value)) {
      probe = std::strtoull(value.c_str(), nullptr, 10);
    } else if (match_flag(argv[i], "--concurrency", &value)) {
      concurrency = std::atoi(value.c_str());
      if (concurrency < 1) usage_error("--concurrency must be >= 1");
    } else if (match_flag(argv[i], "--retries", &value)) {
      retries = std::atoi(value.c_str());
    } else if (match_flag(argv[i], "--verify", &value)) {
      verify = true;
    } else {
      usage_error(std::string("unknown option ") + argv[i]);
    }
  }
  if (port == 0) usage_error("--port is required");

  std::vector<serve::WorkloadQuery> queries;
  if (!workload_path.empty()) {
    queries = load_workload(workload_path);
  } else {
    for (int i = 0; i < queries_n; ++i) {
      serve::WorkloadQuery q;
      q.tenant = tenant;
      q.config = small_query_config();
      q.config.build_rel.tuple_count = build;
      q.config.probe_rel.tuple_count = probe;
      q.config.seed = 1000 + static_cast<std::uint64_t>(i);
      queries.push_back(std::move(q));
    }
  }
  if (queries.empty()) usage_error("workload is empty");

  const serve::ReplayStats stats =
      serve::replay_workload(port, queries, concurrency, verify, retries);

  std::printf("queries: %llu submitted | %llu accepted | %llu rejected | "
              "%llu completed | %llu errors\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.errors));
  std::printf("latency: p50 %.1f ms | p99 %.1f ms | throughput %.1f q/s "
              "over %.2f s\n",
              stats.latency_percentile_ms(0.50),
              stats.latency_percentile_ms(0.99), stats.qps(), stats.wall_sec);
  if (verify) {
    std::printf("verify: %llu mismatches\n",
                static_cast<unsigned long long>(stats.verify_failures));
  }

  const bool ok = stats.errors == 0 && stats.verify_failures == 0 &&
                  stats.completed == stats.accepted;
  return ok ? 0 : 1;
}
