// ehja_run -- command-line front end for the EHJA library.
//
//   ehja_run [options]
//     --algorithm=split|replicated|hybrid|ooc|adaptive|auto
//                  (default hybrid; auto asks the planner up front, paper
//                  ss6 decision rule; adaptive decides split-vs-replicate
//                  per overflow from the cost model)
//     --initial-nodes=N     initial working join nodes        (default 4)
//     --pool=N              join-node pool size               (default 24)
//     --sources=N           data source processes             (default 4)
//     --build=N             build-relation tuples             (default 1e6)
//     --probe=N             probe-relation tuples             (default 1e6)
//     --tuple-bytes=N       tuple size incl. 16 B header      (default 100)
//     --memory-mib=N        per-node hash memory              (default 8)
//     --dist=SPEC           uniform | gaussian:SIGMA | zipf:S:DOMAIN |
//                           smalldomain:DOMAIN               (default uniform)
//     --chunk=N             tuples per transport chunk        (default 10000)
//     --seed=N              RNG seed                          (default 1)
//     --split-variant=requester|pointer                (default requester)
//     --intra-threads=N     worker threads per join process driving its
//                           partition table (default 1 = scalar data plane)
//     --intra-mode=shared|merge  concurrent-table build discipline when
//                           --intra-threads > 1 (default shared)
//     --runtime=sim|thread|socket  execution runtime          (default sim)
//                           sim: discrete-event, virtual time; thread: one
//                           OS thread per node; socket: one OS *process*
//                           per node over loopback TCP
//     --workers=N           alias for --pool, reads naturally with
//                           --runtime=socket (one process per cluster node)
//     --heartbeat-interval=SEC  scheduler ping cadence        (default 0.5)
//     --heartbeat-timeout=SEC   silence before a node is declared dead
//                               (default 5)
//     --detector=timeout|phi    failure-detector flavour      (default timeout)
//     --phi-threshold=X         phi-accrual suspicion threshold (default 8)
//     --phi-window=N            phi inter-arrival sample window (default 32)
//     --standby                 run a standby scheduler (required to survive
//                               scheduler kills)
//     --topology=switched|bus
//     --kill-node=[ROLE:]I@T  kill the process at index I at time T (virtual
//                           seconds), or after its K-th chunk/message with
//                           the form I@Kc; ROLE is join (default), source,
//                           or sched (index ignored; sched:0@Kc dies on its
//                           K-th protocol message); repeatable
//     --net-jitter=SEC      uniform extra per-message delivery delay
//     --net-drop-prob=P     per-message drop-with-redelivery probability
//     --trace-csv=FILE      dump the run trace as CSV
//     --verify              check the result against the serial oracle
//     --quiet / --verbose   log level
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/driver.hpp"
#include "core/planner.hpp"
#include "runtime/socket_runtime.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace {

using namespace ehja;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "ehja_run: %s (see the header of tools/ehja_run.cpp)\n",
               message.c_str());
  std::exit(2);
}

bool match_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = "";
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

DistributionSpec parse_dist(const std::string& spec) {
  if (spec == "uniform") return DistributionSpec::Uniform();
  if (spec.rfind("gaussian:", 0) == 0) {
    return DistributionSpec::Gaussian(0.5, std::atof(spec.c_str() + 9));
  }
  if (spec.rfind("zipf:", 0) == 0) {
    const std::string rest = spec.substr(5);
    const auto colon = rest.find(':');
    if (colon == std::string::npos) usage_error("zipf needs zipf:S:DOMAIN");
    return DistributionSpec::Zipf(
        std::atof(rest.substr(0, colon).c_str()),
        std::strtoull(rest.c_str() + colon + 1, nullptr, 10));
  }
  if (spec.rfind("smalldomain:", 0) == 0) {
    return DistributionSpec::SmallDomain(
        std::strtoull(spec.c_str() + 12, nullptr, 10));
  }
  usage_error("unknown --dist " + spec);
}

// "[ROLE:]I@T" (kill the process at index I at virtual time T) or
// "[ROLE:]I@Kc" (kill it at its K-th chunk/message).  ROLE defaults to join;
// "source:0@3c" kills data source 0 before its 3rd chunk, "sched:0@40c"
// kills the scheduler at its 40th protocol message.
KillSpec parse_kill(std::string spec) {
  KillSpec kill;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    const std::string role = spec.substr(0, colon);
    if (role == "join") {
      kill.role = KillRole::kJoin;
    } else if (role == "source") {
      kill.role = KillRole::kSource;
    } else if (role == "sched") {
      kill.role = KillRole::kScheduler;
    } else {
      usage_error("--kill-node role must be join, source or sched");
    }
    spec = spec.substr(colon + 1);
  }
  const auto at = spec.find('@');
  if (at == std::string::npos) usage_error("--kill-node needs I@T or I@Kc");
  kill.pool_index =
      static_cast<std::uint32_t>(std::atoi(spec.substr(0, at).c_str()));
  const std::string trigger = spec.substr(at + 1);
  if (!trigger.empty() && trigger.back() == 'c') {
    kill.after_chunks = std::strtoull(trigger.c_str(), nullptr, 10);
    if (kill.after_chunks == 0) usage_error("--kill-node chunk count must be >= 1");
  } else {
    kill.at_time = std::atof(trigger.c_str());
    if (kill.at_time < 0.0) usage_error("--kill-node time must be >= 0");
  }
  return kill;
}

const char* runtime_name(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kSim: return "sim";
    case RuntimeKind::kThread: return "thread";
    case RuntimeKind::kSocket: return "socket";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  // The socket runtime re-executes this binary as its per-node workers;
  // such invocations never reach the normal CLI below.
  if (const auto worker_exit = maybe_run_socket_worker(argc, argv)) {
    return *worker_exit;
  }

  EhjaConfig config;
  config.build_rel.tuple_count = 1'000'000;
  config.probe_rel.tuple_count = 1'000'000;
  config.node_hash_memory_bytes = 8 * kMiB;

  bool auto_algorithm = false;
  bool verify = false;
  RuntimeKind runtime = RuntimeKind::kSim;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (match_flag(argv[i], "--algorithm", &value)) {
      if (value == "split") config.algorithm = Algorithm::kSplit;
      else if (value == "replicated") config.algorithm = Algorithm::kReplicate;
      else if (value == "hybrid") config.algorithm = Algorithm::kHybrid;
      else if (value == "ooc") config.algorithm = Algorithm::kOutOfCore;
      else if (value == "adaptive") config.algorithm = Algorithm::kAdaptive;
      else if (value == "auto") auto_algorithm = true;
      else usage_error("unknown --algorithm " + value);
    } else if (match_flag(argv[i], "--initial-nodes", &value)) {
      config.initial_join_nodes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (match_flag(argv[i], "--pool", &value)) {
      config.join_pool_nodes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (match_flag(argv[i], "--sources", &value)) {
      config.data_sources = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (match_flag(argv[i], "--build", &value)) {
      config.build_rel.tuple_count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (match_flag(argv[i], "--probe", &value)) {
      config.probe_rel.tuple_count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (match_flag(argv[i], "--tuple-bytes", &value)) {
      const auto bytes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
      config.build_rel.schema = Schema{bytes};
      config.probe_rel.schema = Schema{bytes};
    } else if (match_flag(argv[i], "--memory-mib", &value)) {
      config.node_hash_memory_bytes =
          std::strtoull(value.c_str(), nullptr, 10) * kMiB;
    } else if (match_flag(argv[i], "--dist", &value)) {
      config.build_rel.dist = parse_dist(value);
      config.probe_rel.dist = config.build_rel.dist;
    } else if (match_flag(argv[i], "--chunk", &value)) {
      config.chunk_tuples = static_cast<std::uint32_t>(std::atoi(value.c_str()));
      config.generation_slice_tuples = config.chunk_tuples;
    } else if (match_flag(argv[i], "--seed", &value)) {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (match_flag(argv[i], "--split-variant", &value)) {
      if (value == "requester") config.split_variant = SplitVariant::kRequesterMidpoint;
      else if (value == "pointer") config.split_variant = SplitVariant::kLinearPointer;
      else usage_error("unknown --split-variant " + value);
    } else if (match_flag(argv[i], "--intra-threads", &value)) {
      const long threads = std::atol(value.c_str());
      if (threads < 1) usage_error("--intra-threads must be >= 1");
      config.intra_threads = static_cast<std::uint32_t>(threads);
    } else if (match_flag(argv[i], "--intra-mode", &value)) {
      if (value == "shared") config.intra_mode = IntraMode::kShared;
      else if (value == "merge") config.intra_mode = IntraMode::kMerge;
      else usage_error("unknown --intra-mode '" + value + "' (shared, merge)");
    } else if (match_flag(argv[i], "--runtime", &value)) {
      if (value == "sim") runtime = RuntimeKind::kSim;
      else if (value == "thread") runtime = RuntimeKind::kThread;
      else if (value == "socket") runtime = RuntimeKind::kSocket;
      else usage_error("unknown --runtime '" + value +
                       "' (valid backends: sim, thread, socket)");
    } else if (match_flag(argv[i], "--workers", &value)) {
      config.join_pool_nodes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (match_flag(argv[i], "--heartbeat-interval", &value)) {
      config.ft.heartbeat_interval_sec = std::atof(value.c_str());
      if (config.ft.heartbeat_interval_sec <= 0.0) {
        usage_error("--heartbeat-interval must be > 0");
      }
    } else if (match_flag(argv[i], "--heartbeat-timeout", &value)) {
      config.ft.heartbeat_timeout_sec = std::atof(value.c_str());
      if (config.ft.heartbeat_timeout_sec <= 0.0) {
        usage_error("--heartbeat-timeout must be > 0");
      }
    } else if (match_flag(argv[i], "--detector", &value)) {
      if (value == "timeout") config.ft.detector = DetectorKind::kTimeout;
      else if (value == "phi") config.ft.detector = DetectorKind::kPhiAccrual;
      else usage_error("unknown --detector '" + value + "' (timeout, phi)");
    } else if (match_flag(argv[i], "--phi-threshold", &value)) {
      config.ft.phi_threshold = std::atof(value.c_str());
      if (config.ft.phi_threshold <= 0.0) {
        usage_error("--phi-threshold must be > 0");
      }
    } else if (match_flag(argv[i], "--phi-window", &value)) {
      const long window = std::atol(value.c_str());
      if (window < 1) {
        usage_error("--phi-window must be >= 1 sample");
      }
      config.ft.phi_window = static_cast<std::uint32_t>(window);
    } else if (match_flag(argv[i], "--standby", &value)) {
      config.ft.standby_scheduler = true;
    } else if (match_flag(argv[i], "--topology", &value)) {
      if (value == "switched") config.link.topology = Topology::kSwitched;
      else if (value == "bus") config.link.topology = Topology::kSharedBus;
      else usage_error("unknown --topology " + value);
    } else if (match_flag(argv[i], "--kill-node", &value)) {
      config.faults.kills.push_back(parse_kill(value));
    } else if (match_flag(argv[i], "--net-jitter", &value)) {
      config.link.fault_jitter_sec = std::atof(value.c_str());
    } else if (match_flag(argv[i], "--net-drop-prob", &value)) {
      config.link.fault_drop_prob = std::atof(value.c_str());
    } else if (match_flag(argv[i], "--trace-csv", &value)) {
      trace_path = value;
    } else if (match_flag(argv[i], "--verify", &value)) {
      verify = true;
    } else if (match_flag(argv[i], "--quiet", &value)) {
      set_log_level(LogLevel::kError);
    } else if (match_flag(argv[i], "--verbose", &value)) {
      set_log_level(LogLevel::kInfo);
    } else {
      usage_error(std::string("unknown option ") + argv[i]);
    }
  }

  // Reject nonsense before any process is forked or memory reserved: the
  // same checks EhjaConfig::validate() would abort on, surfaced as a usage
  // error instead.
  if (runtime == RuntimeKind::kSocket && config.join_pool_nodes == 0) {
    usage_error(
        "--runtime=socket needs at least one worker process (--workers/--pool"
        " >= 1)");
  }
  if (const auto err = config.validate_or_error()) {
    usage_error(*err);
  }

  if (auto_algorithm) {
    PlannerInputs inputs;
    inputs.build_tuples = config.build_rel.tuple_count;
    inputs.probe_tuples = config.probe_rel.tuple_count;
    const PlannerDecision decision = choose_algorithm(config, inputs);
    config.algorithm = decision.algorithm;
    std::printf("planner: %s -- %s\n", algorithm_name(decision.algorithm),
                decision.rationale.c_str());
  }

  TraceSink sink;
  if (!trace_path.empty()) config.trace = &sink;

  std::printf("runtime: %s | seed %llu\n", runtime_name(runtime),
              static_cast<unsigned long long>(config.seed));
  std::printf("config: %s\n", config.to_string().c_str());
  const RunResult result = run_ehja(config, runtime);
  const RunMetrics& m = result.metrics;

  std::printf("\n-- timeline (virtual seconds) --\n");
  std::printf("build %.3f | reshuffle %.3f | probe %.3f | finish %.3f | "
              "total %.3f\n",
              m.build_time(), m.reshuffle_time(), m.probe_time(),
              m.finish_time(), m.total_time());
  std::printf("-- expansion --\n");
  std::printf("nodes %u -> %u (%u recruited)%s | split time %.3f s | "
              "handoff time %.3f s\n",
              m.initial_join_nodes, m.final_join_nodes, m.expansions,
              m.pool_exhausted ? " [pool exhausted]" : "", m.split_time,
              m.expand_time);
  if (config.algorithm == Algorithm::kAdaptive) {
    std::printf("adaptive choices: %u splits, %u replicas\n",
                m.adaptive_splits, m.adaptive_replicas);
  }
  std::printf("-- communication --\n");
  std::printf("source chunks: %llu build, %llu probe | node-to-node: %llu\n",
              static_cast<unsigned long long>(m.source_build_chunks),
              static_cast<unsigned long long>(m.source_probe_chunks),
              static_cast<unsigned long long>(m.extra_build_chunks));
  const RunningStats load = summarize(m.load_chunks(config.chunk_tuples));
  std::printf("-- load balance (chunks per node) --\n");
  std::printf("min %.1f | avg %.1f | max %.1f | imbalance %.2f\n", load.min(),
              load.mean(), load.max(), load.imbalance());
  if (config.recovery_enabled()) {
    std::printf("-- failures --\n");
    std::printf("injected %u | detected %u (mean latency %.3f s) | "
                "recoveries %u (%.3f s total) | replayed %llu R + %llu S\n",
                m.failures_injected, m.failures_detected,
                m.failures_detected > 0
                    ? m.detection_latency_total / m.failures_detected
                    : 0.0,
                m.recoveries, m.recovery_time_total,
                static_cast<unsigned long long>(m.replayed_build_tuples),
                static_cast<unsigned long long>(m.replayed_probe_tuples));
  }
  std::printf("-- output --\n");
  std::printf("%llu matches, checksum %016llx\n",
              static_cast<unsigned long long>(result.join().matches),
              static_cast<unsigned long long>(result.join().checksum));

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    sink.write_csv(out);
    std::printf("trace: %zu events -> %s\n", sink.size(), trace_path.c_str());
  }

  if (verify) {
    const JoinResult oracle = reference_join(config);
    const bool ok = result.join() == oracle;
    std::printf("verify: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
