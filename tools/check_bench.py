#!/usr/bin/env python3
"""Perf-regression gate: compare a smoke-run bench JSON against the
committed baseline (BENCH_data_plane.json) and fail on regressions.

Comparisons only make sense like-for-like, so two guards apply before any
metric is graded:

  * workload scale (`tuples`) must match between the two files -- a 400k
    smoke run is cache-resident in ways a 1M run is not, and even the
    dimensionless speedup ratios shift by 2x across that boundary.  On a
    scale mismatch everything is skipped (loudly); the CI job runs the
    bench at baseline scale (~10s) precisely so this never trips there.
  * absolute throughput (keys ending in `_tps`, or `tuples_per_sec`) is
    additionally gated on matching `host_cores`: tuples/sec on a 4-vCPU
    runner says nothing about a baseline taken on a different box, and
    thread-scaling numbers (the `intra` section) are meaningless across
    core counts.  Speedup ratios (keys ending in `speedup`) are
    batched-vs-scalar on the same host, so they gate on any machine.

A metric fails when candidate < baseline * (1 - threshold); the default
threshold is 25%.  Exit 1 on any failure, 0 otherwise.  Missing paths are
ignored (new benches may add sections before the baseline is regenerated).

Usage:
  check_bench.py --baseline BENCH_data_plane.json \
                 --candidate bench-data-plane-smoke.json [--threshold 0.25]
"""

import argparse
import json
import re
import sys

THROUGHPUT_RE = re.compile(r"(_tps|tuples_per_sec)(\.\d+)*$")
SPEEDUP_RE = re.compile(r"speedup(\.\d+)*$")


def flatten(obj, prefix=""):
    """Flatten nested dicts/lists to {dotted.path: float}."""
    out = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(obj, list):
        for index, value in enumerate(obj):
            out.update(flatten(value, f"{prefix}{index}."))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix[:-1]] = float(obj)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--candidate", required=True,
                        help="fresh smoke-run JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional regression "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = flatten(json.load(f))
    with open(args.candidate) as f:
        candidate = flatten(json.load(f))

    scale_match = (baseline.get("tuples") is not None
                   and baseline.get("tuples") == candidate.get("tuples"))
    if not scale_match:
        print(f"note: workload scale differs (baseline tuples "
              f"{baseline.get('tuples')}, candidate "
              f"{candidate.get('tuples')}); nothing is comparable -- rerun "
              f"the candidate at baseline scale")
    cores_match = (baseline.get("host_cores") is not None
                   and baseline.get("host_cores") == candidate.get("host_cores"))
    if not cores_match:
        print(f"note: host_cores differ (baseline "
              f"{baseline.get('host_cores')}, candidate "
              f"{candidate.get('host_cores')}); absolute tuples/sec paths "
              f"are skipped, speedup ratios still gate")

    compared = 0
    skipped = 0
    failures = []
    for path in sorted(baseline):
        if path not in candidate:
            continue
        is_throughput = bool(THROUGHPUT_RE.search(path))
        is_speedup = bool(SPEEDUP_RE.search(path))
        if not (is_throughput or is_speedup):
            continue
        if not scale_match or (is_throughput and not cores_match):
            skipped += 1
            continue
        base = baseline[path]
        cand = candidate[path]
        if base <= 0:
            continue
        compared += 1
        ratio = cand / base
        marker = ""
        if cand < base * (1.0 - args.threshold):
            failures.append(path)
            marker = "  <-- REGRESSION"
        print(f"{path}: baseline {base:.6g}, candidate {cand:.6g} "
              f"({ratio:.2f}x){marker}")

    print(f"\ncompared {compared} metric(s), skipped {skipped}, "
          f"{len(failures)} regression(s) past the "
          f"{args.threshold:.0%} threshold")
    if failures:
        for path in failures:
            print(f"FAIL: {path}", file=sys.stderr)
        return 1
    if compared == 0:
        print("warning: no comparable metrics found "
              "(baseline schema mismatch?)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
