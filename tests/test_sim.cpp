// Unit tests for the discrete-event engine: ordering, tie-breaking,
// determinism, deadline semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace ehja {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ClearDropsPendingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, EventCountersTrack) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorTest, ZeroDelaySelfScheduleAdvancesSequenceNotTime) {
  Simulator sim;
  int fired = 0;
  std::function<void()> self = [&] {
    if (++fired < 100) sim.schedule_after(0.0, self);
  };
  sim.schedule_at(0.0, self);
  sim.run();
  EXPECT_EQ(fired, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace ehja
